"""Tests for the temporal (per-date) partitioning of Section 6."""

from __future__ import annotations

from datetime import date

import pytest

from repro.partitioning.temporal import (
    TemporalTransaction,
    graphs_of,
    partition_by_date,
    prepare_temporal_transactions,
    summarize_transactions,
)


class TestPartitionByDate:
    def test_one_transaction_per_active_date(self, tiny_dataset, binning):
        transactions = partition_by_date(tiny_dataset, binning=binning)
        dates = [t.active_date for t in transactions]
        assert dates == sorted(dates)
        # Active dates: Jan 5-8 (loads 1-3) and Jan 12-13 (load 4).
        assert date(2004, 1, 5) in dates
        assert date(2004, 1, 12) in dates
        assert date(2004, 1, 9) not in dates

    def test_edge_active_between_pickup_and_delivery(self, tiny_dataset, binning):
        transactions = {t.active_date: t for t in partition_by_date(tiny_dataset, binning=binning)}
        # Load 2 (Chicago -> Atlanta) is active Jan 5, 6, 7.
        for day in (date(2004, 1, 5), date(2004, 1, 6), date(2004, 1, 7)):
            graph = transactions[day].graph
            chicago = next(v for v in graph.vertices() if graph.vertex_label(v) == "41.9,-87.6")
            atlanta = next(v for v in graph.vertices() if graph.vertex_label(v) == "33.7,-84.4")
            assert graph.has_edge(chicago, atlanta)

    def test_vertices_carry_location_labels(self, tiny_dataset, binning):
        transactions = partition_by_date(tiny_dataset, binning=binning)
        graph = transactions[0].graph
        labels = {graph.vertex_label(v) for v in graph.vertices()}
        assert all("," in label for label in labels)

    def test_duplicate_edges_removed(self, tiny_dataset, binning):
        # Loads 1 and 2 share the same origin on Jan 5-6 but different lanes;
        # build a dataset where two loads share the same lane and day.
        doubled = tiny_dataset
        doubled.add(tiny_dataset[0].with_id(99))
        transactions = partition_by_date(doubled, binning=binning)
        jan5 = next(t for t in transactions if t.active_date == date(2004, 1, 5))
        pairs = [(e.source, e.target) for e in jan5.graph.edges()]
        assert len(pairs) == len(set(pairs))

    def test_interval_labels_option(self, tiny_dataset, binning):
        transactions = partition_by_date(tiny_dataset, binning=binning, use_interval_labels=True)
        labels = {e.label for t in transactions for e in t.graph.edges()}
        assert all(isinstance(label, str) and label.startswith("[") for label in labels)


class TestPrepare:
    def test_single_edge_transactions_dropped(self, tiny_dataset, binning):
        raw = partition_by_date(tiny_dataset, binning=binning)
        prepared = prepare_temporal_transactions(raw)
        assert all(t.n_edges >= 2 for t in prepared)

    def test_components_are_connected(self, tiny_dataset, binning):
        from repro.graphs.components import is_connected

        raw = partition_by_date(tiny_dataset, binning=binning)
        prepared = prepare_temporal_transactions(raw, drop_single_edge=False)
        assert all(is_connected(t.graph) for t in prepared)

    def test_vertex_label_filter(self, small_dataset, binning):
        raw = partition_by_date(small_dataset, binning=binning)
        strict = prepare_temporal_transactions(raw, max_vertex_labels=10, drop_single_edge=False, split_components=False)
        lenient = prepare_temporal_transactions(raw, max_vertex_labels=None, drop_single_edge=False, split_components=False)
        assert len(strict) <= len(lenient)
        for transaction in strict:
            labels = {transaction.graph.vertex_label(v) for v in transaction.graph.vertices()}
            assert len(labels) < 10

    def test_graphs_of_helper(self, tiny_dataset, binning):
        raw = partition_by_date(tiny_dataset, binning=binning)
        graphs = graphs_of(raw)
        assert len(graphs) == len(raw)


class TestSummary:
    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            summarize_transactions([])

    def test_summary_statistics(self, tiny_dataset, binning):
        raw = partition_by_date(tiny_dataset, binning=binning)
        summary = summarize_transactions(raw)
        assert summary.n_transactions == len(raw)
        assert summary.max_edges >= summary.average_edges
        assert summary.n_distinct_vertex_labels <= len(tiny_dataset.locations)
        assert sum(summary.size_histogram.values()) <= summary.n_transactions

    def test_summary_rows_rendering(self, tiny_dataset, binning):
        raw = partition_by_date(tiny_dataset, binning=binning)
        summary = summarize_transactions(raw)
        rows = summary.as_rows()
        assert rows[0][0] == "Number of Input Transactions"
        assert len(rows) >= 7

    def test_generated_dataset_has_seven_edge_labels(self, small_dataset, binning):
        # Table 2 reports seven distinct edge labels (the weight bins).
        raw = partition_by_date(small_dataset, binning=binning)
        summary = summarize_transactions(raw)
        assert summary.n_distinct_edge_labels == 7
