"""Tests for the Weka-style discretiser."""

from __future__ import annotations

import pytest

from repro.mining.discretize import AttributeDiscretization, Discretizer, interval_label


class TestIntervalLabel:
    def test_format(self):
        assert interval_label(1.0, 2.5) == "(1-2.5]"

    def test_infinite_bounds(self):
        assert interval_label(float("-inf"), 5.0) == "(-inf-5]"
        assert interval_label(5.0, float("inf")) == "(5-inf]"


class TestAttributeDiscretization:
    def test_label_for_respects_cut_points(self):
        discretization = AttributeDiscretization(attribute="x", cut_points=[10.0, 20.0])
        assert discretization.label_for(5.0) == "(-inf-10]"
        assert discretization.label_for(15.0) == "(10-20]"
        assert discretization.label_for(25.0) == "(20-inf]"
        assert discretization.n_bins == 3


class TestDiscretizer:
    def _table(self):
        return [
            {"weight": float(value), "mode": "LTL" if value < 50 else "TL"}
            for value in range(0, 100, 10)
        ]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Discretizer(n_bins=1)
        with pytest.raises(ValueError):
            Discretizer(strategy="quantile")

    def test_fit_requires_rows(self):
        with pytest.raises(ValueError):
            Discretizer().fit([])

    def test_transform_requires_fit(self):
        with pytest.raises(RuntimeError):
            Discretizer().transform(self._table())

    def test_numeric_columns_become_interval_strings(self):
        transformed = Discretizer(n_bins=3).fit_transform(self._table())
        assert all(isinstance(row["weight"], str) for row in transformed)

    def test_non_numeric_columns_untouched(self):
        transformed = Discretizer(n_bins=3).fit_transform(self._table())
        assert {row["mode"] for row in transformed} == {"LTL", "TL"}

    def test_equal_width_bin_count(self):
        discretizer = Discretizer(n_bins=4).fit(self._table())
        assert discretizer.discretization_for("weight").n_bins == 4

    def test_equal_frequency_balances_counts(self):
        skewed = [{"x": float(v)} for v in list(range(90)) + [1_000.0] * 10]
        discretizer = Discretizer(n_bins=4, strategy="equal_frequency")
        transformed = discretizer.fit_transform(skewed)
        from collections import Counter

        counts = Counter(row["x"] for row in transformed)
        # No single bin should hold almost everything (unlike equal width on
        # this skewed data, where one bin would hold 90% of rows).
        assert max(counts.values()) <= 50

    def test_constant_column_gets_single_bin(self):
        table = [{"x": 5.0} for _ in range(10)]
        transformed = Discretizer(n_bins=4).fit_transform(table)
        assert len({row["x"] for row in transformed}) == 1

    def test_explicit_attribute_selection(self):
        table = self._table()
        discretizer = Discretizer(n_bins=3, attributes=["weight"])
        transformed = discretizer.fit_transform(table)
        assert isinstance(transformed[0]["weight"], str)

    def test_same_value_maps_to_same_label_across_rows(self):
        table = self._table()
        discretizer = Discretizer(n_bins=5).fit(table)
        first = discretizer.transform([{"weight": 42.0, "mode": "LTL"}])[0]["weight"]
        second = discretizer.transform([{"weight": 42.0, "mode": "TL"}])[0]["weight"]
        assert first == second
