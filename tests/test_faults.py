"""Tests for deterministic fault injection and worker recovery.

Four layers, bottom up:

* **plan grammar** — ``REPRO_FAULTS`` specs parse, roundtrip, and reject
  garbage eagerly (the CLI refuses a bad ``--faults`` before any work);
* **pool failure typing** — a dead, hung, or corrupted worker surfaces
  as :class:`WorkerDeath` (never a bare hang, never a
  :class:`WorkerError`), on both backends, and shutdown always returns
  even for workers that ignore ``close()``;
* **recovery invisibility** — the supervision loop (respawn → rebuild →
  replay → degrade) produces byte-identical mining output under every
  injected fault placement, which is the property the paper's
  MapReduce-style re-execution argument rests on;
* **observability** — recovery is invisible in the *output* but loud in
  telemetry: restarts and replays are counted in level telemetry and
  runtime stats, and are exactly zero on clean runs.
"""

from __future__ import annotations

import os
import random
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.graphs.labeled_graph import LabeledGraph
from repro.mining.fsg.miner import FSGMiner
from repro.runtime import (
    FaultClause,
    FaultPlan,
    ProcessBackend,
    SerialBackend,
    ShardedEngine,
    SimulatedWorkerDeath,
    WorkerDeath,
    resolve_faults,
)
from repro.runtime.faults import CORRUPTED_REPLY, FaultInjector, compile_injector
from repro.scenarios import differential_check, get_scenario


# ----------------------------------------------------------------------
# Corpus helpers (mirrors test_sessions)
# ----------------------------------------------------------------------
def random_transaction(rng: random.Random, name: str) -> LabeledGraph:
    n_vertices = rng.randint(4, 9)
    graph = LabeledGraph(name=name)
    for v in range(n_vertices):
        graph.add_vertex(f"v{v}", rng.choice(["A", "B", "C"]))
    n_edges = rng.randint(n_vertices - 1, n_vertices + 3)
    added = 0
    while added < n_edges:
        a, b = rng.sample(range(n_vertices), 2)
        if graph.has_edge(f"v{a}", f"v{b}"):
            continue
        graph.add_edge(f"v{a}", f"v{b}", rng.choice(["x", "y"]))
        added += 1
    return graph


def random_corpus(seed: int, size: int = 16) -> list[LabeledGraph]:
    rng = random.Random(seed)
    return [random_transaction(rng, f"t{i}") for i in range(size)]


def mining_signature(result):
    return sorted(
        (
            entry.pattern.n_edges,
            tuple(sorted(entry.supporting_transactions)),
        )
        for entry in result.patterns
    )


def mine_sharded(corpus, *, faults=None, backend="serial", **engine_kwargs):
    runtime = ShardedEngine(shards=2, backend=backend, faults=faults, **engine_kwargs)
    try:
        mined = FSGMiner(min_support=3, max_edges=3, runtime=runtime).mine(corpus)
        stats = runtime.stats()
    finally:
        runtime.close()
    return mined, stats


# ----------------------------------------------------------------------
# Plan grammar
# ----------------------------------------------------------------------
class TestFaultPlanGrammar:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "kill:shard=1,level=3; hang:shard=0,op=slevel; "
            "corrupt-reply:shard=2,nth=4,times=2,sticky"
        )
        assert len(plan.clauses) == 3
        assert plan.clauses[0] == FaultClause(kind="kill", shard=1, level=3)
        assert plan.clauses[1] == FaultClause(kind="hang", shard=0, op="slevel")
        assert plan.clauses[2] == FaultClause(
            kind="corrupt-reply", shard=2, nth=4, times=2, sticky=True
        )

    def test_spec_roundtrip(self):
        spec = "kill:shard=1,level=2; hang:op=slevel,times=3,sticky; corrupt-reply"
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse(" ; ; ")
        assert FaultPlan.parse("kill")

    @pytest.mark.parametrize(
        "bad",
        [
            "explode",                  # unknown kind
            "kill:when=later",          # unknown key
            "kill:shard=one",           # non-integer
            "kill:level=0",             # out of range (1-based)
            "kill:times=0",             # empty fire budget
            "kill:shard=-1",            # negative shard
            "kill:sticky=perhaps",      # non-boolean
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_sticky_only_and_for_shard_filters(self):
        plan = FaultPlan.parse("kill:shard=0; hang:shard=1,sticky; corrupt-reply")
        assert plan.sticky_only().to_spec() == "hang:shard=1,sticky"
        assert plan.for_shard(1).to_spec() == "hang:shard=1,sticky; corrupt-reply"

    def test_resolve_faults_normalises(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert resolve_faults(None) is None
        assert resolve_faults("") is None
        plan = resolve_faults("kill:shard=1")
        assert isinstance(plan, FaultPlan) and plan
        assert resolve_faults(plan) is plan
        monkeypatch.setenv("REPRO_FAULTS", "hang:shard=0")
        assert resolve_faults(None) == FaultPlan.parse("hang:shard=0")
        with pytest.raises(ValueError):
            resolve_faults(42)

    def test_cli_rejects_bad_plan_eagerly(self, capsys):
        exit_code = cli_main(["scenarios", "run", "dense-uniform", "--faults", "explode"])
        assert exit_code == 2
        assert "invalid --faults plan" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Injector mechanics (counters, filters, determinism)
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_compile_skips_plans_that_cannot_fire(self):
        assert compile_injector(None, shard=0, inline=True) is None
        assert compile_injector("", shard=0, inline=True) is None
        # A shard-1-only clause compiles to nothing on shard 0.
        assert compile_injector("kill:shard=1", shard=0, inline=True) is None
        assert compile_injector("kill:shard=1", shard=1, inline=True) is not None

    def test_nth_counts_matching_messages_only(self):
        injector = FaultInjector(
            FaultPlan.parse("kill:op=slevel,nth=2"), shard=0, inline=True
        )
        injector.on_message("add")      # not an slevel: no match consumed
        injector.on_message("slevel")   # match 1 of 2
        with pytest.raises(SimulatedWorkerDeath):
            injector.on_message("slevel")

    def test_level_filter_counts_level_ops(self):
        injector = FaultInjector(FaultPlan.parse("kill:level=2"), shard=0, inline=True)
        injector.on_message("labels")
        injector.on_message("slevel")   # level 1
        with pytest.raises(SimulatedWorkerDeath):
            injector.on_message("slevel")  # level 2

    def test_times_budget_is_exhausted(self):
        injector = FaultInjector(
            FaultPlan.parse("corrupt-reply:op=stats,times=2"), shard=0, inline=True
        )
        assert injector.on_reply("stats", {"n": 1}) == CORRUPTED_REPLY
        assert injector.on_reply("stats", {"n": 1}) == CORRUPTED_REPLY
        assert injector.on_reply("stats", {"n": 1}) == {"n": 1}
        assert injector.on_reply("add", [0]) == [0]  # op filter still holds


# ----------------------------------------------------------------------
# Pool-level failure typing
# ----------------------------------------------------------------------
class _DieOnGo:
    """Handler that simulates its worker's death on a ("go",) message."""

    def __call__(self, message):
        if message[0] == "go":
            raise SimulatedWorkerDeath("scripted death")
        return ("ok", message[0])


class _Echo:
    def __call__(self, message):
        return ("echo",) + tuple(message)


class _Sleeper:
    """Hangs on any message; killable by SIGTERM (respawn reaps it fast)."""

    def __call__(self, message):
        time.sleep(60)


class _StubbornSleeper:
    """Ignores SIGTERM and hangs: only close()'s SIGKILL escalation wins."""

    def __call__(self, message):
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        time.sleep(60)


class TestPoolFailureTyping:
    def test_serial_simulated_death_marks_slot_dead_until_respawn(self):
        pool = SerialBackend(2, _DieOnGo)
        pool.send(0, ("go",))
        pool.send(0, ("after",))  # queued behind the death: also dead
        pool.send(1, ("fine",))
        with pytest.raises(WorkerDeath) as death:
            pool.recv(0)
        assert death.value.worker == 0
        assert death.value.last_op == "go"
        assert not death.value.hung
        with pytest.raises(WorkerDeath):
            pool.recv(0)
        assert pool.recv(1) == ("ok", "fine")  # the other slot is untouched
        pool.respawn(0)
        assert pool.call(0, ("fine",)) == ("ok", "fine")
        pool.close()

    def test_process_recv_raises_death_on_killed_worker(self):
        pool = ProcessBackend(1, _Echo)
        try:
            assert pool.call(0, ("ping",)) == ("echo", "ping")
            os.kill(pool.worker_pid(0), signal.SIGKILL)
            pool.send(0, ("after-death",))
            with pytest.raises(WorkerDeath) as death:
                pool.recv(0)
            assert death.value.worker == 0
            assert death.value.last_op == "after-death"
            assert not death.value.hung
            pool.respawn(0)
            assert pool.call(0, ("again",)) == ("echo", "again")
        finally:
            pool.close()

    def test_process_recv_deadline_flags_hung_worker(self):
        pool = ProcessBackend(1, _Sleeper, timeout=0.5)
        try:
            pool.send(0, ("anything",))
            started = time.monotonic()
            with pytest.raises(WorkerDeath) as death:
                pool.recv(0)
            assert death.value.hung
            assert "0.5" in str(death.value)
            assert time.monotonic() - started < 10  # deadline, not the 60s sleep
            pool.respawn(0)  # reaps the sleeper so close() below is instant
        finally:
            pool.close()

    def test_degraded_slot_serves_inline(self):
        pool = ProcessBackend(1, _Echo)
        try:
            pool.degrade(0)
            assert pool.is_degraded(0)
            assert pool.worker_pid(0) is None
            assert pool.call(0, ("inline",)) == ("echo", "inline")
        finally:
            pool.close()

    @pytest.mark.slow
    def test_close_escalates_to_kill_for_stop_ignoring_worker(self):
        # Regression: close() used to block forever on a worker wedged in
        # its handler.  A SIGTERM-immune sleeper forces the full
        # escalation (STOP ignored -> terminate ignored -> SIGKILL).
        pool = ProcessBackend(1, _StubbornSleeper)
        pool.send(0, ("wedge",))
        time.sleep(0.3)  # let the worker install its SIGTERM handler
        started = time.monotonic()
        pool.close()
        assert time.monotonic() - started < 30


# ----------------------------------------------------------------------
# Recovery invisibility: identical output under injected faults
# ----------------------------------------------------------------------
class TestRecoveryEquivalence:
    @pytest.fixture(scope="class")
    def baseline(self):
        corpus = random_corpus(113)
        return corpus, mining_signature(FSGMiner(min_support=3, max_edges=3).mine(corpus))

    @pytest.mark.parametrize(
        "spec",
        [
            "kill:shard=1,level=2",
            "kill:shard=0,op=slevel",
            "kill:shard=1,op=add",
            "hang:shard=0,level=1",
            "corrupt-reply:shard=0,nth=3",
            "kill:shard=1,level=1; kill:shard=0,level=3",
        ],
    )
    def test_serial_backend_recovers_invisibly(self, baseline, spec):
        corpus, reference = baseline
        mined, stats = mine_sharded(corpus, faults=spec)
        assert mining_signature(mined) == reference
        assert stats["worker_restarts"] >= 1

    def test_sticky_exhaustion_degrades_and_still_matches(self, baseline):
        corpus, reference = baseline
        mined, stats = mine_sharded(
            corpus,
            faults="kill:shard=1,op=slevel,times=99,sticky",
            recovery_backoff=0.0,
        )
        assert mining_signature(mined) == reference
        assert stats["worker_degradations"] >= 1
        assert stats["worker_restarts"] >= 1

    @settings(max_examples=10, deadline=None)
    @given(
        kind=st.sampled_from(["kill", "hang", "corrupt-reply"]),
        shard=st.integers(min_value=0, max_value=1),
        level=st.integers(min_value=1, max_value=3),
    )
    def test_any_single_fault_placement_is_invisible(self, kind, shard, level):
        # The property behind the chaos gate: wherever one fault lands in
        # the (kind, shard, level) space, mining output is unchanged.
        # (A placement past the end of the run simply never fires.)
        corpus = random_corpus(127, size=12)
        reference = mining_signature(FSGMiner(min_support=2, max_edges=2).mine(corpus))
        spec = f"{kind}:shard={shard},level={level}"
        runtime = ShardedEngine(shards=2, backend="serial", faults=spec)
        try:
            mined = FSGMiner(min_support=2, max_edges=2, runtime=runtime).mine(corpus)
        finally:
            runtime.close()
        assert mining_signature(mined) == reference

    @pytest.mark.parametrize("protocol", ["delta", "full"])
    def test_process_backend_sigkill_mid_level(self, baseline, protocol):
        corpus, reference = baseline
        mined, stats = mine_sharded(
            corpus,
            faults="kill:shard=1,level=2",
            backend="process",
            session_protocol=protocol,
        )
        assert mining_signature(mined) == reference
        assert stats["worker_restarts"] >= 1

    def test_process_backend_hang_detected_and_recovered(self, baseline):
        corpus, reference = baseline
        started = time.monotonic()
        mined, stats = mine_sharded(
            corpus,
            faults="hang:shard=0,op=slevel",
            backend="process",
            worker_timeout=1.0,
        )
        assert mining_signature(mined) == reference
        assert stats["worker_restarts"] >= 1
        assert time.monotonic() - started < 30

    def test_process_backend_corrupt_reply_recovered(self, baseline):
        corpus, reference = baseline
        mined, stats = mine_sharded(
            corpus,
            faults="corrupt-reply:shard=1,nth=4",
            backend="process",
        )
        assert mining_signature(mined) == reference
        assert stats["worker_restarts"] >= 1

    def test_golden_scenario_digest_survives_kill(self):
        report = differential_check(
            get_scenario("dense-uniform"),
            shard_counts=(2,),
            backends=("serial",),
            check_oracle=False,
            faults="kill:shard=1,level=2; corrupt-reply:shard=0,nth=4",
        )
        assert report.ok, report.failures

    @pytest.mark.slow
    @pytest.mark.parametrize("name", ["sparse-chains", "label-skew"])
    def test_golden_scenario_digest_survives_process_kill(self, name):
        report = differential_check(
            get_scenario(name),
            shard_counts=(2,),
            backends=("process",),
            check_oracle=False,
            faults="kill:shard=1,level=2",
        )
        assert report.ok, report.failures

    @pytest.mark.slow
    def test_golden_scenario_digest_survives_process_hang(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_TIMEOUT", "2")
        report = differential_check(
            get_scenario("dense-uniform"),
            shard_counts=(2,),
            backends=("process",),
            check_oracle=False,
            faults="hang:shard=0,level=2",
        )
        assert report.ok, report.failures


# ----------------------------------------------------------------------
# Observability: loud in telemetry, silent in output
# ----------------------------------------------------------------------
class TestRecoveryObservability:
    def test_recovery_counters_reach_telemetry_and_stats(self):
        corpus = random_corpus(131)
        mined, stats = mine_sharded(corpus, faults="kill:shard=1,level=2")
        assert stats["worker_restarts"] >= 1
        assert stats["level_replays"] >= 1
        totals = mined.session_totals()
        assert totals["worker_restarts"] >= 1
        assert totals["level_replays"] >= 1
        # The replayed level is attributed to the level it happened on.
        assert any(
            counters["level_replays"] >= 1 for counters in mined.level_telemetry.values()
        )

    def test_clean_run_counts_zero_and_arms_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        corpus = random_corpus(137, size=10)
        runtime = ShardedEngine(shards=2, backend="serial")
        try:
            assert runtime.faults is None
            # Zero-overhead null pattern: no injector object exists on any
            # worker, so the per-message cost is a single `is None` check.
            assert all(worker.faults is None for worker in runtime._pool._handlers)
            mined = FSGMiner(min_support=3, max_edges=3, runtime=runtime).mine(corpus)
            stats = runtime.stats()
        finally:
            runtime.close()
        assert stats["worker_restarts"] == 0
        assert stats["level_replays"] == 0
        assert stats["worker_degradations"] == 0
        assert mined.session_totals()["worker_restarts"] == 0

    def test_recovery_counts_snapshot(self):
        corpus = random_corpus(139, size=10)
        runtime = ShardedEngine(shards=2, backend="serial", faults="kill:shard=0,level=1")
        try:
            FSGMiner(min_support=3, max_edges=2, runtime=runtime).mine(corpus)
            counts = runtime.recovery_counts
            counts["worker_restarts"] = -1  # a copy, not the live dict
            assert runtime.recovery_counts["worker_restarts"] >= 1
        finally:
            runtime.close()
