"""Tests for table / figure / comparison rendering."""

from __future__ import annotations

import pytest

from repro.core.results import ExperimentReport
from repro.datasets.schema import TransactionDataset
from repro.datasets.statistics import compute_statistics
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.motifs import hub_and_spoke
from repro.mining.em_clustering import ClusterSummary
from repro.partitioning.temporal import partition_by_date, summarize_transactions
from repro.reporting.comparison import agreement_summary, render_comparison, render_comparisons
from repro.reporting.figures import render_bar_chart, render_cluster_summaries, render_pattern
from repro.reporting.tables import (
    render_dataset_description,
    render_statistics_table,
    render_temporal_summary,
)


class TestTables:
    def test_dataset_description_lists_all_attributes(self):
        text = render_dataset_description()
        assert "GROSS_WEIGHT" in text
        assert "Truckload or Less than Truckload." in text
        assert text.count("\n") >= 12

    def test_statistics_table(self, tiny_dataset):
        text = render_statistics_table(compute_statistics(tiny_dataset))
        assert "Distinct OD pairs" in text
        assert "Mode LTL" in text

    def test_temporal_summary_table(self, tiny_dataset, binning):
        summary = summarize_transactions(partition_by_date(tiny_dataset, binning=binning))
        text = render_temporal_summary(summary)
        assert "Number of Input Transactions" in text
        assert "Graph Transactions with Size between" in text


class TestFigures:
    def test_render_pattern_shows_edges_and_shape(self):
        text = render_pattern(hub_and_spoke(3, edge_labels=[1, 2, 3]), title="Figure 2 style")
        assert "Figure 2 style" in text
        assert "shape=hub_and_spoke" in text
        assert text.count("-[") == 3

    def test_render_cluster_summaries(self):
        summaries = [
            ClusterSummary(index=0, size=3, means={"TOTAL_DISTANCE": 3100.0, "MOVE_TRANSIT_HOURS": 17.0}, std_devs={}),
            ClusterSummary(index=1, size=100, means={"TOTAL_DISTANCE": 240.0, "MOVE_TRANSIT_HOURS": 30.0}, std_devs={}),
        ]
        text = render_cluster_summaries(summaries)
        assert "3100.0" in text
        assert "cluster" in text

    def test_render_bar_chart(self):
        text = render_bar_chart({"c0": 10.0, "c1": 40.0}, title="distance")
        assert "distance" in text
        assert "#" in text

    def test_render_bar_chart_empty(self):
        assert "(no data)" in render_bar_chart({})

    def test_render_bar_chart_all_zero_values(self):
        # A zero maximum must not divide by zero; bars are just empty.
        text = render_bar_chart({"c0": 0.0, "c1": 0.0})
        assert "0.0" in text

    def test_render_pattern_empty_graph(self):
        text = render_pattern(LabeledGraph(), title="empty")
        assert "0 vertices, 0 edges" in text
        assert "shape=other" in text

    def test_render_cluster_summaries_empty_outcome_table(self):
        text = render_cluster_summaries([])
        # Header row only: no cluster lines, no crash.
        assert "cluster" in text
        assert text.count("\n") == 2

    def test_render_cluster_summaries_missing_attribute_is_nan(self):
        summaries = [ClusterSummary(index=0, size=1, means={}, std_devs={})]
        text = render_cluster_summaries(summaries, attributes=("TOTAL_DISTANCE",))
        assert "nan" in text


class TestEmptyInputs:
    """Zero-transaction datasets and empty outcome tables fail loudly, not weirdly."""

    def test_statistics_of_empty_dataset_raises(self):
        with pytest.raises(ValueError, match="empty dataset"):
            compute_statistics(TransactionDataset(name="empty"))

    def test_temporal_summary_of_empty_transactions_raises(self):
        with pytest.raises(ValueError, match="empty transaction list"):
            summarize_transactions([])

    def test_empty_dataset_accessors_are_empty(self):
        dataset = TransactionDataset(name="empty")
        assert len(dataset) == 0
        assert dataset.locations == set()
        assert dataset.od_pairs == set()
        assert dataset.to_records() == []
        with pytest.raises(ValueError):
            dataset.date_range()

    def test_filter_to_empty_keeps_name_and_raises_on_stats(self, tiny_dataset):
        empty = tiny_dataset.filter(lambda txn: False)
        assert empty.name == tiny_dataset.name
        assert len(empty) == 0
        with pytest.raises(ValueError):
            compute_statistics(empty)

    def test_render_comparison_with_no_metrics(self):
        report = ExperimentReport(
            experiment_id="E0", description="empty", paper={}, measured={}
        )
        text = render_comparison(report)
        assert "empty" in text
        assert agreement_summary(report) == {}

    def test_render_comparisons_of_nothing_is_empty_string(self):
        assert render_comparisons([]) == ""


class TestComparison:
    def _report(self) -> ExperimentReport:
        return ExperimentReport(
            experiment_id="T9",
            description="toy experiment",
            paper={"claim": True, "count": 10},
            measured={"claim": True, "count": 12, "extra": "x"},
        )

    def test_render_comparison_contains_all_metrics(self):
        text = render_comparison(self._report())
        assert "toy experiment" in text
        assert "claim" in text and "count" in text and "extra" in text

    def test_render_comparisons_joins_reports(self):
        text = render_comparisons([self._report(), self._report()])
        assert text.count("toy experiment") == 2

    def test_agreement_summary_only_checks_booleans(self):
        agreement = agreement_summary(self._report())
        assert agreement == {"claim": True}

    def test_comparison_rows_union_of_keys(self):
        rows = self._report().comparison_rows()
        assert [row[0] for row in rows] == ["claim", "count", "extra"]

    def test_to_text(self):
        assert "toy experiment" in self._report().to_text()
