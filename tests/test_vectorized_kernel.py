"""Differential tests: the vectorized columnar kernel against its oracles.

The numpy kernel (:mod:`repro.graphs.vectorized`) answers the same
incremental support batches as the pure-python path in
:meth:`MatchEngine.support_with_embeddings`, so these tests hold the two
kernels — and the legacy dict-of-dicts matcher underneath both — to
exact agreement on randomized multigraph corpora, plus the edge cases
arrays make easy to get wrong: a capped anchor store, empty and
singleton supports, tid spaces crossing the 64-bit word boundary, and
columnar views outliving ``release_transactions`` / transaction
mutation.

What is *not* asserted: mid-scan abort timing, the partial tid lists of
aborted (infrequent) tasks, anchor-store contents, or stats counters —
the vectorized kernel schedules scans differently by design (see the
module docstring of :mod:`repro.graphs.vectorized`); only verdicts and
frequent-pattern supports are contractual.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.graphs.compact import CompactGraph, LabelTable  # noqa: E402
from repro.graphs.engine import KERNELS, EmbeddingTask, MatchEngine, resolve_kernel  # noqa: E402
from repro.graphs.isomorphism import legacy_has_embedding  # noqa: E402
from repro.graphs.labeled_graph import LabeledGraph, LabeledMultiGraph  # noqa: E402
from repro.mining.fsg.miner import FSGMiner  # noqa: E402
from repro.runtime import bits_of, bits_to_buffer, tids_from_buffer, tids_of  # noqa: E402


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def multigraph_corpora(draw, max_transactions: int = 7):
    """A small corpus of simplified random multigraphs."""
    n_transactions = draw(st.integers(min_value=1, max_value=max_transactions))
    corpus = []
    for index in range(n_transactions):
        n_vertices = draw(st.integers(min_value=2, max_value=5))
        multigraph = LabeledMultiGraph(name=f"t{index}")
        for v in range(n_vertices):
            multigraph.add_vertex(f"v{v}", draw(st.sampled_from(["port", "yard"])))
        n_lanes = draw(st.integers(min_value=1, max_value=8))
        for _ in range(n_lanes):
            source = draw(st.integers(min_value=0, max_value=n_vertices - 1))
            target = draw(st.integers(min_value=0, max_value=n_vertices - 1))
            if source == target:
                continue
            for _ in range(draw(st.integers(min_value=1, max_value=3))):
                multigraph.add_edge(f"v{source}", f"v{target}", draw(st.sampled_from(["am", "pm"])))
        corpus.append(multigraph.simplify())
    return corpus


def _chain(name: str, labels: list[str], edge_label: str = "go") -> LabeledGraph:
    graph = LabeledGraph(name=name)
    for index, label in enumerate(labels):
        graph.add_vertex(f"v{index}", label)
    for index in range(len(labels) - 1):
        graph.add_edge(f"v{index}", f"v{index + 1}", edge_label)
    return graph


def _signature(result):
    return sorted(
        (
            entry.pattern.n_vertices,
            entry.pattern.n_edges,
            tuple(sorted(entry.supporting_transactions)),
        )
        for entry in result.patterns
    )


def _mine(corpus, kernel: str, anchor_cap: int = 8, min_support: int = 2, max_edges: int = 3):
    engine = MatchEngine(kernel=kernel, anchor_cap=anchor_cap)
    miner = FSGMiner(
        min_support=min_support,
        max_edges=max_edges,
        engine=engine,
        use_embedding_store=True,
    )
    return miner.mine(corpus)


# ----------------------------------------------------------------------
# Kernel resolution
# ----------------------------------------------------------------------
def test_resolve_kernel_defaults_and_env(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    assert resolve_kernel(None) == "python"
    monkeypatch.setenv("REPRO_KERNEL", "vectorized")
    assert resolve_kernel(None) == "vectorized"
    assert resolve_kernel("python") == "python"
    with pytest.raises(ValueError):
        resolve_kernel("simd")
    assert set(KERNELS) == {"python", "vectorized"}


def test_engine_records_resolved_kernel(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    assert MatchEngine().kernel == "python"
    assert MatchEngine(kernel="vectorized").kernel == "vectorized"
    monkeypatch.setenv("REPRO_KERNEL", "vectorized")
    assert MatchEngine().kernel == "vectorized"
    assert MatchEngine(kernel="python").kernel == "python"


# ----------------------------------------------------------------------
# Differential properties: vectorized == python == legacy
# ----------------------------------------------------------------------
@given(corpus=multigraph_corpora())
@settings(max_examples=25, deadline=None)
def test_mining_differential_on_random_multigraph_corpora(corpus):
    """Full level-wise mining agrees across kernels and the legacy matcher."""
    python_result = _mine(corpus, "python")
    vectorized_result = _mine(corpus, "vectorized")
    assert _signature(python_result) == _signature(vectorized_result)
    for entry in vectorized_result.patterns:
        oracle = frozenset(
            tid
            for tid, transaction in enumerate(corpus)
            if legacy_has_embedding(entry.pattern, transaction)
        )
        assert entry.supporting_transactions == oracle


@given(corpus=multigraph_corpora(), anchor_cap=st.integers(min_value=1, max_value=3))
@settings(max_examples=15, deadline=None)
def test_tiny_anchor_cap_never_changes_verdicts(corpus, anchor_cap):
    """A capped anchor store forces fallback paths; output must not move."""
    reference = _signature(_mine(corpus, "python", anchor_cap=8))
    assert _signature(_mine(corpus, "vectorized", anchor_cap=anchor_cap)) == reference
    assert _signature(_mine(corpus, "python", anchor_cap=anchor_cap)) == reference


@given(corpus=multigraph_corpora(max_transactions=4))
@settings(max_examples=15, deadline=None)
def test_task_level_differential_with_abort(corpus):
    """Raw support_with_embeddings batches agree task by task.

    Without ``abort_below`` the tid lists must match exactly; with it,
    only the frequent verdict (and the full list of frequent tasks) is
    contractual, because the kernels abort at different scan points.
    """
    patterns = [
        _chain("p1", ["port", "yard"]),
        _chain("p2", ["port", "yard", "port"]),
        _chain("p3", ["yard", "yard"], edge_label="pm"),
    ]

    def run(kernel, abort_below=None):
        engine = MatchEngine(kernel=kernel)
        tids = engine.add_transactions(corpus)
        tasks = [
            EmbeddingTask(pattern=pattern, tids=tids, uid=("p", index), abort_below=abort_below)
            for index, pattern in enumerate(patterns)
        ]
        return engine.support_with_embeddings(tasks)

    exact_python = run("python")
    exact_vectorized = run("vectorized")
    assert exact_python == exact_vectorized
    for pattern, hits in zip(patterns, exact_vectorized):
        oracle = [
            tid
            for tid, transaction in enumerate(corpus)
            if legacy_has_embedding(pattern, transaction)
        ]
        assert hits == oracle

    threshold = 2
    aborted_python = run("python", abort_below=threshold)
    aborted_vectorized = run("vectorized", abort_below=threshold)
    for exact, from_python, from_vectorized in zip(
        exact_python, aborted_python, aborted_vectorized
    ):
        if len(exact) >= threshold:
            assert from_python == exact
            assert from_vectorized == exact
        else:
            assert len(from_python) < threshold
            assert len(from_vectorized) < threshold


# ----------------------------------------------------------------------
# Edge cases: empty / singleton supports, tids across word boundaries
# ----------------------------------------------------------------------
def test_empty_and_singleton_supports():
    corpus = [_chain("only", ["port", "yard"])]
    absent = _chain("absent", ["dock", "dock"])
    present = _chain("present", ["port", "yard"])
    for kernel in KERNELS:
        engine = MatchEngine(kernel=kernel)
        tids = engine.add_transactions(corpus)
        hits = engine.support_with_embeddings(
            [
                EmbeddingTask(pattern=absent, tids=tids, uid="absent"),
                EmbeddingTask(pattern=present, tids=tids, uid="present"),
                EmbeddingTask(pattern=present, tids=[], uid="no-tids"),
            ]
        )
        assert hits == [[], [0], []]


def test_supports_crossing_word_boundaries():
    """Corpora with > 64 transactions exercise multi-word tid spaces."""
    rng = random.Random(64)
    corpus = []
    for index in range(70):
        labels = ["port", "yard"] if rng.random() < 0.5 else ["yard", "port"]
        corpus.append(_chain(f"t{index}", labels))
    pattern = _chain("p", ["port", "yard"])
    oracle = [
        tid for tid, transaction in enumerate(corpus) if legacy_has_embedding(pattern, transaction)
    ]
    assert any(tid >= 64 for tid in oracle)
    for kernel in KERNELS:
        engine = MatchEngine(kernel=kernel)
        tids = engine.add_transactions(corpus)
        (hits,) = engine.support_with_embeddings(
            [EmbeddingTask(pattern=pattern, tids=tids, uid="p")]
        )
        assert hits == oracle


@given(tids=st.sets(st.integers(min_value=0, max_value=300), max_size=40))
@settings(max_examples=40, deadline=None)
def test_bitset_buffer_roundtrip(tids):
    """Flat little-endian buffers round-trip tid sets across word edges."""
    ordered = sorted(tids)
    bits = bits_of(ordered)
    buffer = bits_to_buffer(bits)
    assert tids_from_buffer(buffer) == ordered
    assert tids_of(bits) == ordered


# ----------------------------------------------------------------------
# Invalidation: released transactions and mutated graphs
# ----------------------------------------------------------------------
def test_release_transactions_invalidates_columns():
    corpus = [_chain(f"t{index}", ["port", "yard", "port"]) for index in range(4)]
    pattern = _chain("p", ["port", "yard"])
    for kernel in KERNELS:
        engine = MatchEngine(kernel=kernel)
        tids = engine.add_transactions(corpus)
        (before,) = engine.support_with_embeddings(
            [EmbeddingTask(pattern=pattern, tids=tids, uid="p")]
        )
        assert before == tids
        engine.release_transactions([1, 2])
        # A released tid raises; the survivors still answer correctly
        # from rebuilt columnar state, not stale arrays.
        with pytest.raises(KeyError):
            engine.support_with_embeddings(
                [EmbeddingTask(pattern=pattern, tids=[1], uid="p2")]
            )
        (after,) = engine.support_with_embeddings(
            [EmbeddingTask(pattern=pattern, tids=[0, 3], uid="p3")]
        )
        assert after == [0, 3]


def test_transaction_mutation_invalidates_columns():
    """A version bump must refresh cached columns and stored anchors."""
    for kernel in KERNELS:
        engine = MatchEngine(kernel=kernel)
        transaction = _chain("t0", ["port", "yard"])
        tids = engine.add_transactions([transaction])
        grown = _chain("p", ["port", "yard", "port"])
        (before,) = engine.support_with_embeddings(
            [EmbeddingTask(pattern=grown, tids=tids, uid="grown")]
        )
        assert before == []
        transaction.add_vertex("v2", "port")
        transaction.add_edge("v1", "v2", "go")
        (after,) = engine.support_with_embeddings(
            [EmbeddingTask(pattern=grown, tids=tids, uid="grown2")]
        )
        assert after == [0]


# ----------------------------------------------------------------------
# Incremental compact derivation
# ----------------------------------------------------------------------
@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50, deadline=None)
def test_compact_extended_matches_from_labeled(seed):
    """``CompactGraph.extended`` is field-for-field ``from_labeled``.

    Candidate generation derives every child compact incrementally; the
    columnar views and anchor enumeration inherit the adjacency tuple
    order, so the equality must cover ordering, not just set content.
    """
    rng = random.Random(seed)
    n_vertices = rng.randint(2, 6)
    parent = LabeledGraph(name="parent")
    for index in range(n_vertices):
        parent.add_vertex(f"v{index}", f"L{rng.randrange(3)}")
    for _ in range(rng.randint(1, 8)):
        source, target = rng.sample(range(n_vertices), 2)
        if not parent.has_edge(f"v{source}", f"v{target}"):
            parent.add_edge(f"v{source}", f"v{target}", rng.randrange(3))

    child = parent.copy(name="child")
    if rng.random() < 0.5:
        # Forward extension: edge to a brand-new appended vertex.
        new_label = f"L{rng.randrange(3)}"
        child.add_vertex("vnew", new_label)
        anchor = rng.randrange(n_vertices)
        if rng.random() < 0.5:
            child.add_edge(f"v{anchor}", "vnew", rng.randrange(3))
            source_pos, target_pos = anchor, n_vertices
        else:
            child.add_edge("vnew", f"v{anchor}", rng.randrange(3))
            source_pos, target_pos = n_vertices, anchor
        edge_label = child.edge_label(
            "vnew" if source_pos == n_vertices else f"v{source_pos}",
            "vnew" if target_pos == n_vertices else f"v{target_pos}",
        )
    else:
        # Backward extension: edge between two existing vertices.
        missing = [
            (source, target)
            for source in range(n_vertices)
            for target in range(n_vertices)
            if source != target and not parent.has_edge(f"v{source}", f"v{target}")
        ]
        if not missing:
            return
        source_pos, target_pos = rng.choice(missing)
        edge_label = rng.randrange(3)
        child.add_edge(f"v{source_pos}", f"v{target_pos}", edge_label)
        new_label = None

    table = LabelTable()
    parent_compact = CompactGraph.from_labeled(parent, table)
    derived = parent_compact.extended(source_pos, target_pos, edge_label, new_label, child)
    rebuilt = CompactGraph.from_labeled(child, table)
    assert derived.name == rebuilt.name
    assert derived.n_vertices == rebuilt.n_vertices
    assert derived.n_edges == rebuilt.n_edges
    assert derived.vertex_labels == rebuilt.vertex_labels
    assert derived.vertex_ids == rebuilt.vertex_ids
    assert derived.out_adj == rebuilt.out_adj
    assert derived.in_adj == rebuilt.in_adj
    # Dict *order* matters: downstream iteration follows insertion order.
    assert list(derived.edge_label_of.items()) == list(rebuilt.edge_label_of.items())
