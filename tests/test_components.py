"""Tests for connected components and graph truncation utilities."""

from __future__ import annotations

import pytest

from repro.graphs.components import (
    connected_components,
    induced_subgraph,
    is_connected,
    largest_component,
    remove_orphan_vertices,
    truncate_to_vertices,
)
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.motifs import chain, hub_and_spoke


def _two_component_graph() -> LabeledGraph:
    graph = LabeledGraph(name="two")
    graph.add_edge("a", "b", 1)
    graph.add_edge("b", "c", 1)
    graph.add_edge("x", "y", 2)
    for vertex in graph.vertices():
        graph.add_vertex(vertex, "place")
    return graph


class TestConnectedComponents:
    def test_component_count(self):
        components = connected_components(_two_component_graph())
        assert len(components) == 2

    def test_components_sorted_largest_first(self):
        components = connected_components(_two_component_graph())
        assert components[0].n_edges >= components[1].n_edges

    def test_direction_ignored_for_connectivity(self):
        graph = LabeledGraph()
        graph.add_edge("a", "b", 1)
        graph.add_edge("c", "b", 1)
        assert len(connected_components(graph)) == 1

    def test_largest_component(self):
        largest = largest_component(_two_component_graph())
        assert largest.n_edges == 2

    def test_largest_component_of_empty_graph(self):
        assert largest_component(LabeledGraph()).n_vertices == 0

    def test_is_connected(self):
        assert is_connected(chain(3))
        assert not is_connected(_two_component_graph())
        assert is_connected(LabeledGraph())


class TestOrphanRemoval:
    def test_removes_only_isolated_vertices(self):
        graph = chain(2)
        graph.add_vertex("isolated", "place")
        removed = remove_orphan_vertices(graph)
        assert removed == 1
        assert not graph.has_vertex("isolated")
        assert graph.n_vertices == 3

    def test_no_orphans_is_a_no_op(self):
        graph = chain(2)
        assert remove_orphan_vertices(graph) == 0


class TestTruncation:
    def test_truncate_keeps_requested_vertex_count(self):
        star = hub_and_spoke(6)
        truncated = truncate_to_vertices(star, 3)
        assert truncated.n_vertices == 3

    def test_degree_order_keeps_hub(self):
        star = hub_and_spoke(6)
        truncated = truncate_to_vertices(star, 3, order="degree")
        assert truncated.has_vertex("hs_hub")
        assert truncated.n_edges == 2

    def test_insertion_order(self):
        star = hub_and_spoke(6)
        truncated = truncate_to_vertices(star, 2, order="insertion")
        assert truncated.has_vertex("hs_hub")

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            truncate_to_vertices(chain(2), 0)
        with pytest.raises(ValueError):
            truncate_to_vertices(chain(2), 2, order="random")

    def test_induced_subgraph_alias(self):
        graph = chain(3)
        sub = induced_subgraph(graph, ["ch_0", "ch_1"])
        assert sub.n_edges == 1
