"""Tests for the calibrated synthetic dataset generator."""

from __future__ import annotations

import pytest

from repro.datasets.generator import (
    GeneratorConfig,
    TransportationDataGenerator,
    generate_dataset,
)
from repro.datasets.schema import TransMode
from repro.datasets.statistics import compute_statistics


class TestGeneratorConfig:
    def test_scaled_preserves_minimums(self):
        config = GeneratorConfig(scale=0.001).scaled()
        assert config.n_transactions >= 200
        assert config.n_hubs >= 3

    def test_scaled_is_identity_at_full_scale(self):
        config = GeneratorConfig(scale=1.0)
        assert config.scaled() is config

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(scale=0.0).scaled()

    def test_scaled_counts_roughly_proportional(self):
        config = GeneratorConfig(scale=0.1).scaled()
        assert config.n_transactions == pytest.approx(9_829, rel=0.01)
        assert config.n_od_pairs == pytest.approx(2_090, rel=0.01)


class TestGeneratedDataset:
    def test_reproducible_for_same_seed(self):
        first = generate_dataset(scale=0.01, seed=5)
        second = generate_dataset(scale=0.01, seed=5)
        assert [t.as_record() for t in first] == [t.as_record() for t in second]

    def test_different_seeds_differ(self):
        first = generate_dataset(scale=0.01, seed=5)
        second = generate_dataset(scale=0.01, seed=6)
        assert [t.as_record() for t in first] != [t.as_record() for t in second]

    def test_transaction_count_close_to_target(self, small_dataset):
        target = GeneratorConfig(scale=0.02).scaled().n_transactions
        assert len(small_dataset) == pytest.approx(target, rel=0.02)

    def test_od_pair_count_close_to_target(self, small_dataset):
        target = GeneratorConfig(scale=0.02).scaled().n_od_pairs
        assert len(small_dataset.od_pairs) == pytest.approx(target, rel=0.15)

    def test_both_modes_present(self, small_dataset):
        modes = {txn.trans_mode for txn in small_dataset}
        assert modes == {TransMode.TRUCKLOAD, TransMode.LESS_THAN_TRUCKLOAD}

    def test_degree_distribution_is_skewed(self, small_dataset):
        stats = compute_statistics(small_dataset)
        assert stats.out_degree.maximum > 5 * stats.out_degree.average
        assert stats.out_degree.minimum >= 1

    def test_mode_mostly_determined_by_weight(self, small_dataset):
        threshold = GeneratorConfig().ltl_weight_threshold
        consistent = sum(
            1
            for txn in small_dataset
            if (txn.gross_weight < threshold)
            == (txn.trans_mode is TransMode.LESS_THAN_TRUCKLOAD)
        )
        assert consistent / len(small_dataset) > 0.9

    def test_air_freight_outliers_present(self, small_dataset):
        outliers = [
            txn
            for txn in small_dataset
            if txn.total_distance > 2_500 and txn.move_transit_hours < 24
        ]
        assert 1 <= len(outliers) <= 5

    def test_dates_within_configured_window(self, small_dataset):
        config = GeneratorConfig(scale=0.02).scaled()
        start, end = small_dataset.date_range()
        assert start >= config.start_date
        assert (end - config.start_date).days <= config.n_days + 30

    def test_transit_hours_at_least_drive_time_lower_bound(self, small_dataset):
        # Quoted hours are max(drive time, service window) so they are never
        # implausibly small for long hauls.
        for txn in small_dataset:
            if txn.total_distance > 1_500 and txn.move_transit_hours < 24:
                # Only the air-freight outliers may do a long haul in under a day.
                assert txn.total_distance > 2_500

    def test_repeated_lanes_exist(self, small_dataset):
        # Several deliveries between the same OD pair over the six months.
        assert len(small_dataset) > len(small_dataset.od_pairs)


class TestGeneratorInternals:
    def test_hub_out_degrees_skewed_and_bounded(self):
        generator = TransportationDataGenerator(GeneratorConfig(scale=0.02))
        degrees = generator._hub_out_degrees(5, 100)
        assert degrees[0] >= max(degrees[1:])
        assert all(d <= 100 for d in degrees)

    def test_poisson_small_lambda_nonnegative(self):
        generator = TransportationDataGenerator(GeneratorConfig(scale=0.02))
        samples = [generator._poisson(0.5) for _ in range(200)]
        assert all(value >= 0 for value in samples)
        assert sum(samples) / len(samples) < 2.0
