"""Shared fixtures for the test suite.

Dataset-producing fixtures are session-scoped because generation, while
fast, is used by many test modules; graph fixtures are tiny hand-built
structures exercising exact, easily-verified behaviour.
"""

from __future__ import annotations

from datetime import date

import pytest

from repro.datasets.binning import default_binning_scheme
from repro.datasets.generator import GeneratorConfig, TransportationDataGenerator
from repro.datasets.schema import Location, TransMode, Transaction, TransactionDataset
from repro.graphs.labeled_graph import LabeledGraph


@pytest.fixture(scope="session")
def small_dataset() -> TransactionDataset:
    """A small (~2%) synthetic dataset shared across test modules."""
    generator = TransportationDataGenerator(GeneratorConfig(scale=0.02, seed=7))
    return generator.generate()


@pytest.fixture(scope="session")
def binning():
    """The paper's default binning scheme (7 weight bins, 10 hour bins)."""
    return default_binning_scheme()


@pytest.fixture()
def tiny_dataset() -> TransactionDataset:
    """A hand-built four-transaction dataset with known values."""
    chicago = Location(41.9, -87.6)
    indianapolis = Location(39.8, -86.2)
    atlanta = Location(33.7, -84.4)
    dataset = TransactionDataset(name="tiny")
    dataset.extend(
        [
            Transaction(
                id=1,
                req_pickup_dt=date(2004, 1, 5),
                req_delivery_dt=date(2004, 1, 6),
                origin=chicago,
                destination=indianapolis,
                total_distance=180.0,
                gross_weight=4_500.0,
                move_transit_hours=6.0,
                trans_mode=TransMode.LESS_THAN_TRUCKLOAD,
            ),
            Transaction(
                id=2,
                req_pickup_dt=date(2004, 1, 5),
                req_delivery_dt=date(2004, 1, 7),
                origin=chicago,
                destination=atlanta,
                total_distance=720.0,
                gross_weight=38_000.0,
                move_transit_hours=18.0,
                trans_mode=TransMode.TRUCKLOAD,
            ),
            Transaction(
                id=3,
                req_pickup_dt=date(2004, 1, 6),
                req_delivery_dt=date(2004, 1, 8),
                origin=indianapolis,
                destination=atlanta,
                total_distance=530.0,
                gross_weight=12_000.0,
                move_transit_hours=14.0,
                trans_mode=TransMode.TRUCKLOAD,
            ),
            Transaction(
                id=4,
                req_pickup_dt=date(2004, 1, 12),
                req_delivery_dt=date(2004, 1, 13),
                origin=chicago,
                destination=indianapolis,
                total_distance=180.0,
                gross_weight=5_100.0,
                move_transit_hours=7.0,
                trans_mode=TransMode.LESS_THAN_TRUCKLOAD,
            ),
        ]
    )
    return dataset


@pytest.fixture()
def triangle_graph() -> LabeledGraph:
    """A labeled directed triangle a -> b -> c -> a."""
    graph = LabeledGraph(name="triangle")
    graph.add_vertex("a", "place")
    graph.add_vertex("b", "place")
    graph.add_vertex("c", "place")
    graph.add_edge("a", "b", 1)
    graph.add_edge("b", "c", 2)
    graph.add_edge("c", "a", 3)
    return graph


@pytest.fixture()
def star_graph() -> LabeledGraph:
    """A hub with four outgoing edges sharing the same label."""
    graph = LabeledGraph(name="star")
    graph.add_vertex("hub", "place")
    for index in range(4):
        spoke = f"s{index}"
        graph.add_vertex(spoke, "place")
        graph.add_edge("hub", spoke, 0)
    return graph
