"""Tests for the C4.5-style decision tree classifier."""

from __future__ import annotations

import random

import pytest

from repro.mining.decision_tree import DecisionTreeClassifier, train_test_split


def _weather_table():
    """The classic play-tennis toy dataset (categorical attributes)."""
    rows = [
        ("sunny", "hot", "high", "weak", "no"),
        ("sunny", "hot", "high", "strong", "no"),
        ("overcast", "hot", "high", "weak", "yes"),
        ("rain", "mild", "high", "weak", "yes"),
        ("rain", "cool", "normal", "weak", "yes"),
        ("rain", "cool", "normal", "strong", "no"),
        ("overcast", "cool", "normal", "strong", "yes"),
        ("sunny", "mild", "high", "weak", "no"),
        ("sunny", "cool", "normal", "weak", "yes"),
        ("rain", "mild", "normal", "weak", "yes"),
        ("sunny", "mild", "normal", "strong", "yes"),
        ("overcast", "mild", "high", "strong", "yes"),
        ("overcast", "hot", "normal", "weak", "yes"),
        ("rain", "mild", "high", "strong", "no"),
    ]
    return [
        {"outlook": o, "temperature": t, "humidity": h, "wind": w, "play": p}
        for o, t, h, w, p in rows
    ]


def _deterministic_table(n_rows: int = 60):
    """A table where the class is fully determined by one attribute."""
    rng = random.Random(3)
    table = []
    for _ in range(n_rows):
        weight = rng.choice(["light", "heavy"])
        noise = rng.choice(["a", "b", "c"])
        table.append({"weight": weight, "noise": noise, "mode": "LTL" if weight == "light" else "TL"})
    return table


class TestTraining:
    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit([], class_attribute="play")

    def test_missing_class_attribute_rejected(self):
        with pytest.raises(KeyError):
            DecisionTreeClassifier().fit(_weather_table(), class_attribute="absent")

    def test_root_split_is_most_informative_attribute(self):
        tree = DecisionTreeClassifier(min_samples_leaf=1).fit(_weather_table(), class_attribute="play")
        assert tree.root_attribute() == "outlook"

    def test_perfect_training_accuracy_on_separable_data(self):
        table = _deterministic_table()
        tree = DecisionTreeClassifier().fit(table, class_attribute="mode")
        assert tree.accuracy(table) == pytest.approx(1.0)
        assert tree.root_attribute() == "weight"

    def test_max_depth_limits_tree(self):
        tree = DecisionTreeClassifier(max_depth=1, min_samples_leaf=1).fit(
            _weather_table(), class_attribute="play"
        )
        assert tree.root is not None
        assert tree.root.is_leaf

    def test_min_samples_leaf_blocks_tiny_splits(self):
        tree = DecisionTreeClassifier(min_samples_leaf=10).fit(_weather_table(), class_attribute="play")
        assert tree.root.is_leaf

    def test_pure_node_becomes_leaf(self):
        table = [{"x": "a", "y": "only"} for _ in range(5)]
        tree = DecisionTreeClassifier().fit(table, class_attribute="y")
        assert tree.root.is_leaf
        assert tree.predict_row({"x": "a"}) == "only"


class TestPrediction:
    def test_predict_requires_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict_row({"x": 1})

    def test_unknown_attribute_value_falls_back_to_majority(self):
        tree = DecisionTreeClassifier(min_samples_leaf=1).fit(_weather_table(), class_attribute="play")
        prediction = tree.predict_row({"outlook": "tornado", "temperature": "hot", "humidity": "high", "wind": "weak"})
        assert prediction in {"yes", "no"}

    def test_predict_batch(self):
        table = _deterministic_table()
        tree = DecisionTreeClassifier().fit(table, class_attribute="mode")
        predictions = tree.predict(table)
        assert len(predictions) == len(table)

    def test_accuracy_on_empty_table_rejected(self):
        tree = DecisionTreeClassifier().fit(_deterministic_table(), class_attribute="mode")
        with pytest.raises(ValueError):
            tree.accuracy([])

    def test_attribute_depths(self):
        tree = DecisionTreeClassifier(min_samples_leaf=1).fit(_weather_table(), class_attribute="play")
        depths = tree.attribute_depths()
        assert depths["outlook"] == 1
        assert all(depth >= 1 for depth in depths.values())

    def test_tree_shape_helpers(self):
        tree = DecisionTreeClassifier(min_samples_leaf=1).fit(_weather_table(), class_attribute="play")
        assert tree.root.depth() >= 2
        assert tree.root.n_leaves() >= 3


class TestTrainTestSplit:
    def test_split_sizes(self):
        table = _deterministic_table(100)
        train, test = train_test_split(table, test_fraction=0.25, seed=1)
        assert len(train) == 75 and len(test) == 25

    def test_split_reproducible(self):
        table = _deterministic_table(50)
        first = train_test_split(table, seed=2)
        second = train_test_split(table, seed=2)
        assert first == second

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(_deterministic_table(), test_fraction=1.5)
