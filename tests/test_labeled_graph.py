"""Tests for the labeled directed graph data structures."""

from __future__ import annotations

import pytest

from repro.graphs.labeled_graph import Edge, LabeledGraph, LabeledMultiGraph


class TestLabeledGraphConstruction:
    def test_add_vertex_and_label(self):
        graph = LabeledGraph()
        graph.add_vertex("a", "city")
        assert graph.has_vertex("a")
        assert graph.vertex_label("a") == "city"

    def test_add_edge_creates_missing_endpoints(self):
        graph = LabeledGraph()
        graph.add_edge("a", "b", 7)
        assert graph.has_vertex("a") and graph.has_vertex("b")
        assert graph.edge_label("a", "b") == 7

    def test_readding_edge_overwrites_label(self):
        graph = LabeledGraph()
        graph.add_edge("a", "b", 1)
        graph.add_edge("a", "b", 2)
        assert graph.n_edges == 1
        assert graph.edge_label("a", "b") == 2

    def test_edges_are_directed(self, triangle_graph):
        assert triangle_graph.has_edge("a", "b")
        assert not triangle_graph.has_edge("b", "a")

    def test_counts(self, triangle_graph):
        assert triangle_graph.n_vertices == 3
        assert triangle_graph.n_edges == 3
        assert len(triangle_graph) == 3

    def test_remove_edge(self, triangle_graph):
        triangle_graph.remove_edge("a", "b")
        assert not triangle_graph.has_edge("a", "b")
        assert triangle_graph.n_edges == 2

    def test_remove_missing_edge_raises(self, triangle_graph):
        with pytest.raises(KeyError):
            triangle_graph.remove_edge("b", "a")

    def test_remove_vertex_removes_incident_edges(self, triangle_graph):
        triangle_graph.remove_vertex("b")
        assert triangle_graph.n_vertices == 2
        assert triangle_graph.n_edges == 1
        assert triangle_graph.has_edge("c", "a")


class TestLabeledGraphQueries:
    def test_degrees(self, star_graph):
        assert star_graph.out_degree("hub") == 4
        assert star_graph.in_degree("hub") == 0
        assert star_graph.degree("hub") == 4
        assert star_graph.in_degree("s0") == 1

    def test_successors_predecessors_neighbours(self, triangle_graph):
        assert list(triangle_graph.successors("a")) == ["b"]
        assert list(triangle_graph.predecessors("a")) == ["c"]
        assert triangle_graph.neighbours("a") == {"b", "c"}

    def test_incident_edges(self, triangle_graph):
        incident = triangle_graph.incident_edges("a")
        assert Edge("a", "b", 1) in incident
        assert Edge("c", "a", 3) in incident
        assert len(incident) == 2

    def test_label_histograms(self, star_graph):
        assert star_graph.vertex_label_counts() == {"place": 5}
        assert star_graph.edge_label_counts() == {0: 4}

    def test_contains(self, triangle_graph):
        assert "a" in triangle_graph
        assert "z" not in triangle_graph


class TestLabeledGraphDerivation:
    def test_copy_is_independent(self, triangle_graph):
        clone = triangle_graph.copy()
        clone.remove_edge("a", "b")
        assert triangle_graph.has_edge("a", "b")
        assert not clone.has_edge("a", "b")

    def test_subgraph_keeps_internal_edges_only(self, triangle_graph):
        sub = triangle_graph.subgraph(["a", "b"])
        assert sub.n_vertices == 2
        assert sub.n_edges == 1
        assert sub.has_edge("a", "b")

    def test_edge_subgraph(self, triangle_graph):
        sub = triangle_graph.edge_subgraph([Edge("a", "b", 1)])
        assert sub.n_vertices == 2 and sub.n_edges == 1

    def test_relabel_vertices(self, triangle_graph):
        relabeled = triangle_graph.relabel_vertices({"a": "origin"})
        assert relabeled.vertex_label("a") == "origin"
        assert relabeled.vertex_label("b") == "place"
        assert triangle_graph.vertex_label("a") == "place"

    def test_with_uniform_vertex_labels(self, triangle_graph):
        uniform = triangle_graph.with_uniform_vertex_labels("x")
        assert set(uniform.vertex_label_counts()) == {"x"}

    def test_networkx_round_trip(self, triangle_graph):
        nx_graph = triangle_graph.to_networkx()
        back = LabeledGraph.from_networkx(nx_graph)
        assert back.n_vertices == 3 and back.n_edges == 3
        assert back.edge_label("b", "c") == 2


class TestLabeledMultiGraph:
    def test_parallel_edges_counted(self):
        multi = LabeledMultiGraph()
        multi.add_edge("a", "b", 1)
        multi.add_edge("a", "b", 2)
        assert multi.n_edges == 2
        assert multi.n_simple_edges == 1
        assert multi.parallel_labels("a", "b") == [1, 2]

    def test_simplify_keeps_most_common_label(self):
        multi = LabeledMultiGraph()
        for label in (1, 2, 2):
            multi.add_edge("a", "b", label)
        simple = multi.simplify()
        assert simple.n_edges == 1
        assert simple.edge_label("a", "b") == 2

    def test_simplify_first_label_choice(self):
        multi = LabeledMultiGraph()
        for label in (3, 1, 1):
            multi.add_edge("a", "b", label)
        assert multi.simplify(label_choice="first").edge_label("a", "b") == 3

    def test_simplify_invalid_choice(self):
        with pytest.raises(ValueError):
            LabeledMultiGraph().simplify(label_choice="random")

    def test_degrees_count_distinct_lanes(self):
        multi = LabeledMultiGraph()
        multi.add_edge("a", "b", 1)
        multi.add_edge("a", "b", 2)
        multi.add_edge("a", "c", 1)
        assert multi.out_degree("a") == 2
        assert multi.in_degree("b") == 1
