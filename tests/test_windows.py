"""Tests for sliding time-window partitioning (Section 9 challenge implementation)."""

from __future__ import annotations

from datetime import date

import pytest

from repro.datasets.schema import TransactionDataset
from repro.partitioning.temporal import partition_by_date
from repro.partitioning.windows import (
    partition_by_window,
    patterns_only_visible_over_windows,
    window_graphs,
)


class TestPartitionByWindow:
    def test_invalid_parameters(self, tiny_dataset):
        with pytest.raises(ValueError):
            partition_by_window(tiny_dataset, window_days=0)
        with pytest.raises(ValueError):
            partition_by_window(tiny_dataset, window_days=3, stride_days=0)
        with pytest.raises(ValueError):
            partition_by_window(tiny_dataset, vertex_labeling="bogus")

    def test_empty_dataset(self):
        assert partition_by_window(TransactionDataset()) == []

    def test_windows_cover_date_range(self, tiny_dataset):
        windows = partition_by_window(tiny_dataset, window_days=7)
        assert windows
        first, last = tiny_dataset.date_range()
        assert windows[0].window_start == first
        assert windows[-1].window_end >= last

    def test_window_length_property(self, tiny_dataset):
        windows = partition_by_window(tiny_dataset, window_days=7)
        assert all(window.window_days == 7 for window in windows)

    def test_weekly_window_merges_daily_activity(self, tiny_dataset, binning):
        # Loads 1-3 (Jan 5-8) and load 4 (Jan 12-13) fall into one 14-day window.
        windows = partition_by_window(tiny_dataset, window_days=14, binning=binning)
        assert len(windows) == 1
        assert windows[0].n_edges == len(tiny_dataset.od_pairs)

    def test_single_day_windows_match_daily_partitioning_edges(self, tiny_dataset, binning):
        daily = partition_by_date(tiny_dataset, binning=binning)
        windows = partition_by_window(tiny_dataset, window_days=1, binning=binning)
        daily_edges = {t.active_date: t.n_edges for t in daily}
        window_edges = {w.window_start: w.n_edges for w in windows}
        for day, edges in window_edges.items():
            assert daily_edges.get(day) == edges

    def test_overlapping_windows_with_stride(self, tiny_dataset):
        non_overlapping = partition_by_window(tiny_dataset, window_days=4)
        overlapping = partition_by_window(tiny_dataset, window_days=4, stride_days=1)
        assert len(overlapping) >= len(non_overlapping)

    def test_uniform_vertex_labeling(self, tiny_dataset):
        windows = partition_by_window(tiny_dataset, window_days=7, vertex_labeling="uniform")
        labels = {
            windows[0].graph.vertex_label(v) for v in windows[0].graph.vertices()
        }
        assert labels == {"place"}

    def test_location_vertex_labeling_default(self, tiny_dataset):
        windows = partition_by_window(tiny_dataset, window_days=7)
        labels = {
            windows[0].graph.vertex_label(v) for v in windows[0].graph.vertices()
        }
        assert all("," in label for label in labels)

    def test_window_graphs_helper(self, tiny_dataset):
        windows = partition_by_window(tiny_dataset, window_days=7)
        graphs = window_graphs(windows)
        assert len(graphs) == len(windows)

    def test_windows_expose_cross_day_structure(self, tiny_dataset, binning):
        """A route spread over several days is connected inside a window but not on any single day."""
        from repro.graphs.components import connected_components

        daily = partition_by_date(tiny_dataset, binning=binning)
        # On no single day are all three locations connected through load 4's lane
        # (Jan 12-13 only has the Chicago->Indianapolis edge).
        jan12 = next(t for t in daily if t.active_date == date(2004, 1, 12))
        assert jan12.graph.n_edges == 1
        windows = partition_by_window(tiny_dataset, window_days=14, binning=binning)
        assert len(connected_components(windows[0].graph)) == 1


class TestWindowHelpers:
    def test_patterns_only_visible_over_windows(self):
        assert patterns_only_visible_over_windows(10, 14) == 4
        assert patterns_only_visible_over_windows(14, 10) == 0
