"""Tests for the flat-buffer wire codec and shared-memory transport.

The wire is a pure transport optimisation, so the load-bearing property
is *losslessness*: ``decode_message(encode_message(m)) == m`` for every
message the sharded runtime ships, with types preserved exactly (a
``True`` must not come back as ``1``), and mining output must be
byte-identical whichever wire or transport carries the messages.  The
shared-memory transport adds a lifecycle property: whatever happens to a
worker — clean reply, SIGKILL mid-level, close with messages in flight —
no ``/dev/shm`` segment may outlive the pool.
"""

from __future__ import annotations

import glob
import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.compact import CompactGraph, LabelTable
from repro.graphs.engine import MatchEngine
from repro.graphs.labeled_graph import LabeledGraph
from repro.mining.fsg.miner import FSGMiner
from repro.runtime import (
    BLOB_OP,
    ShardedEngine,
    WIRE_ENV,
    WIRES,
    decode_message,
    encode_message,
    resolve_placement,
    resolve_wire,
)
from repro.runtime.planner import PLACEMENT_ENV, PlacementPolicy
from repro.runtime.pool import ProcessBackend, resolve_shm_threshold
from repro.runtime.wire import (
    WireFormatError,
    decode_graph_wire,
    encode_graph_wire,
)
from repro.scenarios import differential_check, get_scenario


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def random_corpus(seed: int, size: int = 12) -> list[LabeledGraph]:
    rng = random.Random(seed)
    corpus = []
    for index in range(size):
        graph = LabeledGraph(name=f"t{index}")
        n_vertices = rng.randint(4, 8)
        for v in range(n_vertices):
            graph.add_vertex(f"v{v}", rng.choice(["A", "B", "C"]))
        added = 0
        while added < n_vertices:
            a, b = rng.sample(range(n_vertices), 2)
            if graph.has_edge(f"v{a}", f"v{b}"):
                continue
            graph.add_edge(f"v{a}", f"v{b}", rng.choice(["x", "y"]))
            added += 1
        corpus.append(graph)
    return corpus


def mining_signature(result):
    engine = MatchEngine()
    return sorted(
        (
            engine.canonical_code(entry.pattern),
            entry.support,
            tuple(sorted(entry.supporting_transactions)),
        )
        for entry in result.patterns
    )


def mine_with(corpus, *, wire, shards=2, backend="serial"):
    runtime = ShardedEngine(shards=shards, backend=backend, wire=wire)
    try:
        mined = FSGMiner(min_support=2, max_edges=3, runtime=runtime).mine(corpus)
        shipped = runtime.wire_bytes_shipped
    finally:
        runtime.close()
    return mining_signature(mined), shipped


def own_shm_residue() -> list[str]:
    """Shared-memory segments created by this process and not unlinked."""
    return glob.glob(f"/dev/shm/repro_shm_{os.getpid()}_*")


# ----------------------------------------------------------------------
# Knob resolution
# ----------------------------------------------------------------------
class TestKnobResolution:
    def test_resolve_wire_default_and_env(self, monkeypatch):
        monkeypatch.delenv(WIRE_ENV, raising=False)
        assert resolve_wire(None) == "buffer"  # buffer is the default wire
        monkeypatch.setenv(WIRE_ENV, "pickle")
        assert resolve_wire(None) == "pickle"
        assert resolve_wire("buffer") == "buffer"  # explicit beats env
        with pytest.raises(ValueError):
            resolve_wire("msgpack")
        monkeypatch.setenv(WIRE_ENV, "bogus")
        with pytest.raises(ValueError):
            resolve_wire(None)
        assert WIRES[0] == "buffer"

    def test_resolve_placement_default_and_env(self, monkeypatch):
        monkeypatch.delenv(PLACEMENT_ENV, raising=False)
        assert resolve_placement(None) == "weighted"
        monkeypatch.setenv(PLACEMENT_ENV, "roundrobin")
        assert resolve_placement(None) == "roundrobin"
        with pytest.raises(ValueError):
            resolve_placement("hash")
        assert PlacementPolicy.POLICIES[0] == "weighted"

    def test_resolve_shm_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM_THRESHOLD", raising=False)
        assert resolve_shm_threshold(None) is not None
        monkeypatch.setenv("REPRO_SHM_THRESHOLD", "4096")
        assert resolve_shm_threshold(None) == 4096
        assert resolve_shm_threshold(0) is None  # <= 0 disables shm transport
        assert resolve_shm_threshold(-5) is None
        monkeypatch.setenv("REPRO_SHM_THRESHOLD", "0")
        assert resolve_shm_threshold(None) is None


# ----------------------------------------------------------------------
# Graph buffers
# ----------------------------------------------------------------------
@st.composite
def labeled_graphs(draw):
    n = draw(st.integers(min_value=0, max_value=6))
    sequential = draw(st.booleans())
    ids = [f"v{i}" if sequential else f"stop_{i}_x" for i in range(n)]
    graph = LabeledGraph(name=draw(st.sampled_from(["g", "t42", "graph-α"])))
    for index, vid in enumerate(ids):
        graph.add_vertex(vid, draw(st.sampled_from(["A", "B", "C"])))
    pairs = [(a, b) for a in range(n) for b in range(a + 1, n)]
    chosen = draw(st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))) if pairs else []
    for a, b in chosen:
        graph.add_edge(ids[a], ids[b], draw(st.sampled_from(["x", "y"])))
    return graph


class TestGraphBuffer:
    @settings(max_examples=60, deadline=None)
    @given(graph=labeled_graphs())
    def test_to_buffer_round_trips(self, graph):
        table = LabelTable()
        compact = CompactGraph.from_labeled(graph, table)
        clone = CompactGraph.from_buffer(compact.to_buffer(), table)
        assert clone.to_wire() == compact.to_wire()

    def test_empty_graph_round_trips(self):
        table = LabelTable()
        compact = CompactGraph.from_labeled(LabeledGraph(name="empty"), table)
        clone = CompactGraph.from_buffer(compact.to_buffer(), table)
        assert clone.to_wire() == compact.to_wire()
        assert clone.n_vertices == 0

    def test_zero_padded_ids_survive_via_generic_mode(self):
        # "v01" must not collapse to sequential mode (int() would strip
        # the padding on decode); the generic id path keeps it verbatim.
        wire = ("g", (0, 1), [(0, 1, 2)], ("v01", "v02"))
        assert decode_graph_wire(encode_graph_wire(wire)) == wire

    def test_tombstone_wire_round_trips(self):
        # The shared released-slot placeholder the engine re-adds during
        # rebuild; it must stay inside the codec's type universe so
        # recovery traffic keeps the flat wire.
        wire = ("\x00released\x00", (17,), [], ("t",))
        assert decode_graph_wire(encode_graph_wire(wire)) == wire
        assert encode_message(("add", [wire])) is not None

    def test_id_label_count_mismatch_is_rejected(self):
        with pytest.raises(WireFormatError):
            encode_graph_wire(("g", (0,), [], ("a", "b")))

    def test_header_validation(self):
        buffer = encode_graph_wire(("g", (0,), [], ("v0",)))
        with pytest.raises(WireFormatError):
            decode_graph_wire(b"XX" + buffer[2:])  # bad magic
        with pytest.raises(WireFormatError):
            decode_graph_wire(buffer[:2] + b"\x7f" + buffer[3:])  # bad version
        with pytest.raises(WireFormatError):
            decode_graph_wire(buffer + b"\x00")  # trailing bytes


# ----------------------------------------------------------------------
# Message codec
# ----------------------------------------------------------------------
class TestMessageCodec:
    @settings(max_examples=60, deadline=None)
    @given(tids=st.sets(st.integers(min_value=0, max_value=5000), max_size=40))
    def test_release_tid_lists_round_trip(self, tids):
        message = ("release", sorted(tids))
        assert decode_message(encode_message(message)) == message

    def test_tids_crossing_word_boundaries(self):
        # Deltas that straddle the 64-tid bitset word edges and the
        # varint 7-bit payload edge.
        message = ("release", [0, 63, 64, 65, 127, 128, 129, 16383, 16384])
        assert decode_message(encode_message(message)) == message

    def test_slevel_columns_round_trip(self):
        uids = [(7, i) for i in range(50)]
        parent_uids = [None] + [(7, i // 2) for i in range(49)]
        extensions = [(i % 3, i % 5, bool(i % 2)) for i in range(50)]
        bounds = [None if i % 4 == 0 else 10 for i in range(50)]
        evictions = [(7, i) for i in range(0, 20, 2)]
        payloads = [
            ("w", ("g0", (0, 1), [(0, 1, 3)], ("v0", "v1")), b"\x01\x00"),
            ("d", 3, ("w", 2), b"\xff\x00\x80"),
        ]
        message = ("slevel", evictions, payloads, uids, parent_uids, extensions, bounds)
        decoded = decode_message(encode_message(message))
        assert decoded == message
        # Lists stay lists, tuples stay tuples.
        assert type(decoded[2][0][1]) is tuple
        assert type(decoded[3]) is list

    def test_level_message_round_trips(self):
        wires = [("g0", (0,), [], ("v0",)), ("g1", (1, 2), [(0, 1, 0)], ("v0", "v1"))]
        tid_lists = [[1, 5, 9], []]
        message = (
            "level",
            wires,
            tid_lists,
            ["k0", "k1"],
            [(3, 0), (3, 1)],
            [None, (3, 0)],
            [None, (0, 2, True)],
            [4, None],
        )
        assert decode_message(encode_message(message)) == message

    def test_interned_columns_preserve_types(self):
        # 1 == True == 1.0 hash-equal; the interner must not conflate
        # them or decode returns the wrong type.
        items = [1, True, 1.0, 0, False, None] * 5
        message = ("sevict", items)
        decoded = decode_message(encode_message(message))
        assert decoded == message
        assert [type(v) for v in decoded[1]] == [type(v) for v in items]

    def test_uid_columns_with_mixed_run_tokens(self):
        # Different first elements defeat intpair mode; the fallback
        # modes must still round-trip exactly.
        message = ("sevict", [(1, 5), (2, 6), (-1, 3), None])
        assert decode_message(encode_message(message)) == message

    def test_encode_falls_back_to_none(self):
        assert encode_message(("unknown_op", [1])) is None
        assert encode_message("not a tuple") is None
        assert encode_message(()) is None
        assert encode_message(("release", [3, 1, 2])) is None  # unsorted
        assert encode_message(("labels", [{"a": 1}])) is None  # dict outside universe
        assert encode_message(("add", [("g", (0,), [], ("a", "b"))])) is None

    def test_decode_rejects_corruption(self):
        buffer = encode_message(("release", [1, 2, 3, 1000000]))
        with pytest.raises(WireFormatError):
            decode_message(b"XX" + buffer[2:])
        with pytest.raises(WireFormatError):
            decode_message(buffer[:2] + b"\x7f" + buffer[3:])
        with pytest.raises(WireFormatError):
            decode_message(buffer[:3] + b"\xff" + buffer[4:])  # unknown op code
        with pytest.raises(WireFormatError):
            decode_message(buffer + b"\x00")  # trailing bytes
        with pytest.raises(WireFormatError):
            decode_message(buffer[:-1])  # truncated varint


# ----------------------------------------------------------------------
# Wire-differential mining equality
# ----------------------------------------------------------------------
class TestMiningEquality:
    def test_buffer_matches_pickle_serial(self):
        corpus = random_corpus(41)
        buffer_sig, buffer_bytes = mine_with(corpus, wire="buffer")
        pickle_sig, pickle_bytes = mine_with(corpus, wire="pickle")
        assert buffer_sig == pickle_sig
        assert 0 < buffer_bytes < pickle_bytes

    @pytest.mark.slow
    @pytest.mark.parametrize("shards", [2, 3])
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_buffer_matches_pickle_matrix(self, shards, backend):
        corpus = random_corpus(43, size=14)
        buffer_sig, buffer_bytes = mine_with(corpus, wire="buffer", shards=shards, backend=backend)
        pickle_sig, pickle_bytes = mine_with(corpus, wire="pickle", shards=shards, backend=backend)
        assert buffer_sig == pickle_sig
        assert 0 < buffer_bytes < pickle_bytes

    @pytest.mark.slow
    @pytest.mark.scenario
    @pytest.mark.parametrize("wire", list(WIRES))
    def test_golden_scenario_digest_is_wire_invariant(self, wire, monkeypatch):
        monkeypatch.setenv(WIRE_ENV, wire)
        report = differential_check(
            get_scenario("dense-uniform"),
            shard_counts=(2,),
            backends=("serial",),
            check_oracle=False,
        )
        assert report.ok, report.failures


# ----------------------------------------------------------------------
# Shared-memory transport lifecycle
# ----------------------------------------------------------------------
def _echo_factory():
    def handler(message):
        return ("ok", len(message))

    return handler


class TestShmTransport:
    def test_process_mining_over_shm_matches_serial(self, monkeypatch):
        # A 1-byte threshold forces every blob through a segment.
        monkeypatch.setenv("REPRO_SHM_THRESHOLD", "1")
        corpus = random_corpus(47)
        serial_sig, serial_bytes = mine_with(corpus, wire="buffer", backend="serial")
        process_sig, process_bytes = mine_with(corpus, wire="buffer", backend="process")
        assert process_sig == serial_sig
        assert process_bytes == serial_bytes  # accounting is transport-independent
        assert not own_shm_residue()

    def test_sigkill_mid_level_leaves_no_residue(self, monkeypatch):
        # The leak regression behind supervision: a worker SIGKILLed
        # while segments are in flight must not leave /dev/shm residue
        # once recovery (respawn + replay) finishes.
        monkeypatch.setenv("REPRO_SHM_THRESHOLD", "1")
        corpus = random_corpus(53)
        reference = mining_signature(FSGMiner(min_support=2, max_edges=3).mine(corpus))
        runtime = ShardedEngine(shards=2, backend="process", faults="kill:shard=1,level=2")
        try:
            mined = FSGMiner(min_support=2, max_edges=3, runtime=runtime).mine(corpus)
            stats = runtime.stats()
        finally:
            runtime.close()
        assert mining_signature(mined) == reference
        assert stats["worker_restarts"] >= 1
        assert not own_shm_residue()

    def test_close_purges_unconsumed_segments(self):
        backend = ProcessBackend(1, _echo_factory, shm_threshold=1)
        try:
            backend.send(0, (BLOB_OP, "noop", bytes(4096)))
            assert own_shm_residue()  # segment exists while the send is in flight
        finally:
            backend.close()
        assert not own_shm_residue()

    def test_respawn_purges_unconsumed_segments(self):
        backend = ProcessBackend(1, _echo_factory, shm_threshold=1)
        try:
            backend.send(0, (BLOB_OP, "noop", bytes(4096)))
            assert own_shm_residue()
            backend.respawn(0)
            assert not own_shm_residue()
            # The respawned worker still serves plain traffic.
            backend.send(0, ("ping",))
            assert backend.recv(0) == ("ok", 1)
        finally:
            backend.close()

    def test_segments_unlinked_on_reply(self):
        backend = ProcessBackend(1, _echo_factory, shm_threshold=1)
        try:
            backend.send(0, (BLOB_OP, "noop", b"payload bytes"))
            reply = backend.recv(0)
            assert reply == ("ok", 3)  # worker saw the rehydrated 3-tuple
            assert not own_shm_residue()
        finally:
            backend.close()
