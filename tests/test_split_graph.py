"""Tests for Algorithm 2: breadth-first / depth-first graph partitioning."""

from __future__ import annotations

import random

import pytest

from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.motifs import chain, hub_and_spoke
from repro.partitioning.split_graph import (
    PartitionStrategy,
    coverage_is_exact,
    partition_edge_counts,
    split_graph,
)


def _grid_like_graph(rows: int = 5, columns: int = 5) -> LabeledGraph:
    """A connected graph with moderate degrees for partitioning tests."""
    graph = LabeledGraph(name="grid")
    for r in range(rows):
        for c in range(columns):
            graph.add_vertex((r, c), "place")
    for r in range(rows):
        for c in range(columns):
            if c + 1 < columns:
                graph.add_edge((r, c), (r, c + 1), (r + c) % 3)
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c), (r * c) % 3)
    return graph


class TestSplitGraph:
    @pytest.mark.parametrize("strategy", ["breadth_first", "depth_first"])
    def test_every_edge_assigned_exactly_once(self, strategy):
        graph = _grid_like_graph()
        partitions = split_graph(graph, 5, strategy=strategy, seed=3)
        assert coverage_is_exact(graph, partitions)

    @pytest.mark.parametrize("strategy", [PartitionStrategy.BREADTH_FIRST, PartitionStrategy.DEPTH_FIRST])
    def test_original_graph_unmodified(self, strategy):
        graph = _grid_like_graph()
        edges_before = graph.n_edges
        split_graph(graph, 4, strategy=strategy, seed=1)
        assert graph.n_edges == edges_before

    def test_partition_count_close_to_k(self):
        graph = _grid_like_graph()
        partitions = split_graph(graph, 5, seed=2)
        assert 3 <= len(partitions) <= 10

    def test_partitions_have_no_orphan_vertices(self):
        graph = _grid_like_graph()
        for partition in split_graph(graph, 5, seed=4):
            assert all(partition.degree(v) > 0 for v in partition.vertices())

    def test_k_one_returns_whole_graph(self):
        graph = _grid_like_graph(3, 3)
        partitions = split_graph(graph, 1, seed=0)
        assert sum(p.n_edges for p in partitions) == graph.n_edges

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            split_graph(_grid_like_graph(), 0)

    def test_empty_graph_gives_no_partitions(self):
        assert split_graph(LabeledGraph(), 3) == []

    def test_reproducible_with_seed(self):
        graph = _grid_like_graph()
        first = split_graph(graph, 4, seed=11)
        second = split_graph(graph, 4, seed=11)
        assert [sorted((str(e.source), str(e.target)) for e in p.edges()) for p in first] == [
            sorted((str(e.source), str(e.target)) for e in p.edges()) for p in second
        ]

    def test_shared_rng_gives_different_partitionings(self):
        graph = _grid_like_graph()
        rng = random.Random(5)
        first = split_graph(graph, 4, rng=rng)
        second = split_graph(graph, 4, rng=rng)
        assert [p.n_edges for p in first] != [p.n_edges for p in second] or [
            sorted(str(v) for v in p.vertices()) for p in first
        ] != [sorted(str(v) for v in p.vertices()) for p in second]

    def test_string_strategy_accepted(self):
        partitions = split_graph(_grid_like_graph(), 3, strategy="depth_first", seed=1)
        assert partitions

    def test_partition_edge_counts_helper(self):
        graph = _grid_like_graph()
        partitions = split_graph(graph, 4, seed=9)
        counts = partition_edge_counts(partitions)
        assert sum(counts) == graph.n_edges

    def test_vertex_labels_preserved_in_partitions(self):
        graph = hub_and_spoke(6, vertex_label="depot")
        partitions = split_graph(graph, 2, seed=1)
        for partition in partitions:
            assert all(partition.vertex_label(v) == "depot" for v in partition.vertices())

    def test_breadth_first_keeps_star_together_when_quota_allows(self):
        star = hub_and_spoke(8)
        partitions = split_graph(star, 1, strategy=PartitionStrategy.BREADTH_FIRST, seed=2)
        assert len(partitions) == 1
        assert partitions[0].n_edges == 8

    def test_depth_first_on_chain_preserves_chain(self):
        path = chain(10)
        partitions = split_graph(path, 2, strategy=PartitionStrategy.DEPTH_FIRST, seed=3)
        # The chain is cut into path segments; each partition is itself a path.
        for partition in partitions:
            assert all(partition.out_degree(v) <= 1 and partition.in_degree(v) <= 1 for v in partition.vertices())
