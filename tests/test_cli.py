"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import _EXPERIMENT_SUMMARIES, build_parser, main
from repro.core.experiments import ALL_EXPERIMENTS


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiment_ids(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_scale_and_seed_options(self):
        args = build_parser().parse_args(["run", "T1", "--scale", "0.02", "--seed", "5"])
        assert args.scale == 0.02
        assert args.seed == 5

    def test_summaries_cover_every_experiment(self):
        assert set(_EXPERIMENT_SUMMARIES) == set(ALL_EXPERIMENTS)

    def test_workers_and_backend_options(self):
        args = build_parser().parse_args(
            ["run", "T1", "--workers", "4", "--backend", "serial"]
        )
        assert args.workers == 4
        assert args.backend == "serial"

    def test_workers_defaults_to_environment_resolution(self):
        args = build_parser().parse_args(["run", "T1"])
        assert args.workers is None
        assert args.backend is None

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "T1", "--backend", "threads"])


class TestListCommand:
    def test_list_prints_all_ids(self, capsys):
        exit_code = main(["list"])
        captured = capsys.readouterr()
        assert exit_code == 0
        for experiment_id in ALL_EXPERIMENTS:
            assert experiment_id in captured.out


class TestRunCommand:
    def test_unknown_experiment_id_fails(self, capsys):
        exit_code = main(["run", "NOT_AN_ID", "--scale", "0.012"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "unknown experiment id" in captured.err

    def test_run_single_fast_experiment(self, capsys):
        exit_code = main(["run", "T1", "--scale", "0.012", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "[T1]" in captured.out
        assert "measured" in captured.out

    def test_negative_workers_fails_cleanly(self, capsys):
        exit_code = main(["run", "T1", "--scale", "0.012", "--workers", "-2"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "invalid configuration" in captured.err

    def test_run_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "out" / "results.txt"
        exit_code = main(["run", "T2", "--scale", "0.012", "--output", str(target)])
        capsys.readouterr()
        assert exit_code == 0
        assert target.exists()
        assert "[T2]" in target.read_text()

    def test_run_multiple_experiments(self, capsys):
        exit_code = main(["run", "T1", "T2", "--scale", "0.012"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "[T1]" in captured.out and "[T2]" in captured.out
