"""Tests for the SUBDUE-style substructure discovery system."""

from __future__ import annotations

import pytest

from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.motifs import chain, hub_and_spoke
from repro.mining.subdue.compression import compress_graph, compress_instances, compression_ratio
from repro.mining.subdue.evaluation import (
    EvaluationPrinciple,
    evaluate,
    mdl_value,
    set_cover_value,
    size_value,
)
from repro.mining.subdue.expansion import expand_instance, expand_substructure, initial_substructures
from repro.mining.subdue.mdl import description_length, graph_size
from repro.mining.subdue.miner import SubdueMiner
from repro.mining.subdue.substructure import (
    Instance,
    Substructure,
    group_instances_by_pattern,
    instance_pattern,
    select_non_overlapping,
)


def _repeated_star_graph(copies: int = 4, spokes: int = 3) -> LabeledGraph:
    """A host graph containing several disjoint copies of the same star, connected by bridges."""
    host = LabeledGraph(name="repeated-stars")
    previous_hub = None
    for copy in range(copies):
        hub = f"hub{copy}"
        host.add_vertex(hub, "place")
        for spoke in range(spokes):
            leaf = f"leaf{copy}_{spoke}"
            host.add_vertex(leaf, "place")
            host.add_edge(hub, leaf, 1)
        if previous_hub is not None:
            host.add_edge(previous_hub, hub, 9)
        previous_hub = hub
    return host


class TestSubstructure:
    def test_instance_from_vertex(self):
        instance = Instance.from_vertex("a")
        assert instance.vertices == frozenset({"a"})
        assert instance.n_edges == 0

    def test_instance_extension_and_overlap(self, triangle_graph):
        edge = next(iter(triangle_graph.edges()))
        instance = Instance.from_vertex(edge.source).extended_with(edge)
        assert instance.n_edges == 1
        assert instance.overlaps(Instance.from_vertex(edge.target))

    def test_instance_pattern_preserves_labels(self, triangle_graph):
        edges = list(triangle_graph.edges())
        instance = Instance(
            vertices=frozenset({edges[0].source, edges[0].target}), edges=frozenset({edges[0]})
        )
        pattern = instance_pattern(triangle_graph, instance)
        assert pattern.n_edges == 1
        assert pattern.vertex_label(edges[0].source) == "place"

    def test_select_non_overlapping(self):
        host = _repeated_star_graph(copies=2)
        instances = [
            Instance(vertices=frozenset({"hub0", "leaf0_0"}), edges=frozenset()),
            Instance(vertices=frozenset({"hub0", "leaf0_1"}), edges=frozenset()),
            Instance(vertices=frozenset({"hub1", "leaf1_0"}), edges=frozenset()),
        ]
        disjoint = select_non_overlapping(instances)
        assert len(disjoint) == 2

    def test_group_instances_by_pattern(self):
        host = _repeated_star_graph(copies=2, spokes=2)
        all_edges = list(host.edges())
        instances = [
            Instance(vertices=frozenset({e.source, e.target}), edges=frozenset({e}))
            for e in all_edges
        ]
        groups = group_instances_by_pattern(host, instances)
        # Two pattern classes: the star edge (label 1) and the bridge edge (label 9).
        assert len(groups) == 2
        assert {g.n_instances for g in groups} == {4, 1}


class TestExpansion:
    def test_initial_substructures_one_per_label(self):
        host = _repeated_star_graph()
        seeds = initial_substructures(host)
        assert len(seeds) == 1
        assert seeds[0].n_instances == host.n_vertices

    def test_initial_substructures_multiple_labels(self, triangle_graph):
        relabeled = triangle_graph.relabel_vertices({"a": "depot"})
        seeds = initial_substructures(relabeled)
        assert len(seeds) == 2

    def test_expand_instance_adds_one_edge(self):
        host = _repeated_star_graph()
        instance = Instance.from_vertex("hub0")
        extensions = expand_instance(host, instance)
        assert all(ext.n_edges == 1 for ext in extensions)
        assert len(extensions) == 4  # 3 spokes + 1 bridge to hub1

    def test_expand_substructure_groups_by_pattern(self):
        host = _repeated_star_graph()
        seeds = initial_substructures(host)
        level1 = expand_substructure(host, seeds[0])
        labels = sorted(
            next(iter(sub.pattern.edges())).label for sub in level1
        )
        assert labels == [1, 9]


class TestMdlAndSize:
    def test_description_length_grows_with_graph(self):
        assert description_length(hub_and_spoke(5)) > description_length(hub_and_spoke(2))

    def test_description_length_empty_graph(self):
        assert description_length(LabeledGraph()) == 0.0

    def test_graph_size(self):
        assert graph_size(chain(3)) == 4 + 3

    def test_compression_with_frequent_substructure_beats_rare_one(self):
        host = _repeated_star_graph(copies=4, spokes=3)
        star = hub_and_spoke(3, edge_labels=[1, 1, 1])
        frequent_instances = []
        for copy in range(4):
            vertices = {f"hub{copy}"} | {f"leaf{copy}_{s}" for s in range(3)}
            edges = {e for e in host.edges() if e.source == f"hub{copy}" and e.label == 1}
            frequent_instances.append(Instance(vertices=frozenset(vertices), edges=frozenset(edges)))
        frequent = Substructure(pattern=star, instances=frequent_instances)
        rare = Substructure(pattern=star, instances=frequent_instances[:1])
        assert mdl_value(host, frequent) > mdl_value(host, rare)
        assert size_value(host, frequent) > size_value(host, rare)

    def test_set_cover_value(self):
        star = Substructure(pattern=hub_and_spoke(2, edge_labels=[1, 1]), instances=[])
        positives = [hub_and_spoke(3, edge_labels=[1, 1, 1])]
        negatives = [chain(2, edge_labels=[2, 2])]
        assert set_cover_value(star, positives, negatives) == pytest.approx(1.0)

    def test_set_cover_requires_examples(self):
        star = Substructure(pattern=hub_and_spoke(2), instances=[])
        with pytest.raises(ValueError):
            set_cover_value(star, [], [])

    def test_evaluate_dispatch(self):
        host = _repeated_star_graph()
        seeds = initial_substructures(host)
        substructure = expand_substructure(host, seeds[0])[0]
        for principle in (EvaluationPrinciple.MDL, EvaluationPrinciple.SIZE):
            assert evaluate(host, substructure, principle) > 0


class TestCompression:
    def test_compress_replaces_instances(self):
        host = _repeated_star_graph(copies=3, spokes=2)
        star = hub_and_spoke(2, edge_labels=[1, 1])
        instances = []
        for copy in range(3):
            vertices = {f"hub{copy}", f"leaf{copy}_0", f"leaf{copy}_1"}
            edges = {e for e in host.edges() if e.source == f"hub{copy}" and e.label == 1}
            instances.append(Instance(vertices=frozenset(vertices), edges=frozenset(edges)))
        substructure = Substructure(pattern=star, instances=instances)
        compressed = compress_graph(host, substructure)
        # Each 3-vertex instance becomes one SUB vertex; bridges survive.
        assert compressed.n_vertices == 3
        assert compressed.n_edges == 2
        assert all(compressed.vertex_label(v) == "SUB" for v in compressed.vertices())

    def test_compress_instances_rejects_overlap(self, star_graph):
        overlapping = [
            Instance(vertices=frozenset({"hub", "s0"}), edges=frozenset()),
            Instance(vertices=frozenset({"hub", "s1"}), edges=frozenset()),
        ]
        with pytest.raises(ValueError):
            compress_instances(star_graph, overlapping)

    def test_compression_ratio(self):
        host = _repeated_star_graph(copies=2, spokes=2)
        ratio = compression_ratio(host, chain(1))
        assert ratio > 1.0


class TestSubdueMiner:
    def test_finds_repeated_star(self):
        host = _repeated_star_graph(copies=4, spokes=3)
        miner = SubdueMiner(beam_width=4, max_best=3, max_substructure_edges=3, principle=EvaluationPrinciple.SIZE)
        result = miner.mine(host)
        assert len(result.best) >= 1
        top = result.top()
        assert top.n_non_overlapping >= 2
        assert top.value > 0

    def test_mdl_and_size_both_run(self):
        host = _repeated_star_graph(copies=3, spokes=2)
        for principle in (EvaluationPrinciple.MDL, EvaluationPrinciple.SIZE):
            result = SubdueMiner(principle=principle, max_substructure_edges=2, limit=100).mine(host)
            assert result.evaluated > 0
            assert result.elapsed_seconds >= 0

    def test_limit_bounds_evaluations(self):
        host = _repeated_star_graph(copies=4, spokes=4)
        result = SubdueMiner(limit=5, max_substructure_edges=4).mine(host)
        assert result.evaluated <= 5

    def test_min_instances_filters_singletons(self):
        host = chain(5, edge_labels=[1, 2, 3, 4, 5])
        result = SubdueMiner(min_instances=2, max_substructure_edges=2).mine(host)
        assert all(sub.n_non_overlapping >= 2 for sub in result.best)

    def test_hierarchical_mining_compresses(self):
        host = _repeated_star_graph(copies=4, spokes=3)
        miner = SubdueMiner(beam_width=4, max_best=2, max_substructure_edges=3, principle=EvaluationPrinciple.SIZE)
        passes = miner.mine_hierarchical(host, passes=2)
        assert 1 <= len(passes) <= 2

    def test_hierarchical_requires_positive_passes(self):
        with pytest.raises(ValueError):
            SubdueMiner().mine_hierarchical(LabeledGraph(), passes=0)

    def test_empty_graph(self):
        result = SubdueMiner().mine(LabeledGraph())
        assert result.best == []
