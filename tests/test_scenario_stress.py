"""Production-scale scenario diversity: stress shapes and the streaming lane.

Four concerns, matching the families added alongside this module:

* the stress scenarios *demonstrably* exercise what they claim to —
  the near-clique corpus drives the canonicalisation fallback (observed
  through the ``canonical_fallbacks`` metrics counter), the power-law
  corpus produces visible per-shard scan skew in ``level_telemetry``,
  and the window corpus really overlaps (stride < window);
* the messy-mobility scenario runs the whole ingest pipeline — synonym
  resolution, imputation, clipping, clamping — before any graph exists;
* every registered scenario builds byte-identically in fresh processes
  with different ``PYTHONHASHSEED`` values (a Hypothesis property over
  the registry, backed by two real subprocess fingerprint sweeps);
* the 100k streaming corpus (``slow`` lane) matches its pinned sampled
  digest without ever materialising the corpus, asserted via a peak
  traced-memory bound.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.mining.fsg.miner import FSGMiner
from repro.obs import Tracer, activate
from repro.runtime import ShardedEngine
from repro.scenarios import (
    StreamingMobilityCorpus,
    corpus_fingerprint,
    get_scenario,
    run_scenario,
    sampled_digest,
    scenario_names,
    stream_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
STREAMING_GOLDEN = Path(__file__).resolve().parent / "golden" / "streaming.json"

#: Ceiling for the streaming check's peak traced allocation.  A fully
#: materialised 100k-transaction corpus measures several hundred MB; the
#: streaming pass must stay an order of magnitude below that.
STREAMING_PEAK_BYTES_LIMIT = 150_000_000


def _load_streaming_golden() -> dict:
    return json.loads(STREAMING_GOLDEN.read_text(encoding="utf-8"))["streaming-mobility"]


# ----------------------------------------------------------------------
# Stress families
# ----------------------------------------------------------------------
class TestStressFamilies:
    def test_nearclique_exercises_canonicalisation_fallback(self):
        with activate(Tracer()) as tracer:
            outcome = run_scenario(get_scenario("stress-nearclique"))
        assert tracer.metrics.counter_total("canonical_fallbacks") > 0
        # The fallback shows in the digest itself: the four full K9
        # cliques are too symmetric to canonicalise, the K9-minus-3
        # variants and K5s are not.
        fallback = [c for c in outcome.payload["corpus"] if c.startswith("invariant:")]
        canonical = [c for c in outcome.payload["corpus"] if not c.startswith("invariant:")]
        assert len(fallback) == 4
        assert canonical
        assert outcome.payload["fsg"], "uniform cliques must still yield frequent patterns"

    def test_powerlaw_shard_scan_skew_is_visible(self):
        scenario = get_scenario("stress-powerlaw")
        data = scenario.build()
        runtime = ShardedEngine(shards=2, backend="serial")
        try:
            result = FSGMiner(
                min_support=scenario.params.fsg_min_support,
                max_edges=scenario.params.fsg_max_edges,
                runtime=runtime,
            ).mine(data.transactions)
        finally:
            runtime.close()
        skewed_levels = [
            level
            for level, counters in result.level_telemetry.items()
            if counters["shard_scan_max"] > counters["shard_scan_min"]
        ]
        assert skewed_levels, (
            "power-law corpus should produce unequal per-shard scan workloads: "
            f"{result.level_telemetry}"
        )

    def test_serial_run_reports_zero_shard_scan(self):
        scenario = get_scenario("stress-powerlaw")
        result = FSGMiner(
            min_support=scenario.params.fsg_min_support,
            max_edges=scenario.params.fsg_max_edges,
        ).mine(scenario.build().transactions)
        for counters in result.level_telemetry.values():
            assert counters["shard_scan_max"] == 0
            assert counters["shard_scan_min"] == 0

    def test_powerlaw_sizes_follow_a_power_law(self):
        data = get_scenario("stress-powerlaw").build()
        sizes = sorted(t.n_vertices for t in data.transactions)
        # A genuine heavy tail: the biggest transaction is several times
        # the median, and small transactions dominate.
        median = sizes[len(sizes) // 2]
        assert sizes[-1] >= 2 * median
        assert sizes[0] <= median // 2 + 1
        assert sum(1 for s in sizes if s <= median) >= len(sizes) // 2

    def test_stress_windows_transactions_overlap(self):
        data = get_scenario("stress-windows").build()
        assert len(data.transactions) >= 10

        def signatures(graph):
            return {
                (
                    str(graph.vertex_label(edge.source)),
                    str(edge.label),
                    str(graph.vertex_label(edge.target)),
                )
                for edge in graph.edges()
            }

        shared = [
            len(signatures(a) & signatures(b))
            for a, b in zip(data.transactions, data.transactions[1:])
        ]
        # Stride (3 days) < window (7 days): consecutive windows see the
        # same active trips, so adjacent transactions share edges.
        assert sum(1 for count in shared if count > 0) >= len(shared) // 2


# ----------------------------------------------------------------------
# Messy-mobility ingest coverage
# ----------------------------------------------------------------------
class TestMessyMobilityScenario:
    def test_cleaning_report_shows_every_kind_of_dirt(self):
        from repro.datasets.generator import (
            MobilityConfig,
            generate_messy_mobility_records,
            mobility_zone_directory,
        )
        from repro.datasets.schema import clean_mobility_records

        config = MobilityConfig()
        zones = mobility_zone_directory(config)
        records = generate_messy_mobility_records(config, zones)
        dataset, report = clean_mobility_records(
            records, zones, observation_window=config.window
        )
        assert report.rows_in == len(records)
        assert report.rows_kept == len(dataset)
        assert report.dropped_unresolvable_zone > 0
        assert report.synonyms_resolved > 0
        assert report.imputed_values > 0
        assert report.clipped_coordinates > 0
        assert report.clamped_timestamps > 0

    def test_scenario_survives_the_mess_with_frequent_patterns(self):
        outcome = run_scenario(get_scenario("messy-mobility"))
        assert outcome.payload["n_transactions"] >= 10
        assert outcome.payload["fsg"], "recurring routes must survive cleaning"
        # Vertex labels are rounded coordinates: cleaning must have
        # normalised every dirty coordinate back onto the zone grid.
        for code in outcome.payload["corpus"]:
            assert not code.startswith("invariant:")


# ----------------------------------------------------------------------
# Cross-process build determinism (Hypothesis over the registry)
# ----------------------------------------------------------------------
_FINGERPRINT_SCRIPT = """\
import json, sys
from repro.scenarios import corpus_fingerprint, get_scenario, scenario_names
print(json.dumps({name: corpus_fingerprint(get_scenario(name).build())
                  for name in scenario_names()}))
"""


@pytest.fixture(scope="module")
def subprocess_fingerprints():
    """Scenario fingerprints from two fresh interpreters, different hash seeds."""

    def sweep(hash_seed: str) -> dict[str, str]:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        output = subprocess.run(
            [sys.executable, "-c", _FINGERPRINT_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            check=True,
            cwd=str(REPO_ROOT),
        ).stdout
        return json.loads(output)

    return sweep("1"), sweep("31337")


class TestBuildDeterminism:
    @settings(
        max_examples=len(scenario_names()),
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(name=st.sampled_from(scenario_names()))
    def test_build_is_byte_deterministic_across_processes(
        self, name, subprocess_fingerprints
    ):
        first, second = subprocess_fingerprints
        local = corpus_fingerprint(get_scenario(name).build())
        assert first[name] == local, f"{name}: fresh process disagrees with this one"
        assert second[name] == local, f"{name}: build depends on PYTHONHASHSEED"


# ----------------------------------------------------------------------
# Streaming corpus: lazy construction (fast) and the slow verification lane
# ----------------------------------------------------------------------
class TestStreamingCorpusFast:
    def test_transaction_is_pure_and_length_independent(self):
        small = StreamingMobilityCorpus(n_transactions=10)
        large = StreamingMobilityCorpus(n_transactions=10_000)
        for tid in range(10):
            a, b = small.transaction(tid), large.transaction(tid)
            assert sorted(map(str, a.vertices())) == sorted(map(str, b.vertices()))
            assert sorted(
                (str(e.source), str(e.label), str(e.target)) for e in a.edges()
            ) == sorted((str(e.source), str(e.label), str(e.target)) for e in b.edges())

    def test_iter_batches_is_bounded_and_complete(self):
        corpus = StreamingMobilityCorpus(n_transactions=1000)
        seen = []
        for batch in corpus.iter_batches(batch_size=128):
            assert len(batch) <= 128
            seen.extend(tid for tid, _ in batch)
        assert seen == list(range(1000))

    def test_reservoir_is_deterministic_and_evenly_spaced(self):
        corpus = StreamingMobilityCorpus(n_transactions=10_000)
        tids = corpus.reservoir_tids()
        assert tids == corpus.reservoir_tids()
        assert len(tids) == len(set(tids)) <= 64
        strides = {b - a for a, b in zip(tids, tids[1:])}
        assert len(strides) == 1

    def test_sampled_digest_changes_with_seed(self):
        base = sampled_digest(StreamingMobilityCorpus(n_transactions=500))
        assert sampled_digest(StreamingMobilityCorpus(n_transactions=500)) == base
        assert sampled_digest(StreamingMobilityCorpus(n_transactions=500, seed=7)) != base
        assert sampled_digest(StreamingMobilityCorpus(n_transactions=501)) != base

    def test_head_scenario_equals_corpus_head(self):
        scenario = get_scenario("streaming-mobility-head")
        data = scenario.build()
        head = StreamingMobilityCorpus(
            n_transactions=len(data.transactions), seed=scenario.seed
        ).head(len(data.transactions))
        assert [g.n_edges for g in data.transactions] == [g.n_edges for g in head]

    def test_stream_cli_writes_report(self, tmp_path, capsys):
        out = tmp_path / "stream.json"
        assert cli_main(
            ["scenarios", "stream", "--transactions", "400", "--out", str(out)]
        ) == 0
        assert "digest=" in capsys.readouterr().out
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["n_transactions"] == 400
        assert report["sampled_digest"] == sampled_digest(
            StreamingMobilityCorpus(n_transactions=400)
        )
        assert report["peak_traced_bytes"] > 0

    def test_stream_cli_rejects_bad_arguments(self, capsys):
        assert cli_main(["scenarios", "stream", "--transactions", "0"]) == 2
        assert "--transactions" in capsys.readouterr().err
        assert cli_main(["scenarios", "stream", "--batch-size", "0"]) == 2
        assert "--batch-size" in capsys.readouterr().err


@pytest.mark.slow
class TestStreamingSlowLane:
    def test_100k_sampled_digest_matches_golden_within_memory_budget(self):
        golden = _load_streaming_golden()
        corpus = StreamingMobilityCorpus(
            n_transactions=golden["n_transactions"], seed=golden["seed"]
        )
        report = stream_report(corpus, batch_size=golden["batch_size"])
        assert report["sampled_digest"] == golden["sampled_digest"], (
            "streaming sampled digest diverged; if the generator changed "
            "intentionally, re-pin tests/golden/streaming.json"
        )
        assert report["peak_traced_bytes"] < STREAMING_PEAK_BYTES_LIMIT, (
            "streaming verification exceeded its memory budget — the corpus "
            "is probably being materialised"
        )

    def test_100k_sampled_digest_is_hash_seed_independent(self):
        golden = _load_streaming_golden()
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "98765"
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        script = (
            "from repro.scenarios import StreamingMobilityCorpus, sampled_digest\n"
            f"corpus = StreamingMobilityCorpus(n_transactions={golden['n_transactions']}, "
            f"seed={golden['seed']})\n"
            f"print(sampled_digest(corpus, batch_size={golden['batch_size']}))\n"
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
            cwd=str(REPO_ROOT),
        ).stdout.strip()
        assert output == golden["sampled_digest"]
