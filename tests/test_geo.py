"""Unit tests for the geographic helpers."""

from __future__ import annotations

import pytest

from repro.datasets.geo import haversine_miles, road_miles, transit_hours_for_distance
from repro.datasets.schema import Location

CHICAGO = Location(41.9, -87.6)
ATLANTA = Location(33.7, -84.4)
HONOLULU = Location(21.3, -157.9)
SEATTLE = Location(47.6, -122.3)


class TestHaversine:
    def test_zero_distance_for_identical_points(self):
        assert haversine_miles(CHICAGO, CHICAGO) == pytest.approx(0.0)

    def test_chicago_atlanta_roughly_correct(self):
        # Great-circle distance Chicago-Atlanta is about 590 miles.
        assert haversine_miles(CHICAGO, ATLANTA) == pytest.approx(590, rel=0.05)

    def test_symmetry(self):
        assert haversine_miles(CHICAGO, ATLANTA) == pytest.approx(
            haversine_miles(ATLANTA, CHICAGO)
        )

    def test_transpacific_leg_is_long(self):
        assert haversine_miles(SEATTLE, HONOLULU) > 2_500


class TestRoadMiles:
    def test_road_distance_exceeds_great_circle(self):
        assert road_miles(CHICAGO, ATLANTA) > haversine_miles(CHICAGO, ATLANTA)

    def test_circuity_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            road_miles(CHICAGO, ATLANTA, circuity_factor=0.9)

    def test_custom_circuity_factor(self):
        straight = haversine_miles(CHICAGO, ATLANTA)
        assert road_miles(CHICAGO, ATLANTA, circuity_factor=1.5) == pytest.approx(straight * 1.5)


class TestTransitHours:
    def test_monotone_in_distance(self):
        assert transit_hours_for_distance(1_000) > transit_hours_for_distance(100)

    def test_includes_handling_time(self):
        assert transit_hours_for_distance(0.0) == pytest.approx(2.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            transit_hours_for_distance(-1.0)
        with pytest.raises(ValueError):
            transit_hours_for_distance(100.0, average_speed_mph=0.0)
