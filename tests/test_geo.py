"""Unit tests for the geographic helpers."""

from __future__ import annotations

import pytest

from repro.datasets.geo import haversine_miles, road_miles, transit_hours_for_distance
from repro.datasets.schema import Location

CHICAGO = Location(41.9, -87.6)
ATLANTA = Location(33.7, -84.4)
HONOLULU = Location(21.3, -157.9)
SEATTLE = Location(47.6, -122.3)


class TestHaversine:
    def test_zero_distance_for_identical_points(self):
        assert haversine_miles(CHICAGO, CHICAGO) == pytest.approx(0.0)

    def test_chicago_atlanta_roughly_correct(self):
        # Great-circle distance Chicago-Atlanta is about 590 miles.
        assert haversine_miles(CHICAGO, ATLANTA) == pytest.approx(590, rel=0.05)

    def test_symmetry(self):
        assert haversine_miles(CHICAGO, ATLANTA) == pytest.approx(
            haversine_miles(ATLANTA, CHICAGO)
        )

    def test_transpacific_leg_is_long(self):
        assert haversine_miles(SEATTLE, HONOLULU) > 2_500


class TestRoadMiles:
    def test_road_distance_exceeds_great_circle(self):
        assert road_miles(CHICAGO, ATLANTA) > haversine_miles(CHICAGO, ATLANTA)

    def test_circuity_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            road_miles(CHICAGO, ATLANTA, circuity_factor=0.9)

    def test_custom_circuity_factor(self):
        straight = haversine_miles(CHICAGO, ATLANTA)
        assert road_miles(CHICAGO, ATLANTA, circuity_factor=1.5) == pytest.approx(straight * 1.5)


class TestGeoEdgeCases:
    def test_near_antipodal_points_stay_finite(self):
        # The haversine formula can push sqrt() marginally above 1 for
        # antipodal pairs; the clamp keeps asin in range.
        north = Location(41.9, -87.6)
        antipode = Location(-41.9, 92.4)
        distance = haversine_miles(north, antipode)
        assert distance == pytest.approx(3.14159 * 3958.8, rel=0.01)

    def test_pole_to_pole(self):
        assert haversine_miles(Location(90.0, 0.0), Location(-90.0, 0.0)) == pytest.approx(
            3.14159 * 3958.8, rel=0.01
        )

    def test_coordinate_rounding_collapses_nearby_points(self):
        a = Location(41.9049, -87.649)
        b = Location(41.9001, -87.641)
        assert a == b
        assert haversine_miles(a, b) == pytest.approx(0.0)

    def test_circuity_factor_exactly_one_allowed(self):
        straight = haversine_miles(CHICAGO, ATLANTA)
        assert road_miles(CHICAGO, ATLANTA, circuity_factor=1.0) == pytest.approx(straight)

    def test_zero_distance_road_miles(self):
        assert road_miles(CHICAGO, CHICAGO) == pytest.approx(0.0)

    def test_transit_hours_zero_handling_time(self):
        assert transit_hours_for_distance(0.0, handling_hours=0.0) == pytest.approx(0.0)
        assert transit_hours_for_distance(45.0, handling_hours=0.0) == pytest.approx(1.0)


class TestTransitHours:
    def test_monotone_in_distance(self):
        assert transit_hours_for_distance(1_000) > transit_hours_for_distance(100)

    def test_includes_handling_time(self):
        assert transit_hours_for_distance(0.0) == pytest.approx(2.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            transit_hours_for_distance(-1.0)
        with pytest.raises(ValueError):
            transit_hours_for_distance(100.0, average_speed_mph=0.0)
