"""Tests for label-preserving (sub)graph isomorphism (Section 4 semantics)."""

from __future__ import annotations

from repro.graphs.isomorphism import (
    are_isomorphic,
    count_embeddings,
    find_embedding,
    find_embeddings,
    has_embedding,
    non_overlapping_embeddings,
)
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.motifs import chain, cycle, hub_and_spoke


def _edge(source_label, edge_label, target_label) -> LabeledGraph:
    graph = LabeledGraph()
    graph.add_vertex("x", source_label)
    graph.add_vertex("y", target_label)
    graph.add_edge("x", "y", edge_label)
    return graph


class TestEmbeddings:
    def test_single_edge_embeds_in_triangle(self, triangle_graph):
        pattern = _edge("place", 1, "place")
        assert has_embedding(pattern, triangle_graph)

    def test_label_mismatch_blocks_embedding(self, triangle_graph):
        pattern = _edge("place", 99, "place")
        assert not has_embedding(pattern, triangle_graph)

    def test_vertex_label_mismatch_blocks_embedding(self, triangle_graph):
        pattern = _edge("warehouse", 1, "place")
        assert not has_embedding(pattern, triangle_graph)

    def test_direction_matters(self):
        target = chain(2, edge_labels=[1, 1])
        forward = _edge("place", 1, "place")
        assert has_embedding(forward, target)
        # A 2-cycle pattern cannot embed in a simple chain.
        two_cycle = cycle(2, edge_labels=[1, 1])
        assert not has_embedding(two_cycle, target)

    def test_count_embeddings_in_star(self, star_graph):
        pattern = _edge("place", 0, "place")
        assert count_embeddings(pattern, star_graph) == 4

    def test_embeddings_are_injective(self, star_graph):
        pattern = hub_and_spoke(2)
        embeddings = find_embeddings(pattern, star_graph)
        for mapping in embeddings:
            assert len(set(mapping.values())) == len(mapping)
        # Choosing 2 ordered spokes out of 4: 4*3 = 12 embeddings.
        assert len(embeddings) == 12

    def test_max_count_limits_search(self, star_graph):
        pattern = _edge("place", 0, "place")
        assert len(find_embeddings(pattern, star_graph, max_count=2)) == 2

    def test_pattern_larger_than_target_fails_fast(self, triangle_graph):
        pattern = hub_and_spoke(5)
        assert find_embeddings(pattern, triangle_graph) == []

    def test_empty_pattern_has_trivial_embedding(self, triangle_graph):
        assert find_embeddings(LabeledGraph(), triangle_graph) == [{}]

    def test_find_embedding_returns_none_when_absent(self, triangle_graph):
        assert find_embedding(hub_and_spoke(3), triangle_graph) is None

    def test_non_induced_semantics(self):
        # The pattern a->b, a->c embeds in a graph that also has b->c.
        target = hub_and_spoke(2)
        target.add_edge("hs_s0", "hs_s1", 0)
        assert has_embedding(hub_and_spoke(2), target)


class TestIsomorphism:
    def test_isomorphic_relabeled_triangles(self, triangle_graph):
        other = LabeledGraph()
        other.add_vertex("x", "place")
        other.add_vertex("y", "place")
        other.add_vertex("z", "place")
        other.add_edge("x", "y", 1)
        other.add_edge("y", "z", 2)
        other.add_edge("z", "x", 3)
        assert are_isomorphic(triangle_graph, other)

    def test_different_edge_labels_not_isomorphic(self, triangle_graph):
        other = cycle(3, edge_labels=[1, 2, 4])
        assert not are_isomorphic(triangle_graph, other)

    def test_different_sizes_not_isomorphic(self):
        assert not are_isomorphic(chain(2), chain(3))

    def test_chain_not_isomorphic_to_star(self):
        assert not are_isomorphic(chain(3), hub_and_spoke(3))

    def test_self_isomorphism(self, star_graph):
        assert are_isomorphic(star_graph, star_graph.copy())

    def test_directionality_detected(self):
        out_star = hub_and_spoke(2, inbound=False)
        in_star = hub_and_spoke(2, inbound=True)
        assert not are_isomorphic(out_star, in_star)


class TestNonOverlappingEmbeddings:
    def test_disjoint_occurrences_counted(self):
        target = LabeledGraph()
        for index in range(3):
            target.add_edge(f"a{index}", f"b{index}", 5)
        for vertex in target.vertices():
            target.add_vertex(vertex, "")
        pattern = _edge("", 5, "")
        assert len(non_overlapping_embeddings(pattern, target)) == 3

    def test_overlap_prevented(self, star_graph):
        pattern = hub_and_spoke(2)
        # All embeddings share the hub, so only one non-overlapping instance fits.
        assert len(non_overlapping_embeddings(pattern, star_graph)) == 1

    def test_max_count_respected(self, star_graph):
        pattern = _edge("place", 0, "place")
        assert len(non_overlapping_embeddings(pattern, star_graph, max_count=1)) == 1
