"""Unit tests for the edge-label binning strategy (Section 3)."""

from __future__ import annotations

import pytest

from repro.datasets.binning import (
    AttributeBinning,
    Bin,
    BinningScheme,
    bin_values,
    default_binning_scheme,
)


class TestBin:
    def test_contains_is_half_open(self):
        interval = Bin(index=0, lower=0.0, upper=10.0)
        assert interval.contains(0.0)
        assert interval.contains(9.999)
        assert not interval.contains(10.0)

    def test_interval_label(self):
        assert Bin(index=0, lower=0.0, upper=6500.0).interval_label() == "[0, 6500]"


class TestAttributeBinning:
    def test_equal_width_bin_count(self):
        binning = AttributeBinning.equal_width("GROSS_WEIGHT", 0.0, 700.0, 7)
        assert binning.count == 7

    def test_equal_width_requires_valid_range(self):
        with pytest.raises(ValueError):
            AttributeBinning.equal_width("X", 10.0, 10.0, 5)
        with pytest.raises(ValueError):
            AttributeBinning.equal_width("X", 0.0, 10.0, 0)

    def test_values_beyond_nominal_max_fall_in_last_bin(self):
        binning = AttributeBinning.equal_width("GROSS_WEIGHT", 0.0, 70.0, 7)
        assert binning.index_for(69.0) == 6
        assert binning.index_for(1_000_000.0) == 6

    def test_values_below_minimum_clamp_to_first_bin(self):
        binning = AttributeBinning.equal_width("GROSS_WEIGHT", 10.0, 80.0, 7)
        assert binning.index_for(-5.0) == 0

    def test_similar_values_share_a_bin(self):
        # The paper's motivating example: 49-ton and 52-ton loads should be equal.
        binning = AttributeBinning.equal_width("GROSS_WEIGHT", 0.0, 500.0, 7)
        assert binning.index_for(49.0) == binning.index_for(52.0)

    def test_from_edges_requires_sorted_unique(self):
        with pytest.raises(ValueError):
            AttributeBinning.from_edges("X", [0.0, 5.0, 5.0])
        with pytest.raises(ValueError):
            AttributeBinning.from_edges("X", [5.0, 0.0])

    def test_bin_values_helper(self):
        binning = AttributeBinning.equal_width("X", 0.0, 10.0, 2)
        assert bin_values([1.0, 6.0, 9.0], binning) == [0, 1, 1]


class TestBinningScheme:
    def test_default_scheme_matches_paper_label_counts(self, binning):
        counts = binning.label_counts()
        assert counts["GROSS_WEIGHT"] == 7
        assert counts["MOVE_TRANSIT_HOURS"] == 10

    def test_unknown_attribute_raises(self, binning):
        with pytest.raises(KeyError):
            binning.binning_for("NOT_AN_ATTRIBUTE")

    def test_edge_label_extracts_transaction_value(self, binning, tiny_dataset):
        txn = tiny_dataset[0]
        label = binning.edge_label(txn, "GROSS_WEIGHT")
        assert label == binning.bin_index("GROSS_WEIGHT", txn.gross_weight)

    def test_edge_interval_format(self, binning, tiny_dataset):
        txn = tiny_dataset[0]
        interval = binning.edge_interval(txn, "GROSS_WEIGHT")
        assert interval.startswith("[") and "," in interval

    def test_transaction_value_unknown_attribute(self, binning, tiny_dataset):
        with pytest.raises(KeyError):
            binning.transaction_value(tiny_dataset[0], "ORIGIN_LATITUDE")

    def test_custom_granularity(self):
        scheme = default_binning_scheme(weight_bins=3, hour_bins=4, distance_bins=5)
        assert scheme.label_counts() == {
            "GROSS_WEIGHT": 3,
            "MOVE_TRANSIT_HOURS": 4,
            "TOTAL_DISTANCE": 5,
        }

    def test_binning_scheme_registration(self):
        scheme = BinningScheme()
        scheme.add(AttributeBinning.equal_width("GROSS_WEIGHT", 0, 100, 4))
        assert scheme.bin_index("GROSS_WEIGHT", 99.0) == 3


class TestNonFiniteRejection:
    def test_nan_and_infinities_are_rejected_with_a_cleaning_hint(self):
        binning = AttributeBinning.equal_width("GROSS_WEIGHT", 0.0, 70_000.0, 7)
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="clean or impute"):
                binning.bin_for(bad)
            with pytest.raises(ValueError):
                binning.index_for(bad)

    def test_finite_extremes_still_bin(self):
        binning = AttributeBinning.equal_width("GROSS_WEIGHT", 0.0, 70_000.0, 7)
        assert binning.index_for(-1e12) == 0           # clamps below range
        assert binning.index_for(1e12) == 6            # open-ended top bin
