"""Tests for stateful mining sessions (repro.runtime session protocol).

The load-bearing properties, in order:

* **equivalence** — mining through a stateful session (delta-shipped
  levels, shard-resident pattern stores, piggybacked evictions) produces
  exactly the serial runtime's output, whatever the shard count, backend,
  store capacity, or protocol;
* **scatter/gather** — per-level dispatch sends to every shard before
  receiving from any, and a worker failing mid-level surfaces as a
  :class:`WorkerError` (remote traceback attached) on both backends while
  leaving the session and runtime closeable;
* **protocol mechanics** — delta vs full payload selection, store-miss
  full-wire resends, capacity evictions reported on replies, telemetry
  and stats counters.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.graphs.labeled_graph import LabeledGraph
from repro.mining.fsg.miner import FSGMiner
from repro.runtime import (
    SESSION_TELEMETRY_KEYS,
    DelegatingSession,
    LevelRequest,
    SerialBackend,
    SerialRuntime,
    ShardedEngine,
    ShardedSession,
    WorkerError,
    bits_of,
    tids_of,
)


# Under the CI chaos job REPRO_FAULTS injects worker deaths into every
# sharded runtime these tests build.  Equivalence and teardown tests are
# the chaos gate — recovery must keep them green.  Tests that assert
# exact protocol mechanics (send/recv ordering, per-level wire counters,
# hand-forged store state) are legitimately perturbed by respawn/replay
# and sit out chaos runs.
CHAOS = bool(os.environ.get("REPRO_FAULTS", "").strip())
chaos_exempt = pytest.mark.skipif(
    CHAOS,
    reason="exact protocol-mechanics accounting is not stable under injected faults",
)


# ----------------------------------------------------------------------
# Corpus helpers (mirrors test_runtime)
# ----------------------------------------------------------------------
def random_transaction(rng: random.Random, name: str) -> LabeledGraph:
    n_vertices = rng.randint(4, 9)
    graph = LabeledGraph(name=name)
    for v in range(n_vertices):
        graph.add_vertex(f"v{v}", rng.choice(["A", "B", "C"]))
    n_edges = rng.randint(n_vertices - 1, n_vertices + 3)
    added = 0
    while added < n_edges:
        a, b = rng.sample(range(n_vertices), 2)
        if graph.has_edge(f"v{a}", f"v{b}"):
            continue
        graph.add_edge(f"v{a}", f"v{b}", rng.choice(["x", "y"]))
        added += 1
    return graph


def random_corpus(seed: int, size: int = 30) -> list[LabeledGraph]:
    rng = random.Random(seed)
    return [random_transaction(rng, f"t{i}") for i in range(size)]


def mining_signature(result):
    return sorted(
        (
            entry.pattern.n_edges,
            tuple(sorted(entry.supporting_transactions)),
        )
        for entry in result.patterns
    )


def edge_pattern() -> LabeledGraph:
    pattern = LabeledGraph(name="edge-pattern")
    pattern.add_vertex("p0", "A")
    pattern.add_vertex("p1", "B")
    pattern.add_edge("p0", "p1", "x")
    return pattern


def child_pattern(edge_label: str = "y", new_label: str = "C") -> LabeledGraph:
    pattern = edge_pattern()
    pattern.add_vertex("p2", new_label)
    pattern.add_edge("p1", "p2", edge_label)
    return pattern


# ----------------------------------------------------------------------
# Equivalence under the session protocol
# ----------------------------------------------------------------------
class TestSessionEquivalence:
    @pytest.mark.parametrize("shards", [2, 3])
    def test_delta_sessions_match_serial(self, shards):
        corpus = random_corpus(41)
        baseline = FSGMiner(min_support=3, max_edges=3).mine(corpus)
        runtime = ShardedEngine(shards=shards, backend="serial")
        try:
            mined = FSGMiner(min_support=3, max_edges=3, runtime=runtime).mine(corpus)
        finally:
            runtime.close()
        assert mining_signature(mined) == mining_signature(baseline)

    @chaos_exempt
    def test_full_protocol_matches_but_ships_more(self):
        corpus = random_corpus(43, size=20)
        results = {}
        wire = {}
        for protocol in ("delta", "full"):
            runtime = ShardedEngine(
                shards=2, backend="serial", session_protocol=protocol
            )
            try:
                mined = FSGMiner(min_support=3, max_edges=3, runtime=runtime).mine(corpus)
            finally:
                runtime.close()
            results[protocol] = mining_signature(mined)
            wire[protocol] = mined.session_totals()["wire_bytes"]
        assert results["delta"] == results["full"]
        assert 0 < wire["delta"] < wire["full"]

    @pytest.mark.slow
    def test_process_backend_delta_matches_serial(self):
        corpus = random_corpus(47, size=20)
        baseline = FSGMiner(min_support=3, max_edges=3).mine(corpus)
        runtime = ShardedEngine(shards=2, backend="process")
        try:
            mined = FSGMiner(min_support=3, max_edges=3, runtime=runtime).mine(corpus)
        finally:
            runtime.close()
        assert mining_signature(mined) == mining_signature(baseline)

    def test_tiny_store_capacity_evicts_but_never_diverges(self):
        corpus = random_corpus(53, size=20)
        baseline = FSGMiner(min_support=3, max_edges=3).mine(corpus)
        runtime = ShardedEngine(shards=2, backend="serial", session_store_capacity=2)
        try:
            mined = FSGMiner(min_support=3, max_edges=3, runtime=runtime).mine(corpus)
            stats = runtime.stats()
        finally:
            runtime.close()
        assert mining_signature(mined) == mining_signature(baseline)
        assert stats["session_store_evictions"] > 0

    def test_shared_runtime_sessions_across_runs(self):
        # The structural miner's pattern: one sharded runtime serving
        # several mining rounds, each with its own session.
        corpus_a = random_corpus(59, size=15)
        corpus_b = random_corpus(61, size=15)
        runtime = ShardedEngine(shards=2, backend="serial")
        try:
            miner = FSGMiner(min_support=3, max_edges=2, runtime=runtime)
            first = miner.mine(corpus_a)
            second = miner.mine(corpus_b)
        finally:
            runtime.close()
        assert mining_signature(first) == mining_signature(
            FSGMiner(min_support=3, max_edges=2).mine(corpus_a)
        )
        assert mining_signature(second) == mining_signature(
            FSGMiner(min_support=3, max_edges=2).mine(corpus_b)
        )


# ----------------------------------------------------------------------
# Telemetry and stats counters
# ----------------------------------------------------------------------
class TestTelemetry:
    @chaos_exempt
    def test_level_telemetry_recorded_per_level(self):
        corpus = random_corpus(67, size=20)
        runtime = ShardedEngine(shards=2, backend="serial")
        try:
            mined = FSGMiner(min_support=3, max_edges=3, runtime=runtime).mine(corpus)
        finally:
            runtime.close()
        assert mined.level_telemetry
        for counters in mined.level_telemetry.values():
            assert set(counters) == set(SESSION_TELEMETRY_KEYS)
        # Level 1 (roots) always ships in full; deeper levels as deltas.
        assert mined.level_telemetry[1]["patterns_full"] > 0
        assert mined.level_telemetry[1]["patterns_delta"] == 0
        deeper = [counters for level, counters in mined.level_telemetry.items() if level > 1]
        assert sum(counters["patterns_delta"] for counters in deeper) > 0
        totals = mined.session_totals()
        assert totals["wire_bytes"] > 0
        assert totals["store_hits"] == totals["patterns_delta"]

    def test_serial_mining_records_zero_wire_telemetry(self):
        corpus = random_corpus(71, size=12)
        mined = FSGMiner(min_support=3, max_edges=2).mine(corpus)
        assert mined.level_telemetry
        assert mined.session_totals()["wire_bytes"] == 0

    @chaos_exempt
    def test_session_counters_in_stats(self):
        corpus = random_corpus(73, size=20)
        runtime = ShardedEngine(shards=2, backend="serial")
        try:
            FSGMiner(min_support=3, max_edges=3, runtime=runtime).mine(corpus)
            stats = runtime.stats()
        finally:
            runtime.close()
        assert stats["wire_bytes_shipped"] > 0
        assert stats["patterns_shipped_full"] > 0
        assert stats["patterns_shipped_delta"] > 0
        assert "session_store_evictions" in stats

    def test_serial_runtime_stats_report_zero_session_counters(self):
        runtime = SerialRuntime()
        stats = runtime.stats()
        assert stats["wire_bytes_shipped"] == 0
        assert stats["patterns_shipped_full"] == 0
        assert stats["patterns_shipped_delta"] == 0
        assert stats["session_store_evictions"] == 0


# ----------------------------------------------------------------------
# Protocol mechanics, driven request by request
# ----------------------------------------------------------------------
@chaos_exempt
class TestSessionProtocol:
    def _runtime_with_corpus(self, **kwargs):
        corpus = random_corpus(79, size=10)
        runtime = ShardedEngine(shards=2, backend="serial", **kwargs)
        tids = runtime.add_transactions(corpus)
        serial = SerialRuntime()
        serial_tids = serial.add_transactions(corpus)
        return corpus, runtime, tids, serial, serial_tids

    def test_delta_shipping_and_store_miss_resend(self):
        corpus, runtime, tids, serial, serial_tids = self._runtime_with_corpus()
        session = runtime.open_session()
        assert isinstance(session, ShardedSession)
        try:
            root = LevelRequest(pattern=edge_pattern(), tid_bits=bits_of(tids), uid="root")
            (root_bits,) = session.support_level([root])
            assert root_bits == bits_of(serial.support(edge_pattern(), serial_tids))
            assert runtime.stats()["patterns_shipped_delta"] == 0

            child = LevelRequest(
                pattern=child_pattern(),
                tid_bits=root_bits,
                uid="child",
                parent_uid="root",
                extension=(1, 2, True),
                extension_labels=("y", "C"),
            )
            (child_bits,) = session.support_level([child])
            assert child_bits == bits_of(serial.support(child_pattern(), serial_tids))
            stats = runtime.stats()
            assert stats["patterns_shipped_delta"] > 0
            full_so_far = stats["patterns_shipped_full"]

            # Simulate a shard-reported eviction of the parent: the next
            # derived request must fall back to a full wire and still
            # count the exact same support.
            for shard in range(runtime.n_shards):
                session._forget(shard, "root")
            child2 = LevelRequest(
                pattern=child_pattern(),
                tid_bits=root_bits,
                uid="child2",
                parent_uid="root",
                extension=(1, 2, True),
                extension_labels=("y", "C"),
            )
            (child2_bits,) = session.support_level([child2])
            assert child2_bits == child_bits
            stats = runtime.stats()
            assert stats["patterns_shipped_full"] > full_so_far
        finally:
            session.close()
            runtime.close()

    def test_close_flushes_shard_stores(self):
        corpus, runtime, tids, _, _ = self._runtime_with_corpus()
        session = runtime.open_session()
        root = LevelRequest(pattern=edge_pattern(), tid_bits=bits_of(tids), uid="root")
        session.support_level([root])
        # Serial backend: the handlers are inspectable in-process.
        workers = runtime._pool._handlers
        assert any(worker.engine.session_pattern_count for worker in workers)
        session.close()
        assert all(worker.engine.session_pattern_count == 0 for worker in workers)
        assert all(not worker._session_hits for worker in workers)
        runtime.close()

    def test_closed_session_rejects_queries(self):
        _, runtime, tids, _, _ = self._runtime_with_corpus()
        session = runtime.open_session()
        session.close()
        session.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            session.support_level([])
        runtime.close()

    def test_full_protocol_opens_delegating_session(self):
        runtime = ShardedEngine(shards=2, backend="serial", session_protocol="full")
        try:
            assert isinstance(runtime.open_session(), DelegatingSession)
        finally:
            runtime.close()

    def test_invalid_session_protocol_rejected(self):
        with pytest.raises(ValueError, match="session_protocol"):
            ShardedEngine(shards=2, backend="serial", session_protocol="magic")

    def test_serial_runtime_session_is_stateless_delegate(self):
        corpus = random_corpus(83, size=8)
        runtime = SerialRuntime()
        tids = runtime.add_transactions(corpus)
        session = runtime.open_session()
        assert isinstance(session, DelegatingSession)
        request = LevelRequest(pattern=edge_pattern(), tid_bits=bits_of(tids))
        assert session.support_level([request]) == runtime.batch_support_level(
            [LevelRequest(pattern=edge_pattern(), tid_bits=bits_of(tids))]
        )
        telemetry = session.take_telemetry()
        assert telemetry["wire_bytes"] == 0
        assert telemetry["patterns_full"] == 1
        assert session.take_telemetry()["patterns_full"] == 0  # reset on take
        session.close()


# ----------------------------------------------------------------------
# Scatter/gather dispatch ordering
# ----------------------------------------------------------------------
class _RecordingPool:
    """Wraps a pool, recording ("send"/"recv", worker) event order."""

    def __init__(self, inner):
        self._inner = inner
        self.events: list[tuple[str, int]] = []

    def send(self, worker, message):
        self.events.append(("send", worker))
        self._inner.send(worker, message)

    def recv(self, worker):
        self.events.append(("recv", worker))
        return self._inner.recv(worker)

    def __getattr__(self, name):
        return getattr(self._inner, name)


@chaos_exempt
class TestScatterGather:
    def _spanning_requests(self, runtime, tids):
        # One request per shard plus one spanning both, so a sequential
        # per-shard call() loop would interleave sends and recvs.
        return [
            LevelRequest(pattern=edge_pattern(), tid_bits=bits_of(tids)),
            LevelRequest(pattern=edge_pattern(), tid_bits=bits_of(tids[:2])),
        ]

    @pytest.mark.parametrize("drive", ["batch_support_level", "session"])
    def test_all_sends_precede_any_recv(self, drive):
        corpus = random_corpus(89, size=8)
        runtime = ShardedEngine(shards=2, backend="serial")
        session = None
        try:
            tids = runtime.add_transactions(corpus)
            recorder = _RecordingPool(runtime._pool)
            runtime._pool = recorder
            if drive == "session":
                session = runtime.open_session()
            recorder.events.clear()
            requests = self._spanning_requests(runtime, tids)
            if drive == "batch_support_level":
                runtime.batch_support_level(requests)
            else:
                session.support_level(requests)
            events = list(recorder.events)
            sends = [i for i, (kind, _) in enumerate(events) if kind == "send"]
            recvs = [i for i, (kind, _) in enumerate(events) if kind == "recv"]
            # Both shards were dispatched to, and every send of the level
            # completed before any reply was received — a sequential
            # per-shard call() loop would interleave them.
            assert {worker for kind, worker in events if kind == "send"} == {0, 1}
            assert sends and recvs
            assert max(sends) < min(recvs), f"a recv overtook the scatter phase: {events}"
        finally:
            if session is not None:
                session.close()
            runtime.close()

    def test_batch_support_is_scatter_gather_too(self):
        corpus = random_corpus(97, size=8)
        runtime = ShardedEngine(shards=2, backend="serial")
        try:
            tids = runtime.add_transactions(corpus)
            recorder = _RecordingPool(runtime._pool)
            runtime._pool = recorder
            recorder.events.clear()
            runtime.batch_support([edge_pattern()], [tids])
            kinds = [kind for kind, _ in recorder.events]
            assert kinds == sorted(kinds, key=lambda kind: kind != "send"), (
                "expected every send before the first recv, got " + repr(kinds)
            )
        finally:
            runtime.close()


# ----------------------------------------------------------------------
# Worker failure paths
# ----------------------------------------------------------------------
class _Boom:
    def __call__(self, message):
        raise RuntimeError("handler exploded mid-level")


class TestWorkerFailures:
    def test_serial_backend_wraps_handler_errors(self):
        pool = SerialBackend(1, _Boom)
        pool.send(0, ("anything",))
        with pytest.raises(WorkerError, match="handler exploded mid-level"):
            pool.recv(0)
        pool.close()

    @chaos_exempt  # recovery's full-wire replay rescues the forged delta
    @pytest.mark.parametrize("backend", ["serial", pytest.param("process", marks=pytest.mark.slow)])
    def test_mid_level_failure_propagates_and_session_stays_closeable(self, backend):
        corpus = random_corpus(101, size=8)
        runtime = ShardedEngine(shards=2, backend=backend)
        try:
            tids = runtime.add_transactions(corpus)
            session = runtime.open_session()
            # Forge residency for a parent the shard never stored: the
            # planner ships a delta, the worker fails to reconstruct,
            # and the error must come back as a WorkerError carrying the
            # shard-side traceback.
            shard0_tids = [tid for tid in tids if runtime.locate(tid)[0] == 0]
            for shard in range(runtime.n_shards):
                session._resident[shard].add("ghost")
                session._hits[(shard, "ghost")] = list(range(len(corpus)))
            poisoned = LevelRequest(
                pattern=child_pattern(),
                tid_bits=bits_of(shard0_tids[:1]),
                uid="child",
                parent_uid="ghost",
                extension=(1, 2, True),
                extension_labels=("y", "C"),
            )
            with pytest.raises(WorkerError) as failure:
                session.support_level([poisoned])
            assert "no stored session pattern" in str(failure.value)
            assert "Traceback" in str(failure.value)
            # No deadlocked recv: the pipes drained, so the session and
            # the runtime both shut down cleanly (and the worker is even
            # still serviceable).
            session.close()
            assert runtime.stats()["shards"] == 2
        finally:
            runtime.close()

    @chaos_exempt  # recovery's full-wire replay rescues the forged delta
    def test_failure_in_one_shard_does_not_strand_other_replies(self):
        corpus = random_corpus(103, size=8)
        runtime = ShardedEngine(shards=2, backend="serial")
        try:
            tids = runtime.add_transactions(corpus)
            session = runtime.open_session()
            session._resident[0].add("ghost")
            session._hits[(0, "ghost")] = list(range(len(corpus)))
            shard0 = [tid for tid in tids if runtime.locate(tid)[0] == 0]
            shard1 = [tid for tid in tids if runtime.locate(tid)[0] == 1]
            requests = [
                LevelRequest(
                    pattern=child_pattern(),
                    tid_bits=bits_of(shard0[:1]),
                    uid="bad",
                    parent_uid="ghost",
                    extension=(1, 2, True),
                    extension_labels=("y", "C"),
                ),
                LevelRequest(pattern=edge_pattern(), tid_bits=bits_of(shard1), uid="good"),
            ]
            with pytest.raises(WorkerError):
                session.support_level(requests)
            # Shard 1's reply was drained, not stranded: a follow-up
            # query gets a correct answer instead of last level's.
            probe = LevelRequest(pattern=edge_pattern(), tid_bits=bits_of(tids), uid="probe")
            (bits,) = session.support_level([probe])
            serial = SerialRuntime()
            serial_tids = serial.add_transactions(corpus)
            assert sorted(tids_of(bits)) == sorted(serial.support(edge_pattern(), serial_tids))
            session.close()
        finally:
            runtime.close()


# ----------------------------------------------------------------------
# Teardown safety
# ----------------------------------------------------------------------
class TestTeardownSafety:
    def test_del_on_unconstructed_instance_never_raises(self):
        # Regression: __del__ used to assume _closed/_pool existed, which
        # blew up (noisily, at interpreter teardown) when __init__ failed
        # before creating the pool.
        engine = ShardedEngine.__new__(ShardedEngine)
        engine.close()  # no AttributeError
        engine.__del__()  # no exception either

    def test_del_swallows_close_errors(self):
        runtime = ShardedEngine(shards=2, backend="serial")

        class _ExplodingPool:
            def close(self):
                raise OSError("pipes already gone")

        runtime._pool = _ExplodingPool()
        runtime.__del__()  # swallowed
        assert runtime._closed

    def test_close_is_idempotent_after_failure(self):
        runtime = ShardedEngine(shards=2, backend="serial")
        runtime.close()
        runtime.close()
        runtime.__del__()
