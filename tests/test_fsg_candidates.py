"""Tests for FSG candidate generation and deduplication."""

from __future__ import annotations

from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.motifs import chain, hub_and_spoke
from repro.mining.fsg.candidates import (
    Candidate,
    deduplicate,
    edge_triples,
    extend_pattern,
    frequent_single_edges,
    generate_candidates,
    single_edge_pattern,
)


class TestSingleEdges:
    def test_single_edge_pattern_structure(self):
        pattern = single_edge_pattern("place", 3, "place")
        assert pattern.n_vertices == 2
        assert pattern.n_edges == 1
        assert pattern.edge_label("p0", "p1") == 3

    def test_edge_triples(self, triangle_graph):
        triples = edge_triples(triangle_graph)
        assert ("place", 1, "place") in triples
        assert len(triples) == 3

    def test_frequent_single_edges_respects_support(self, triangle_graph, star_graph):
        transactions = [triangle_graph, star_graph]
        frequent = frequent_single_edges(transactions, min_support=2)
        # No edge label triple occurs in both graphs (labels differ).
        assert frequent == {}
        frequent_low = frequent_single_edges(transactions, min_support=1)
        assert ("place", 0, "place") in frequent_low
        assert frequent_low[("place", 0, "place")] == frozenset({1})


class TestExtension:
    def test_extension_count_for_single_edge(self):
        base = single_edge_pattern("place", 0, "place")
        extensions = extend_pattern(base, [("place", 0, "place")])
        # Forward from each of 2 vertices in 2 directions (4) plus one
        # backward edge closing the pair (p1 -> p0).
        assert len(extensions) == 5
        assert all(ext.n_edges == 2 for ext, _ in extensions)

    def test_extension_descriptors_match_added_edge(self):
        base = single_edge_pattern("place", 0, "place")
        for extended, (src_pos, dst_pos, has_new) in extend_pattern(
            base, [("place", 0, "place")]
        ):
            order = list(extended.vertices())
            if has_new:
                # The brand-new vertex is appended last, and it is one of
                # the extension edge's endpoints.
                assert extended.n_vertices == base.n_vertices + 1
                assert base.n_vertices in (src_pos, dst_pos)
            else:
                assert extended.n_vertices == base.n_vertices
            assert extended.has_edge(order[src_pos], order[dst_pos])

    def test_extensions_preserve_labels(self):
        base = single_edge_pattern("place", 1, "place")
        extensions = extend_pattern(base, [("place", 2, "place")])
        for extension, _ in extensions:
            labels = sorted(edge.label for edge in extension.edges())
            assert labels == [1, 2]

    def test_no_extension_for_mismatched_vertex_labels(self):
        base = single_edge_pattern("depot", 1, "store")
        extensions = extend_pattern(base, [("factory", 1, "port")])
        assert extensions == []

    def test_backward_extension_closes_cycle(self):
        base = chain(2, edge_labels=[1, 1])
        extensions = extend_pattern(base, [("place", 1, "place")])
        has_cycle_closure = any(
            ext.has_edge("ch_2", "ch_0") for ext, _ in extensions
        )
        assert has_cycle_closure


class TestDeduplication:
    def test_isomorphic_candidates_merged(self):
        first = Candidate(pattern=hub_and_spoke(2, prefix="a"), parent_tids=frozenset({1}))
        second = Candidate(pattern=hub_and_spoke(2, prefix="b"), parent_tids=frozenset({2}))
        unique = deduplicate([first, second])
        assert len(unique) == 1
        assert unique[0].parent_tids == frozenset({1, 2})

    def test_distinct_candidates_kept(self):
        first = Candidate(pattern=hub_and_spoke(2), parent_tids=frozenset({1}))
        second = Candidate(pattern=chain(2), parent_tids=frozenset({1}))
        assert len(deduplicate([first, second])) == 2

    def test_generate_candidates_unique_up_to_isomorphism(self):
        seed = Candidate(pattern=single_edge_pattern("place", 0, "place"), parent_tids=frozenset({0, 1}))
        candidates = generate_candidates([seed], [("place", 0, "place")])
        for i, first in enumerate(candidates):
            for second in candidates[i + 1:]:
                assert not are_isomorphic(first.pattern, second.pattern)
        # 2-edge connected patterns over one label: out-star, in-star, path, 2-cycle.
        assert len(candidates) == 4
