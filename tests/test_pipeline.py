"""Integration tests for the three end-to-end pipelines."""

from __future__ import annotations

import pytest

from repro.core.config import ExperimentConfig
from repro.core.pipeline import (
    StructuralMiningPipeline,
    TemporalMiningPipeline,
    TransactionalMiningPipeline,
)
from repro.partitioning.split_graph import PartitionStrategy


@pytest.fixture(scope="module")
def pipeline_dataset():
    """A small dataset shared by the pipeline integration tests."""
    return ExperimentConfig(scale=0.015, seed=13).dataset()


class TestStructuralPipeline:
    def test_run_produces_patterns_and_shapes(self, pipeline_dataset):
        pipeline = StructuralMiningPipeline(
            edge_attribute="GROSS_WEIGHT",
            k=12,
            repetitions=1,
            min_support=3,
            strategy=PartitionStrategy.BREADTH_FIRST,
            max_pattern_edges=2,
            seed=3,
        )
        outcome = pipeline.run(pipeline_dataset)
        assert len(outcome.mining) > 0
        assert outcome.shapes.total == len(outcome.mining.patterns)
        assert outcome.graph_name.startswith("OD_")

    def test_depth_first_strategy_runs(self, pipeline_dataset):
        pipeline = StructuralMiningPipeline(
            k=12, repetitions=1, min_support=3, strategy=PartitionStrategy.DEPTH_FIRST,
            max_pattern_edges=2, seed=3,
        )
        outcome = pipeline.run(pipeline_dataset)
        assert outcome.mining.per_repetition_counts


class TestTemporalPipeline:
    def test_run_produces_summaries_and_patterns(self, pipeline_dataset):
        pipeline = TemporalMiningPipeline(
            min_support=0.05, max_vertex_labels=None, max_pattern_edges=2,
        )
        outcome = pipeline.run(pipeline_dataset)
        assert outcome.raw_summary is not None
        assert outcome.prepared_summary is not None
        assert outcome.raw_summary.n_transactions >= 1
        # Component splitting and single-edge filtering only shrink graphs.
        assert outcome.prepared_summary.max_edges <= outcome.raw_summary.max_edges
        assert len(outcome.prepared_transactions) >= 1

    def test_vertex_label_filter_reduces_transactions(self, pipeline_dataset):
        unfiltered = TemporalMiningPipeline(max_vertex_labels=None, max_pattern_edges=1).run(pipeline_dataset)
        filtered = TemporalMiningPipeline(max_vertex_labels=8, max_pattern_edges=1).run(pipeline_dataset)
        assert len(filtered.prepared_transactions) <= len(unfiltered.prepared_transactions)


class TestTransactionalPipeline:
    def test_association_rules(self, pipeline_dataset):
        pipeline = TransactionalMiningPipeline(
            min_support=0.1, min_confidence=0.7, discretize_strategy="equal_frequency"
        )
        rules = pipeline.run_association(pipeline_dataset)
        assert rules, "expected at least one association rule"
        assert all(rule.confidence >= 0.7 for rule in rules)

    def test_classification_accuracy_reasonable(self, pipeline_dataset):
        pipeline = TransactionalMiningPipeline(n_bins=10, discretize_strategy="equal_frequency")
        outcome = pipeline.run_classification(pipeline_dataset)
        assert outcome.accuracy > 0.8
        assert outcome.root_attribute == "GROSS_WEIGHT"
        assert "GROSS_WEIGHT" in outcome.attribute_depths

    def test_clustering_summaries(self, pipeline_dataset):
        pipeline = TransactionalMiningPipeline(n_clusters=5)
        outcome = pipeline.run_clustering(pipeline_dataset)
        assert 1 <= len(outcome.summaries) <= 5
        assert sum(summary.size for summary in outcome.summaries) == len(pipeline_dataset)
        ordered = outcome.sorted_by_size()
        assert ordered == sorted(ordered, key=lambda s: s.size)


class TestExperimentConfig:
    def test_dataset_is_cached(self):
        config = ExperimentConfig(scale=0.01, seed=3)
        assert config.dataset() is config.dataset()

    def test_binning_matches_settings(self):
        config = ExperimentConfig(weight_bins=5)
        assert config.binning().label_counts()["GROSS_WEIGHT"] == 5
