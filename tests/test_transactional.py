"""Tests for the flat transactional representations (Section 7 preprocessing)."""

from __future__ import annotations

import pytest

from repro.mining.transactional import (
    CONVENTIONAL_ATTRIBUTES,
    COORDINATE_ATTRIBUTES,
    dataset_to_feature_table,
    feature_table_to_item_transactions,
    numeric_matrix,
    transaction_features,
)


class TestFeatureTable:
    def test_dates_excluded_by_default(self, tiny_dataset):
        table = dataset_to_feature_table(tiny_dataset)
        assert "REQ_PICKUP_DT" not in table[0]
        assert "REQ_DELIVERY_DT" not in table[0]
        assert set(table[0]) == set(CONVENTIONAL_ATTRIBUTES)

    def test_row_count_matches_dataset(self, tiny_dataset):
        assert len(dataset_to_feature_table(tiny_dataset)) == len(tiny_dataset)

    def test_attribute_subset(self, tiny_dataset):
        table = dataset_to_feature_table(tiny_dataset, attributes=COORDINATE_ATTRIBUTES)
        assert set(table[0]) == set(COORDINATE_ATTRIBUTES)

    def test_unknown_attribute_rejected(self, tiny_dataset):
        with pytest.raises(KeyError):
            transaction_features(tiny_dataset[0], attributes=["NOT_A_COLUMN"])

    def test_values_match_transaction(self, tiny_dataset):
        row = transaction_features(tiny_dataset[0])
        assert row["GROSS_WEIGHT"] == tiny_dataset[0].gross_weight
        assert row["TRANS_MODE"] == tiny_dataset[0].trans_mode.value


class TestItemTransactions:
    def test_items_are_attribute_value_pairs(self, tiny_dataset):
        table = dataset_to_feature_table(tiny_dataset)
        transactions = feature_table_to_item_transactions(table)
        assert len(transactions) == len(table)
        assert any(item.startswith("TRANS_MODE=") for item in transactions[0])

    def test_item_count_per_transaction(self, tiny_dataset):
        table = dataset_to_feature_table(tiny_dataset)
        transactions = feature_table_to_item_transactions(table)
        assert all(len(t) == len(CONVENTIONAL_ATTRIBUTES) for t in transactions)


class TestNumericMatrix:
    def test_matrix_shape(self, tiny_dataset):
        table = dataset_to_feature_table(tiny_dataset)
        attributes = ["TOTAL_DISTANCE", "GROSS_WEIGHT"]
        matrix = numeric_matrix(table, attributes)
        assert len(matrix) == len(tiny_dataset)
        assert all(len(row) == 2 for row in matrix)

    def test_non_numeric_attribute_rejected(self, tiny_dataset):
        table = dataset_to_feature_table(tiny_dataset)
        with pytest.raises(ValueError):
            numeric_matrix(table, ["TRANS_MODE"])
