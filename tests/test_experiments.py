"""Smoke tests for the per-table/figure experiment drivers.

The benchmark harness runs the experiments at a larger scale; here each
driver is exercised at a very small scale to confirm it runs end to end,
produces a paper-versus-measured comparison, and populates the metrics the
benchmarks rely on.  The heavier graph-mining drivers are marked ``slow``
so the default test run stays fast (run them with ``-m slow``).
"""

from __future__ import annotations

import pytest

from repro.core.config import ExperimentConfig
from repro.core import experiments
from repro.core.results import ExperimentReport
from repro.reporting.comparison import render_comparison


@pytest.fixture(scope="module")
def tiny_config() -> ExperimentConfig:
    """A very small configuration shared by the experiment smoke tests."""
    return ExperimentConfig(scale=0.012, seed=29)


def _check_report(report: ExperimentReport) -> None:
    assert report.experiment_id
    assert report.description
    assert report.paper and report.measured
    rendered = render_comparison(report)
    assert report.experiment_id in rendered


class TestFastExperiments:
    def test_table1(self, tiny_config):
        report = experiments.experiment_table1(tiny_config)
        _check_report(report)
        assert report.measured["n_transactions"] > 0
        assert report.measured["out_degree_max"] >= report.measured["out_degree_avg"]

    def test_table2(self, tiny_config):
        report = experiments.experiment_table2_temporal(tiny_config)
        _check_report(report)
        assert report.measured["distinct_edge_labels"] <= 7

    def test_sec71_association(self, tiny_config):
        report = experiments.experiment_sec71_association(tiny_config)
        _check_report(report)
        assert report.measured["weight_to_ltl_rule_found"] is True

    def test_sec72_classification(self, tiny_config):
        report = experiments.experiment_sec72_classification(tiny_config)
        _check_report(report)
        assert report.measured["trans_mode_accuracy"] > 0.8
        assert report.measured["root_split_attribute"] == "GROSS_WEIGHT"

    def test_fig5_fig6_clustering(self, tiny_config):
        report = experiments.experiment_fig5_fig6_clustering(tiny_config, n_clusters=6)
        _check_report(report)
        assert report.measured["n_clusters"] <= 6
        assert report.measured["largest_cluster_size"] >= report.measured["smallest_cluster_size"]

    def test_footnote2_recall(self, tiny_config):
        report = experiments.experiment_footnote2_recall(tiny_config, copies=6, partitions=8)
        _check_report(report)
        assert report.measured["recall_breadth_first"] >= 0.0

    def test_ablation_partitioning(self, tiny_config):
        report = experiments.experiment_ablation_partitioning(tiny_config, copies=6, partitions=8)
        _check_report(report)
        assert set(report.details["shape_mixes"]) == {"breadth_first", "depth_first", "multilevel"}

    def test_all_experiments_registry(self):
        assert len(experiments.ALL_EXPERIMENTS) == 12
        assert "T1" in experiments.ALL_EXPERIMENTS


@pytest.mark.slow
class TestSlowExperiments:
    def test_figure1_subdue(self, tiny_config):
        report = experiments.experiment_figure1_subdue_mdl(tiny_config, n_vertices=25)
        _check_report(report)
        assert report.measured["best_patterns_reported"] >= 1

    def test_sec51_subdue_scaling(self, tiny_config):
        report = experiments.experiment_sec51_subdue_scaling(tiny_config, sizes=(10, 20))
        _check_report(report)
        assert report.measured["runtime_grows_with_size"] in (True, False)

    def test_fig2_fig3_partitioning(self, tiny_config):
        report = experiments.experiment_fig2_fig3_fsg_partitioning(
            tiny_config, paper_partition_counts=(400,), max_pattern_edges=2
        )
        _check_report(report)
        assert report.measured["avg_patterns_breadth_first"] > 0

    def test_table3_fig4(self, tiny_config):
        report = experiments.experiment_table3_fig4_temporal_fsg(tiny_config)
        _check_report(report)

    def test_sec61_memory(self, tiny_config):
        report = experiments.experiment_sec61_fsg_memory(tiny_config, memory_budget=150)
        _check_report(report)
