"""Tests for CSV persistence of transaction datasets."""

from __future__ import annotations

import pytest

from repro.datasets.loader import iter_records, load_csv, save_csv
from repro.datasets.schema import ATTRIBUTE_NAMES


class TestCsvRoundTrip:
    def test_round_trip_preserves_transactions(self, tiny_dataset, tmp_path):
        path = save_csv(tiny_dataset, tmp_path / "tiny.csv")
        loaded = load_csv(path)
        assert len(loaded) == len(tiny_dataset)
        assert [t.as_record() for t in loaded] == [t.as_record() for t in tiny_dataset]

    def test_save_creates_parent_directories(self, tiny_dataset, tmp_path):
        path = save_csv(tiny_dataset, tmp_path / "nested" / "dir" / "tiny.csv")
        assert path.exists()

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_csv(tmp_path / "absent.csv")

    def test_load_missing_columns_raises(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("ID,GROSS_WEIGHT\n1,100\n")
        with pytest.raises(ValueError, match="missing columns"):
            load_csv(bad)

    def test_loaded_dataset_name_defaults_to_stem(self, tiny_dataset, tmp_path):
        path = save_csv(tiny_dataset, tmp_path / "shipments.csv")
        assert load_csv(path).name == "shipments"

    def test_iter_records_yields_all_columns(self, tiny_dataset, tmp_path):
        path = save_csv(tiny_dataset, tmp_path / "tiny.csv")
        records = list(iter_records(path))
        assert len(records) == len(tiny_dataset)
        assert set(records[0]) == set(ATTRIBUTE_NAMES)
