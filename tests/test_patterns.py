"""Tests for the pattern layer: identity, catalogue, and shape summaries."""

from __future__ import annotations

import pytest

from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.motifs import MotifShape, chain, hub_and_spoke
from repro.mining.fsg.results import FrequentSubgraph
from repro.patterns.catalog import PATTERN_CATALOG, catalog_keys, catalog_pattern
from repro.patterns.matching import ShapeSummary, patterns_with_shape, summarize_shapes
from repro.patterns.pattern import (
    Pattern,
    is_frequent_in_graph,
    pattern_support,
    patterns_identical,
)


class TestPatternIdentity:
    def test_identical_patterns(self):
        assert patterns_identical(hub_and_spoke(2, prefix="a"), hub_and_spoke(2, prefix="b"))

    def test_different_patterns(self):
        assert not patterns_identical(hub_and_spoke(2), chain(2))

    def test_pattern_wrapper_properties(self):
        pattern = Pattern(graph=hub_and_spoke(3), name="star")
        assert pattern.n_edges == 3
        assert pattern.n_vertices == 4
        assert pattern.shape is MotifShape.HUB_AND_SPOKE
        assert pattern.is_identical_to(Pattern(graph=hub_and_spoke(3, prefix="z")))
        assert pattern.invariant()


class TestPatternSupport:
    def _host_with_two_disjoint_stars(self) -> LabeledGraph:
        host = LabeledGraph()
        for copy in range(2):
            hub = f"h{copy}"
            host.add_vertex(hub, "place")
            for spoke in range(2):
                leaf = f"l{copy}_{spoke}"
                host.add_vertex(leaf, "place")
                host.add_edge(hub, leaf, 1)
        return host

    def test_non_overlapping_support(self):
        host = self._host_with_two_disjoint_stars()
        star = hub_and_spoke(2, edge_labels=[1, 1])
        assert pattern_support(star, host) == 2

    def test_overlapping_support_counts_embeddings(self):
        host = self._host_with_two_disjoint_stars()
        star = hub_and_spoke(2, edge_labels=[1, 1])
        # Each star supports 2 ordered embeddings (spokes swapped).
        assert pattern_support(star, host, allow_overlap=True) == 4

    def test_pattern_object_accepted(self):
        host = self._host_with_two_disjoint_stars()
        pattern = Pattern(graph=hub_and_spoke(2, edge_labels=[1, 1]))
        assert pattern_support(pattern, host) == 2

    def test_is_frequent_in_graph(self):
        host = self._host_with_two_disjoint_stars()
        star = hub_and_spoke(2, edge_labels=[1, 1])
        assert is_frequent_in_graph(star, host, support_threshold=2)
        assert not is_frequent_in_graph(star, host, support_threshold=3)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            is_frequent_in_graph(chain(1), LabeledGraph(), support_threshold=0)


class TestCatalog:
    def test_all_entries_build_their_declared_shape(self):
        from repro.graphs.motifs import classify_shape

        for key, entry in PATTERN_CATALOG.items():
            graph = catalog_pattern(key)
            assert classify_shape(graph) is entry.shape, key

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            catalog_pattern("triangle-of-doom")

    def test_catalog_keys(self):
        assert set(catalog_keys()) == set(PATTERN_CATALOG)

    def test_constructor_arguments_forwarded(self):
        star = catalog_pattern("hub_and_spoke", n_spokes=5)
        assert star.n_edges == 5


class TestShapeSummary:
    def _frequent(self, graph, support=3):
        return FrequentSubgraph(pattern=graph, support=support, supporting_transactions=frozenset(range(support)))

    def test_summary_counts(self):
        patterns = [
            self._frequent(hub_and_spoke(2)),
            self._frequent(hub_and_spoke(3)),
            self._frequent(chain(2)),
            self._frequent(chain(1)),
        ]
        summary = summarize_shapes(patterns)
        assert summary.total == 4
        assert summary.count(MotifShape.HUB_AND_SPOKE) == 2
        assert summary.count(MotifShape.CHAIN) == 1
        assert summary.count(MotifShape.SINGLE_EDGE) == 1
        assert summary.fraction(MotifShape.HUB_AND_SPOKE) == pytest.approx(0.5)

    def test_dominant_shape_ignores_single_edges(self):
        patterns = [self._frequent(chain(1)) for _ in range(5)] + [self._frequent(hub_and_spoke(2))]
        summary = summarize_shapes(patterns)
        assert summary.dominant_shape() is MotifShape.HUB_AND_SPOKE
        assert summary.dominant_shape(ignore_single_edges=False) is MotifShape.SINGLE_EDGE

    def test_empty_summary(self):
        summary = summarize_shapes([])
        assert summary.total == 0
        assert summary.dominant_shape() is None
        assert summary.fraction(MotifShape.CHAIN) == 0.0

    def test_multi_edge_count(self):
        patterns = [self._frequent(chain(1)), self._frequent(chain(2))]
        assert summarize_shapes(patterns).multi_edge_count() == 1

    def test_patterns_with_shape_filter(self):
        patterns = [self._frequent(hub_and_spoke(3)), self._frequent(chain(3))]
        stars = patterns_with_shape(patterns, MotifShape.HUB_AND_SPOKE)
        assert len(stars) == 1
        assert stars[0].shape is MotifShape.HUB_AND_SPOKE

    def test_plain_graphs_accepted(self):
        summary = summarize_shapes([hub_and_spoke(2), chain(2)])
        assert summary.total == 2
