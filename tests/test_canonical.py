"""Tests for canonical codes and graph invariants."""

from __future__ import annotations

import pytest

from repro.graphs.canonical import CanonicalizationError, canonical_code, graph_invariant
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.motifs import chain, cycle, hub_and_spoke


def _relabelled_copy(graph: LabeledGraph, suffix: str) -> LabeledGraph:
    """A copy of *graph* with renamed vertex identifiers (labels preserved)."""
    clone = LabeledGraph()
    for vertex in graph.vertices():
        clone.add_vertex(f"{vertex}{suffix}", graph.vertex_label(vertex))
    for edge in graph.edges():
        clone.add_edge(f"{edge.source}{suffix}", f"{edge.target}{suffix}", edge.label)
    return clone


class TestGraphInvariant:
    def test_invariant_ignores_vertex_identity(self):
        star = hub_and_spoke(3, edge_labels=[1, 2, 3])
        assert graph_invariant(star) == graph_invariant(_relabelled_copy(star, "_x"))

    def test_invariant_distinguishes_shapes(self):
        assert graph_invariant(chain(3)) != graph_invariant(hub_and_spoke(3))

    def test_invariant_distinguishes_edge_labels(self):
        assert graph_invariant(chain(2, edge_labels=[1, 1])) != graph_invariant(
            chain(2, edge_labels=[1, 2])
        )

    def test_invariant_distinguishes_vertex_labels(self):
        labelled = hub_and_spoke(2, vertex_label="warehouse")
        assert graph_invariant(labelled) != graph_invariant(hub_and_spoke(2))

    def test_invariant_distinguishes_direction(self):
        assert graph_invariant(hub_and_spoke(2)) != graph_invariant(
            hub_and_spoke(2, inbound=True)
        )


class TestCanonicalCode:
    def test_identical_for_isomorphic_graphs(self):
        star = hub_and_spoke(4, edge_labels=[0, 0, 1, 1])
        assert canonical_code(star) == canonical_code(_relabelled_copy(star, "_y"))

    def test_differs_for_non_isomorphic_graphs(self):
        assert canonical_code(chain(3)) != canonical_code(cycle(3))

    def test_empty_graph(self):
        assert canonical_code(LabeledGraph()) == "empty"

    def test_chain_label_order_matters(self):
        forward = chain(2, edge_labels=[1, 2])
        backward = chain(2, edge_labels=[2, 1])
        assert canonical_code(forward) != canonical_code(backward)

    def test_too_symmetric_graph_raises(self):
        big_star = hub_and_spoke(12)
        with pytest.raises(CanonicalizationError):
            canonical_code(big_star, max_orderings=10)

    def test_symmetric_graph_within_budget_succeeds(self):
        small_star = hub_and_spoke(3)
        code = canonical_code(small_star, max_orderings=1_000)
        assert code == canonical_code(_relabelled_copy(small_star, "_z"), max_orderings=1_000)
