"""Tests for the OD graph builders (Section 3)."""

from __future__ import annotations

import pytest

from repro.graphs.builders import (
    EDGE_ATTRIBUTES,
    UNIFORM_VERTEX_LABEL,
    build_labeled_variants,
    build_od_graph,
    build_od_multigraph,
)


class TestMultigraphBuilder:
    def test_one_parallel_edge_per_transaction(self, tiny_dataset, binning):
        multigraph = build_od_multigraph(tiny_dataset, binning=binning)
        assert multigraph.n_edges == len(tiny_dataset)
        assert multigraph.n_simple_edges == len(tiny_dataset.od_pairs)

    def test_vertices_are_locations(self, tiny_dataset, binning):
        multigraph = build_od_multigraph(tiny_dataset, binning=binning)
        assert multigraph.n_vertices == len(tiny_dataset.locations)

    def test_uniform_vertex_labels(self, tiny_dataset, binning):
        multigraph = build_od_multigraph(tiny_dataset, binning=binning, vertex_labeling="uniform")
        labels = {multigraph.vertex_label(v) for v in multigraph.vertices()}
        assert labels == {UNIFORM_VERTEX_LABEL}

    def test_location_vertex_labels_are_unique_per_place(self, tiny_dataset, binning):
        multigraph = build_od_multigraph(tiny_dataset, binning=binning, vertex_labeling="location")
        labels = {multigraph.vertex_label(v) for v in multigraph.vertices()}
        assert len(labels) == multigraph.n_vertices

    def test_invalid_vertex_labeling_rejected(self, tiny_dataset, binning):
        with pytest.raises(ValueError):
            build_od_multigraph(tiny_dataset, binning=binning, vertex_labeling="bogus")

    def test_interval_labels(self, tiny_dataset, binning):
        multigraph = build_od_multigraph(tiny_dataset, binning=binning, use_interval_labels=True)
        labels = {edge.label for edge in multigraph.edges()}
        assert all(isinstance(label, str) and label.startswith("[") for label in labels)


class TestSimpleGraphBuilder:
    def test_parallel_edges_collapsed(self, tiny_dataset, binning):
        graph = build_od_graph(tiny_dataset, binning=binning)
        assert graph.n_edges == len(tiny_dataset.od_pairs)

    def test_paper_graph_names_accepted(self, tiny_dataset, binning):
        for name, attribute in EDGE_ATTRIBUTES.items():
            by_name = build_od_graph(tiny_dataset, edge_attribute=name, binning=binning)
            by_attribute = build_od_graph(tiny_dataset, edge_attribute=attribute, binning=binning)
            assert by_name.n_edges == by_attribute.n_edges

    def test_unknown_attribute_rejected(self, tiny_dataset, binning):
        with pytest.raises(ValueError):
            build_od_graph(tiny_dataset, edge_attribute="NOT_AN_ATTRIBUTE", binning=binning)

    def test_edge_labels_come_from_binning(self, tiny_dataset, binning):
        graph = build_od_graph(tiny_dataset, edge_attribute="GROSS_WEIGHT", binning=binning)
        max_label = binning.label_counts()["GROSS_WEIGHT"] - 1
        assert all(0 <= edge.label <= max_label for edge in graph.edges())

    def test_different_attributes_can_give_different_labelings(self, small_dataset, binning):
        weight_graph = build_od_graph(small_dataset, edge_attribute="OD_GW", binning=binning)
        distance_graph = build_od_graph(small_dataset, edge_attribute="OD_TD", binning=binning)
        weight_labels = [edge.label for edge in weight_graph.edges()]
        distance_labels = [edge.label for edge in distance_graph.edges()]
        assert weight_labels != distance_labels

    def test_build_labeled_variants_share_structure(self, tiny_dataset, binning):
        variants = build_labeled_variants(tiny_dataset, binning=binning)
        assert set(variants) == {"OD_GW", "OD_TH", "OD_TD"}
        edge_sets = [
            {(e.source, e.target) for e in graph.edges()} for graph in variants.values()
        ]
        assert edge_sets[0] == edge_sets[1] == edge_sets[2]
