"""Tests for dataset summary statistics (Section 3)."""

from __future__ import annotations

import pytest

from repro.datasets.schema import TransactionDataset
from repro.datasets.statistics import (
    DegreeSummary,
    PAPER_REPORTED_STATISTICS,
    compute_statistics,
)


class TestDegreeSummary:
    def test_from_counts(self):
        summary = DegreeSummary.from_counts({"a": 1, "b": 3, "c": 2})
        assert summary.minimum == 1
        assert summary.maximum == 3
        assert summary.average == pytest.approx(2.0)

    def test_empty_counts(self):
        summary = DegreeSummary.from_counts({})
        assert summary.minimum == 0 and summary.maximum == 0 and summary.average == 0.0


class TestComputeStatistics:
    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            compute_statistics(TransactionDataset())

    def test_tiny_dataset_counts(self, tiny_dataset):
        stats = compute_statistics(tiny_dataset)
        assert stats.n_transactions == 4
        assert stats.n_locations == 3
        assert stats.n_origins == 2
        assert stats.n_destinations == 2
        assert stats.n_od_pairs == 3

    def test_tiny_dataset_degrees(self, tiny_dataset):
        stats = compute_statistics(tiny_dataset)
        # Chicago ships to two distinct destinations, Indianapolis to one.
        assert stats.out_degree.maximum == 2
        assert stats.out_degree.minimum == 1
        # Atlanta receives from two distinct origins.
        assert stats.in_degree.maximum == 2

    def test_degrees_count_distinct_lanes_not_trips(self, tiny_dataset):
        # Transactions 1 and 4 repeat the same lane; the degree must not double-count.
        stats = compute_statistics(tiny_dataset)
        assert stats.out_degree.maximum == 2

    def test_transactions_per_od_pair(self, tiny_dataset):
        stats = compute_statistics(tiny_dataset)
        assert stats.transactions_per_od_pair == pytest.approx(4 / 3)

    def test_mode_counts(self, tiny_dataset):
        stats = compute_statistics(tiny_dataset)
        assert stats.mode_counts == {"LTL": 2, "TL": 2}

    def test_as_dict_keys_match_paper_reference(self, tiny_dataset):
        stats = compute_statistics(tiny_dataset)
        assert set(stats.as_dict()) == set(PAPER_REPORTED_STATISTICS)

    def test_generated_dataset_degree_shape(self, small_dataset):
        stats = compute_statistics(small_dataset)
        # The paper's graph has highly skewed out-degree and lower in-degree skew.
        assert stats.out_degree.maximum > stats.in_degree.maximum
        assert stats.out_degree.average >= 1.0
