"""Tests for graph-pattern interestingness and maximality filtering."""

from __future__ import annotations

import pytest

from repro.graphs.motifs import MotifShape, chain, hub_and_spoke
from repro.mining.fsg.miner import mine_frequent_subgraphs
from repro.mining.fsg.results import FrequentSubgraph
from repro.patterns.graph_interestingness import (
    expected_support,
    maximal_patterns,
    pattern_lift,
    score_patterns,
    triple_frequencies,
)


def _transactions():
    """Ten transactions: a planted 2-spoke star (label 1) in five, label-2 noise in all."""
    transactions = []
    for index in range(10):
        if index < 5:
            graph = hub_and_spoke(2, edge_labels=[1, 1], prefix=f"s{index}")
        else:
            graph = chain(1, edge_labels=[3], prefix=f"c{index}")
        graph.add_edge(f"noise_a{index}", f"noise_b{index}", 2)
        graph.add_vertex(f"noise_a{index}", "place")
        graph.add_vertex(f"noise_b{index}", "place")
        transactions.append(graph)
    return transactions


class TestNullModel:
    def test_triple_frequencies(self):
        transactions = _transactions()
        frequencies = triple_frequencies(transactions)
        assert frequencies[("place", 1, "place")] == pytest.approx(0.5)
        assert frequencies[("place", 2, "place")] == pytest.approx(1.0)

    def test_triple_frequencies_empty_rejected(self):
        with pytest.raises(ValueError):
            triple_frequencies([])

    def test_expected_support_multiplies_triples(self):
        frequencies = {("place", 1, "place"): 0.5}
        star = hub_and_spoke(2, edge_labels=[1, 1])
        assert expected_support(star, frequencies) == pytest.approx(0.25)

    def test_expected_support_unknown_triple_is_zero(self):
        star = hub_and_spoke(2, edge_labels=[9, 9])
        assert expected_support(star, {("place", 1, "place"): 0.5}) == 0.0


class TestLift:
    def _pattern(self, graph, support):
        return FrequentSubgraph(
            pattern=graph, support=support, supporting_transactions=frozenset(range(support))
        )

    def test_planted_pattern_has_high_lift(self):
        transactions = _transactions()
        frequencies = triple_frequencies(transactions)
        star = self._pattern(hub_and_spoke(2, edge_labels=[1, 1]), support=5)
        single = self._pattern(chain(1, edge_labels=[1]), support=5)
        # The star's two edges always co-occur, so its lift (0.5 / 0.25 = 2)
        # exceeds the single edge's lift of 1.
        assert pattern_lift(star, 10, frequencies) == pytest.approx(2.0)
        assert pattern_lift(star, 10, frequencies) > pattern_lift(single, 10, frequencies)

    def test_lift_invalid_transaction_count(self):
        star = self._pattern(hub_and_spoke(2), support=1)
        with pytest.raises(ValueError):
            pattern_lift(star, 0, {})

    def test_lift_infinite_when_unexpected(self):
        star = self._pattern(hub_and_spoke(2, edge_labels=[5, 5]), support=2)
        assert pattern_lift(star, 10, {}) == float("inf")


class TestScoring:
    def test_scores_sorted_and_shapes_flagged(self):
        transactions = _transactions()
        result = mine_frequent_subgraphs(transactions, min_support=5, max_edges=2)
        scores = score_patterns(result.patterns, transactions)
        assert scores == sorted(scores, key=lambda s: s.combined, reverse=True)
        star_scores = [s for s in scores if s.shape is MotifShape.HUB_AND_SPOKE]
        assert star_scores and all(s.actionable_shape for s in star_scores)

    def test_actionable_shape_outranks_equally_supported_single_edge(self):
        transactions = _transactions()
        result = mine_frequent_subgraphs(transactions, min_support=5, max_edges=2)
        scores = score_patterns(result.patterns, transactions)
        best = scores[0]
        assert best.pattern.n_edges >= 2


class TestMaximality:
    def _pattern(self, graph, support=5):
        return FrequentSubgraph(
            pattern=graph, support=support, supporting_transactions=frozenset(range(support))
        )

    def test_contained_patterns_removed(self):
        small = self._pattern(hub_and_spoke(2, edge_labels=[1, 1]))
        large = self._pattern(hub_and_spoke(3, edge_labels=[1, 1, 1]))
        kept = maximal_patterns([small, large])
        assert kept == [large]

    def test_incomparable_patterns_kept(self):
        star = self._pattern(hub_and_spoke(2, edge_labels=[1, 1]))
        path = self._pattern(chain(2, edge_labels=[2, 2]))
        assert len(maximal_patterns([star, path])) == 2

    def test_maximality_reduces_mined_output(self):
        transactions = _transactions()
        result = mine_frequent_subgraphs(transactions, min_support=5, max_edges=2)
        maximal = maximal_patterns(result.patterns)
        assert 0 < len(maximal) < len(result.patterns)

    def test_empty_input(self):
        assert maximal_patterns([]) == []
