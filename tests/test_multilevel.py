"""Tests for the METIS-like balanced partitioner (ablation baseline)."""

from __future__ import annotations

import pytest

from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.motifs import hub_and_spoke
from repro.partitioning.multilevel import cut_edges, multilevel_partition


def _connected_graph() -> LabeledGraph:
    graph = LabeledGraph(name="ring-of-stars")
    hubs = []
    for index in range(4):
        hub = f"hub{index}"
        graph.add_vertex(hub, "place")
        hubs.append(hub)
        for spoke in range(3):
            leaf = f"leaf{index}_{spoke}"
            graph.add_vertex(leaf, "place")
            graph.add_edge(hub, leaf, 1)
    for first, second in zip(hubs, hubs[1:] + hubs[:1]):
        graph.add_edge(first, second, 2)
    return graph


class TestMultilevelPartition:
    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            multilevel_partition(_connected_graph(), 0)

    def test_empty_graph(self):
        assert multilevel_partition(LabeledGraph(), 3) == []

    def test_each_vertex_in_at_most_one_partition(self):
        graph = _connected_graph()
        partitions = multilevel_partition(graph, 3, seed=1)
        seen = []
        for partition in partitions:
            seen.extend(partition.vertices())
        assert len(seen) == len(set(seen))

    def test_partition_count_bounded_by_k(self):
        graph = _connected_graph()
        partitions = multilevel_partition(graph, 3, seed=1)
        assert 1 <= len(partitions) <= 3

    def test_cut_edges_are_lost(self):
        graph = _connected_graph()
        partitions = multilevel_partition(graph, 4, seed=1)
        lost = cut_edges(graph, partitions)
        kept = sum(p.n_edges for p in partitions)
        assert lost + kept == graph.n_edges
        assert lost >= 0

    def test_single_partition_keeps_everything(self):
        graph = _connected_graph()
        partitions = multilevel_partition(graph, 1, seed=1)
        assert cut_edges(graph, partitions) == 0

    def test_reproducible_with_seed(self):
        graph = _connected_graph()
        first = multilevel_partition(graph, 3, seed=7)
        second = multilevel_partition(graph, 3, seed=7)
        assert [sorted(map(str, p.vertices())) for p in first] == [
            sorted(map(str, p.vertices())) for p in second
        ]

    def test_star_partitions_keep_local_structure(self):
        star = hub_and_spoke(6)
        partitions = multilevel_partition(star, 1, seed=2)
        assert partitions[0].n_edges == 6
