"""Tests for association-rule interestingness measures."""

from __future__ import annotations

import math

import pytest

from repro.mining.interestingness import (
    confidence,
    conviction,
    dependence,
    leverage,
    lift,
    rule_metrics,
)


class TestConfidence:
    def test_basic(self):
        assert confidence(0.3, 0.5) == pytest.approx(0.6)

    def test_zero_antecedent(self):
        assert confidence(0.0, 0.0) == 0.0

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            confidence(1.2, 0.5)


class TestLift:
    def test_independent_items_have_unit_lift(self):
        assert lift(0.25, 0.5, 0.5) == pytest.approx(1.0)

    def test_positive_association(self):
        assert lift(0.4, 0.5, 0.5) > 1.0

    def test_zero_consequent(self):
        assert lift(0.0, 0.5, 0.0) == 0.0


class TestLeverageConvictionDependence:
    def test_leverage_zero_under_independence(self):
        assert leverage(0.25, 0.5, 0.5) == pytest.approx(0.0)

    def test_conviction_infinite_for_exact_rule(self):
        assert conviction(0.5, 0.5, 0.5) == math.inf

    def test_conviction_finite_otherwise(self):
        assert conviction(0.3, 0.5, 0.5) == pytest.approx((1 - 0.5) / (1 - 0.6))

    def test_dependence_bounds(self):
        value = dependence(0.4, 0.5, 0.5)
        assert 0.0 <= value <= 1.0

    def test_dependence_zero_when_degenerate(self):
        assert dependence(0.5, 1.0, 0.5) == 0.0


class TestRuleMetrics:
    def test_all_metrics_present(self):
        metrics = rule_metrics(0.3, 0.5, 0.4)
        assert set(metrics) == {"support", "confidence", "lift", "leverage", "conviction", "dependence"}

    def test_metrics_consistent(self):
        metrics = rule_metrics(0.3, 0.5, 0.4)
        assert metrics["confidence"] == pytest.approx(confidence(0.3, 0.5))
        assert metrics["lift"] == pytest.approx(lift(0.3, 0.5, 0.4))
