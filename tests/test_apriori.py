"""Tests for the Apriori frequent-itemset and association-rule miner."""

from __future__ import annotations

import pytest

from repro.mining.apriori import Apriori, AssociationRule, FrequentItemset

MARKET_BASKETS = [
    {"bread", "milk"},
    {"bread", "diapers", "beer", "eggs"},
    {"milk", "diapers", "beer", "cola"},
    {"bread", "milk", "diapers", "beer"},
    {"bread", "milk", "diapers", "cola"},
]


class TestParameters:
    def test_invalid_support_rejected(self):
        with pytest.raises(ValueError):
            Apriori(min_support=0.0)
        with pytest.raises(ValueError):
            Apriori(min_support=1.5)

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            Apriori(min_confidence=0.0)

    def test_empty_transactions_rejected(self):
        with pytest.raises(ValueError):
            Apriori().frequent_itemsets([])


class TestFrequentItemsets:
    def test_single_item_supports(self):
        miner = Apriori(min_support=0.6)
        itemsets = miner.frequent_itemsets(MARKET_BASKETS)
        singles = {tuple(sorted(i.items))[0]: i.support_count for i in itemsets if len(i) == 1}
        assert singles["bread"] == 4
        assert singles["milk"] == 4
        assert singles["diapers"] == 4
        assert "eggs" not in singles

    def test_pair_support(self):
        miner = Apriori(min_support=0.6)
        itemsets = miner.frequent_itemsets(MARKET_BASKETS)
        pairs = {frozenset(i.items): i.support_count for i in itemsets if len(i) == 2}
        assert pairs[frozenset({"milk", "diapers"})] == 3
        assert pairs[frozenset({"bread", "diapers"})] == 3

    def test_downward_closure(self):
        miner = Apriori(min_support=0.4)
        itemsets = miner.frequent_itemsets(MARKET_BASKETS)
        supports = {frozenset(i.items): i.support_count for i in itemsets}
        for itemset, count in supports.items():
            for item in itemset:
                if len(itemset) > 1:
                    subset = itemset - {item}
                    assert supports[frozenset(subset)] >= count

    def test_max_itemset_size(self):
        miner = Apriori(min_support=0.4, max_itemset_size=2)
        itemsets = miner.frequent_itemsets(MARKET_BASKETS)
        assert max(len(i) for i in itemsets) <= 2

    def test_relative_support(self):
        itemset = FrequentItemset(items=frozenset({"a"}), support_count=3)
        assert itemset.relative_support(6) == pytest.approx(0.5)


class TestRules:
    def test_rule_confidence_and_support(self):
        miner = Apriori(min_support=0.4, min_confidence=0.7)
        rules = miner.rules(MARKET_BASKETS)
        diapers_to_beer = [
            r for r in rules if r.antecedent == frozenset({"diapers"}) and r.consequent == frozenset({"beer"})
        ]
        assert diapers_to_beer
        rule = diapers_to_beer[0]
        assert rule.confidence == pytest.approx(3 / 4)
        assert rule.support == pytest.approx(3 / 5)

    def test_low_confidence_rules_excluded(self):
        miner = Apriori(min_support=0.4, min_confidence=0.99)
        rules = miner.rules(MARKET_BASKETS)
        assert all(rule.confidence >= 0.99 for rule in rules)

    def test_rules_sorted_by_confidence(self):
        miner = Apriori(min_support=0.4, min_confidence=0.5)
        rules = miner.rules(MARKET_BASKETS)
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_rules_require_itemsets_or_transactions(self):
        miner = Apriori()
        with pytest.raises(ValueError):
            miner.rules()

    def test_rule_lift_positive_association(self):
        miner = Apriori(min_support=0.4, min_confidence=0.5)
        rules = miner.rules(MARKET_BASKETS)
        beer_rules = [r for r in rules if r.consequent == frozenset({"beer"}) and r.antecedent == frozenset({"diapers"})]
        assert beer_rules[0].lift > 1.0

    def test_rule_string_rendering(self):
        rule = AssociationRule(
            antecedent=frozenset({"A=1"}),
            consequent=frozenset({"B=2"}),
            support=0.5,
            confidence=0.9,
            lift=1.5,
            leverage=0.1,
            conviction=2.0,
        )
        assert "A=1 -> B=2" in str(rule)
        assert rule.mentions("A=")
        assert not rule.mentions("C=")
