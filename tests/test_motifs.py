"""Tests for transportation motif constructors and shape classification."""

from __future__ import annotations

import pytest

from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.motifs import (
    MotifShape,
    bowtie,
    chain,
    classify_shape,
    cycle,
    hub_and_spoke,
)


class TestConstructors:
    def test_hub_and_spoke_structure(self):
        star = hub_and_spoke(5)
        assert star.n_vertices == 6
        assert star.n_edges == 5
        assert star.out_degree("hs_hub") == 5

    def test_hub_and_spoke_inbound(self):
        star = hub_and_spoke(3, inbound=True)
        assert star.in_degree("hs_hub") == 3

    def test_hub_and_spoke_edge_labels(self):
        star = hub_and_spoke(2, edge_labels=["a", "b"])
        assert {edge.label for edge in star.edges()} == {"a", "b"}

    def test_hub_requires_positive_spokes(self):
        with pytest.raises(ValueError):
            hub_and_spoke(0)

    def test_chain_structure(self):
        path = chain(4)
        assert path.n_vertices == 5
        assert path.n_edges == 4

    def test_chain_label_count_must_match(self):
        with pytest.raises(ValueError):
            chain(3, edge_labels=[1, 2])

    def test_cycle_structure(self):
        loop = cycle(4)
        assert loop.n_vertices == 4
        assert loop.n_edges == 4
        assert all(loop.out_degree(v) == 1 and loop.in_degree(v) == 1 for v in loop.vertices())

    def test_cycle_requires_two_edges(self):
        with pytest.raises(ValueError):
            cycle(1)

    def test_bowtie_structure(self):
        tie = bowtie(2, 3)
        assert tie.n_edges == 2 + 3 + 1
        assert tie.has_edge("bt_L", "bt_R")

    def test_bowtie_requires_leaves(self):
        with pytest.raises(ValueError):
            bowtie(0, 2)


class TestClassifyShape:
    @pytest.mark.parametrize(
        "builder,expected",
        [
            (lambda: hub_and_spoke(3), MotifShape.HUB_AND_SPOKE),
            (lambda: hub_and_spoke(4, inbound=True), MotifShape.HUB_AND_SPOKE),
            (lambda: chain(3), MotifShape.CHAIN),
            (lambda: cycle(3), MotifShape.CYCLE),
            (lambda: bowtie(2, 2), MotifShape.BOWTIE),
            (lambda: chain(1), MotifShape.SINGLE_EDGE),
        ],
    )
    def test_known_shapes(self, builder, expected):
        assert classify_shape(builder()) is expected

    def test_empty_graph_is_other(self):
        assert classify_shape(LabeledGraph()) is MotifShape.OTHER

    def test_two_edge_chain_is_chain_not_hub(self):
        assert classify_shape(chain(2)) is MotifShape.CHAIN

    def test_mixed_structure_is_other(self):
        graph = hub_and_spoke(3)
        graph.add_edge("hs_s0", "hs_s1", 0)
        assert classify_shape(graph) is MotifShape.OTHER

    def test_labels_do_not_affect_shape(self):
        labelled = hub_and_spoke(3, edge_labels=[5, 6, 7], vertex_label="depot")
        assert classify_shape(labelled) is MotifShape.HUB_AND_SPOKE

    def test_two_cycle_detected(self):
        assert classify_shape(cycle(2)) is MotifShape.CYCLE
