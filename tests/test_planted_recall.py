"""Tests for planted-pattern graphs and recall measurement (footnote 2)."""

from __future__ import annotations

import pytest

from repro.graphs.motifs import chain, cycle, hub_and_spoke
from repro.mining.fsg.results import FrequentSubgraph
from repro.patterns.planted import PlantedGraphSpec, PlantedPattern, build_planted_graph
from repro.patterns.recall import measure_recall


class TestPlantedGraph:
    def _spec(self, copies: int = 3) -> PlantedGraphSpec:
        spec = PlantedGraphSpec(background_edges=5, seed=1)
        spec.add("star", hub_and_spoke(2, edge_labels=[1, 1]), copies=copies)
        spec.add("path", chain(3, edge_labels=[2, 2, 2]), copies=copies)
        return spec

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            build_planted_graph(PlantedGraphSpec())

    def test_invalid_copy_count_rejected(self):
        with pytest.raises(ValueError):
            PlantedPattern(name="x", pattern=chain(1), copies=0)

    def test_all_copies_present(self):
        planted = build_planted_graph(self._spec(copies=3))
        expected_pattern_edges = 3 * 2 + 3 * 3
        assert planted.graph.n_edges >= expected_pattern_edges
        assert planted.total_planted_copies == 6

    def test_background_edges_use_dedicated_label(self):
        planted = build_planted_graph(self._spec())
        labels = {e.label for e in planted.graph.edges()}
        assert "bg" in labels

    def test_planted_patterns_actually_occur(self):
        from repro.patterns.pattern import pattern_support

        planted = build_planted_graph(self._spec(copies=3))
        for ground_truth in planted.ground_truth:
            assert pattern_support(ground_truth.pattern, planted.graph) >= ground_truth.copies

    def test_reproducible(self):
        first = build_planted_graph(self._spec())
        second = build_planted_graph(self._spec())
        assert first.graph.n_edges == second.graph.n_edges

    def test_fluent_add_returns_spec(self):
        spec = PlantedGraphSpec()
        assert spec.add("a", chain(1), 1) is spec


class TestRecall:
    def _ground_truth(self):
        return [
            PlantedPattern(name="star", pattern=hub_and_spoke(2, edge_labels=[1, 1]), copies=3),
            PlantedPattern(name="loop", pattern=cycle(3, edge_labels=[3, 3, 3]), copies=3),
        ]

    def _mined(self, graphs):
        return [
            FrequentSubgraph(pattern=graph, support=3, supporting_transactions=frozenset({0, 1, 2}))
            for graph in graphs
        ]

    def test_full_recall(self):
        mined = self._mined([hub_and_spoke(2, edge_labels=[1, 1]), cycle(3, edge_labels=[3, 3, 3])])
        report = measure_recall(self._ground_truth(), mined)
        assert report.recall == pytest.approx(1.0)
        assert report.missed == []

    def test_zero_recall(self):
        mined = self._mined([chain(2, edge_labels=[9, 9])])
        report = measure_recall(self._ground_truth(), mined)
        assert report.recall == 0.0
        assert set(report.missed) == {"star", "loop"}

    def test_partial_recall(self):
        # A 2-edge piece of the 3-edge cycle counts as partial recovery.
        mined = self._mined([chain(2, edge_labels=[3, 3])])
        report = measure_recall(self._ground_truth(), mined, partial_fraction=0.5)
        assert "loop" in report.partially_recovered
        assert report.partial_recall > report.recall

    def test_containing_pattern_counts_as_recovered(self):
        bigger = hub_and_spoke(3, edge_labels=[1, 1, 1])
        report = measure_recall(
            [PlantedPattern(name="star", pattern=hub_and_spoke(2, edge_labels=[1, 1]), copies=2)],
            self._mined([bigger]),
        )
        assert report.recovered == ["star"]

    def test_invalid_partial_fraction(self):
        with pytest.raises(ValueError):
            measure_recall(self._ground_truth(), [], partial_fraction=0.0)

    def test_empty_ground_truth(self):
        report = measure_recall([], self._mined([chain(1)]))
        assert report.recall == 0.0
        assert report.n_mined_patterns == 1

    def test_plain_graphs_accepted_as_mined(self):
        report = measure_recall(
            [PlantedPattern(name="star", pattern=hub_and_spoke(2, edge_labels=[1, 1]), copies=2)],
            [hub_and_spoke(2, edge_labels=[1, 1])],
        )
        assert report.recall == pytest.approx(1.0)
