"""Tests for the level-wise frequent subgraph miner (FSG role)."""

from __future__ import annotations

import pytest

from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.motifs import MotifShape, chain, cycle, hub_and_spoke
from repro.mining.fsg.exceptions import MemoryBudgetExceeded
from repro.mining.fsg.miner import FSGMiner, mine_frequent_subgraphs, timed_mine
from repro.mining.fsg.results import FSGResult, FrequentSubgraph


def _transactions_with_planted_star(n_with: int, n_without: int) -> list[LabeledGraph]:
    """Transactions where a 2-spoke star with label 7 appears in *n_with* graphs."""
    transactions = []
    for index in range(n_with):
        graph = hub_and_spoke(2, edge_labels=[7, 7], prefix=f"w{index}")
        graph.add_edge(f"w{index}_s0", f"w{index}_s1", 9)
        transactions.append(graph)
    for index in range(n_without):
        transactions.append(chain(2, edge_labels=[5, 6], prefix=f"o{index}"))
    return transactions


class TestSupportResolution:
    def test_fractional_support(self):
        transactions = _transactions_with_planted_star(4, 6)
        result = mine_frequent_subgraphs(transactions, min_support=0.4, max_edges=1)
        assert result.min_support == 4

    def test_absolute_support(self):
        transactions = _transactions_with_planted_star(4, 6)
        result = mine_frequent_subgraphs(transactions, min_support=3, max_edges=1)
        assert result.min_support == 3

    def test_empty_transactions_rejected(self):
        with pytest.raises(ValueError):
            mine_frequent_subgraphs([], min_support=0.5)

    def test_invalid_support_rejected(self):
        with pytest.raises(ValueError):
            mine_frequent_subgraphs([chain(1)], min_support=0)


class TestMining:
    def test_planted_star_is_found(self):
        transactions = _transactions_with_planted_star(5, 5)
        result = mine_frequent_subgraphs(transactions, min_support=5, max_edges=2)
        star_patterns = [
            p for p in result.patterns if p.n_edges == 2 and p.shape is MotifShape.HUB_AND_SPOKE
        ]
        assert star_patterns, "the planted 2-spoke star should be frequent"
        assert star_patterns[0].support == 5

    def test_infrequent_pattern_not_reported(self):
        transactions = _transactions_with_planted_star(2, 8)
        result = mine_frequent_subgraphs(transactions, min_support=5, max_edges=2)
        assert all(p.support >= 5 for p in result.patterns)
        assert not any(p.shape is MotifShape.HUB_AND_SPOKE for p in result.patterns)

    def test_supporting_transactions_are_correct(self):
        transactions = _transactions_with_planted_star(3, 3)
        result = mine_frequent_subgraphs(transactions, min_support=3, max_edges=2)
        star = next(p for p in result.patterns if p.shape is MotifShape.HUB_AND_SPOKE)
        assert star.supporting_transactions == frozenset({0, 1, 2})

    def test_max_edges_limits_pattern_size(self):
        transactions = [cycle(4, edge_labels=[1, 1, 1, 1], prefix=f"c{i}") for i in range(3)]
        result = mine_frequent_subgraphs(transactions, min_support=3, max_edges=2)
        assert all(p.n_edges <= 2 for p in result.patterns)

    def test_full_cycle_found_without_size_limit(self):
        transactions = [cycle(3, edge_labels=[1, 1, 1], prefix=f"c{i}") for i in range(3)]
        result = mine_frequent_subgraphs(transactions, min_support=3)
        assert any(p.n_edges == 3 and p.shape is MotifShape.CYCLE for p in result.patterns)

    def test_min_pattern_edges_filters_small_patterns(self):
        transactions = _transactions_with_planted_star(4, 0)
        miner = FSGMiner(min_support=4, max_edges=2, min_pattern_edges=2)
        result = miner.mine(transactions)
        assert all(p.n_edges >= 2 for p in result.patterns)

    def test_patterns_count_once_per_transaction(self):
        # A transaction with many embeddings of a pattern still counts once.
        big_star = hub_and_spoke(5, edge_labels=[1] * 5)
        small_star = hub_and_spoke(2, edge_labels=[1, 1], prefix="x")
        result = mine_frequent_subgraphs([big_star, small_star], min_support=2, max_edges=1)
        assert all(p.support <= 2 for p in result.patterns)

    def test_timed_mine_returns_elapsed(self):
        transactions = _transactions_with_planted_star(3, 3)
        result, elapsed = timed_mine(transactions, min_support=3, max_edges=1)
        assert isinstance(result, FSGResult)
        assert elapsed >= 0.0


class TestMemoryBudget:
    def test_budget_exceeded_raises(self):
        transactions = [hub_and_spoke(6, edge_labels=[1, 2, 3, 4, 5, 6], prefix=f"h{i}") for i in range(4)]
        miner = FSGMiner(min_support=4, max_edges=3, memory_budget=5)
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            miner.mine(transactions)
        assert excinfo.value.budget == 5
        assert excinfo.value.candidates > 5

    def test_budget_truncates_when_not_aborting(self):
        transactions = [hub_and_spoke(6, edge_labels=[1, 2, 3, 4, 5, 6], prefix=f"h{i}") for i in range(4)]
        miner = FSGMiner(min_support=4, max_edges=3, memory_budget=5, abort_on_budget=False)
        result = miner.mine(transactions)
        assert result.aborted
        assert "memory budget" in result.abort_reason

    def test_no_budget_allows_completion(self):
        transactions = _transactions_with_planted_star(3, 0)
        result = mine_frequent_subgraphs(transactions, min_support=3, max_edges=3)
        assert not result.aborted


class TestResultContainers:
    def test_by_size_grouping(self):
        transactions = _transactions_with_planted_star(4, 0)
        result = mine_frequent_subgraphs(transactions, min_support=4, max_edges=2)
        grouped = result.by_size()
        assert set(grouped) <= {1, 2}
        assert all(p.n_edges == size for size, patterns in grouped.items() for p in patterns)

    def test_largest_and_top(self):
        transactions = _transactions_with_planted_star(4, 0)
        result = mine_frequent_subgraphs(transactions, min_support=4, max_edges=2)
        largest = result.largest()
        assert largest is not None and largest.n_edges == max(p.n_edges for p in result.patterns)
        top = result.top(2)
        assert len(top) == 2
        assert top[0].support >= top[1].support

    def test_relative_support(self):
        pattern = FrequentSubgraph(pattern=chain(1), support=3, supporting_transactions=frozenset({0, 1, 2}))
        assert pattern.relative_support(6) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            pattern.relative_support(0)

    def test_shape_counts(self):
        transactions = _transactions_with_planted_star(4, 0)
        result = mine_frequent_subgraphs(transactions, min_support=4, max_edges=2)
        counts = result.shape_counts()
        assert sum(counts.values()) == len(result.patterns)
