"""Tests for the EM (Gaussian mixture) clustering implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mining.em_clustering import EMClustering, cross_validated_log_likelihood


def _two_blob_data(n_per_blob: int = 60, seed: int = 5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    blob_a = rng.normal(loc=[0.0, 0.0], scale=0.3, size=(n_per_blob, 2))
    blob_b = rng.normal(loc=[5.0, 5.0], scale=0.3, size=(n_per_blob, 2))
    return np.vstack([blob_a, blob_b])


def _blobs_with_outliers(seed: int = 5) -> np.ndarray:
    data = _two_blob_data(seed=seed)
    outliers = np.array([[30.0, -20.0], [30.5, -20.5], [29.5, -19.5]])
    return np.vstack([data, outliers])


class TestFitValidation:
    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            EMClustering(n_clusters=2).fit(np.empty((0, 2)))

    def test_more_clusters_than_rows_rejected(self):
        with pytest.raises(ValueError):
            EMClustering(n_clusters=10).fit(np.ones((3, 2)))

    def test_attribute_name_length_checked(self):
        with pytest.raises(ValueError):
            EMClustering(n_clusters=2).fit(_two_blob_data(), attribute_names=["only_one"])

    def test_predict_requires_fit(self):
        with pytest.raises(RuntimeError):
            EMClustering(n_clusters=2).predict(_two_blob_data())


class TestClustering:
    def test_separates_two_blobs(self):
        data = _two_blob_data()
        model = EMClustering(n_clusters=2, seed=3).fit(data)
        labels = np.array(model.predict(data))
        first_half = labels[:60]
        second_half = labels[60:]
        # Each blob should be (almost) entirely one cluster.
        assert len(set(first_half)) == 1
        assert len(set(second_half)) == 1
        assert first_half[0] != second_half[0]

    def test_outliers_get_their_own_small_cluster(self):
        data = _blobs_with_outliers()
        model = EMClustering(n_clusters=3, seed=3).fit(data, attribute_names=["x", "y"])
        summaries = model.cluster_summaries(data)
        sizes = sorted(summary.size for summary in summaries)
        assert sizes[0] == 3
        outlier_summary = min(summaries, key=lambda s: s.size)
        assert outlier_summary.means["x"] == pytest.approx(30.0, abs=1.0)

    def test_reproducible_with_same_seed(self):
        data = _two_blob_data()
        first = EMClustering(n_clusters=2, seed=9).fit(data).predict(data)
        second = EMClustering(n_clusters=2, seed=9).fit(data).predict(data)
        assert first == second

    def test_log_likelihood_improves_over_single_cluster(self):
        data = _two_blob_data()
        single = EMClustering(n_clusters=1, seed=3).fit(data)
        double = EMClustering(n_clusters=2, seed=3).fit(data)
        assert double.log_likelihood(data) > single.log_likelihood(data)

    def test_cluster_summary_statistics(self):
        data = _two_blob_data()
        model = EMClustering(n_clusters=2, seed=3).fit(data, attribute_names=["x", "y"])
        summaries = model.cluster_summaries(data)
        assert sum(summary.size for summary in summaries) == data.shape[0]
        for summary in summaries:
            assert set(summary.means) == {"x", "y"}
            assert summary.mean_of("x") == summary.means["x"]

    def test_constant_column_handled(self):
        data = _two_blob_data()
        data_with_constant = np.hstack([data, np.ones((data.shape[0], 1))])
        model = EMClustering(n_clusters=2, seed=3).fit(data_with_constant)
        assert len(set(model.predict(data_with_constant))) == 2


class TestModelSelection:
    def test_cross_validated_log_likelihood_prefers_true_k(self):
        data = _two_blob_data(n_per_blob=45)
        score_two = cross_validated_log_likelihood(data, n_clusters=2, folds=3, seed=1)
        score_one = cross_validated_log_likelihood(data, n_clusters=1, folds=3, seed=1)
        assert score_two > score_one

    def test_cross_validation_requires_enough_rows(self):
        with pytest.raises(ValueError):
            cross_validated_log_likelihood(np.ones((5, 2)), n_clusters=3, folds=3)
