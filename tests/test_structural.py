"""Tests for Algorithm 1: repeated partitioning plus FSG on a single graph."""

from __future__ import annotations

import pytest

from repro.graphs.motifs import MotifShape, hub_and_spoke
from repro.partitioning.split_graph import PartitionStrategy
from repro.partitioning.structural import (
    StructuralMiningConfig,
    mine_single_graph,
)
from repro.patterns.planted import PlantedGraphSpec, build_planted_graph


def _planted_host(copies: int = 8):
    spec = PlantedGraphSpec(background_edges=10, seed=3)
    spec.add("star", hub_and_spoke(2, edge_labels=[1, 1]), copies=copies)
    return build_planted_graph(spec)


class TestStructuralMining:
    def test_invalid_repetitions_rejected(self):
        planted = _planted_host()
        with pytest.raises(ValueError):
            mine_single_graph(planted.graph, StructuralMiningConfig(repetitions=0))

    def test_planted_star_recovered(self):
        planted = _planted_host(copies=8)
        config = StructuralMiningConfig(
            k=6, repetitions=2, min_support=3, strategy=PartitionStrategy.BREADTH_FIRST,
            max_pattern_edges=2, seed=5,
        )
        result = mine_single_graph(planted.graph, config)
        assert any(
            pattern.n_edges == 2 and pattern.shape is MotifShape.HUB_AND_SPOKE
            for pattern in result.patterns
        )

    def test_union_deduplicates_across_repetitions(self):
        planted = _planted_host(copies=8)
        config = StructuralMiningConfig(k=6, repetitions=3, min_support=3, max_pattern_edges=2, seed=5)
        result = mine_single_graph(planted.graph, config)
        invariants = set()
        from repro.graphs.canonical import graph_invariant

        for pattern in result.patterns:
            key = graph_invariant(pattern.pattern)
            assert key not in invariants or True  # duplicates may share invariant only if non-isomorphic
        # Stronger check: no two reported patterns are isomorphic.
        from repro.graphs.isomorphism import are_isomorphic

        for i, first in enumerate(result.patterns):
            for second in result.patterns[i + 1:]:
                assert not are_isomorphic(first.pattern, second.pattern)

    def test_per_repetition_counts_recorded(self):
        planted = _planted_host()
        config = StructuralMiningConfig(k=6, repetitions=2, min_support=3, max_pattern_edges=2, seed=5)
        result = mine_single_graph(planted.graph, config)
        assert len(result.per_repetition_counts) == 2
        assert len(result.per_repetition_results) == 2
        assert result.average_patterns_per_repetition == pytest.approx(
            sum(result.per_repetition_counts) / 2
        )

    def test_more_repetitions_never_reduce_found_patterns(self):
        planted = _planted_host()
        single = mine_single_graph(
            planted.graph,
            StructuralMiningConfig(k=6, repetitions=1, min_support=3, max_pattern_edges=2, seed=5),
        )
        triple = mine_single_graph(
            planted.graph,
            StructuralMiningConfig(k=6, repetitions=3, min_support=3, max_pattern_edges=2, seed=5),
        )
        assert len(triple) >= len(single)

    def test_result_iterable(self):
        planted = _planted_host()
        result = mine_single_graph(
            planted.graph,
            StructuralMiningConfig(k=6, repetitions=1, min_support=3, max_pattern_edges=1, seed=5),
        )
        assert len(list(result)) == len(result)
