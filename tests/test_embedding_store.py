"""Tests for the incremental embedding store and bitset TID algebra.

The store answers level-(k+1) support queries by extending stored
level-k embeddings; everything here verifies the one property that
matters — anchors change wall-clock, never verdicts — plus the cap /
budget / lifecycle plumbing that keeps the store bounded.
"""

from __future__ import annotations

import random

import pytest

from repro.graphs.engine import EmbeddingTask, MatchEngine
from repro.graphs.labeled_graph import LabeledGraph
from repro.mining.fsg.miner import FSGMiner
from repro.runtime import LevelRequest, SerialRuntime, ShardedEngine
from repro.runtime.bitsets import (
    bits_of,
    is_contiguous,
    popcount,
    shift_bits,
    tids_of,
    translate_bits,
)


def _random_corpus(seed: int, n: int = 40) -> list[LabeledGraph]:
    rng = random.Random(seed)
    vertex_labels = ["a", "b", "c"]
    edge_labels = ["x", "y"]
    corpus: list[LabeledGraph] = []
    for index in range(n):
        graph = LabeledGraph(name=f"t{index}")
        n_vertices = rng.randint(5, 9)
        for vertex in range(n_vertices):
            graph.add_vertex(f"v{vertex}", rng.choice(vertex_labels))
        n_edges = rng.randint(n_vertices, n_vertices + 5)
        added = 0
        while added < n_edges:
            source, target = rng.sample(range(n_vertices), 2)
            if graph.has_edge(f"v{source}", f"v{target}"):
                continue
            graph.add_edge(f"v{source}", f"v{target}", rng.choice(edge_labels))
            added += 1
        corpus.append(graph)
    return corpus


def _signature(result):
    return sorted(
        (
            entry.pattern.n_vertices,
            entry.pattern.n_edges,
            tuple(sorted(entry.supporting_transactions)),
        )
        for entry in result.patterns
    )


def _edge_pattern() -> LabeledGraph:
    pattern = LabeledGraph(name="parent")
    pattern.add_vertex("p0", "a")
    pattern.add_vertex("p1", "b")
    pattern.add_edge("p0", "p1", "x")
    return pattern


def _extended_pattern() -> LabeledGraph:
    """The parent plus one forward edge ``p1 -y-> p2(c)``."""
    pattern = _edge_pattern()
    pattern.add_vertex("p2", "c")
    pattern.add_edge("p1", "p2", "y")
    return pattern


class TestBitsets:
    def test_round_trip_and_popcount(self):
        tids = [0, 3, 17, 64, 130]
        bits = bits_of(tids)
        assert tids_of(bits) == tids
        assert popcount(bits) == len(tids)
        assert bits_of([]) == 0 and tids_of(0) == []

    def test_set_algebra_matches_frozensets(self):
        first, second = {1, 4, 9, 70}, {4, 9, 12}
        assert tids_of(bits_of(first) & bits_of(second)) == sorted(first & second)
        assert tids_of(bits_of(first) | bits_of(second)) == sorted(first | second)

    def test_shift_and_translate(self):
        bits = bits_of([2, 5])
        assert tids_of(shift_bits(bits, 10)) == [12, 15]
        assert tids_of(shift_bits(shift_bits(bits, 10), -10)) == [2, 5]
        assert tids_of(translate_bits(bits, {2: 40, 5: 3})) == [3, 40]
        assert is_contiguous([7, 8, 9]) and not is_contiguous([7, 9])
        assert is_contiguous([])


class TestMiningEquivalence:
    @pytest.mark.parametrize("seed", [11, 29])
    def test_store_on_equals_store_off_serial(self, seed):
        corpus = _random_corpus(seed)
        on = FSGMiner(min_support=0.15, max_edges=4, use_embedding_store=True).mine(corpus)
        off = FSGMiner(min_support=0.15, max_edges=4, use_embedding_store=False).mine(corpus)
        assert _signature(on) == _signature(off)

    @pytest.mark.parametrize("shards", [2, 3])
    def test_store_on_equals_store_off_sharded(self, shards):
        corpus = _random_corpus(5)
        reference = FSGMiner(
            min_support=0.15, max_edges=4, use_embedding_store=False
        ).mine(corpus)
        runtime = ShardedEngine(shards=shards, backend="serial")
        try:
            sharded = FSGMiner(min_support=0.15, max_edges=4, runtime=runtime).mine(corpus)
        finally:
            runtime.close()
        assert _signature(sharded) == _signature(reference)

    def test_tiny_caps_force_fallback_but_not_divergence(self):
        # anchor_cap=1 overflows every multi-embedding anchor set and
        # anchor_budget=3 spills almost everything; support must not care.
        corpus = _random_corpus(17)
        engine = MatchEngine(anchor_cap=1, anchor_budget=3)
        runtime = SerialRuntime(engine=engine)
        capped = FSGMiner(min_support=0.15, max_edges=3, engine=engine, runtime=runtime).mine(corpus)
        reference = FSGMiner(min_support=0.15, max_edges=3, use_embedding_store=False).mine(corpus)
        assert _signature(capped) == _signature(reference)
        assert engine.stats.anchor_fallbacks > 0

    def test_anchors_are_retired_after_the_run(self):
        engine = MatchEngine()
        runtime = SerialRuntime(engine=engine)
        FSGMiner(min_support=0.2, max_edges=3, engine=engine, runtime=runtime).mine(
            _random_corpus(23)
        )
        assert engine.anchor_load == 0


class TestExtensionPaths:
    def _host(self) -> LabeledGraph:
        """Two disjoint a-x->b edges; only the second continues b-y->c."""
        host = LabeledGraph(name="host")
        for name, label in [
            ("u0", "a"), ("u1", "b"), ("u2", "a"), ("u3", "b"), ("u4", "c"),
        ]:
            host.add_vertex(name, label)
        host.add_edge("u0", "u1", "x")
        host.add_edge("u2", "u3", "x")
        host.add_edge("u3", "u4", "y")
        return host

    def test_capped_anchor_miss_falls_back_to_full_search(self):
        # With anchor_cap=1 only the first a-x->b embedding (u0, u1) is
        # stored, and it does not extend by y; the incomplete anchor set
        # must trigger the fallback, which finds the (u2, u3, u4) match.
        engine = MatchEngine(anchor_cap=1)
        (tid,) = engine.add_transactions([self._host()])
        parent, child = _edge_pattern(), _extended_pattern()
        assert engine.support_with_embeddings(
            [EmbeddingTask(pattern=parent, tids=[tid], uid="parent")]
        ) == [[tid]]
        before = engine.stats.anchor_fallbacks
        result = engine.support_with_embeddings(
            [
                EmbeddingTask(
                    pattern=child,
                    tids=[tid],
                    uid="child",
                    parent_uid="parent",
                    extension=(1, 2, True),
                )
            ]
        )
        assert result == [[tid]]
        assert engine.stats.anchor_fallbacks > before
        assert engine.support(child, [tid]) == frozenset({tid})

    def test_complete_anchor_miss_is_a_definitive_no(self):
        # With a roomy cap the parent's anchor set is complete, so a
        # child that extends nowhere is rejected without any search.
        host = self._host()
        host.remove_edge("u3", "u4")
        engine = MatchEngine(anchor_cap=8)
        (tid,) = engine.add_transactions([host])
        parent, child = _edge_pattern(), _extended_pattern()
        engine.support_with_embeddings(
            [EmbeddingTask(pattern=parent, tids=[tid], uid="parent")]
        )
        before = engine.stats.anchor_fallbacks
        result = engine.support_with_embeddings(
            [
                EmbeddingTask(
                    pattern=child,
                    tids=[tid],
                    uid="child",
                    parent_uid="parent",
                    extension=(1, 2, True),
                )
            ]
        )
        assert result == [[]]
        assert engine.stats.anchor_fallbacks == before
        assert engine.stats.anchor_complete_rejects > 0

    def test_early_abort_returns_partial_below_threshold(self):
        corpus = [self._host() for _ in range(6)]
        engine = MatchEngine()
        tids = engine.add_transactions(corpus)
        impossible = LabeledGraph(name="absent")
        impossible.add_vertex("q0", "c")
        impossible.add_vertex("q1", "a")
        impossible.add_edge("q0", "q1", "x")
        (hits,) = engine.support_with_embeddings(
            [EmbeddingTask(pattern=impossible, tids=tids, abort_below=4)]
        )
        assert len(hits) < 4
        assert engine.stats.support_aborts >= 1

    def test_mutated_transaction_invalidates_anchors(self):
        # Regression: anchors must honour the same version discipline as
        # the verdict LRU.  Seed complete parent anchors, then mutate the
        # registered transaction so a *new* parent embedding (absent from
        # the stale anchors) is the only one that extends; a stale
        # complete-set reject here would be a wrong definitive "no" — and
        # would poison the verdict cache for plain support() too.
        host = LabeledGraph(name="mutating")
        host.add_vertex("a", "a")
        host.add_vertex("b", "b")
        host.add_edge("a", "b", "x")
        engine = MatchEngine()
        (tid,) = engine.add_transactions([host])
        parent, child = _edge_pattern(), _extended_pattern()
        engine.support_with_embeddings(
            [EmbeddingTask(pattern=parent, tids=[tid], uid="parent")]
        )
        host.add_vertex("a2", "a")
        host.add_vertex("b2", "b")
        host.add_vertex("c", "c")
        host.add_edge("a2", "b2", "x")
        host.add_edge("b2", "c", "y")
        result = engine.support_with_embeddings(
            [
                EmbeddingTask(
                    pattern=child,
                    tids=[tid],
                    uid="child",
                    parent_uid="parent",
                    extension=(1, 2, True),
                )
            ]
        )
        assert result == [[tid]]
        assert engine.support(child, [tid]) == frozenset({tid})

    def test_release_transactions_evicts_anchors(self):
        engine = MatchEngine()
        (tid,) = engine.add_transactions([self._host()])
        engine.support_with_embeddings(
            [EmbeddingTask(pattern=_edge_pattern(), tids=[tid], uid="parent")]
        )
        assert engine.anchor_load > 0
        engine.release_transactions([tid])
        assert engine.anchor_load == 0

    def test_drop_anchors_frees_budget(self):
        engine = MatchEngine()
        (tid,) = engine.add_transactions([self._host()])
        engine.support_with_embeddings(
            [EmbeddingTask(pattern=_edge_pattern(), tids=[tid], uid="parent")]
        )
        load = engine.anchor_load
        assert load > 0
        engine.drop_anchors(["parent", "never-stored"])
        assert engine.anchor_load == 0


class TestRuntimeLevelAPI:
    @pytest.mark.parametrize("shards", [2, 3])
    def test_sharded_level_bitsets_match_serial(self, shards):
        corpus = _random_corpus(31, n=24)
        parent, child = _edge_pattern(), _extended_pattern()

        def level_bits(runtime):
            tids = runtime.add_transactions(corpus)
            bits = bits_of(tids)
            try:
                (parent_bits,) = runtime.batch_support_level(
                    [LevelRequest(pattern=parent, tid_bits=bits, uid=("r", 0))]
                )
                (child_bits,) = runtime.batch_support_level(
                    [
                        LevelRequest(
                            pattern=child,
                            tid_bits=parent_bits,
                            uid=("r", 1),
                            parent_uid=("r", 0),
                            extension=(1, 2, True),
                        )
                    ]
                )
            finally:
                runtime.release_transactions(tids)
            return parent_bits, child_bits

        serial = level_bits(SerialRuntime())
        runtime = ShardedEngine(shards=shards, backend="serial")
        try:
            sharded = level_bits(runtime)
        finally:
            runtime.close()
        assert serial == sharded
        assert popcount(serial[1]) <= popcount(serial[0])
