"""Differential tests: the indexed MatchEngine against the legacy pure-python path.

The engine must be a drop-in replacement for the original dict-of-dicts
backtracking matcher: on randomized labeled graphs, embedding sets,
isomorphism verdicts, and support counts have to agree exactly.  The
legacy implementations are kept in :mod:`repro.graphs.isomorphism` as the
``legacy_*`` functions precisely so these tests have an oracle.
"""

from __future__ import annotations

import random

import pytest

from repro.graphs.canonical import CanonicalizationError, canonical_code
from repro.graphs.compact import CompactGraph, LabelTable
from repro.graphs.engine import MatchEngine
from repro.graphs.index import GraphIndex
from repro.graphs.isomorphism import (
    legacy_are_isomorphic,
    legacy_find_embeddings,
    legacy_has_embedding,
)
from repro.graphs.labeled_graph import LabeledGraph
from repro.mining.fsg.candidates import Candidate, deduplicate


def _random_graph(
    rng: random.Random,
    n_vertices: int,
    n_edges: int,
    n_vertex_labels: int = 3,
    n_edge_labels: int = 3,
    prefix: str = "v",
) -> LabeledGraph:
    graph = LabeledGraph(name="random")
    for index in range(n_vertices):
        graph.add_vertex(f"{prefix}{index}", f"L{rng.randrange(n_vertex_labels)}")
    vertices = [f"{prefix}{i}" for i in range(n_vertices)]
    if n_vertices < 2:
        return graph
    for _ in range(n_edges * 3):
        if graph.n_edges >= n_edges:
            break
        source, target = rng.sample(vertices, 2)
        if not graph.has_edge(source, target):
            graph.add_edge(source, target, f"e{rng.randrange(n_edge_labels)}")
    return graph


def _random_pattern(rng: random.Random, target: LabeledGraph, n_edges: int) -> LabeledGraph:
    """A small pattern grown from a random connected piece of *target*."""
    edges = list(target.edges())
    rng.shuffle(edges)
    if not edges:
        return LabeledGraph(name="empty-pattern")
    chosen = [edges[0]]
    covered = {edges[0].source, edges[0].target}
    for edge in edges[1:]:
        if len(chosen) >= n_edges:
            break
        if edge.source in covered or edge.target in covered:
            chosen.append(edge)
            covered.update((edge.source, edge.target))
    pattern = LabeledGraph(name="sampled-pattern")
    renamed = {vertex: f"p{index}" for index, vertex in enumerate(sorted(covered, key=str))}
    for vertex in covered:
        pattern.add_vertex(renamed[vertex], target.vertex_label(vertex))
    for edge in chosen:
        pattern.add_edge(renamed[edge.source], renamed[edge.target], edge.label)
    return pattern


def _embedding_set(mappings: list[dict]) -> set[frozenset]:
    return {frozenset(mapping.items()) for mapping in mappings}


class TestDifferentialEmbeddings:
    @pytest.mark.parametrize("seed", range(12))
    def test_embedding_sets_match_legacy(self, seed):
        rng = random.Random(seed)
        engine = MatchEngine()
        target = _random_graph(rng, n_vertices=rng.randint(5, 14), n_edges=rng.randint(4, 24))
        for trial in range(4):
            pattern = _random_pattern(rng, target, n_edges=rng.randint(1, 4))
            expected = _embedding_set(legacy_find_embeddings(pattern, target))
            actual = _embedding_set(engine.find_embeddings(pattern, target))
            assert actual == expected

    @pytest.mark.parametrize("seed", range(12, 20))
    def test_unrelated_pattern_verdicts_match_legacy(self, seed):
        rng = random.Random(seed)
        engine = MatchEngine()
        target = _random_graph(rng, n_vertices=10, n_edges=15)
        for trial in range(6):
            pattern = _random_graph(
                rng, n_vertices=rng.randint(2, 4), n_edges=rng.randint(1, 4), prefix="q"
            )
            assert engine.has_embedding(pattern, target) == legacy_has_embedding(pattern, target)

    def test_empty_pattern_and_empty_target(self):
        engine = MatchEngine()
        empty = LabeledGraph()
        target = _random_graph(random.Random(1), 5, 6)
        assert engine.find_embeddings(empty, target) == [{}]
        assert engine.has_embedding(empty, empty)
        assert engine.find_embeddings(target, empty) == []

    def test_max_count_limits_results(self):
        rng = random.Random(3)
        engine = MatchEngine()
        target = _random_graph(rng, 10, 20, n_vertex_labels=1, n_edge_labels=1)
        pattern = _random_pattern(rng, target, 1)
        limited = engine.find_embeddings(pattern, target, max_count=2)
        assert len(limited) == 2


class TestDifferentialIsomorphism:
    @pytest.mark.parametrize("seed", range(20, 32))
    def test_verdicts_match_legacy(self, seed):
        rng = random.Random(seed)
        engine = MatchEngine()
        first = _random_graph(rng, rng.randint(3, 8), rng.randint(2, 10))
        # A structure-preserving rename of `first` (always isomorphic).
        renamed = LabeledGraph(name="renamed")
        for vertex in first.vertices():
            renamed.add_vertex(("moved", vertex), first.vertex_label(vertex))
        for edge in first.edges():
            renamed.add_edge(("moved", edge.source), ("moved", edge.target), edge.label)
        # An independent random graph (usually not isomorphic).
        other = _random_graph(rng, rng.randint(3, 8), rng.randint(2, 10), prefix="w")
        for left, right in [(first, renamed), (first, other), (renamed, other)]:
            assert engine.are_isomorphic(left, right) == legacy_are_isomorphic(left, right)


class TestDifferentialSupport:
    @pytest.mark.parametrize("seed", range(32, 38))
    def test_support_matches_legacy_scan(self, seed):
        rng = random.Random(seed)
        engine = MatchEngine()
        transactions = [
            _random_graph(rng, rng.randint(4, 10), rng.randint(3, 14), prefix=f"t{i}_")
            for i in range(12)
        ]
        engine.add_transactions(transactions)
        pattern = _random_pattern(rng, transactions[rng.randrange(len(transactions))], 2)
        expected = frozenset(
            tid
            for tid, transaction in enumerate(transactions)
            if legacy_has_embedding(pattern, transaction)
        )
        assert engine.support(pattern) == expected
        restricted = sorted(expected)[: max(1, len(expected) // 2)]
        assert engine.support(pattern, restricted) == frozenset(restricted) & expected

    def test_verdict_cache_hits_on_repeat_queries(self):
        rng = random.Random(99)
        engine = MatchEngine()
        transactions = [_random_graph(rng, 8, 12, prefix=f"t{i}_") for i in range(10)]
        engine.add_transactions(transactions)
        pattern = _random_pattern(rng, transactions[0], 2)
        first = engine.support(pattern)
        misses = engine.stats.verdict_misses
        second = engine.support(pattern)
        assert second == first
        assert engine.stats.verdict_misses == misses  # all answered from cache
        assert engine.stats.verdict_hits >= len(transactions)

    def test_released_transactions_free_slots_but_keep_tids(self):
        rng = random.Random(5)
        engine = MatchEngine()
        first_batch = [_random_graph(rng, 6, 8, prefix=f"a{i}_") for i in range(4)]
        tids = engine.add_transactions(first_batch)
        pattern = _random_pattern(rng, first_batch[0], 1)
        engine.support(pattern)
        engine.release_transactions(tids)
        with pytest.raises(KeyError):
            engine.support(pattern, tids)
        with pytest.raises(KeyError):
            engine.transaction(tids[0])
        # New registrations get fresh tids after the released slots.
        second_batch = [_random_graph(rng, 6, 8, prefix=f"b{i}_") for i in range(2)]
        new_tids = engine.add_transactions(second_batch)
        assert min(new_tids) > max(tids)
        assert engine.support(pattern, new_tids) == frozenset(
            tid
            for tid, transaction in zip(new_tids, second_batch)
            if legacy_has_embedding(pattern, transaction)
        )

    def test_release_evicts_cached_verdicts(self):
        # Regression: released tids can never hit the verdict cache again
        # (querying them raises first), so leaving their entries in the
        # LRU only crowded out live verdicts.  Release must evict them.
        rng = random.Random(7)
        engine = MatchEngine()
        transactions = [_random_graph(rng, 6, 8, prefix=f"a{i}_") for i in range(4)]
        tids = engine.add_transactions(transactions)
        pattern = _random_pattern(rng, transactions[0], 1)
        engine.support(pattern)
        assert any(key[1] in set(tids) for key in engine._verdicts)
        keep = [_random_graph(rng, 6, 8, prefix=f"b{i}_") for i in range(2)]
        kept_tids = engine.add_transactions(keep)
        engine.support(pattern, kept_tids)
        engine.release_transactions(tids)
        assert not any(key[1] in set(tids) for key in engine._verdicts)
        assert any(key[1] in set(kept_tids) for key in engine._verdicts)

    def test_support_early_abort_stops_short_of_threshold(self):
        rng = random.Random(13)
        engine = MatchEngine()
        transactions = [_random_graph(rng, 6, 8, prefix=f"t{i}_") for i in range(10)]
        tids = engine.add_transactions(transactions)
        pattern = LabeledGraph()
        pattern.add_vertex("p0", "absent-label")
        pattern.add_vertex("p1", "absent-label")
        pattern.add_edge("p0", "p1", "absent-edge")
        partial = engine.support(pattern, tids, min_support=len(tids) + 5)
        assert len(partial) < len(tids) + 5
        assert engine.stats.support_aborts >= 1
        # A reachable threshold leaves the result exact.
        assert engine.support(pattern, tids, min_support=1) == frozenset()

    def test_mutated_graph_is_reindexed(self):
        engine = MatchEngine()
        target = LabeledGraph()
        target.add_vertex("a", "L")
        target.add_vertex("b", "L")
        target.add_edge("a", "b", "e")
        pattern = LabeledGraph()
        pattern.add_vertex("p0", "L")
        pattern.add_vertex("p1", "L")
        pattern.add_edge("p0", "p1", "x")
        assert not engine.has_embedding(pattern, target)
        target.add_edge("a", "b", "x")  # overwrite the label; bumps the version
        assert engine.has_embedding(pattern, target)


class TestCompactRoundTrip:
    @pytest.mark.parametrize("seed", range(40, 46))
    def test_lossless_conversion(self, seed):
        rng = random.Random(seed)
        graph = _random_graph(rng, rng.randint(0, 9), rng.randint(0, 12))
        table = LabelTable()
        compact = CompactGraph.from_labeled(graph, table)
        rebuilt = compact.to_labeled()
        assert set(rebuilt.vertices()) == set(graph.vertices())
        assert {v: rebuilt.vertex_label(v) for v in rebuilt.vertices()} == {
            v: graph.vertex_label(v) for v in graph.vertices()
        }
        assert set(rebuilt.edges()) == set(graph.edges())

    def test_shared_table_interning(self):
        table = LabelTable()
        first = table.intern("A")
        assert table.intern("A") == first
        assert table.lookup("missing") is None
        assert table.label(first) == "A"


class TestIndexMemoization:
    def test_invariant_and_code_memoized(self):
        rng = random.Random(7)
        graph = _random_graph(rng, 5, 6)
        index = GraphIndex(CompactGraph.from_labeled(graph, LabelTable()))
        assert index.invariant() is index.invariant()
        assert index.canonical() == canonical_code(graph)

    def test_canonicalization_error_memoized(self):
        hub = LabeledGraph()
        hub.add_vertex("h", "hub")
        for spoke in range(9):
            hub.add_vertex(f"s{spoke}", "spoke")
            hub.add_edge("h", f"s{spoke}", "e")
        index = GraphIndex(CompactGraph.from_labeled(hub, LabelTable()))
        with pytest.raises(CanonicalizationError):
            index.canonical()
        with pytest.raises(CanonicalizationError):
            index.canonical()  # second probe reuses the memoized failure


class TestSymmetricDeduplication:
    def _symmetric_star(self, prefix: str) -> LabeledGraph:
        """A 9-spoke uniform star: 9! colour orderings defeat canonicalisation."""
        star = LabeledGraph(name=f"{prefix}-star")
        star.add_vertex(f"{prefix}h", "hub")
        for spoke in range(9):
            star.add_vertex(f"{prefix}s{spoke}", "spoke")
            star.add_edge(f"{prefix}h", f"{prefix}s{spoke}", "e")
        return star

    def test_dedup_survives_canonicalization_error(self):
        engine = MatchEngine()
        first = self._symmetric_star("a")
        second = self._symmetric_star("b")
        with pytest.raises(CanonicalizationError):
            engine.canonical_code(first)
        merged = deduplicate(
            [
                Candidate(pattern=first, parent_tids=frozenset({0})),
                Candidate(pattern=second, parent_tids=frozenset({1})),
            ],
            engine=engine,
        )
        assert len(merged) == 1
        assert merged[0].parent_tids == frozenset({0, 1})

    def test_dedup_keeps_nonisomorphic_symmetric_patterns(self):
        engine = MatchEngine()
        star = self._symmetric_star("a")
        other = self._symmetric_star("b")
        other.add_edge("bs0", "bs1", "x")  # break isomorphism, keep symmetry high
        merged = deduplicate(
            [
                Candidate(pattern=star, parent_tids=frozenset({0})),
                Candidate(pattern=other, parent_tids=frozenset({1})),
            ],
            engine=engine,
        )
        assert len(merged) == 2
