"""Tests for the parallel mining runtime (repro.runtime).

The load-bearing property is *equivalence*: whatever the shard count or
backend, mining output — frequent pattern sets and per-pattern support
counts — must be identical to the serial runtime's.  The suite checks it
property-style on randomized corpora, plus the wire-format/pickling
round-trips and the knob plumbing the runtime rides on.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core.config import ExperimentConfig
from repro.graphs.compact import CompactGraph, LabelTable
from repro.graphs.engine import MatchEngine
from repro.graphs.labeled_graph import LabeledGraph
from repro.mining.fsg.miner import FSGMiner
from repro.runtime import (
    BatchSupportPlanner,
    SerialRuntime,
    ShardedEngine,
    WorkerError,
    create_runtime,
    merge_stats,
    resolve_backend,
    resolve_workers,
)
from repro.runtime.pool import ProcessBackend, SerialBackend


# ----------------------------------------------------------------------
# Corpus helpers
# ----------------------------------------------------------------------
def random_transaction(rng: random.Random, name: str) -> LabeledGraph:
    n_vertices = rng.randint(4, 9)
    graph = LabeledGraph(name=name)
    for v in range(n_vertices):
        graph.add_vertex(f"v{v}", rng.choice(["A", "B", "C"]))
    n_edges = rng.randint(n_vertices - 1, n_vertices + 3)
    added = 0
    while added < n_edges:
        a, b = rng.sample(range(n_vertices), 2)
        if graph.has_edge(f"v{a}", f"v{b}"):
            continue
        graph.add_edge(f"v{a}", f"v{b}", rng.choice(["x", "y"]))
        added += 1
    return graph


def random_corpus(seed: int, size: int = 30) -> list[LabeledGraph]:
    rng = random.Random(seed)
    return [random_transaction(rng, f"t{i}") for i in range(size)]


def mining_signature(result):
    """Order-free signature of an FSG result: canonical code + support set."""
    engine = MatchEngine()
    signature = []
    for pattern in result.patterns:
        try:
            code = engine.canonical_code(pattern.pattern)
        except Exception:
            code = f"invariant:{engine.graph_invariant(pattern.pattern)}"
        signature.append((code, pattern.support, tuple(sorted(pattern.supporting_transactions))))
    return sorted(signature)


# ----------------------------------------------------------------------
# Serial vs sharded equivalence (the core property)
# ----------------------------------------------------------------------
class TestEquivalence:
    # One seed stays in the fast tier-1 run; the rest are `slow` and run
    # in the CI scenario-matrix job (pytest -m "").
    @pytest.mark.parametrize(
        "seed",
        [3, pytest.param(11, marks=pytest.mark.slow), pytest.param(29, marks=pytest.mark.slow)],
    )
    @pytest.mark.parametrize("shards", [2, 3])
    def test_sharded_serial_backend_matches_serial(self, seed, shards):
        corpus = random_corpus(seed)
        baseline = FSGMiner(min_support=3, max_edges=3).mine(corpus)
        runtime = ShardedEngine(shards=shards, backend="serial")
        try:
            sharded = FSGMiner(min_support=3, max_edges=3, runtime=runtime).mine(corpus)
        finally:
            runtime.close()
        assert mining_signature(sharded) == mining_signature(baseline)

    @pytest.mark.slow
    def test_process_backend_matches_serial(self):
        corpus = random_corpus(5, size=20)
        baseline = FSGMiner(min_support=3, max_edges=3).mine(corpus)
        runtime = ShardedEngine(shards=2, backend="process")
        try:
            sharded = FSGMiner(min_support=3, max_edges=3, runtime=runtime).mine(corpus)
        finally:
            runtime.close()
        assert mining_signature(sharded) == mining_signature(baseline)

    def test_shared_sharded_runtime_across_runs(self):
        # A runtime that serves several mining rounds (the structural
        # miner's pattern) must release each round's transactions and keep
        # answering correctly with fresh global tids.
        corpus_a = random_corpus(7, size=15)
        corpus_b = random_corpus(8, size=15)
        runtime = ShardedEngine(shards=2, backend="serial")
        try:
            miner = FSGMiner(min_support=3, max_edges=2, runtime=runtime)
            first = miner.mine(corpus_a)
            second = miner.mine(corpus_b)
        finally:
            runtime.close()
        assert mining_signature(first) == mining_signature(
            FSGMiner(min_support=3, max_edges=2).mine(corpus_a)
        )
        assert mining_signature(second) == mining_signature(
            FSGMiner(min_support=3, max_edges=2).mine(corpus_b)
        )

    def test_batch_support_matches_pattern_major(self):
        corpus = random_corpus(13, size=12)
        pattern = LabeledGraph(name="p")
        pattern.add_vertex("a", "A")
        pattern.add_vertex("b", "B")
        pattern.add_edge("a", "b", "x")
        serial = SerialRuntime()
        tids = serial.add_transactions(corpus)
        expected = serial.support(pattern, tids)
        engine = MatchEngine()
        engine.add_transactions(corpus)
        batched = engine.batch_support([pattern, pattern], [tids, tids[:5]])
        assert batched[0] == expected
        assert batched[1] == expected & frozenset(tids[:5])


# ----------------------------------------------------------------------
# Wire format and pickling round-trips
# ----------------------------------------------------------------------
class TestWireAndPickle:
    def test_label_table_pickle_round_trip(self):
        table = LabelTable()
        for label in ["A", "B", ("tuple", 1), 42]:
            table.intern(label)
        clone = pickle.loads(pickle.dumps(table))
        assert len(clone) == len(table)
        for label in ["A", "B", ("tuple", 1), 42]:
            assert clone.lookup(label) == table.lookup(label)

    def test_empty_label_table_pickle(self):
        clone = pickle.loads(pickle.dumps(LabelTable()))
        assert len(clone) == 0
        assert clone.intern("fresh") == 0

    @staticmethod
    def _structure(graph: LabeledGraph):
        vertices = {vertex: graph.vertex_label(vertex) for vertex in graph.vertices()}
        edges = {(edge.source, edge.target, edge.label) for edge in graph.edges()}
        return vertices, edges

    def test_compact_graph_pickle_round_trip(self):
        graph = random_transaction(random.Random(1), "g")
        table = LabelTable()
        compact = CompactGraph.from_labeled(graph, table)
        clone = pickle.loads(pickle.dumps(compact))
        assert self._structure(clone.to_labeled()) == self._structure(graph)
        assert clone.vertex_labels == compact.vertex_labels
        assert clone.out_adj == compact.out_adj
        assert clone.in_adj == compact.in_adj

    def test_wire_round_trip_preserves_graph(self):
        graph = random_transaction(random.Random(2), "g")
        sender = LabelTable()
        compact = CompactGraph.from_labeled(graph, sender)
        replica = LabelTable()
        replica.extend(sender.snapshot(0))
        rebuilt = CompactGraph.from_wire(compact.to_wire(), replica)
        assert self._structure(rebuilt.to_labeled()) == self._structure(graph)

    def test_snapshot_extend_delta_protocol(self):
        parent = LabelTable()
        replica = LabelTable()
        parent.intern("A")
        replica.extend(parent.snapshot(0))
        parent.intern("B")
        parent.intern("C")
        replica.extend(parent.snapshot(1))
        assert replica.lookup("C") == parent.lookup("C")
        with pytest.raises(ValueError):
            replica.extend(["A"])


# ----------------------------------------------------------------------
# Worker pools
# ----------------------------------------------------------------------
class _EchoHandler:
    def __call__(self, message):
        if message[0] == "boom":
            raise RuntimeError("handler exploded")
        return ("echo", *message)


class TestWorkerPools:
    def test_serial_backend_round_trip(self):
        pool = SerialBackend(2, _EchoHandler)
        assert pool.call(0, ("ping",)) == ("echo", "ping")
        pool.close()

    def test_process_backend_round_trip_and_error(self):
        pool = ProcessBackend(2, _EchoHandler)
        try:
            assert pool.call(1, ("ping",)) == ("echo", "ping")
            with pytest.raises(WorkerError, match="handler exploded"):
                pool.call(0, ("boom",))
            # The worker survives a handler error.
            assert pool.call(0, ("still-alive",)) == ("echo", "still-alive")
        finally:
            pool.close()

    def test_broadcast_collects_all(self):
        pool = SerialBackend(3, _EchoHandler)
        assert pool.broadcast(("hi",)) == [("echo", "hi")] * 3
        pool.close()


# ----------------------------------------------------------------------
# Runtime facade: stats, release, planner, knobs
# ----------------------------------------------------------------------
class TestShardedEngine:
    def test_stats_aggregate_across_shards(self):
        corpus = random_corpus(17, size=10)
        runtime = ShardedEngine(shards=2, backend="serial")
        try:
            tids = runtime.add_transactions(corpus)
            pattern = LabeledGraph(name="p")
            pattern.add_vertex("a", "A")
            pattern.add_vertex("b", "B")
            pattern.add_edge("a", "b", "x")
            runtime.batch_support([pattern], [tids])
            stats = runtime.stats()
        finally:
            runtime.close()
        assert stats["shards"] == 2
        # Every transaction indexed once across the shards, plus one
        # pattern index per shard that received the batch.
        assert stats["indexes_built"] >= len(corpus)
        assert stats["searches"] + stats["early_rejects"] > 0

    def test_merge_stats_sums_keywise(self):
        merged = merge_stats([{"a": 1, "b": 2}, {"a": 3, "c": 4}])
        assert merged == {"a": 4, "b": 2, "c": 4}

    def test_release_then_query_raises(self):
        corpus = random_corpus(19, size=4)
        runtime = ShardedEngine(shards=2, backend="serial")
        try:
            tids = runtime.add_transactions(corpus)
            runtime.release_transactions(tids[:2])
            pattern = corpus[0].copy()
            with pytest.raises(KeyError):
                runtime.batch_support([pattern], [tids[:1]])
        finally:
            runtime.close()

    def test_planner_skips_shards_without_tids(self):
        planner = BatchSupportPlanner(3)
        table = LabelTable()
        pattern = LabeledGraph(name="p")
        pattern.add_vertex("a", "A")
        # Both tids live on shard 1; shards 0 and 2 get empty batches.
        batches = planner.plan([pattern], [[4, 7]], table, lambda tid: (1, tid))
        assert [batch.is_empty() for batch in batches] == [True, False, True]
        assert batches[1].tid_lists == [[4, 7]]

    def test_round_robin_placement_legacy_policy(self):
        corpus = random_corpus(23, size=6)
        runtime = ShardedEngine(shards=3, backend="serial", placement="roundrobin")
        try:
            tids = runtime.add_transactions(corpus)
            shards = [runtime.locate(tid)[0] for tid in tids]
        finally:
            runtime.close()
        assert shards == [0, 1, 2, 0, 1, 2]

    def test_weighted_placement_levels_edge_load(self):
        # Weighted placement assigns each arrival to the lightest shard
        # (weight = edge count), so cumulative loads end near-balanced
        # even when sizes are skewed — and reruns reproduce the layout.
        corpus = random_corpus(23, size=12)
        layouts = []
        for _ in range(2):
            runtime = ShardedEngine(shards=3, backend="serial")
            try:
                tids = runtime.add_transactions(corpus)
                layouts.append([runtime.locate(tid)[0] for tid in tids])
                loads = runtime.placement_loads
            finally:
                runtime.close()
            weights = [max(1, graph.n_edges) for graph in corpus]
            assert sum(loads) == sum(weights)
            assert max(loads) - min(loads) <= max(weights)
        assert layouts[0] == layouts[1]

    def test_weighted_placement_degenerates_to_round_robin_on_uniform(self):
        from repro.runtime.planner import PlacementPolicy

        policy = PlacementPolicy(3, "weighted")
        shards = [policy.place(5) for _ in range(6)]
        assert shards == [0, 1, 2, 0, 1, 2]


class TestKnobs:
    def test_resolve_workers_validation(self):
        assert resolve_workers(0) == 0
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4
        with pytest.raises(ValueError):
            resolve_workers(-1)
        with pytest.raises(ValueError):
            resolve_workers(True)

    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3
        monkeypatch.setenv("REPRO_WORKERS", "junk")
        with pytest.raises(ValueError):
            resolve_workers(None)

    def test_resolve_backend_validation(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None) == "process"
        assert resolve_backend("serial") == "serial"
        with pytest.raises(ValueError):
            resolve_backend("threads")

    def test_create_runtime_types(self):
        serial = create_runtime(workers=0)
        assert isinstance(serial, SerialRuntime)
        shared_engine = MatchEngine()
        wrapped = create_runtime(workers=1, engine=shared_engine)
        assert isinstance(wrapped, SerialRuntime)
        assert wrapped.engine is shared_engine
        sharded = create_runtime(workers=2, backend="serial")
        try:
            assert isinstance(sharded, ShardedEngine)
            assert sharded.n_shards == 2
        finally:
            sharded.close()

    def test_experiment_config_validates_workers(self):
        assert ExperimentConfig(workers=2).workers == 2
        with pytest.raises(ValueError):
            ExperimentConfig(workers=-2)
        with pytest.raises(ValueError):
            ExperimentConfig(backend="threads")

    def test_fsg_miner_workers_zero_is_serial_default(self):
        corpus = random_corpus(31, size=10)
        result = FSGMiner(min_support=3, max_edges=2).mine(corpus)
        assert result.n_transactions == len(corpus)
