"""Tests for periodic-route detection (Section 9 challenge implementation)."""

from __future__ import annotations

from datetime import date, timedelta

import pytest

from repro.datasets.schema import Location, TransMode, Transaction, TransactionDataset
from repro.patterns.periodicity import (
    detect_period,
    lane_activity,
    period_histogram,
    period_score,
    periodic_lanes,
)


def _lane_dataset(pickup_days: list[int], start: date = date(2004, 1, 5)) -> TransactionDataset:
    """A dataset with one lane picked up on the given day offsets."""
    origin = Location(41.9, -87.6)
    destination = Location(39.8, -86.2)
    dataset = TransactionDataset(name="periodic")
    for index, offset in enumerate(pickup_days):
        pickup = start + timedelta(days=offset)
        dataset.add(
            Transaction(
                id=index + 1,
                req_pickup_dt=pickup,
                req_delivery_dt=pickup + timedelta(days=1),
                origin=origin,
                destination=destination,
                total_distance=180.0,
                gross_weight=20_000.0,
                move_transit_hours=30.0,
                trans_mode=TransMode.TRUCKLOAD,
            )
        )
    return dataset


class TestPeriodScore:
    def test_perfect_weekly_gaps(self):
        assert period_score([7, 7, 7, 7], 7) == pytest.approx(1.0)

    def test_tolerant_to_one_day_jitter(self):
        assert period_score([7, 6, 8, 7], 7, tolerance=1) == pytest.approx(1.0)

    def test_skipped_run_still_explained(self):
        # A 14-day gap is a multiple of 7, so a skipped week does not hurt.
        assert period_score([7, 14, 7], 7) == pytest.approx(1.0)

    def test_irregular_gaps_score_low(self):
        assert period_score([3, 11, 5, 19], 7, tolerance=0) < 0.5

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            period_score([7], 0)

    def test_empty_gaps(self):
        assert period_score([], 7) == 0.0


class TestDetectPeriod:
    def test_weekly_lane_detected(self):
        detected = detect_period([date(2004, 1, 5) + timedelta(days=7 * i) for i in range(8)])
        assert detected is not None
        period, regularity = detected
        assert period == 7
        assert regularity == pytest.approx(1.0)

    def test_every_other_day_lane_detected(self):
        detected = detect_period([date(2004, 1, 5) + timedelta(days=2 * i) for i in range(10)])
        assert detected is not None
        assert detected[0] == 2

    def test_too_few_occurrences(self):
        assert detect_period([date(2004, 1, 5), date(2004, 1, 12)]) is None

    def test_irregular_history_returns_none(self):
        dates = [date(2004, 1, 5) + timedelta(days=offset) for offset in (0, 3, 17, 22, 40, 41)]
        assert detect_period(dates, min_regularity=0.8, tolerance=0) is None

    def test_prefers_smaller_period_on_tie(self):
        # Perfectly weekly data is also perfectly bi-weekly; 7 must win.
        dates = [date(2004, 1, 5) + timedelta(days=7 * i) for i in range(10)]
        assert detect_period(dates)[0] == 7


class TestPeriodicLanes:
    def test_weekly_lane_reported(self):
        dataset = _lane_dataset([7 * i for i in range(8)])
        lanes = periodic_lanes(dataset)
        assert len(lanes) == 1
        assert lanes[0].period_days == 7
        assert lanes[0].occurrences == 8

    def test_sporadic_lane_not_reported(self):
        dataset = _lane_dataset([0, 5, 23, 24, 61])
        assert periodic_lanes(dataset, min_regularity=0.9) == []

    def test_lane_activity_sorted(self):
        dataset = _lane_dataset([14, 0, 7])
        activity = lane_activity(dataset)
        dates = next(iter(activity.values()))
        assert dates == sorted(dates)

    def test_generated_dataset_contains_periodic_lanes(self, small_dataset):
        lanes = periodic_lanes(small_dataset, min_occurrences=6, min_regularity=0.7)
        assert lanes, "the generator plants weekly and every-other-day distribution runs"
        histogram = period_histogram(lanes)
        assert any(period in histogram for period in (2, 7))

    def test_period_histogram(self):
        dataset = _lane_dataset([7 * i for i in range(8)])
        histogram = period_histogram(periodic_lanes(dataset))
        assert histogram == {7: 1}
