"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.binning import AttributeBinning
from repro.graphs.canonical import graph_invariant
from repro.graphs.engine import MatchEngine
from repro.graphs.isomorphism import (
    are_isomorphic,
    has_embedding,
    legacy_are_isomorphic,
    legacy_has_embedding,
)
from repro.graphs.labeled_graph import LabeledGraph, LabeledMultiGraph
from repro.mining.fsg.miner import FSGMiner
from repro.mining.interestingness import confidence, leverage, lift
from repro.partitioning.split_graph import PartitionStrategy, coverage_is_exact, split_graph


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def labeled_graphs(draw, max_vertices: int = 7, max_edges: int = 12):
    """A small random labeled directed graph."""
    n_vertices = draw(st.integers(min_value=1, max_value=max_vertices))
    vertex_labels = draw(
        st.lists(st.sampled_from(["place", "depot"]), min_size=n_vertices, max_size=n_vertices)
    )
    graph = LabeledGraph()
    for index, label in enumerate(vertex_labels):
        graph.add_vertex(f"v{index}", label)
    n_edges = draw(st.integers(min_value=0, max_value=max_edges))
    for _ in range(n_edges):
        source = draw(st.integers(min_value=0, max_value=n_vertices - 1))
        target = draw(st.integers(min_value=0, max_value=n_vertices - 1))
        if source == target:
            continue
        label = draw(st.integers(min_value=0, max_value=3))
        graph.add_edge(f"v{source}", f"v{target}", label)
    return graph


@st.composite
def labeled_multigraphs(draw, max_vertices: int = 6, max_lanes: int = 10):
    """A random multigraph whose lanes may carry several parallel edges.

    Parallel edges are what distinguish a multigraph corpus; each lane
    gets 1-4 copies with independently drawn labels, so ``simplify`` has
    real label-vote work to do.
    """
    n_vertices = draw(st.integers(min_value=2, max_value=max_vertices))
    graph = LabeledMultiGraph()
    for index in range(n_vertices):
        graph.add_vertex(f"v{index}", draw(st.sampled_from(["place", "depot"])))
    n_lanes = draw(st.integers(min_value=0, max_value=max_lanes))
    for _ in range(n_lanes):
        source = draw(st.integers(min_value=0, max_value=n_vertices - 1))
        target = draw(st.integers(min_value=0, max_value=n_vertices - 1))
        if source == target:
            continue
        copies = draw(st.integers(min_value=1, max_value=4))
        for _ in range(copies):
            graph.add_edge(
                f"v{source}", f"v{target}", draw(st.sampled_from(["am", "pm", "night"]))
            )
    return graph


def _shuffled_copy(graph: LabeledGraph, seed: int) -> LabeledGraph:
    """An isomorphic copy with renamed, shuffled vertex identifiers."""
    rng = random.Random(seed)
    names = list(graph.vertices())
    shuffled = list(names)
    rng.shuffle(shuffled)
    mapping = {old: f"w{index}_{new}" for index, (old, new) in enumerate(zip(names, shuffled))}
    clone = LabeledGraph()
    for vertex in names:
        clone.add_vertex(mapping[vertex], graph.vertex_label(vertex))
    for edge in graph.edges():
        clone.add_edge(mapping[edge.source], mapping[edge.target], edge.label)
    return clone


# ----------------------------------------------------------------------
# Graph properties
# ----------------------------------------------------------------------
class TestGraphProperties:
    @given(labeled_graphs(), st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=40, deadline=None)
    def test_renamed_graphs_are_isomorphic_with_equal_invariants(self, graph, seed):
        copy = _shuffled_copy(graph, seed)
        assert are_isomorphic(graph, copy)
        assert graph_invariant(graph) == graph_invariant(copy)

    @given(labeled_graphs())
    @settings(max_examples=40, deadline=None)
    def test_graph_embeds_in_itself(self, graph):
        assert has_embedding(graph, graph)

    @given(labeled_graphs())
    @settings(max_examples=40, deadline=None)
    def test_edge_subgraph_embeds_in_parent(self, graph):
        edges = list(graph.edges())
        if not edges:
            return
        sub = graph.edge_subgraph(edges[: max(1, len(edges) // 2)])
        assert has_embedding(sub, graph)

    @given(labeled_graphs())
    @settings(max_examples=40, deadline=None)
    def test_degree_sums_match_edge_count(self, graph):
        total_out = sum(graph.out_degree(v) for v in graph.vertices())
        total_in = sum(graph.in_degree(v) for v in graph.vertices())
        assert total_out == graph.n_edges
        assert total_in == graph.n_edges

    @given(labeled_graphs())
    @settings(max_examples=40, deadline=None)
    def test_copy_equals_original(self, graph):
        clone = graph.copy()
        assert are_isomorphic(graph, clone)
        assert clone.n_edges == graph.n_edges


# ----------------------------------------------------------------------
# Multigraph properties
# ----------------------------------------------------------------------
class TestMultigraphProperties:
    @given(labeled_multigraphs())
    @settings(max_examples=40, deadline=None)
    def test_simplify_collapses_to_simple_edge_count(self, multigraph):
        simple = multigraph.simplify()
        assert simple.n_edges == multigraph.n_simple_edges
        assert simple.n_vertices == multigraph.n_vertices
        assert simple.n_edges <= multigraph.n_edges

    @given(labeled_multigraphs())
    @settings(max_examples=40, deadline=None)
    def test_simplified_labels_come_from_parallel_groups(self, multigraph):
        simple = multigraph.simplify()
        for edge in simple.edges():
            assert edge.label in multigraph.parallel_labels(edge.source, edge.target)

    @given(labeled_multigraphs())
    @settings(max_examples=40, deadline=None)
    def test_degree_sums_count_distinct_neighbours(self, multigraph):
        # Multigraph degrees follow the paper's convention: distinct
        # neighbours, so parallel edges do not inflate them and each lane
        # (ordered vertex pair) contributes exactly one to each sum.
        total_out = sum(multigraph.out_degree(v) for v in multigraph.vertices())
        total_in = sum(multigraph.in_degree(v) for v in multigraph.vertices())
        assert total_out == multigraph.n_simple_edges
        assert total_in == multigraph.n_simple_edges
        assert multigraph.n_simple_edges <= multigraph.n_edges

    @given(labeled_multigraphs())
    @settings(max_examples=30, deadline=None)
    def test_simplify_first_vs_most_common_agree_on_structure(self, multigraph):
        most_common = multigraph.simplify(label_choice="most_common")
        first = multigraph.simplify(label_choice="first")
        assert {(e.source, e.target) for e in most_common.edges()} == {
            (e.source, e.target) for e in first.edges()
        }


# ----------------------------------------------------------------------
# Engine-vs-legacy differential properties
# ----------------------------------------------------------------------
class TestEngineLegacyAgreement:
    @given(labeled_graphs(), labeled_graphs())
    @settings(max_examples=40, deadline=None)
    def test_isomorphism_verdicts_agree(self, first, second):
        engine = MatchEngine()
        assert engine.are_isomorphic(first, second) == legacy_are_isomorphic(first, second)

    @given(labeled_graphs(), st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=40, deadline=None)
    def test_renamed_copy_is_isomorphic_under_both_matchers(self, graph, seed):
        copy = _shuffled_copy(graph, seed)
        engine = MatchEngine()
        assert engine.are_isomorphic(graph, copy)
        assert legacy_are_isomorphic(graph, copy)

    @given(labeled_graphs(), labeled_graphs(max_vertices=4, max_edges=4))
    @settings(max_examples=40, deadline=None)
    def test_embedding_verdicts_agree(self, target, pattern):
        engine = MatchEngine()
        assert engine.has_embedding(pattern, target) == legacy_has_embedding(pattern, target)

    @given(labeled_multigraphs())
    @settings(max_examples=30, deadline=None)
    def test_simplified_multigraph_embeds_in_itself_under_both(self, multigraph):
        simple = multigraph.simplify()
        engine = MatchEngine()
        assert engine.has_embedding(simple, simple)
        assert legacy_has_embedding(simple, simple)


# ----------------------------------------------------------------------
# Embedding-store differential properties
# ----------------------------------------------------------------------
class TestEmbeddingStoreProperties:
    @given(
        st.lists(labeled_multigraphs(max_vertices=5, max_lanes=7), min_size=3, max_size=5),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_extension_support_equals_full_search_and_legacy(self, multigraphs, cap):
        """Anchor extension, full search, and the legacy matcher agree.

        Mining a random (simplified-multigraph) corpus through the
        embedding store — including deliberately tiny anchor caps that
        force the overflow/fallback path — must yield exactly the
        patterns and supporting-TID sets of the store-less full-search
        miner, and every support set must match a from-scratch
        ``legacy_has_embedding`` scan.
        """
        corpus = [multigraph.simplify() for multigraph in multigraphs]
        if all(graph.n_edges == 0 for graph in corpus):
            return
        engine = MatchEngine(anchor_cap=cap)
        with_store = FSGMiner(
            min_support=2, max_edges=3, engine=engine, use_embedding_store=True
        ).mine(corpus)
        without_store = FSGMiner(
            min_support=2, max_edges=3, use_embedding_store=False
        ).mine(corpus)

        def signature(result):
            return sorted(
                (
                    entry.pattern.n_vertices,
                    entry.pattern.n_edges,
                    tuple(sorted(entry.supporting_transactions)),
                )
                for entry in result.patterns
            )

        assert signature(with_store) == signature(without_store)
        for entry in with_store.patterns:
            legacy = frozenset(
                tid
                for tid, transaction in enumerate(corpus)
                if legacy_has_embedding(entry.pattern, transaction)
            )
            assert frozenset(entry.supporting_transactions) == legacy


# ----------------------------------------------------------------------
# Partitioning properties (Algorithm 2 invariants)
# ----------------------------------------------------------------------
class TestPartitioningProperties:
    @given(
        labeled_graphs(max_vertices=8, max_edges=16),
        st.integers(min_value=1, max_value=6),
        st.sampled_from([PartitionStrategy.BREADTH_FIRST, PartitionStrategy.DEPTH_FIRST]),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_partitions_cover_every_edge_exactly_once(self, graph, k, strategy, seed):
        partitions = split_graph(graph, k, strategy=strategy, seed=seed)
        assert coverage_is_exact(graph, partitions)

    @given(
        labeled_graphs(max_vertices=8, max_edges=16),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_partition_vertex_labels_match_source_graph(self, graph, k, seed):
        partitions = split_graph(graph, k, seed=seed)
        for partition in partitions:
            for vertex in partition.vertices():
                assert partition.vertex_label(vertex) == graph.vertex_label(vertex)


# ----------------------------------------------------------------------
# Binning properties
# ----------------------------------------------------------------------
class TestBinningProperties:
    @given(
        st.floats(min_value=-1e5, max_value=1e6, allow_nan=False),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_value_gets_a_valid_bin(self, value, count):
        binning = AttributeBinning.equal_width("X", 0.0, 1_000.0, count)
        index = binning.index_for(value)
        assert 0 <= index < count

    @given(
        st.lists(st.floats(min_value=0, max_value=1_000, allow_nan=False), min_size=2, max_size=30),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_binning_is_monotone(self, values, count):
        binning = AttributeBinning.equal_width("X", 0.0, 1_000.0, count)
        ordered = sorted(values)
        indices = [binning.index_for(value) for value in ordered]
        assert indices == sorted(indices)


# ----------------------------------------------------------------------
# Interestingness measure properties
# ----------------------------------------------------------------------
class TestInterestingnessProperties:
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_confidence_bounded(self, both, antecedent, consequent):
        both = min(both, antecedent)
        assert 0.0 <= confidence(both, antecedent) <= 1.0

    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_independence_gives_unit_lift_and_zero_leverage(self, p_a, p_c):
        both = p_a * p_c
        assert abs(lift(both, p_a, p_c) - 1.0) < 1e-9
        assert abs(leverage(both, p_a, p_c)) < 1e-9
