"""Unit tests for the experiment-driver helper functions and FSG support counting."""

from __future__ import annotations

import pytest

from repro.core.experiments import (
    _most_patterns_small,
    _outlier_cluster,
    _planted_specification,
    _scaled_partition_count,
)
from repro.graphs.motifs import chain, hub_and_spoke
from repro.mining.em_clustering import ClusterSummary
from repro.mining.fsg.candidates import Candidate, single_edge_pattern
from repro.mining.fsg.results import FSGResult, FrequentSubgraph
from repro.mining.fsg.support import count_support, prune_infrequent, supporting_transactions


class TestScaledPartitionCount:
    def test_full_size_graph_gives_paper_partition_count(self):
        # 20,900 edges at the paper's 400-partition setting -> ~52 edges per
        # partition -> ~400 partitions.
        assert _scaled_partition_count(20_900, 400) == pytest.approx(400, rel=0.05)

    def test_scaled_graph_keeps_edges_per_partition(self):
        k = _scaled_partition_count(627, 400)
        assert 627 / k == pytest.approx(20_900 / 400, rel=0.2)

    def test_minimum_partition_count(self):
        assert _scaled_partition_count(4, 1600) >= 4


class TestMostPatternsSmall:
    def _result(self, edge_counts):
        result = FSGResult()
        for index, edges in enumerate(edge_counts):
            graph = chain(edges, prefix=f"p{index}")
            result.patterns.append(
                FrequentSubgraph(pattern=graph, support=3, supporting_transactions=frozenset({0, 1, 2}))
            )
        return result

    def test_mostly_small(self):
        assert _most_patterns_small(self._result([1, 1, 2, 3])) is True

    def test_mostly_large(self):
        assert _most_patterns_small(self._result([3, 4, 4, 1])) is False

    def test_empty_result(self):
        assert _most_patterns_small(FSGResult()) is False


class TestOutlierCluster:
    def _summary(self, index, size, distance, hours):
        return ClusterSummary(
            index=index,
            size=size,
            means={"TOTAL_DISTANCE": distance, "MOVE_TRANSIT_HOURS": hours},
            std_devs={},
        )

    def test_air_freight_cluster_found(self):
        summaries = [
            self._summary(0, 500, 300.0, 40.0),
            self._summary(1, 4, 3_100.0, 16.0),
        ]
        outlier = _outlier_cluster(summaries)
        assert outlier is not None and outlier.index == 1

    def test_long_haul_truck_cluster_not_an_outlier(self):
        summaries = [self._summary(0, 200, 2_800.0, 70.0)]
        assert _outlier_cluster(summaries) is None

    def test_smallest_matching_cluster_preferred(self):
        summaries = [
            self._summary(0, 40, 2_900.0, 20.0),
            self._summary(1, 3, 3_100.0, 15.0),
        ]
        assert _outlier_cluster(summaries).index == 1


class TestPlantedSpecification:
    def test_specification_contains_three_families(self):
        spec = _planted_specification(copies=5, seed=1)
        assert len(spec.patterns) == 3
        assert all(planted.copies == 5 for planted in spec.patterns)


class TestFsgSupportCounting:
    def _transactions(self):
        return [
            hub_and_spoke(2, edge_labels=[1, 1], prefix="a"),
            hub_and_spoke(2, edge_labels=[1, 1], prefix="b"),
            chain(2, edge_labels=[2, 2], prefix="c"),
        ]

    def test_supporting_transactions_restricted_to_parents(self):
        transactions = self._transactions()
        candidate = Candidate(
            pattern=single_edge_pattern("place", 1, "place"),
            parent_tids=frozenset({0}),
        )
        assert supporting_transactions(candidate, transactions) == frozenset({0})

    def test_supporting_transactions_full_scan(self):
        transactions = self._transactions()
        candidate = Candidate(
            pattern=single_edge_pattern("place", 1, "place"),
            parent_tids=frozenset({0}),
        )
        tids = supporting_transactions(candidate, transactions, restrict_to_parent_tids=False)
        assert tids == frozenset({0, 1})

    def test_count_support(self):
        transactions = self._transactions()
        candidate = Candidate(
            pattern=single_edge_pattern("place", 2, "place"),
            parent_tids=frozenset({0, 1, 2}),
        )
        assert count_support(candidate, transactions) == 1

    def test_prune_infrequent(self):
        transactions = self._transactions()
        frequent = Candidate(
            pattern=single_edge_pattern("place", 1, "place"),
            parent_tids=frozenset({0, 1, 2}),
        )
        rare = Candidate(
            pattern=single_edge_pattern("place", 2, "place"),
            parent_tids=frozenset({0, 1, 2}),
        )
        surviving = prune_infrequent([frequent, rare], transactions, min_support=2)
        assert len(surviving) == 1
        survivor, tids = surviving[0]
        assert survivor is frequent
        assert tids == frozenset({0, 1})
