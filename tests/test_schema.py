"""Unit tests for the transaction schema (Table 1)."""

from __future__ import annotations

from datetime import date

import pytest

from repro.datasets.schema import (
    ATTRIBUTE_DESCRIPTIONS,
    ATTRIBUTE_NAMES,
    Location,
    TransMode,
    Transaction,
    TransactionDataset,
)


def _make_transaction(**overrides) -> Transaction:
    values = dict(
        id=1,
        req_pickup_dt=date(2004, 3, 1),
        req_delivery_dt=date(2004, 3, 3),
        origin=Location(41.9, -87.6),
        destination=Location(33.7, -84.4),
        total_distance=716.0,
        gross_weight=30_000.0,
        move_transit_hours=17.5,
        trans_mode=TransMode.TRUCKLOAD,
    )
    values.update(overrides)
    return Transaction(**values)


class TestLocation:
    def test_coordinates_round_to_tenth_of_degree(self):
        location = Location(41.8781, -87.6298)
        assert location.latitude == pytest.approx(41.9)
        assert location.longitude == pytest.approx(-87.6)

    def test_locations_rounding_to_same_point_are_equal(self):
        assert Location(41.87, -87.62) == Location(41.91, -87.58)

    def test_label_format(self):
        assert Location(41.9, -87.6).label() == "41.9,-87.6"

    def test_as_tuple(self):
        assert Location(40.0, -80.0).as_tuple() == (40.0, -80.0)

    def test_locations_are_hashable_and_usable_as_vertices(self):
        places = {Location(41.9, -87.6), Location(41.9, -87.6), Location(33.7, -84.4)}
        assert len(places) == 2


class TestTransaction:
    def test_attribute_names_match_table1(self):
        assert len(ATTRIBUTE_NAMES) == 11
        assert set(ATTRIBUTE_NAMES) == set(ATTRIBUTE_DESCRIPTIONS)

    def test_delivery_before_pickup_rejected(self):
        with pytest.raises(ValueError, match="delivery date precedes"):
            _make_transaction(req_delivery_dt=date(2004, 2, 1))

    @pytest.mark.parametrize(
        "field", ["total_distance", "gross_weight", "move_transit_hours"]
    )
    def test_negative_numeric_values_rejected(self, field):
        with pytest.raises(ValueError):
            _make_transaction(**{field: -1.0})

    def test_od_pair(self):
        txn = _make_transaction()
        assert txn.od_pair == (Location(41.9, -87.6), Location(33.7, -84.4))

    def test_transit_days_inclusive(self):
        txn = _make_transaction()
        assert txn.transit_days == 3

    def test_active_dates_cover_window(self):
        txn = _make_transaction()
        actives = list(txn.active_dates())
        assert actives == [date(2004, 3, 1), date(2004, 3, 2), date(2004, 3, 3)]

    def test_record_round_trip(self):
        txn = _make_transaction()
        restored = Transaction.from_record(txn.as_record())
        assert restored == txn

    def test_with_id(self):
        txn = _make_transaction()
        assert txn.with_id(99).id == 99
        assert txn.id == 1


class TestTransactionDataset:
    def test_len_and_iteration(self, tiny_dataset):
        assert len(tiny_dataset) == 4
        assert len(list(tiny_dataset)) == 4

    def test_locations_origins_destinations(self, tiny_dataset):
        assert len(tiny_dataset.locations) == 3
        assert len(tiny_dataset.origins) == 2
        assert len(tiny_dataset.destinations) == 2

    def test_od_pairs_deduplicated(self, tiny_dataset):
        # Transactions 1 and 4 share the same OD pair.
        assert len(tiny_dataset.od_pairs) == 3

    def test_date_range(self, tiny_dataset):
        start, end = tiny_dataset.date_range()
        assert start == date(2004, 1, 5)
        assert end == date(2004, 1, 13)

    def test_date_range_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            TransactionDataset().date_range()

    def test_filter(self, tiny_dataset):
        heavy = tiny_dataset.filter(lambda txn: txn.gross_weight > 10_000)
        assert len(heavy) == 2

    def test_sample_reproducible(self, tiny_dataset):
        import random

        first = tiny_dataset.sample(2, random.Random(3))
        second = tiny_dataset.sample(2, random.Random(3))
        assert [t.id for t in first] == [t.id for t in second]

    def test_sample_larger_than_dataset_returns_all(self, tiny_dataset):
        assert len(tiny_dataset.sample(100, __import__("random").Random(1))) == 4

    def test_records_round_trip(self, tiny_dataset):
        records = tiny_dataset.to_records()
        rebuilt = TransactionDataset.from_records(records, name="tiny")
        assert [t.id for t in rebuilt] == [t.id for t in tiny_dataset]


class TestZoneDirectory:
    def _directory(self):
        from repro.datasets.schema import ZoneDirectory

        directory = ZoneDirectory()
        directory.add("riverside", Location(45.0, -122.9), synonyms=("riverside district", "RIV"))
        directory.add("midtown", Location(45.1, -122.8))
        return directory

    def test_resolves_canonical_synonym_and_messy_spellings(self):
        directory = self._directory()
        for spelling in ("riverside", "Riverside", "  RIVERSIDE DISTRICT ", "riv", "riverside-district"):
            zone = directory.resolve(spelling)
            assert zone is not None and zone.name == "riverside"

    def test_unknown_blank_and_non_string_resolve_to_none(self):
        directory = self._directory()
        assert directory.resolve("uncharted-17") is None
        assert directory.resolve("") is None
        assert directory.resolve("   ") is None
        assert directory.resolve(None) is None
        assert directory.resolve(42) is None

    def test_conflicting_spelling_is_a_programmer_error(self):
        directory = self._directory()
        with pytest.raises(ValueError, match="already maps to"):
            directory.add("other", Location(45.2, -122.7), synonyms=("RIV",))

    def test_zones_in_registration_order(self):
        directory = self._directory()
        assert [zone.name for zone in directory.zones()] == ["riverside", "midtown"]
        assert len(directory) == 2


class TestCleanMobilityRecords:
    def _zones(self):
        from repro.datasets.schema import ZoneDirectory

        directory = ZoneDirectory()
        directory.add("alpha", Location(45.0, -122.9), synonyms=("alpha district",))
        directory.add("beta", Location(45.1, -122.8))
        return directory

    def _record(self, **overrides):
        base = dict(
            trip_id=1,
            origin_zone="alpha",
            dest_zone="beta",
            origin_lat=45.01,
            origin_lon=-122.91,
            dest_lat=45.11,
            dest_lon=-122.81,
            pickup_date="2004-03-02",
            delivery_date="2004-03-04",
            distance_miles=120.0,
            weight_lb=20_000.0,
            transit_hours=30.0,
            mode="TL",
        )
        base.update(overrides)
        return base

    def _clean(self, records, **kwargs):
        from repro.datasets.schema import clean_mobility_records

        return clean_mobility_records(records, self._zones(), **kwargs)

    def test_clean_record_passes_through_untouched(self):
        dataset, report = self._clean([self._record()])
        assert len(dataset) == 1
        assert report.rows_dropped == 0
        assert report.imputed_values == 0
        assert report.clipped_coordinates == 0
        assert report.clamped_timestamps == 0
        txn = dataset[0]
        assert txn.origin == Location(45.01, -122.91)
        assert txn.trans_mode is TransMode.TRUCKLOAD

    def test_unresolvable_zone_and_missing_pickup_are_dropped(self):
        records = [
            self._record(),
            self._record(trip_id=2, origin_zone="uncharted-3"),
            self._record(trip_id=3, pickup_date="not a date"),
            self._record(trip_id=4, pickup_date=None),
            self._record(trip_id=None),
        ]
        dataset, report = self._clean(records)
        assert len(dataset) == 1
        assert report.dropped_unresolvable_zone == 1
        assert report.dropped_missing_critical == 3
        assert report.rows_dropped == 4

    def test_synonym_spellings_are_counted(self):
        records = [self._record(origin_zone="Alpha District", dest_zone="BETA")]
        _, report = self._clean(records)
        # "Alpha District" is a synonym; "BETA" is just a case variant of
        # the canonical name and must not count.
        assert report.synonyms_resolved == 1

    def test_numeric_dirt_is_imputed_with_the_lower_median(self):
        records = [
            self._record(trip_id=1, weight_lb=10_000.0),
            self._record(trip_id=2, weight_lb=20_000.0),
            self._record(trip_id=3, weight_lb=40_000.0),
            self._record(trip_id=4, weight_lb=None),
            self._record(trip_id=5, weight_lb=float("nan")),
            self._record(trip_id=6, weight_lb=-5.0),
        ]
        dataset, report = self._clean(records)
        assert report.imputed_values == 3
        # Lower median of [10k, 20k, 40k] is 20k.
        for tid in (4, 5, 6):
            assert dataset[tid - 1].gross_weight == 20_000.0

    def test_imputation_never_learns_from_dropped_rows(self):
        records = [
            self._record(trip_id=1, weight_lb=10_000.0),
            # Dropped row with a huge weight: must not move the median.
            self._record(trip_id=2, origin_zone="nowhere", weight_lb=1e9),
            self._record(trip_id=3, weight_lb=None),
        ]
        dataset, _ = self._clean(records)
        assert dataset[-1].gross_weight == 10_000.0

    def test_coordinate_outliers_clip_to_the_zone_centroid(self):
        records = [
            self._record(origin_lat=5.0),                      # 40 degrees off
            self._record(trip_id=2, dest_lat=None),            # missing
            self._record(trip_id=3, dest_lon=float("inf")),    # non-finite
        ]
        dataset, report = self._clean(records)
        assert report.clipped_coordinates == 3
        assert dataset[0].origin == Location(45.0, -122.9)
        assert dataset[1].destination == Location(45.1, -122.8)
        assert dataset[2].destination == Location(45.1, -122.8)

    def test_pickup_clamped_into_observation_window(self):
        window = (date(2004, 3, 1), date(2004, 3, 31))
        records = [self._record(pickup_date="2028-12-30", delivery_date=None)]
        dataset, report = self._clean(records, observation_window=window)
        assert dataset[0].req_pickup_dt == date(2004, 3, 31)
        # Clamp + delivery rebuild both count.
        assert report.clamped_timestamps == 2

    def test_implausible_delivery_is_rebuilt_from_transit_hours(self):
        records = [
            self._record(delivery_date="2004-02-01", transit_hours=30.0),  # before pickup
            self._record(trip_id=2, delivery_date="2028-12-30"),            # years later
        ]
        dataset, report = self._clean(records)
        assert report.clamped_timestamps == 2
        # ceil(30h / 24h) = 2 days after the 2004-03-02 pickup.
        assert dataset[0].req_delivery_dt == date(2004, 3, 4)
        assert dataset[1].req_delivery_dt == date(2004, 3, 4)

    def test_mode_imputed_from_weight(self):
        records = [
            self._record(mode=None, weight_lb=5_000.0),
            self._record(trip_id=2, mode="junk", weight_lb=30_000.0),
            self._record(trip_id=3, mode="partial"),
        ]
        dataset, _ = self._clean(records)
        assert dataset[0].trans_mode is TransMode.LESS_THAN_TRUCKLOAD
        assert dataset[1].trans_mode is TransMode.TRUCKLOAD
        assert dataset[2].trans_mode is TransMode.LESS_THAN_TRUCKLOAD

    def test_cleaning_is_independent_of_row_order(self):
        records = [
            self._record(trip_id=1, weight_lb=None),
            self._record(trip_id=2, weight_lb=12_000.0),
            self._record(trip_id=3, weight_lb=28_000.0),
        ]
        forward, _ = self._clean(records)
        backward, _ = self._clean(list(reversed(records)))
        by_id_fwd = {t.id: t for t in forward}
        by_id_bwd = {t.id: t for t in backward}
        assert by_id_fwd.keys() == by_id_bwd.keys()
        for tid in by_id_fwd:
            assert by_id_fwd[tid] == by_id_bwd[tid]
