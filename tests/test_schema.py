"""Unit tests for the transaction schema (Table 1)."""

from __future__ import annotations

from datetime import date

import pytest

from repro.datasets.schema import (
    ATTRIBUTE_DESCRIPTIONS,
    ATTRIBUTE_NAMES,
    Location,
    TransMode,
    Transaction,
    TransactionDataset,
)


def _make_transaction(**overrides) -> Transaction:
    values = dict(
        id=1,
        req_pickup_dt=date(2004, 3, 1),
        req_delivery_dt=date(2004, 3, 3),
        origin=Location(41.9, -87.6),
        destination=Location(33.7, -84.4),
        total_distance=716.0,
        gross_weight=30_000.0,
        move_transit_hours=17.5,
        trans_mode=TransMode.TRUCKLOAD,
    )
    values.update(overrides)
    return Transaction(**values)


class TestLocation:
    def test_coordinates_round_to_tenth_of_degree(self):
        location = Location(41.8781, -87.6298)
        assert location.latitude == pytest.approx(41.9)
        assert location.longitude == pytest.approx(-87.6)

    def test_locations_rounding_to_same_point_are_equal(self):
        assert Location(41.87, -87.62) == Location(41.91, -87.58)

    def test_label_format(self):
        assert Location(41.9, -87.6).label() == "41.9,-87.6"

    def test_as_tuple(self):
        assert Location(40.0, -80.0).as_tuple() == (40.0, -80.0)

    def test_locations_are_hashable_and_usable_as_vertices(self):
        places = {Location(41.9, -87.6), Location(41.9, -87.6), Location(33.7, -84.4)}
        assert len(places) == 2


class TestTransaction:
    def test_attribute_names_match_table1(self):
        assert len(ATTRIBUTE_NAMES) == 11
        assert set(ATTRIBUTE_NAMES) == set(ATTRIBUTE_DESCRIPTIONS)

    def test_delivery_before_pickup_rejected(self):
        with pytest.raises(ValueError, match="delivery date precedes"):
            _make_transaction(req_delivery_dt=date(2004, 2, 1))

    @pytest.mark.parametrize(
        "field", ["total_distance", "gross_weight", "move_transit_hours"]
    )
    def test_negative_numeric_values_rejected(self, field):
        with pytest.raises(ValueError):
            _make_transaction(**{field: -1.0})

    def test_od_pair(self):
        txn = _make_transaction()
        assert txn.od_pair == (Location(41.9, -87.6), Location(33.7, -84.4))

    def test_transit_days_inclusive(self):
        txn = _make_transaction()
        assert txn.transit_days == 3

    def test_active_dates_cover_window(self):
        txn = _make_transaction()
        actives = list(txn.active_dates())
        assert actives == [date(2004, 3, 1), date(2004, 3, 2), date(2004, 3, 3)]

    def test_record_round_trip(self):
        txn = _make_transaction()
        restored = Transaction.from_record(txn.as_record())
        assert restored == txn

    def test_with_id(self):
        txn = _make_transaction()
        assert txn.with_id(99).id == 99
        assert txn.id == 1


class TestTransactionDataset:
    def test_len_and_iteration(self, tiny_dataset):
        assert len(tiny_dataset) == 4
        assert len(list(tiny_dataset)) == 4

    def test_locations_origins_destinations(self, tiny_dataset):
        assert len(tiny_dataset.locations) == 3
        assert len(tiny_dataset.origins) == 2
        assert len(tiny_dataset.destinations) == 2

    def test_od_pairs_deduplicated(self, tiny_dataset):
        # Transactions 1 and 4 share the same OD pair.
        assert len(tiny_dataset.od_pairs) == 3

    def test_date_range(self, tiny_dataset):
        start, end = tiny_dataset.date_range()
        assert start == date(2004, 1, 5)
        assert end == date(2004, 1, 13)

    def test_date_range_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            TransactionDataset().date_range()

    def test_filter(self, tiny_dataset):
        heavy = tiny_dataset.filter(lambda txn: txn.gross_weight > 10_000)
        assert len(heavy) == 2

    def test_sample_reproducible(self, tiny_dataset):
        import random

        first = tiny_dataset.sample(2, random.Random(3))
        second = tiny_dataset.sample(2, random.Random(3))
        assert [t.id for t in first] == [t.id for t in second]

    def test_sample_larger_than_dataset_returns_all(self, tiny_dataset):
        assert len(tiny_dataset.sample(100, __import__("random").Random(1))) == 4

    def test_records_round_trip(self, tiny_dataset):
        records = tiny_dataset.to_records()
        rebuilt = TransactionDataset.from_records(records, name="tiny")
        assert [t.id for t in rebuilt] == [t.id for t in tiny_dataset]
