"""Tests for the observability subsystem (repro.obs).

The load-bearing properties, in order:

* **merge algebra** — per-shard metric registries merge order-
  independently, and merging any partition of an event stream equals
  one registry that observed everything serially (the property the
  piggybacked per-shard metric shipping relies on);
* **shard-aware tracing** — a sharded K-worker mining run under an
  active tracer yields one merged trace containing spans from every
  shard worker (level-stamped), per-shard counter totals that match the
  runtime's own merged stats, and mining output identical to the
  untraced serial reference, on both backends;
* **observational purity** — tracing never changes mining output or
  printed digests (the CLI traced-vs-untraced stdout identity);
* **plumbing** — JSONL round-trips, Chrome-trace export, the rendered
  run report, the ``--trace`` flag, and the ``trace`` subcommands.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.graphs.labeled_graph import LabeledGraph
from repro.mining.fsg.miner import FSGMiner
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    SpanRecord,
    TraceData,
    Tracer,
    activate,
    chrome_trace_events,
    get_tracer,
    read_jsonl,
    render_report,
    set_tracer,
    write_jsonl,
)
from repro.runtime import SESSION_TELEMETRY_KEYS, ShardedEngine


# ----------------------------------------------------------------------
# Corpus helpers (mirrors test_sessions)
# ----------------------------------------------------------------------
def random_transaction(rng: random.Random, name: str) -> LabeledGraph:
    n_vertices = rng.randint(4, 9)
    graph = LabeledGraph(name=name)
    for v in range(n_vertices):
        graph.add_vertex(f"v{v}", rng.choice(["A", "B", "C"]))
    n_edges = rng.randint(n_vertices - 1, n_vertices + 3)
    added = 0
    while added < n_edges:
        a, b = rng.sample(range(n_vertices), 2)
        if graph.has_edge(f"v{a}", f"v{b}"):
            continue
        graph.add_edge(f"v{a}", f"v{b}", rng.choice(["x", "y"]))
        added += 1
    return graph


def random_corpus(seed: int, size: int = 30) -> list[LabeledGraph]:
    rng = random.Random(seed)
    return [random_transaction(rng, f"t{i}") for i in range(size)]


def mining_signature(result):
    return sorted(
        (
            entry.pattern.n_edges,
            tuple(sorted(entry.supporting_transactions)),
        )
        for entry in result.patterns
    )


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with tracing off."""
    previous = set_tracer(None)
    yield
    set_tracer(previous)


# ----------------------------------------------------------------------
# Metrics registry mechanics
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        registry.counter("hits", 2, shard="0", level="3")
        registry.counter("hits", 3, level="3", shard="0")
        assert registry.counter_value("hits", shard="0", level="3") == 5
        assert registry.counter_total("hits") == 5

    def test_counter_series_and_names(self):
        registry = MetricsRegistry()
        registry.counter("searches", 4, shard="0")
        registry.counter("searches", 6, shard="1")
        registry.counter("wire_bytes", 10)
        assert registry.counter_total("searches") == 10
        assert len(registry.counter_series("searches")) == 2
        assert registry.counter_names() == ["searches", "wire_bytes"]

    def test_absorb_skips_zero_entries(self):
        registry = MetricsRegistry()
        registry.absorb({"hits": 0, "misses": 0})
        assert registry.is_empty()
        registry.absorb({"hits": 0, "misses": 3}, shard="1")
        assert registry.counter_value("misses", shard="1") == 3
        assert registry.counter_total("hits") == 0

    def test_gauge_merge_keeps_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("level_seconds", 0.5, level="2")
        b.gauge("level_seconds", 0.9, level="2")
        a.merge(b)
        assert a.snapshot()["gauges"] == [
            {"name": "level_seconds", "labels": {"level": "2"}, "value": 0.9}
        ]

    def test_histogram_merge_combines_summaries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (1.0, 5.0):
            a.histogram("wire_cost", value)
        b.histogram("wire_cost", 3.0)
        a.merge(b)
        entry = a.snapshot()["histograms"][0]
        assert entry["count"] == 3
        assert entry["total"] == 9.0
        assert entry["min"] == 1.0
        assert entry["max"] == 5.0

    def test_snapshot_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("hits", 7, shard="2")
        registry.gauge("store_size", 12, shard="2")
        registry.histogram("latency", 0.25)
        rebuilt = MetricsRegistry.from_snapshot(registry.snapshot())
        assert rebuilt.snapshot() == registry.snapshot()


# ----------------------------------------------------------------------
# Merge algebra (the property the sharded shipping relies on)
# ----------------------------------------------------------------------
_EVENTS = st.lists(
    st.tuples(
        st.sampled_from(["searches", "wire_bytes", "store_hits"]),
        st.integers(min_value=1, max_value=50),
        st.sampled_from(["0", "1", "2"]),
    ),
    max_size=40,
)


class TestMergeProperties:
    @given(events=_EVENTS, shards=st.sampled_from([2, 3]), seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_partitioned_merge_equals_serial_in_any_order(self, events, shards, seed):
        serial = MetricsRegistry()
        partitions = [MetricsRegistry() for _ in range(shards)]
        for index, (name, value, shard_label) in enumerate(events):
            serial.counter(name, value, shard=shard_label)
            partitions[index % shards].counter(name, value, shard=shard_label)

        order = list(range(shards))
        random.Random(seed).shuffle(order)
        merged = MetricsRegistry()
        for index in order:
            merged.merge(partitions[index])
        assert merged.snapshot() == serial.snapshot()

    @given(events=_EVENTS)
    @settings(max_examples=30, deadline=None)
    def test_merge_is_commutative(self, events):
        half = len(events) // 2
        ab, ba = MetricsRegistry(), MetricsRegistry()
        parts = []
        for chunk in (events[:half], events[half:]):
            registry = MetricsRegistry()
            for name, value, shard_label in chunk:
                registry.counter(name, value, shard=shard_label)
            parts.append(registry)
        ab.merge(parts[0])
        ab.merge(parts[1])
        ba.merge(parts[1])
        ba.merge(parts[0])
        assert ab.snapshot() == ba.snapshot()


# ----------------------------------------------------------------------
# Tracer mechanics
# ----------------------------------------------------------------------
class TestTracer:
    def test_with_form_records_span(self):
        tracer = Tracer(worker="main")
        with tracer.span("work", level=2) as span:
            span.set(survivors=5)
        [record] = tracer.spans
        assert record.name == "work"
        assert record.worker == "main"
        assert record.attrs == {"level": 2, "survivors": 5}
        assert record.end >= record.start

    def test_finish_form_is_idempotent(self):
        clock_values = iter([1.0, 3.0, 99.0])
        tracer = Tracer(worker="w", clock=lambda: next(clock_values))
        span = tracer.span("level")
        span.finish(survivors=1)
        span.finish(survivors=2)
        [record] = tracer.spans
        assert (record.start, record.end) == (1.0, 3.0)
        assert record.attrs == {"survivors": 1}

    def test_take_spans_drains(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert len(tracer.take_spans()) == 1
        assert tracer.spans == []

    def test_activate_restores_previous(self):
        tracer = Tracer()
        assert get_tracer() is NULL_TRACER
        with activate(tracer) as active:
            assert active is tracer
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", level=9) as span:
            span.set(x=1)
            span.finish()
        assert NULL_TRACER.spans == []
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.metrics.is_empty()

    def test_wire_roundtrip(self):
        record = SpanRecord("shard.level", 1.5, 2.5, worker="shard1", attrs={"level": 2})
        clone = SpanRecord.from_wire(record.to_wire())
        assert clone.to_dict() == record.to_dict()
        assert clone.duration == 1.0


# ----------------------------------------------------------------------
# Sharded end-to-end tracing
# ----------------------------------------------------------------------
class TestShardedTracing:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    @pytest.mark.parametrize("shards", [2, 3])
    def test_merged_trace_covers_every_shard(self, backend, shards):
        corpus = random_corpus(seed=61, size=24)
        reference = mining_signature(
            FSGMiner(min_support=3, max_edges=3).mine(corpus)
        )

        with activate(Tracer(worker="main")) as tracer:
            runtime = ShardedEngine(shards=shards, backend=backend)
            try:
                result = FSGMiner(min_support=3, max_edges=3, runtime=runtime).mine(corpus)
                stats = runtime.stats()
            finally:
                runtime.close()

        assert mining_signature(result) == reference

        workers = {record.worker for record in tracer.spans}
        assert {f"shard{i}" for i in range(shards)} <= workers
        assert "main" in workers

        # Per-message worker spans that belong to a mining level carry it.
        leveled = [
            record
            for record in tracer.spans
            if record.name in ("shard.slevel", "shard.level", "shard.batch")
        ]
        assert leveled
        assert all("level" in record.attrs for record in leveled)

        # The per-shard counter deltas shipped on replies must add up to
        # exactly what the runtime's own merged stats report (satellite
        # equivalence: merged per-shard registries == the serial total).
        for key in ("searches", "patterns_shipped_full", "patterns_shipped_delta"):
            shipped = sum(
                tracer.metrics.counter_value(key, shard=str(shard))
                for shard in range(shards)
            )
            assert shipped == stats[key], key

    def test_untraced_sharded_replies_are_unwrapped(self):
        corpus = random_corpus(seed=62, size=18)
        reference = mining_signature(FSGMiner(min_support=3, max_edges=3).mine(corpus))
        runtime = ShardedEngine(shards=2, backend="serial")
        try:
            result = FSGMiner(min_support=3, max_edges=3, runtime=runtime).mine(corpus)
        finally:
            runtime.close()
        assert mining_signature(result) == reference
        assert get_tracer() is NULL_TRACER


# ----------------------------------------------------------------------
# Telemetry without the embedding store (blind-spot fix)
# ----------------------------------------------------------------------
class TestNonStoreTelemetry:
    def test_full_search_path_reports_wire_and_planning(self):
        corpus = random_corpus(seed=63, size=20)
        runtime = ShardedEngine(shards=2, backend="serial")
        try:
            result = FSGMiner(
                min_support=3, max_edges=3, use_embedding_store=False, runtime=runtime
            ).mine(corpus)
        finally:
            runtime.close()
        assert result.level_telemetry
        for counters in result.level_telemetry.values():
            assert set(counters) == set(SESSION_TELEMETRY_KEYS)
        shipped_levels = [level for level in result.level_telemetry if level >= 2]
        assert shipped_levels
        totals = result.session_totals()
        assert totals["wire_bytes"] > 0
        assert totals["patterns_full"] > 0
        assert totals["planning_seconds"] >= 0

    def test_serial_runtime_still_files_records(self):
        corpus = random_corpus(seed=64, size=16)
        result = FSGMiner(
            min_support=3, max_edges=3, use_embedding_store=False
        ).mine(corpus)
        assert result.level_telemetry
        assert set(result.session_totals()) == set(SESSION_TELEMETRY_KEYS)


# ----------------------------------------------------------------------
# Export and report
# ----------------------------------------------------------------------
def _sample_tracer() -> Tracer:
    tracer = Tracer(worker="main")
    tracer.record(SpanRecord("fsg.mine", 0.0, 10.0, "main", {"levels": 2}))
    tracer.record(SpanRecord("fsg.level", 0.0, 6.0, "main", {"level": 1}))
    tracer.record(SpanRecord("fsg.level", 6.0, 10.0, "main", {"level": 2}))
    tracer.record(SpanRecord("shard.slevel", 0.5, 2.5, "shard0", {"level": 1}))
    tracer.record(SpanRecord("shard.slevel", 0.5, 4.5, "shard1", {"level": 1}))
    tracer.record(SpanRecord("shard.slevel", 6.5, 7.5, "shard0", {"level": 2}))
    tracer.record(SpanRecord("shard.slevel", 6.5, 9.5, "shard1", {"level": 2}))
    tracer.metrics.counter("wire_bytes", 1200, level="2")
    tracer.metrics.counter("searches", 40, shard="0")
    tracer.metrics.counter("searches", 60, shard="1")
    return tracer


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "trace.jsonl"
        write_jsonl(path, TraceData.from_tracer(tracer, meta={"command": "test"}))
        data = read_jsonl(path)
        assert data.meta["command"] == "test"
        assert len(data.spans) == len(tracer.spans)
        assert data.metrics.counter_total("searches") == 100
        assert data.workers()[0] == "main"
        assert set(data.workers()) == {"main", "shard0", "shard1"}

    def test_chrome_trace_events(self, tmp_path):
        data = TraceData.from_tracer(_sample_tracer(), meta={})
        events = chrome_trace_events(data)
        names = {event["ph"] for event in events}
        assert names == {"M", "X"}
        complete = [event for event in events if event["ph"] == "X"]
        assert len(complete) == len(data.spans)
        assert all(event["dur"] >= 0 for event in complete)
        # Microsecond timestamps on the shared timeline.
        first = min(complete, key=lambda event: event["ts"])
        assert first["ts"] == 0.0

    def test_read_jsonl_tolerates_unknown_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [
            json.dumps({"type": "meta", "command": "x"}),
            json.dumps({"type": "mystery", "payload": 1}),
            json.dumps(
                {
                    "type": "span",
                    "name": "fsg.level",
                    "worker": "main",
                    "start": 0.0,
                    "end": 1.0,
                    "attrs": {"level": 1},
                }
            ),
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        data = read_jsonl(path)
        assert len(data.spans) == 1


class TestReport:
    def test_report_renders_skew_table_and_metrics(self):
        report = render_report(TraceData.from_tracer(_sample_tracer(), meta={"command": "t"}))
        assert "repro run report" in report
        assert "level" in report
        assert "shard0" in report and "shard1" in report
        # shard1 is 2x slower at both levels -> imbalance column present.
        assert "imbalance" in report
        assert "fsg.mine" in report  # top spans
        assert "searches" in report  # counter totals

    def test_report_without_shard_spans_uses_main_levels(self):
        tracer = Tracer(worker="main")
        tracer.record(SpanRecord("fsg.level", 0.0, 1.0, "main", {"level": 1}))
        report = render_report(TraceData.from_tracer(tracer, meta={}))
        assert "level" in report
        assert "main" in report


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestCLI:
    def test_traced_run_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        exit_code = main(["run", "T1", "--scale", "0.012", "--trace", str(path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert path.exists()
        assert f"wrote trace to {path}" in captured.err
        data = read_jsonl(path)
        assert data.meta["command"] == "run"
        assert data.spans
        assert get_tracer() is NULL_TRACER

    def test_traced_and_untraced_scenario_stdout_identical(self, tmp_path, capsys):
        assert main(["scenarios", "run", "dense-uniform"]) == 0
        untraced = capsys.readouterr().out
        path = tmp_path / "scenario.jsonl"
        assert main(["scenarios", "run", "dense-uniform", "--trace", str(path)]) == 0
        traced = capsys.readouterr().out
        assert traced == untraced
        assert path.exists()

    def test_trace_summarize(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        write_jsonl(path, TraceData.from_tracer(_sample_tracer(), meta={"command": "x"}))
        assert main(["trace", "summarize", str(path)]) == 0
        captured = capsys.readouterr()
        assert "repro run report" in captured.out
        assert "shard1" in captured.out

    def test_trace_export_chrome(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        out = tmp_path / "trace.chrome.json"
        write_jsonl(path, TraceData.from_tracer(_sample_tracer(), meta={}))
        assert main(["trace", "export", str(path), "--out", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["traceEvents"]
        assert payload["displayTimeUnit"] == "ms"

    def test_trace_summarize_missing_file(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace file" in capsys.readouterr().err
