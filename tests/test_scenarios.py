"""Tests for the scenario workload subsystem and its verification harness.

Three layers of assurance, mirroring how the subsystem is meant to be
used:

* registry / builder hygiene — every scenario is deterministic and
  produces a well-formed corpus;
* the differential harness — serial vs sharded runtimes vs the legacy
  matcher agree on every scenario (K=3 and the process backend are
  ``slow``-marked; the CI scenario-matrix job runs them);
* golden regression — each scenario's digest matches the pinned value in
  ``tests/golden/scenarios.json``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.runtime import ShardedEngine
from repro.scenarios import (
    check_invariants,
    check_legacy_oracle,
    default_golden_path,
    differential_check,
    get_scenario,
    load_golden,
    run_scenario,
    scenario_names,
    verify_scenarios,
)
from repro.scenarios.base import BRIDGE_LABEL

ALL_SCENARIOS = scenario_names()


@pytest.fixture(scope="module")
def scenario_runs():
    """One cached serial reference run per scenario for this module.

    Several tests need the same (scenario, built data, serial outcome)
    triple; mining is the expensive part, so it runs once per scenario.
    Tests that mutate an outcome must do their own `run_scenario` call.
    """
    cache: dict[str, tuple] = {}

    def run(name: str):
        if name not in cache:
            scenario = get_scenario(name)
            data = scenario.build()
            cache[name] = (scenario, data, run_scenario(scenario, data=data))
        return cache[name]

    return run


class TestRegistry:
    def test_at_least_seven_scenarios_registered(self):
        assert len(ALL_SCENARIOS) >= 7

    def test_names_are_unique_and_kebab_case(self):
        assert len(set(ALL_SCENARIOS)) == len(ALL_SCENARIOS)
        for name in ALL_SCENARIOS:
            assert name == name.lower()
            assert " " not in name

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_builds_are_deterministic(self, name):
        scenario = get_scenario(name)
        first, second = scenario.build(), scenario.build()
        assert len(first.transactions) == len(second.transactions)
        for a, b in zip(first.transactions, second.transactions):
            assert sorted(map(str, a.vertices())) == sorted(map(str, b.vertices()))
            assert a.n_edges == b.n_edges
        assert first.host.n_vertices == second.host.n_vertices
        assert first.host.n_edges == second.host.n_edges

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_corpus_is_well_formed(self, name):
        data = get_scenario(name).build()
        assert data.transactions
        assert data.host.n_edges > 0
        for transaction in data.transactions:
            assert transaction.n_vertices > 0
            # The bridge label is reserved for host stitching.
            assert BRIDGE_LABEL not in transaction.edge_label_counts()


class TestHarness:
    @pytest.mark.scenario
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_serial_outcome_matches_golden_digest(self, name, scenario_runs):
        _, _, outcome = scenario_runs(name)
        golden = load_golden()
        assert name in golden, "golden file out of date: run `repro scenarios verify --update-golden`"
        assert outcome.digest == golden[name]["digest"]
        assert len(outcome.payload["fsg"]) == golden[name]["n_fsg_patterns"]

    @pytest.mark.scenario
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_sharded_k2_matches_serial(self, name, scenario_runs):
        scenario, data, reference = scenario_runs(name)
        runtime = ShardedEngine(shards=2, backend="serial")
        try:
            sharded = run_scenario(scenario, data=data, runtime=runtime)
        finally:
            runtime.close()
        assert sharded.payload == reference.payload

    @pytest.mark.scenario
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_invariants_and_legacy_oracle(self, name, scenario_runs):
        _, data, outcome = scenario_runs(name)
        assert check_invariants(outcome) == []
        assert check_legacy_oracle(outcome, data.transactions, max_patterns=10) == []

    @pytest.mark.slow
    @pytest.mark.scenario
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_full_differential_k2_k3(self, name):
        report = differential_check(get_scenario(name), shard_counts=(2, 3))
        assert report.ok, report.failures

    @pytest.mark.slow
    @pytest.mark.scenario
    @pytest.mark.parametrize("name", ["sparse-chains", "planted-patterns"])
    def test_process_backend_differential(self, name):
        report = differential_check(
            get_scenario(name), shard_counts=(2,), backends=("process",), check_oracle=False
        )
        assert report.ok, report.failures

    def test_recall_ground_truth_fully_recovered(self, scenario_runs):
        _, _, outcome = scenario_runs("planted-patterns")
        recall = outcome.payload["recall"]
        assert recall["recall"] == 1.0
        assert recall["missed"] == []

    def test_adversarial_scenario_exercises_canonicalisation_fallback(self, scenario_runs):
        _, _, outcome = scenario_runs("adversarial-isomorphs")
        assert outcome.payload["fsg"], "expected frequent patterns"
        # The corpus contains 9-spoke uniform stars whose canonical codes
        # are uncomputable; their digest entries must have gone through
        # the invariant fallback (pattern_code's 'invariant:' prefix), so
        # the fallback path is provably on the digest trail.
        fallback = [
            code for code in outcome.payload["corpus"] if code.startswith("invariant:")
        ]
        assert fallback, "expected canonicalisation-defeating corpus members"

    def test_invariant_checker_flags_corrupted_support(self):
        outcome = run_scenario(get_scenario("sparse-chains"))
        multi_edge = [p for p in outcome.fsg_result.patterns if p.pattern.n_edges > 1]
        assert multi_edge
        multi_edge[0].support = 10_000  # corrupt: exceeds every edge bound
        assert check_invariants(outcome) != []


class TestGolden:
    def test_golden_file_covers_every_scenario(self):
        golden = load_golden()
        assert sorted(golden) == sorted(ALL_SCENARIOS)
        for entry in golden.values():
            assert set(entry) >= {"digest", "n_fsg_patterns", "n_transactions"}
            assert len(entry["digest"]) == 64

    def test_default_golden_path_is_checked_in(self):
        assert default_golden_path().exists()

    def test_verify_scenarios_update_round_trip(self, tmp_path):
        golden_path = tmp_path / "golden.json"
        updated = verify_scenarios(
            names=["sparse-chains"],
            shard_counts=(),
            update=True,
            golden_path=golden_path,
            check_oracle=False,
        )
        assert updated.ok and golden_path.exists()
        verified = verify_scenarios(
            names=["sparse-chains"],
            shard_counts=(),
            golden_path=golden_path,
            check_oracle=False,
        )
        assert verified.ok

    @staticmethod
    def _fake_check(failures=()):
        from repro.scenarios import DifferentialReport

        def check(scenario, **kwargs):
            return DifferentialReport(
                scenario=scenario.name,
                digest="0" * 64,
                payload={"n_transactions": 1, "fsg": [], "subdue": [], "structural": []},
                failures=[f.format(name=scenario.name) for f in failures],
            )

        return check

    def test_update_refuses_to_pin_digests_from_a_failing_run(self, tmp_path, monkeypatch):
        import repro.scenarios.golden as golden_module

        monkeypatch.setattr(
            golden_module, "differential_check", self._fake_check(["{name}: sharded diverged"])
        )
        golden_path = tmp_path / "golden.json"
        result = golden_module.verify_scenarios(
            names=["sparse-chains"], update=True, golden_path=golden_path
        )
        assert not result.ok
        assert result.updated_path is None
        assert not golden_path.exists()

    def test_full_update_prunes_entries_for_removed_scenarios(self, tmp_path, monkeypatch):
        import repro.scenarios.golden as golden_module

        monkeypatch.setattr(golden_module, "differential_check", self._fake_check())
        golden_path = tmp_path / "golden.json"
        golden_path.write_text(
            json.dumps({"removed-scenario": {"digest": "a" * 64}}), encoding="utf-8"
        )
        result = golden_module.verify_scenarios(update=True, golden_path=golden_path)
        assert result.ok
        refreshed = json.loads(golden_path.read_text(encoding="utf-8"))
        assert "removed-scenario" not in refreshed
        assert sorted(refreshed) == sorted(ALL_SCENARIOS)
        # A partial update must still leave unrelated entries alone.
        partial = golden_module.verify_scenarios(
            names=["sparse-chains"], update=True, golden_path=golden_path
        )
        assert partial.ok
        assert sorted(json.loads(golden_path.read_text(encoding="utf-8"))) == sorted(
            ALL_SCENARIOS
        )

    def test_verify_scenarios_flags_missing_and_stale_digests(self, tmp_path):
        golden_path = tmp_path / "golden.json"
        missing = verify_scenarios(
            names=["sparse-chains"], shard_counts=(), golden_path=golden_path,
            check_oracle=False,
        )
        assert not missing.ok
        assert "no golden digest" in missing.failures[0]
        golden_path.write_text(
            json.dumps({"sparse-chains": {"digest": "0" * 64}}), encoding="utf-8"
        )
        stale = verify_scenarios(
            names=["sparse-chains"], shard_counts=(), golden_path=golden_path,
            check_oracle=False,
        )
        assert not stale.ok
        assert "!= golden" in stale.failures[0]


class TestScenarioCli:
    def test_scenarios_list(self, capsys):
        assert cli_main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ALL_SCENARIOS:
            assert name in out

    def test_scenarios_run_prints_digest(self, capsys):
        assert cli_main(["scenarios", "run", "temporal-drift"]) == 0
        out = capsys.readouterr().out
        assert "temporal-drift" in out and "digest=" in out

    def test_scenarios_run_unknown_name_fails(self, capsys):
        assert cli_main(["scenarios", "run", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert "available:" in err

    def test_scenarios_run_only_filter(self, capsys):
        assert cli_main(["scenarios", "run", "--only", "temporal-drift,sparse-chains"]) == 0
        out = capsys.readouterr().out
        assert "temporal-drift" in out and "sparse-chains" in out
        assert "dense-uniform" not in out

    def test_scenarios_run_only_intersects_positional_names(self, capsys):
        assert cli_main([
            "scenarios", "run", "temporal-drift", "sparse-chains",
            "--only", "sparse-chains",
        ]) == 0
        out = capsys.readouterr().out
        assert "sparse-chains" in out
        assert "temporal-drift" not in out

    def test_scenarios_only_rejects_unknown_and_empty_selection(self, capsys):
        assert cli_main(["scenarios", "run", "--only", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err and "available:" in err
        assert cli_main(["scenarios", "verify", "--only", "bogus"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
        assert cli_main([
            "scenarios", "run", "temporal-drift", "--only", "sparse-chains"
        ]) == 2
        assert "no scenarios selected" in capsys.readouterr().err

    def test_scenarios_verify_with_report(self, tmp_path, capsys):
        golden_path = tmp_path / "golden.json"
        report_path = tmp_path / "digests.json"
        assert cli_main([
            "scenarios", "verify", "temporal-drift",
            "--update-golden", "--golden", str(golden_path),
            "--shards", "2", "--no-oracle", "--report", str(report_path),
        ]) == 0
        assert cli_main([
            "scenarios", "verify", "temporal-drift",
            "--golden", str(golden_path), "--shards", "2", "--no-oracle",
        ]) == 0
        entries = json.loads(report_path.read_text(encoding="utf-8"))
        assert "temporal-drift" in entries
        # The report carries each sharded run's aggregated runtime
        # counters, session-protocol counters included...
        stats = entries["temporal-drift"]["runtime_stats"]["sharded-serial-k2"]
        for counter in (
            "wire_bytes_shipped",
            "patterns_shipped_full",
            "patterns_shipped_delta",
            "session_store_evictions",
        ):
            assert counter in stats
        assert stats["wire_bytes_shipped"] > 0
        # ...but the golden file itself stays free of observational noise.
        golden = json.loads(golden_path.read_text(encoding="utf-8"))
        assert "runtime_stats" not in golden["temporal-drift"]

    def test_scenarios_verify_rejects_bad_shards_and_backends(self, capsys):
        assert cli_main(["scenarios", "verify", "--shards", "0"]) == 2
        assert "must be >= 1" in capsys.readouterr().err
        assert cli_main(["scenarios", "verify", "--shards", "two"]) == 2
        assert "invalid --shards" in capsys.readouterr().err
        assert cli_main(["scenarios", "verify", "--backends", "threads"]) == 2
        assert "invalid --backends" in capsys.readouterr().err

    def test_scenarios_verify_fails_on_stale_golden(self, tmp_path, capsys):
        golden_path = tmp_path / "golden.json"
        golden_path.write_text(
            json.dumps({"temporal-drift": {"digest": "f" * 64}}), encoding="utf-8"
        )
        assert cli_main([
            "scenarios", "verify", "temporal-drift",
            "--golden", str(golden_path), "--shards", "", "--no-oracle",
        ]) == 1
        assert "!= golden" in capsys.readouterr().err
