"""Benchmark: wall-clock cost of the scenario differential corpus.

Runs each registered scenario through the full engine suite exactly the
way ``repro scenarios run`` does — one timed ``build()`` and one timed
:func:`~repro.scenarios.harness.run_scenario` per name — and verifies
every digest against the pinned table in ``tests/golden/scenarios.json``
so a timing can never be reported for a run that silently mined the
wrong output.  A streaming row additionally times
:func:`~repro.scenarios.streaming.sampled_digest` over a bounded prefix
of the 100k corpus.

Every row embeds its own environment stamp via
``bench_env(scenario=..., corpus_size=...)``: scenario-driven numbers
are only comparable between runs of the same workload shape, so the
workload identity travels with the measurement.

Results land in ``BENCH_scenarios.json``.  Run with::

    PYTHONPATH=src python benchmarks/bench_scenarios.py [name ...]

With no names every registered scenario is measured.  Environment knobs:
``REPRO_BENCH_STREAM_TRANSACTIONS`` (default 5000) sizes the streaming
row; set it to 0 to skip streaming entirely.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import bench_env  # noqa: E402

from repro.scenarios import (  # noqa: E402
    StreamingMobilityCorpus,
    get_scenario,
    run_scenario,
    sampled_digest,
    scenario_names,
)

GOLDEN = Path(__file__).resolve().parent.parent / "tests" / "golden" / "scenarios.json"
DEFAULT_STREAM_TRANSACTIONS = 5000


def measure_scenario(name: str) -> dict:
    """Build and mine one scenario, returning its timed, stamped row."""
    scenario = get_scenario(name)
    start = time.perf_counter()
    data = scenario.build()
    build_seconds = time.perf_counter() - start
    start = time.perf_counter()
    outcome = run_scenario(scenario, data=data)
    mine_seconds = time.perf_counter() - start
    corpus_size = len(data.transactions)
    return {
        "env": bench_env(scenario=name, corpus_size=corpus_size),
        "n_transactions": corpus_size,
        "digest": outcome.digest,
        "seconds": {
            "build": round(build_seconds, 4),
            "mine": round(mine_seconds, 4),
        },
    }


def measure_streaming(n_transactions: int) -> dict:
    """Time the sampled digest over a bounded streaming prefix."""
    corpus = StreamingMobilityCorpus(n_transactions=n_transactions)
    start = time.perf_counter()
    digest = sampled_digest(corpus)
    elapsed = time.perf_counter() - start
    return {
        "env": bench_env(scenario="streaming-mobility", corpus_size=n_transactions),
        "n_transactions": n_transactions,
        "digest": digest,
        "seconds": {"sampled_digest": round(elapsed, 4)},
    }


def main() -> None:
    names = sys.argv[1:] or scenario_names()
    unknown = sorted(set(names) - set(scenario_names()))
    if unknown:
        print(
            f"ERROR: unknown scenario(s): {', '.join(unknown)}; "
            f"available: {', '.join(scenario_names())}",
            file=sys.stderr,
        )
        raise SystemExit(2)

    golden = json.loads(GOLDEN.read_text(encoding="utf-8")) if GOLDEN.exists() else {}
    rows: dict[str, dict] = {}
    mismatches: list[str] = []
    for name in names:
        row = measure_scenario(name)
        rows[name] = row
        pinned = golden.get(name, {}).get("digest")
        status = "ok" if pinned in (None, row["digest"]) else "DIGEST MISMATCH"
        if status != "ok":
            mismatches.append(name)
        print(
            f"{name:24s} {row['seconds']['build']:7.3f}s build "
            f"{row['seconds']['mine']:7.3f}s mine   "
            f"{row['n_transactions']:5d} txns   {status}"
        )

    stream_transactions = int(
        os.environ.get("REPRO_BENCH_STREAM_TRANSACTIONS", str(DEFAULT_STREAM_TRANSACTIONS))
    )
    if stream_transactions > 0:
        row = measure_streaming(stream_transactions)
        rows["streaming-mobility/sampled"] = row
        print(
            f"{'streaming/sampled':24s} {row['seconds']['sampled_digest']:7.3f}s digest "
            f"{row['n_transactions']:18d} txns"
        )

    out = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"
    out.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    if mismatches:
        print(
            f"ERROR: digests diverged from golden for: {', '.join(mismatches)}",
            file=sys.stderr,
        )
        raise SystemExit(1)


if __name__ == "__main__":
    main()
