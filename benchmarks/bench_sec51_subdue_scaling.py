"""Benchmark S5.1 — Section 5.1: SUBDUE runtime scaling and MDL vs Size."""

from __future__ import annotations

from conftest import run_once

from repro.core.experiments import experiment_sec51_subdue_scaling


def test_bench_sec51_subdue_scaling(benchmark, experiment_config, record_report):
    """Runtime grows steeply with graph size; Size finds larger patterns than MDL."""
    report = run_once(
        benchmark, experiment_sec51_subdue_scaling, experiment_config, sizes=(15, 30, 45)
    )
    record_report(report)
    measured = report.measured
    assert measured["runtime_grows_with_size"] is True
    assert measured["size_finds_larger_patterns_than_mdl"] is True
    assert measured["mdl_prefers_small_patterns"] is True
