"""Benchmark T1 — Table 1 / Section 3: dataset description statistics."""

from __future__ import annotations

from conftest import run_once

from repro.core.experiments import experiment_table1


def test_bench_table1_dataset(benchmark, experiment_config, record_report):
    """Regenerate the Section 3 dataset statistics (Table 1 context)."""
    report = run_once(benchmark, experiment_table1, experiment_config)
    record_report(report)
    measured = report.measured
    assert measured["n_transactions"] > 0
    # The synthetic dataset preserves the paper's shape: skewed out-degree,
    # several deliveries per OD pair, more destinations than origins.
    assert measured["out_degree_max"] > 5 * measured["out_degree_avg"]
    assert measured["transactions_per_od_pair"] > 2
    assert measured["n_destinations"] > measured["n_origins"]
