"""Benchmark: sharded + batched support counting vs. the serial runtime.

Mines the same >= 400-transaction corpus three ways —

* ``serial`` — the default :class:`~repro.runtime.base.SerialRuntime`
  (pattern-major `engine.support`, the pre-runtime behaviour);
* ``sharded-serial`` — :class:`~repro.runtime.shards.ShardedEngine` with
  the inline backend: isolates the *batching* gain (one transaction-major
  pass per level per shard, shared candidate buckets, per-pattern plans
  hoisted out of the scan) with zero parallelism;
* ``sharded-process`` — the same with ``multiprocessing`` workers: adds
  real parallelism on multi-core hosts.

Every run starts from a cold engine so no verdict cache leaks between
modes, and the mined (pattern, support) multisets are compared across
modes.  Results land in ``BENCH_parallel.json``; when any sharded mode
diverges from the serial output the report records
``outputs_identical: false`` and the process exits non-zero so CI fails
instead of silently uploading a bad report.

Run with::

    PYTHONPATH=src python benchmarks/bench_parallel_support.py [n_transactions] [workers]
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import bench_env  # noqa: E402

from repro.graphs.labeled_graph import LabeledGraph  # noqa: E402
from repro.mining.fsg.miner import FSGMiner
from repro.runtime import ShardedEngine

DEFAULT_TRANSACTIONS = 400
DEFAULT_WORKERS = 4
MIN_SUPPORT = 0.05
MAX_EDGES = 4


def build_corpus(n_transactions: int, seed: int = 20050405) -> list[LabeledGraph]:
    """Random small transaction graphs over a shared label alphabet.

    Shapes mimic the paper's partitioned workload: a few dozen vertices,
    sparse edges, a handful of vertex / edge labels so patterns recur
    across many transactions.
    """
    rng = random.Random(seed)
    vertex_labels = ["depot", "hub", "stop"]
    edge_labels = [f"w{i}" for i in range(4)]
    corpus: list[LabeledGraph] = []
    for index in range(n_transactions):
        n_vertices = rng.randint(8, 14)
        graph = LabeledGraph(name=f"t{index}")
        for v in range(n_vertices):
            graph.add_vertex(f"v{v}", rng.choice(vertex_labels))
        n_edges = rng.randint(n_vertices, n_vertices + 6)
        added = 0
        while added < n_edges:
            a, b = rng.sample(range(n_vertices), 2)
            if graph.has_edge(f"v{a}", f"v{b}"):
                continue
            graph.add_edge(f"v{a}", f"v{b}", rng.choice(edge_labels))
            added += 1
        corpus.append(graph)
    return corpus


def mine(corpus, runtime=None):
    miner = FSGMiner(min_support=MIN_SUPPORT, max_edges=MAX_EDGES, runtime=runtime)
    start = time.perf_counter()
    result = miner.mine(corpus)
    elapsed = time.perf_counter() - start
    signature = sorted(
        (pattern.pattern.n_vertices, pattern.pattern.n_edges, pattern.support)
        for pattern in result.patterns
    )
    return elapsed, len(result.patterns), signature


def main() -> None:
    n_transactions = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_TRANSACTIONS
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else DEFAULT_WORKERS
    corpus = build_corpus(n_transactions)
    n_edges = sum(graph.n_edges for graph in corpus)
    print(f"corpus: {n_transactions} transactions, {n_edges} edges; workers={workers}")

    serial_s, n_patterns, serial_signature = mine(corpus)
    print(f"serial            {serial_s:8.2f}s   {n_patterns} frequent patterns")

    timings = {"serial": serial_s}
    divergent: list[str] = []
    for backend in ("serial", "process"):
        runtime = ShardedEngine(shards=workers, backend=backend)
        try:
            elapsed, count, signature = mine(corpus, runtime=runtime)
            stats = runtime.stats()
        finally:
            runtime.close()
        label = f"sharded-{backend}"
        if signature != serial_signature:
            divergent.append(label)
            print(f"ERROR: {label} changed mining output", file=sys.stderr)
        timings[label] = elapsed
        print(
            f"{label:17s} {elapsed:8.2f}s   {count} frequent patterns   "
            f"speedup {serial_s / elapsed:.2f}x   "
            f"(searches={stats['searches']}, early_rejects={stats['early_rejects']})"
        )

    cpu_count = os.cpu_count() or 1
    report = {
        "env": bench_env(),
        "n_transactions": n_transactions,
        "total_edges": n_edges,
        "workers": workers,
        "cpu_count": cpu_count,
        "min_support": MIN_SUPPORT,
        "max_edges": MAX_EDGES,
        "n_patterns": n_patterns,
        "seconds": {key: round(value, 3) for key, value in timings.items()},
        "speedup_batched": round(serial_s / timings["sharded-serial"], 2),
        "speedup_process": round(serial_s / timings["sharded-process"], 2),
        "outputs_identical": not divergent,
    }
    if divergent:
        report["divergent_modes"] = divergent
    if cpu_count < workers:
        report["note"] = (
            f"host has {cpu_count} CPU(s) for {workers} workers: the process "
            "backend is core-bound here and speedup_process measures mostly "
            "IPC overhead on top of the batching gain; run on >= "
            f"{workers} cores for the parallel speedup"
        )
        print(f"note: {report['note']}")
    out = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    if divergent:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
