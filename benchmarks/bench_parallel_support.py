"""Benchmark: sharded support-counting scaling curve + wire differential.

Mines the same >= 400-transaction corpus along two axes —

* **Scaling curve** — for each worker count (default 1, 2, 4) and both
  sharded backends: ``serial`` (inline workers; isolates the *batching*
  gain — one transaction-major pass per level per shard — with zero
  parallelism) and ``process`` (``multiprocessing`` workers with the
  shared-memory blob transport; adds real parallelism on multi-core
  hosts).  Every mode is compared against the plain
  :class:`~repro.runtime.base.SerialRuntime` baseline and records its
  ``wire_bytes_shipped``.
* **Wire differential** — the same sharded mine once under
  ``--wire buffer`` (flat-buffer codec, the default) and once under
  ``--wire pickle``, comparing bytes shipped.  The flat buffer must ship
  at least :data:`WIRE_RATIO_FLOOR` times fewer bytes with identical
  output — byte counts are deterministic, so a shrinking ratio is a
  codec regression, not noise.

Every run starts from a cold engine so no verdict cache leaks between
modes, and the mined (pattern, support) multisets are compared across
all modes.  Results land in ``BENCH_parallel.json``.  The process exits
non-zero when any mode diverges from the serial output, when the wire
ratio drops below the floor, or when a genuinely multi-core host fails
to get *any* parallel payoff from the process backend (best process
speedup < 1.0 despite ``cpu_count > 1``).  A 1-core host cannot fail
the speedup gate — there the process backend measures IPC overhead, and
the report says so instead of pretending otherwise.

Run with::

    PYTHONPATH=src python benchmarks/bench_parallel_support.py [n_transactions] [worker_counts]

where ``worker_counts`` is comma-separated (default ``1,2,4``).
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import bench_env  # noqa: E402

from repro.graphs.labeled_graph import LabeledGraph  # noqa: E402
from repro.mining.fsg.miner import FSGMiner
from repro.runtime import ShardedEngine

DEFAULT_TRANSACTIONS = 400
DEFAULT_WORKER_COUNTS = (1, 2, 4)
MIN_SUPPORT = 0.05
MAX_EDGES = 4
#: Minimum pickle-vs-buffer byte ratio the flat wire must sustain.
WIRE_RATIO_FLOOR = 3.0
#: Worker count the wire differential runs at.
WIRE_SHARDS = 2


def build_corpus(n_transactions: int, seed: int = 20050405) -> list[LabeledGraph]:
    """Random small transaction graphs over a shared label alphabet.

    Shapes mimic the paper's partitioned workload: a few dozen vertices,
    sparse edges, a handful of vertex / edge labels so patterns recur
    across many transactions.
    """
    rng = random.Random(seed)
    vertex_labels = ["depot", "hub", "stop"]
    edge_labels = [f"w{i}" for i in range(4)]
    corpus: list[LabeledGraph] = []
    for index in range(n_transactions):
        n_vertices = rng.randint(8, 14)
        graph = LabeledGraph(name=f"t{index}")
        for v in range(n_vertices):
            graph.add_vertex(f"v{v}", rng.choice(vertex_labels))
        n_edges = rng.randint(n_vertices, n_vertices + 6)
        added = 0
        while added < n_edges:
            a, b = rng.sample(range(n_vertices), 2)
            if graph.has_edge(f"v{a}", f"v{b}"):
                continue
            graph.add_edge(f"v{a}", f"v{b}", rng.choice(edge_labels))
            added += 1
        corpus.append(graph)
    return corpus


def mine(corpus, runtime=None):
    miner = FSGMiner(min_support=MIN_SUPPORT, max_edges=MAX_EDGES, runtime=runtime)
    start = time.perf_counter()
    result = miner.mine(corpus)
    elapsed = time.perf_counter() - start
    signature = sorted(
        (pattern.pattern.n_vertices, pattern.pattern.n_edges, pattern.support)
        for pattern in result.patterns
    )
    return elapsed, len(result.patterns), signature


def mine_sharded(corpus, *, workers: int, backend: str, wire: str | None = None):
    runtime = ShardedEngine(shards=workers, backend=backend, wire=wire)
    try:
        elapsed, count, signature = mine(corpus, runtime=runtime)
        shipped = runtime.wire_bytes_shipped
    finally:
        runtime.close()
    return elapsed, count, signature, shipped


def main() -> None:
    n_transactions = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_TRANSACTIONS
    worker_counts = (
        tuple(int(part) for part in sys.argv[2].split(","))
        if len(sys.argv) > 2
        else DEFAULT_WORKER_COUNTS
    )
    cpu_count = os.cpu_count() or 1
    corpus = build_corpus(n_transactions)
    n_edges = sum(graph.n_edges for graph in corpus)
    print(
        f"corpus: {n_transactions} transactions, {n_edges} edges; "
        f"worker counts {list(worker_counts)}; cpu_count={cpu_count}"
    )

    serial_s, n_patterns, serial_signature = mine(corpus)
    print(f"serial baseline     {serial_s:8.2f}s   {n_patterns} frequent patterns")

    divergent: list[str] = []
    scaling: list[dict] = []
    buffer_bytes_at_wire_shards: int | None = None
    for workers in worker_counts:
        for backend in ("serial", "process"):
            elapsed, count, signature, shipped = mine_sharded(
                corpus, workers=workers, backend=backend
            )
            label = f"sharded-{backend}-w{workers}"
            if signature != serial_signature:
                divergent.append(label)
                print(f"ERROR: {label} changed mining output", file=sys.stderr)
            if workers == WIRE_SHARDS and backend == "serial":
                buffer_bytes_at_wire_shards = shipped
            speedup = serial_s / elapsed
            scaling.append(
                {
                    "workers": workers,
                    "backend": backend,
                    "seconds": round(elapsed, 3),
                    "speedup": round(speedup, 2),
                    "wire_bytes_shipped": shipped,
                }
            )
            print(
                f"{label:22s} {elapsed:8.2f}s   speedup {speedup:.2f}x   "
                f"wire_bytes={shipped}"
            )

    # Wire differential: same corpus, same shard count, pickle wire.
    # The buffer-wire twin already ran in the curve above.
    _, _, pickle_signature, pickle_bytes = mine_sharded(
        corpus, workers=WIRE_SHARDS, backend="serial", wire="pickle"
    )
    if pickle_signature != serial_signature:
        divergent.append("sharded-serial-pickle")
        print("ERROR: pickle wire changed mining output", file=sys.stderr)
    assert buffer_bytes_at_wire_shards is not None or WIRE_SHARDS not in worker_counts
    if buffer_bytes_at_wire_shards is None:
        _, _, _, buffer_bytes_at_wire_shards = mine_sharded(
            corpus, workers=WIRE_SHARDS, backend="serial", wire="buffer"
        )
    wire_ratio = pickle_bytes / buffer_bytes_at_wire_shards
    print(
        f"wire differential (K={WIRE_SHARDS}): buffer={buffer_bytes_at_wire_shards} "
        f"pickle={pickle_bytes} ratio={wire_ratio:.2f}x (floor {WIRE_RATIO_FLOOR}x)"
    )

    process_speedups = [
        row["speedup"] for row in scaling if row["backend"] == "process"
    ]
    batched_speedups = [
        row["speedup"] for row in scaling if row["backend"] == "serial"
    ]
    report = {
        "env": bench_env(),
        "n_transactions": n_transactions,
        "total_edges": n_edges,
        "worker_counts": list(worker_counts),
        "cpu_count": cpu_count,
        "min_support": MIN_SUPPORT,
        "max_edges": MAX_EDGES,
        "n_patterns": n_patterns,
        "serial_seconds": round(serial_s, 3),
        "scaling": scaling,
        "wire": {
            "shards": WIRE_SHARDS,
            "wire_bytes_buffer": buffer_bytes_at_wire_shards,
            "wire_bytes_pickle": pickle_bytes,
            "ratio": round(wire_ratio, 2),
            "ratio_floor": WIRE_RATIO_FLOOR,
        },
        "speedup_batched": max(batched_speedups),
        "speedup_process": max(process_speedups),
        "outputs_identical": not divergent,
    }
    if divergent:
        report["divergent_modes"] = divergent
    if cpu_count == 1:
        report["note"] = (
            "host has 1 CPU: the process backend is core-bound and its "
            "speedups measure IPC overhead on top of the batching gain, "
            "not parallelism; run on a multi-core host for the real curve"
        )
        print(f"note: {report['note']}")
    out = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out} (cpu_count={cpu_count})")

    failures = list(divergent)
    if wire_ratio < WIRE_RATIO_FLOOR:
        failures.append(f"wire ratio {wire_ratio:.2f}x below {WIRE_RATIO_FLOOR}x floor")
        print(f"ERROR: {failures[-1]}", file=sys.stderr)
    if cpu_count > 1 and max(process_speedups) < 1.0:
        failures.append(
            f"multi-core host ({cpu_count} CPUs) but best process speedup "
            f"{max(process_speedups):.2f}x < 1.0"
        )
        print(f"ERROR: {failures[-1]}", file=sys.stderr)
    if failures:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
