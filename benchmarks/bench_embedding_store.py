"""Benchmark: incremental embedding-store support counting vs. full search.

Mines the same corpus as ``bench_parallel_support`` (>= 400 transactions
at the default size) five ways —

* ``serial-full`` — :class:`~repro.runtime.base.SerialRuntime` with the
  embedding store disabled: pattern-major from-scratch search, the
  pre-runtime behaviour;
* ``serial-batched`` — :class:`~repro.runtime.shards.ShardedEngine` with
  the inline backend and the store disabled: PR 2's transaction-major
  batching, the baseline the embedding store is measured against;
* ``embedding-serial`` — the embedding store on the serial runtime:
  level-(k+1) support answered by extending stored level-k anchors by
  one edge, parents' TID bitsets intersected, early abort armed;
* ``embedding-sharded-serial`` / ``embedding-sharded-process`` — the
  same through K shard-local embedding stores (inline / multiprocessing).

Every run starts from a cold engine, and the mined pattern multisets —
including exact supporting-TID sets — are compared across all modes.
Results land in ``BENCH_embedding.json`` with per-level timing
breakdowns; the process exits non-zero when any mode diverges or when
the embedding path fails to beat the serial full search, so the CI smoke
job fails loudly instead of uploading a regression.

Run with::

    PYTHONPATH=src python benchmarks/bench_embedding_store.py [n_transactions] [workers]
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_parallel_support import MAX_EDGES, MIN_SUPPORT, build_corpus  # noqa: E402
from conftest import bench_env  # noqa: E402

from repro.mining.fsg.miner import FSGMiner  # noqa: E402
from repro.runtime import ShardedEngine  # noqa: E402

DEFAULT_TRANSACTIONS = 400
DEFAULT_WORKERS = 4


def mine(corpus, use_store: bool, runtime=None):
    miner = FSGMiner(
        min_support=MIN_SUPPORT,
        max_edges=MAX_EDGES,
        runtime=runtime,
        use_embedding_store=use_store,
    )
    start = time.perf_counter()
    result = miner.mine(corpus)
    elapsed = time.perf_counter() - start
    signature = sorted(
        (
            entry.pattern.n_vertices,
            entry.pattern.n_edges,
            tuple(sorted(entry.supporting_transactions)),
        )
        for entry in result.patterns
    )
    levels = {str(level): round(seconds, 3) for level, seconds in result.level_seconds.items()}
    return elapsed, len(result.patterns), signature, levels


def main() -> None:
    n_transactions = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_TRANSACTIONS
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else DEFAULT_WORKERS
    corpus = build_corpus(n_transactions)
    n_edges = sum(graph.n_edges for graph in corpus)
    print(f"corpus: {n_transactions} transactions, {n_edges} edges; workers={workers}")

    timings: dict[str, float] = {}
    level_timings: dict[str, dict[str, float]] = {}
    divergent: list[str] = []
    reference_signature = None

    def record(label, elapsed, count, signature, levels):
        nonlocal reference_signature
        timings[label] = elapsed
        level_timings[label] = levels
        if reference_signature is None:
            reference_signature = signature
        elif signature != reference_signature:
            divergent.append(label)
            print(f"ERROR: {label} changed mining output", file=sys.stderr)
        print(f"{label:26s} {elapsed:8.2f}s   {count} frequent patterns")

    record("serial-full", *mine(corpus, use_store=False))
    for label, use_store, backend in (
        ("serial-batched", False, "serial"),
        ("embedding-sharded-serial", True, "serial"),
        ("embedding-sharded-process", True, "process"),
    ):
        runtime = ShardedEngine(shards=workers, backend=backend)
        try:
            record(label, *mine(corpus, use_store=use_store, runtime=runtime))
        finally:
            runtime.close()
    record("embedding-serial", *mine(corpus, use_store=True))

    baseline = timings["serial-batched"]
    best_embedding = min(
        timings[label] for label in timings if label.startswith("embedding")
    )
    cpu_count = os.cpu_count() or 1
    report = {
        "env": bench_env(),
        "n_transactions": n_transactions,
        "total_edges": n_edges,
        "workers": workers,
        "cpu_count": cpu_count,
        "min_support": MIN_SUPPORT,
        "max_edges": MAX_EDGES,
        "n_patterns": len(reference_signature),
        "seconds": {key: round(value, 3) for key, value in timings.items()},
        "level_seconds": level_timings,
        "speedup_vs_serial_full": round(timings["serial-full"] / timings["embedding-serial"], 2),
        "speedup_vs_serial_batched": round(baseline / timings["embedding-serial"], 2),
        "speedup_best_vs_serial_batched": round(baseline / best_embedding, 2),
        "outputs_identical": not divergent,
    }
    if divergent:
        report["divergent_modes"] = divergent
    if cpu_count < workers:
        report["note"] = (
            f"host has {cpu_count} CPU(s) for {workers} workers: sharded modes "
            "pay planning/IPC overhead without parallel payoff here, so "
            "embedding-serial is the representative single-box number"
        )
        print(f"note: {report['note']}")
    print(
        f"embedding-serial is {report['speedup_vs_serial_batched']}x the "
        f"serial-batched baseline ({baseline:.2f}s -> {timings['embedding-serial']:.2f}s)"
    )
    out = Path(__file__).resolve().parent.parent / "BENCH_embedding.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    if divergent:
        raise SystemExit(1)
    if timings["embedding-serial"] >= timings["serial-full"]:
        print(
            "ERROR: embedding store is not faster than serial full search",
            file=sys.stderr,
        )
        raise SystemExit(1)


if __name__ == "__main__":
    main()
