"""Benchmark: cost of worker supervision and mid-run crash recovery.

Mines the ``bench_parallel_support`` corpus (>= 400 transactions at the
default size) on a 2-shard process-backend runtime in three modes —

* ``clean`` — no fault plan: the per-message supervision cost is a
  single ``is None`` check in the worker and a deadline-polling ``recv``
  in the parent;
* ``armed-idle`` — a fault plan is armed on every worker but can never
  fire (it targets a level far past the end of the run), so the injector
  counters tick on every message with no fault landing;
* ``kill-recovery`` — a worker is SIGKILLed mid-run (level 3 of 4) and
  the supervisor respawns it, rebuilds its shard deterministically, and
  replays the in-flight level.

Each mode takes the best of ``repeats`` runs.  The no-plan fast path is
additionally measured directly: the benchmark counts the messages one
mining run actually sends (on an identical serial-backend run) and times
that many disabled-injector checks in isolation, the exact extra
per-message work supervision adds to an unfaulted run.

The process exits non-zero when

* any mode mines different output than the serial reference (recovery
  must be invisible in the result),
* the kill-recovery run records no worker restart (the fault silently
  failed to land), or
* the directly-measured disabled-path cost exceeds 1% of the clean
  mining time.

Results land in ``BENCH_recovery.json``.  Run with::

    PYTHONPATH=src python benchmarks/bench_recovery.py [n_transactions] [repeats]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_parallel_support import MAX_EDGES, MIN_SUPPORT, build_corpus  # noqa: E402
from conftest import bench_env  # noqa: E402

from repro.mining.fsg.miner import FSGMiner  # noqa: E402
from repro.runtime import ShardedEngine  # noqa: E402

DEFAULT_TRANSACTIONS = 400
DEFAULT_REPEATS = 3
WORKERS = 2
DISABLED_BUDGET = 0.01

#: Fires on shard 1's third level-type message: mid-run for MAX_EDGES=4.
KILL_PLAN = "kill:shard=1,level=3"
#: Armed on every worker, counts every message, can never fire.
IDLE_PLAN = "kill:shard=0,level=999999"


def mine(corpus, runtime=None):
    miner = FSGMiner(min_support=MIN_SUPPORT, max_edges=MAX_EDGES, runtime=runtime)
    start = time.perf_counter()
    result = miner.mine(corpus)
    elapsed = time.perf_counter() - start
    signature = sorted(
        (
            entry.pattern.n_vertices,
            entry.pattern.n_edges,
            tuple(sorted(entry.supporting_transactions)),
        )
        for entry in result.patterns
    )
    return elapsed, len(result.patterns), signature


def mine_sharded(corpus, faults=None):
    runtime = ShardedEngine(shards=WORKERS, backend="process", faults=faults)
    try:
        elapsed, count, signature = mine(corpus, runtime)
        recovery = runtime.recovery_counts
    finally:
        runtime.close()
    return elapsed, count, signature, recovery


def best_of(repeats, corpus, faults=None):
    best = None
    for _ in range(repeats):
        run = mine_sharded(corpus, faults=faults)
        if best is None or run[0] < best[0]:
            best = run
    return best


class _CountingPool:
    """Wraps a pool, counting the messages a mining run sends."""

    def __init__(self, inner):
        self._inner = inner
        self.messages = 0

    def send(self, worker, message):
        self.messages += 1
        self._inner.send(worker, message)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def count_messages(corpus) -> int:
    """How many worker messages one mining run dispatches.

    Counted on a serial-backend run — the message flow is identical to
    the process backend by construction (same planner, same protocol).
    """
    runtime = ShardedEngine(shards=WORKERS, backend="serial")
    try:
        counter = _CountingPool(runtime._pool)
        runtime._pool = counter
        FSGMiner(min_support=MIN_SUPPORT, max_edges=MAX_EDGES, runtime=runtime).mine(corpus)
        return counter.messages
    finally:
        runtime.close()


class _NoFaults:
    faults = None


def null_check_seconds(n_messages: int) -> float:
    """Direct cost of *n_messages* disabled-injector checks.

    Without a plan no injector object exists: the complete per-message
    work the fault hooks add to a worker is one attribute load plus two
    ``is None`` tests (before the handler and on the reply path).
    """
    worker = _NoFaults()
    start = time.perf_counter()
    for _ in range(n_messages):
        faults = worker.faults
        if faults is not None:
            pass  # pragma: no cover - never armed here
        if faults is not None:
            pass  # pragma: no cover - never armed here
    return time.perf_counter() - start


def main() -> None:
    n_transactions = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_TRANSACTIONS
    repeats = int(sys.argv[2]) if len(sys.argv) > 2 else DEFAULT_REPEATS
    corpus = build_corpus(n_transactions)
    n_edges = sum(graph.n_edges for graph in corpus)
    print(f"corpus: {n_transactions} transactions, {n_edges} edges; repeats={repeats}")

    serial_s, n_patterns, reference = mine(corpus)
    print(f"{'serial':14s} {serial_s:8.3f}s   {n_patterns} patterns")

    timings: dict[str, float] = {}
    divergent: list[str] = []
    recoveries: dict[str, dict] = {}
    for label, faults in (
        ("clean", None),
        ("armed-idle", IDLE_PLAN),
        ("kill-recovery", KILL_PLAN),
    ):
        elapsed, count, signature, recovery = best_of(repeats, corpus, faults=faults)
        timings[label] = elapsed
        recoveries[label] = recovery
        if signature != reference:
            divergent.append(label)
        restarts = recovery["worker_restarts"]
        print(f"{label:14s} {elapsed:8.3f}s   {count} patterns   {restarts} restart(s)")

    clean_s = timings["clean"]
    n_messages = count_messages(corpus)
    disabled_seconds = null_check_seconds(n_messages)
    disabled_overhead = disabled_seconds / clean_s if clean_s else 0.0
    recovery_overhead = (
        max(0.0, (timings["kill-recovery"] - clean_s) / clean_s) if clean_s else 0.0
    )
    print(
        f"disabled-path cost: {disabled_seconds * 1e3:.3f}ms for {n_messages} messages "
        f"({disabled_overhead:.4%} of clean run)"
    )
    print(f"kill-recovery overhead: {recovery_overhead:.1%} over clean")

    report = {
        "env": bench_env(),
        "n_transactions": n_transactions,
        "total_edges": n_edges,
        "repeats": repeats,
        "workers": WORKERS,
        "min_support": MIN_SUPPORT,
        "max_edges": MAX_EDGES,
        "n_patterns": n_patterns,
        "fault_plans": {"armed-idle": IDLE_PLAN, "kill-recovery": KILL_PLAN},
        "seconds": {"serial": round(serial_s, 3)}
        | {key: round(value, 3) for key, value in timings.items()},
        "recovery": recoveries["kill-recovery"],
        "messages_per_run": n_messages,
        "disabled_check_seconds": round(disabled_seconds, 6),
        "disabled_overhead": round(disabled_overhead, 6),
        "recovery_overhead": round(recovery_overhead, 4),
        "budgets": {"disabled": DISABLED_BUDGET},
        "outputs_identical": not divergent,
    }
    if divergent:
        report["divergent_modes"] = divergent
    out = Path(__file__).resolve().parent.parent / "BENCH_recovery.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    if divergent:
        print(f"ERROR: output diverged in mode(s): {', '.join(divergent)}", file=sys.stderr)
        raise SystemExit(1)
    if recoveries["kill-recovery"]["worker_restarts"] < 1:
        print("ERROR: kill-recovery run recorded no worker restart", file=sys.stderr)
        raise SystemExit(1)
    if disabled_overhead > DISABLED_BUDGET:
        print(
            f"ERROR: disabled-injector overhead {disabled_overhead:.4%} exceeds "
            f"{DISABLED_BUDGET:.0%} budget",
            file=sys.stderr,
        )
        raise SystemExit(1)


if __name__ == "__main__":
    main()
