"""Benchmark S6.1 — Section 6.1: FSG memory failure on unfiltered temporal data."""

from __future__ import annotations

from conftest import run_once

from repro.core.experiments import experiment_sec61_fsg_memory


def test_bench_sec61_fsg_memory(benchmark, experiment_config, record_report):
    """The unfiltered per-day transactions blow the candidate budget; the filtered set completes."""
    report = run_once(benchmark, experiment_sec61_fsg_memory, experiment_config)
    record_report(report)
    measured = report.measured
    assert measured["unfiltered_run_fails"] is True
    assert measured["filtered_run_completes"] is True
    assert measured["filtered_patterns"] > 0
