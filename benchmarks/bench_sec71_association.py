"""Benchmark S7.1 — Section 7.1: association rules on the discretised table."""

from __future__ import annotations

from conftest import run_once

from repro.core.experiments import experiment_sec71_association


def test_bench_sec71_association(benchmark, experiment_config, record_report):
    """Weight->LTL and origin-longitude->origin-latitude rules emerge with high confidence."""
    report = run_once(benchmark, experiment_sec71_association, experiment_config)
    record_report(report)
    measured = report.measured
    assert measured["weight_to_ltl_rule_found"] is True
    assert measured["longitude_to_latitude_rule_found"] is True
    # The paper reports confidence 0.87; the synthetic corridor gives a
    # similarly high value.
    assert measured["longitude_to_latitude_confidence"] >= 0.8
