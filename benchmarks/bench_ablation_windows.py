"""Ablation — time-window length for temporal mining (Section 9 extension).

The paper argues that patterns appearing over a time window (a route
completed over a week) are more relevant than patterns visible at a single
instant, but its temporal experiment only uses per-date transactions.  The
window-partitioning extension makes the claim measurable: mining weekly
windows exposes frequent patterns that per-date transactions cannot
support, because the window graphs connect activity spread across days.
"""

from __future__ import annotations

from conftest import run_once

from repro.mining.fsg.miner import FSGMiner
from repro.partitioning.temporal import graphs_of, partition_by_date, prepare_temporal_transactions
from repro.partitioning.windows import partition_by_window, window_graphs


def _patterns_by_window_length(config) -> dict[str, int]:
    dataset = config.dataset()
    binning = config.binning()
    miner = FSGMiner(min_support=0.3, max_edges=2)

    daily = prepare_temporal_transactions(
        partition_by_date(dataset, binning=binning), drop_single_edge=True
    )
    daily_patterns = len(miner.mine(graphs_of(daily))) if daily else 0

    counts = {"per_date": daily_patterns}
    for window_days in (7, 14):
        windows = partition_by_window(dataset, window_days=window_days, binning=binning)
        counts[f"window_{window_days}d"] = len(miner.mine(window_graphs(windows))) if windows else 0
    return counts


def test_bench_ablation_windows(benchmark, experiment_config):
    """Longer windows expose frequent patterns that single-date transactions cannot support."""
    counts = run_once(benchmark, _patterns_by_window_length, experiment_config)
    print(f"\nfrequent patterns at 30% support by temporal granularity: {counts}")
    assert counts["window_7d"] >= counts["per_date"]
    assert counts["window_14d"] >= 1
