"""Micro-benchmark: indexed MatchEngine vs legacy path on FSG support counting.

Measures the throughput of the workload one FSG level generates — counting
the support of many candidate patterns across a fixed set of graph
transactions — through the legacy per-call isomorphism path and through
the shared :class:`~repro.graphs.engine.MatchEngine` (index build included
in its timing).  Verifies both paths return identical supports, then
writes the numbers to ``BENCH_kernel.json`` next to this script.

Run with::

    PYTHONPATH=src python benchmarks/bench_kernel_speedup.py [n_transactions]
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import bench_env  # noqa: E402

from repro.graphs.engine import MatchEngine  # noqa: E402
from repro.graphs.isomorphism import legacy_has_embedding
from repro.graphs.labeled_graph import LabeledGraph


def make_transaction(rng: random.Random, index: int, n_locations: int = 40) -> LabeledGraph:
    """A synthetic temporal-style transaction: location labels, binned edge labels."""
    graph = LabeledGraph(name=f"txn-{index}")
    n_vertices = rng.randint(18, 30)
    vertices = []
    for position in range(n_vertices):
        vertex = f"v{position}"
        graph.add_vertex(vertex, f"loc{rng.randrange(n_locations)}")
        vertices.append(vertex)
    n_edges = rng.randint(24, 44)
    for _ in range(n_edges * 3):
        if graph.n_edges >= n_edges:
            break
        source, target = rng.sample(vertices, 2)
        if not graph.has_edge(source, target):
            graph.add_edge(source, target, f"w{rng.randrange(5)}")
    return graph


def sample_pattern(rng: random.Random, transaction: LabeledGraph, n_edges: int) -> LabeledGraph:
    """A connected pattern sampled from a transaction (labels preserved)."""
    edges = list(transaction.edges())
    rng.shuffle(edges)
    chosen = [edges[0]]
    covered = {edges[0].source, edges[0].target}
    for edge in edges[1:]:
        if len(chosen) >= n_edges:
            break
        if edge.source in covered or edge.target in covered:
            chosen.append(edge)
            covered.update((edge.source, edge.target))
    pattern = LabeledGraph(name="pattern")
    renamed = {vertex: f"p{i}" for i, vertex in enumerate(sorted(covered))}
    for vertex in covered:
        pattern.add_vertex(renamed[vertex], transaction.vertex_label(vertex))
    for edge in chosen:
        pattern.add_edge(renamed[edge.source], renamed[edge.target], edge.label)
    return pattern


def main(n_transactions: int = 200) -> None:
    rng = random.Random(20260729)
    transactions = [make_transaction(rng, index) for index in range(n_transactions)]
    patterns = [
        sample_pattern(rng, transactions[rng.randrange(n_transactions)], rng.randint(1, 4))
        for _ in range(60)
    ]

    start = time.perf_counter()
    legacy_supports = [
        sum(1 for transaction in transactions if legacy_has_embedding(pattern, transaction))
        for pattern in patterns
    ]
    legacy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    engine = MatchEngine()
    engine.add_transactions(transactions)  # index build counted against the engine
    engine_supports = [len(engine.support(pattern)) for pattern in patterns]
    engine_seconds = time.perf_counter() - start

    if engine_supports != legacy_supports:
        raise SystemExit("engine and legacy supports disagree — kernel bug")

    start = time.perf_counter()
    warm_supports = [len(engine.support(pattern)) for pattern in patterns]
    warm_seconds = time.perf_counter() - start
    assert warm_supports == legacy_supports

    report = {
        "env": bench_env(),
        "n_transactions": n_transactions,
        "n_patterns": len(patterns),
        "legacy_seconds": round(legacy_seconds, 4),
        "engine_seconds": round(engine_seconds, 4),
        "engine_warm_seconds": round(warm_seconds, 4),
        "speedup": round(legacy_seconds / engine_seconds, 2),
        "warm_speedup": round(legacy_seconds / warm_seconds, 2) if warm_seconds else None,
        "supports_identical": True,
        "engine_stats": {
            "indexes_built": engine.stats.indexes_built,
            "searches": engine.stats.searches,
            "early_rejects": engine.stats.early_rejects,
            "verdict_hits": engine.stats.verdict_hits,
            "verdict_misses": engine.stats.verdict_misses,
        },
    }
    output = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {output}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
