"""Benchmark ABL — ablation: partitioning strategy (BFS / DFS / METIS-like)."""

from __future__ import annotations

from conftest import run_once

from repro.core.experiments import experiment_ablation_partitioning


def test_bench_ablation_partitioning(benchmark, experiment_config, record_report):
    """Edge-pulling partitioning recalls planted patterns at least as well as a METIS-like split."""
    report = run_once(benchmark, experiment_ablation_partitioning, experiment_config, copies=12, partitions=14)
    record_report(report)
    measured = report.measured
    assert measured["edge_pulling_at_least_as_good_as_metis"] is True
    assert 0.0 <= measured["recall_multilevel"] <= 1.0
