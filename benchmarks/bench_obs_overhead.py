"""Benchmark: tracing overhead of the repro.obs subsystem.

Mines the same corpus as ``bench_parallel_support`` (>= 400 transactions
at the default size) twice on the serial runtime —

* ``tracer-off`` — the default :data:`~repro.obs.tracer.NULL_TRACER` is
  active, so every instrumentation site takes the disabled fast path
  (``_NULL_SPAN`` enter/exit, no-op metrics);
* ``tracer-on`` — a live :class:`~repro.obs.tracer.Tracer` is installed
  with :func:`~repro.obs.tracer.set_tracer`, so every span is recorded
  and every counter absorbed.

Both runs take the best of ``repeats`` attempts so a single scheduler
hiccup cannot fail the gate.  The disabled-path cost is additionally
measured directly: the benchmark times as many no-op span enter/exits as
the enabled run actually recorded, which is the exact extra work an
untraced mining run performs, free of run-to-run mining noise.

The process exits non-zero when

* the traced and untraced runs mine different output (tracing must be
  purely observational),
* the directly-measured disabled-path cost exceeds 1% of the untraced
  mining time, or
* the enabled-tracer run is more than 10% slower than the untraced run.

Results land in ``BENCH_obs.json``.  Run with::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [n_transactions] [repeats]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_parallel_support import MAX_EDGES, MIN_SUPPORT, build_corpus  # noqa: E402
from bench_session_protocol import mine  # noqa: E402
from conftest import bench_env  # noqa: E402

from repro.obs.tracer import NULL_TRACER, Tracer, set_tracer  # noqa: E402

DEFAULT_TRANSACTIONS = 400
DEFAULT_REPEATS = 3
DISABLED_BUDGET = 0.01
ENABLED_BUDGET = 0.10


def best_of(repeats: int, corpus, tracer=None):
    """Best wall-clock of *repeats* mining runs (and the last run's outputs)."""
    best = None
    for _ in range(repeats):
        if tracer is not None:
            previous = set_tracer(tracer)
        try:
            elapsed, count, signature, result = mine(corpus)
        finally:
            if tracer is not None:
                set_tracer(previous)
        if best is None or elapsed < best[0]:
            best = (elapsed, count, signature, result)
    return best


def null_span_seconds(n_spans: int) -> float:
    """Direct cost of *n_spans* disabled span enter/exits.

    This is the complete per-span work an untraced run adds over
    uninstrumented code, measured in isolation so mining noise cannot
    drown it out.
    """
    tracer = NULL_TRACER
    start = time.perf_counter()
    for _ in range(n_spans):
        with tracer.span("bench.noop"):
            pass
    return time.perf_counter() - start


def main() -> None:
    n_transactions = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_TRANSACTIONS
    repeats = int(sys.argv[2]) if len(sys.argv) > 2 else DEFAULT_REPEATS
    corpus = build_corpus(n_transactions)
    n_edges = sum(graph.n_edges for graph in corpus)
    print(f"corpus: {n_transactions} transactions, {n_edges} edges; repeats={repeats}")

    off_elapsed, off_count, off_signature, _ = best_of(repeats, corpus)
    print(f"{'tracer-off':12s} {off_elapsed:8.3f}s   {off_count} patterns")

    tracer = Tracer(worker="main")
    on_elapsed, on_count, on_signature, _ = best_of(repeats, corpus, tracer=tracer)
    n_spans = len(tracer.spans)
    print(f"{'tracer-on':12s} {on_elapsed:8.3f}s   {on_count} patterns   {n_spans} spans")

    # The enabled tracer accumulated spans across all repeats; one run
    # records n_spans / repeats of them.
    spans_per_run = max(1, n_spans // repeats)
    disabled_seconds = null_span_seconds(spans_per_run)
    disabled_overhead = disabled_seconds / off_elapsed if off_elapsed else 0.0
    enabled_overhead = max(0.0, (on_elapsed - off_elapsed) / off_elapsed) if off_elapsed else 0.0

    identical = off_signature == on_signature
    print(
        f"disabled-path cost: {disabled_seconds * 1e3:.3f}ms for {spans_per_run} spans "
        f"({disabled_overhead:.4%} of untraced run)"
    )
    print(f"enabled overhead: {enabled_overhead:.2%} (budget {ENABLED_BUDGET:.0%})")

    report = {
        "env": bench_env(),
        "n_transactions": n_transactions,
        "total_edges": n_edges,
        "repeats": repeats,
        "min_support": MIN_SUPPORT,
        "max_edges": MAX_EDGES,
        "n_patterns": off_count,
        "seconds": {
            "tracer_off": round(off_elapsed, 4),
            "tracer_on": round(on_elapsed, 4),
        },
        "spans_per_run": spans_per_run,
        "disabled_span_seconds": round(disabled_seconds, 6),
        "disabled_overhead": round(disabled_overhead, 6),
        "enabled_overhead": round(enabled_overhead, 4),
        "budgets": {"disabled": DISABLED_BUDGET, "enabled": ENABLED_BUDGET},
        "outputs_identical": identical,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    if not identical:
        print("ERROR: tracing changed mining output", file=sys.stderr)
        raise SystemExit(1)
    if disabled_overhead > DISABLED_BUDGET:
        print(
            f"ERROR: disabled-tracer overhead {disabled_overhead:.4%} exceeds "
            f"{DISABLED_BUDGET:.0%} budget",
            file=sys.stderr,
        )
        raise SystemExit(1)
    if enabled_overhead > ENABLED_BUDGET:
        print(
            f"ERROR: enabled-tracer overhead {enabled_overhead:.2%} exceeds "
            f"{ENABLED_BUDGET:.0%} budget",
            file=sys.stderr,
        )
        raise SystemExit(1)


if __name__ == "__main__":
    main()
