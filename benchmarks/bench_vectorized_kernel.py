"""Benchmark: the numpy columnar match kernel vs. the pure-python oracle.

Mines the same >= 400-transaction corpus as ``bench_parallel_support``
four ways —

* ``serial-batched`` — :class:`~repro.runtime.shards.ShardedEngine` with
  the inline backend, embedding store off, python kernel: PR 2's
  transaction-major batching, the historical baseline;
* ``embedding-serial-python`` — the embedding store on the serial
  runtime with the pure-python kernel: PR 4's configuration, and the
  differential oracle for the vectorized path;
* ``embedding-serial-vectorized`` — the same mining run with
  ``kernel="vectorized"``: whole-level anchor-extension passes over the
  columnar transaction arena (:mod:`repro.graphs.vectorized`);
* ``embedding-sharded-vectorized`` — the vectorized kernel inside K
  inline shard workers, demonstrating the kernel composes with the
  sharded runtime.

Every run starts from a cold engine and the mined pattern multisets —
including exact supporting-TID sets — are compared across all modes.
Timed modes take the best of ``--reps`` repetitions (wall-clock on this
box drifts run to run; the minimum is the stable statistic).  Results
land in ``BENCH_vectorized.json``; the process exits non-zero when any
mode diverges or the vectorized kernel fails to beat the python kernel,
so the CI smoke job fails loudly instead of uploading a regression.

Speedups reported:

* ``speedup_vs_serial_batched`` — vectorized vs. the in-run PR 2
  baseline (the ISSUE's >= 5x headline);
* ``speedup_vs_python_kernel`` — vectorized vs. the in-run python
  kernel on identical configuration (the regression guard: must be > 1);
* ``speedup_vs_recorded_embedding_serial`` — vectorized vs. PR 4's
  recorded ``embedding-serial`` seconds from ``BENCH_embedding.json``
  (the >= 1.5x acceptance number; this PR's shared-path optimisations —
  memoized refinement/canonical codes, incremental compact derivation —
  sped the in-run python kernel too, so the recorded artifact is the
  honest PR 4 reference).

Run with::

    PYTHONPATH=src python benchmarks/bench_vectorized_kernel.py [n_transactions] [workers] [reps]
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_parallel_support import MAX_EDGES, MIN_SUPPORT, build_corpus  # noqa: E402
from conftest import bench_env  # noqa: E402

from repro.mining.fsg.miner import FSGMiner  # noqa: E402
from repro.runtime import ShardedEngine  # noqa: E402

DEFAULT_TRANSACTIONS = 400
DEFAULT_WORKERS = 4
DEFAULT_REPS = 3


def mine(corpus, kernel: str, use_store: bool = True, runtime=None):
    miner = FSGMiner(
        min_support=MIN_SUPPORT,
        max_edges=MAX_EDGES,
        runtime=runtime,
        use_embedding_store=use_store,
        kernel=kernel if runtime is None else None,
    )
    start = time.perf_counter()
    result = miner.mine(corpus)
    elapsed = time.perf_counter() - start
    signature = sorted(
        (
            entry.pattern.n_vertices,
            entry.pattern.n_edges,
            tuple(sorted(entry.supporting_transactions)),
        )
        for entry in result.patterns
    )
    return elapsed, len(result.patterns), signature


def best_of(reps: int, label: str, runner):
    """Run *runner* `reps` times; the minimum elapsed is the statistic.

    Every repetition's signature must match (a divergent repetition is a
    bug, not noise), so the signature of the last run is returned.
    """
    best = None
    for _ in range(max(1, reps)):
        elapsed, count, signature = runner()
        if best is None:
            best = (elapsed, count, signature)
        elif signature != best[2]:
            print(f"ERROR: {label} diverged between repetitions", file=sys.stderr)
            raise SystemExit(1)
        elif elapsed < best[0]:
            best = (elapsed, count, signature)
    return best


def main() -> None:
    n_transactions = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_TRANSACTIONS
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else DEFAULT_WORKERS
    reps = int(sys.argv[3]) if len(sys.argv) > 3 else DEFAULT_REPS
    corpus = build_corpus(n_transactions)
    n_edges = sum(graph.n_edges for graph in corpus)
    print(f"corpus: {n_transactions} transactions, {n_edges} edges; workers={workers}, reps={reps}")

    timings: dict[str, float] = {}
    divergent: list[str] = []
    reference_signature = None

    def record(label, elapsed, count, signature):
        nonlocal reference_signature
        timings[label] = elapsed
        if reference_signature is None:
            reference_signature = signature
        elif signature != reference_signature:
            divergent.append(label)
            print(f"ERROR: {label} changed mining output", file=sys.stderr)
        print(f"{label:28s} {elapsed:8.3f}s   {count} frequent patterns")

    def sharded(kernel, use_store):
        runtime = ShardedEngine(shards=workers, backend="serial", kernel=kernel)
        try:
            return mine(corpus, kernel, use_store=use_store, runtime=runtime)
        finally:
            runtime.close()

    # The slow PR 2 baseline runs once; the fast modes take best-of-reps.
    record("serial-batched", *sharded("python", use_store=False))
    record(
        "embedding-serial-python",
        *best_of(reps, "embedding-serial-python", lambda: mine(corpus, "python")),
    )
    record(
        "embedding-serial-vectorized",
        *best_of(reps, "embedding-serial-vectorized", lambda: mine(corpus, "vectorized")),
    )
    record(
        "embedding-sharded-vectorized",
        *best_of(reps, "embedding-sharded-vectorized", lambda: sharded("vectorized", True)),
    )

    vectorized = timings["embedding-serial-vectorized"]
    python_kernel = timings["embedding-serial-python"]
    batched = timings["serial-batched"]

    # The recorded PR 4 number is only comparable on the same corpus.
    recorded_path = Path(__file__).resolve().parent.parent / "BENCH_embedding.json"
    recorded_embedding_serial = None
    if recorded_path.exists():
        try:
            recorded = json.loads(recorded_path.read_text())
            if recorded.get("n_transactions") == n_transactions:
                recorded_embedding_serial = recorded["seconds"]["embedding-serial"]
        except (KeyError, ValueError):
            recorded_embedding_serial = None

    report = {
        "env": bench_env(),
        "n_transactions": n_transactions,
        "total_edges": n_edges,
        "workers": workers,
        "reps": reps,
        "cpu_count": os.cpu_count() or 1,
        "min_support": MIN_SUPPORT,
        "max_edges": MAX_EDGES,
        "n_patterns": len(reference_signature),
        "seconds": {key: round(value, 3) for key, value in timings.items()},
        "speedup_vs_serial_batched": round(batched / vectorized, 2),
        "speedup_vs_python_kernel": round(python_kernel / vectorized, 2),
        "outputs_identical": not divergent,
    }
    if recorded_embedding_serial:
        report["recorded_embedding_serial_seconds"] = recorded_embedding_serial
        report["speedup_vs_recorded_embedding_serial"] = round(
            recorded_embedding_serial / vectorized, 2
        )
    if divergent:
        report["divergent_modes"] = divergent

    print(
        f"vectorized kernel is {report['speedup_vs_serial_batched']}x the serial-batched "
        f"baseline ({batched:.2f}s -> {vectorized:.2f}s) and "
        f"{report['speedup_vs_python_kernel']}x the python kernel ({python_kernel:.2f}s)"
    )
    if recorded_embedding_serial:
        print(
            f"vs PR 4's recorded embedding-serial ({recorded_embedding_serial:.2f}s): "
            f"{report['speedup_vs_recorded_embedding_serial']}x"
        )
    out = Path(__file__).resolve().parent.parent / "BENCH_vectorized.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    if divergent:
        raise SystemExit(1)
    if vectorized >= python_kernel:
        print("ERROR: vectorized kernel is not faster than the python kernel", file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()
