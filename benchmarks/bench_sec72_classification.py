"""Benchmark S7.2 — Section 7.2: decision-tree classification experiments."""

from __future__ import annotations

from conftest import run_once

from repro.core.experiments import experiment_sec72_classification


def test_bench_sec72_classification(benchmark, experiment_config, record_report):
    """TRANS_MODE is ~96% predictable with GROSS_WEIGHT as the root split."""
    report = run_once(benchmark, experiment_sec72_classification, experiment_config)
    record_report(report)
    measured = report.measured
    assert measured["trans_mode_accuracy"] >= 0.90
    assert measured["root_split_attribute"] == "GROSS_WEIGHT"
    assert measured["latitudes_more_informative_than_hours_for_distance"] is True
