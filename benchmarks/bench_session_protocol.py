"""Benchmark: stateful mining sessions vs. the stateless full-wire protocol.

Mines the same corpus as ``bench_parallel_support`` (>= 400 transactions
at the default size) four ways —

* ``serial`` — :class:`~repro.runtime.base.SerialRuntime`: the in-process
  reference output every other mode must reproduce exactly;
* ``session-full`` — :class:`~repro.runtime.shards.ShardedEngine` with
  ``session_protocol="full"``: the pre-session wire protocol (every
  level re-ships every surviving pattern as a full CompactGraph wire
  tuple plus its tid list), the baseline the delta protocol is measured
  against;
* ``session-delta`` — the stateful session protocol (inline backend):
  each shard keeps a resident pattern store, level-(k+1) candidates ship
  as ``(parent uid, extension edge, scan mask)`` delta tokens and are
  reconstructed shard-side from the stored parent, evictions piggyback
  on level traffic;
* ``session-delta-process`` — the same over ``multiprocessing`` workers.

Wire bytes are read from each run's per-level session telemetry
(``FSGResult.level_telemetry``), measured with the same
:func:`~repro.runtime.planner.wire_cost` ruler in both protocols.
Results land in ``BENCH_session.json``; the process exits non-zero when
any mode diverges from the serial output or when the delta protocol
ships *more* bytes than the full-wire baseline, so the CI smoke job
fails loudly instead of uploading a regression.

Run with::

    PYTHONPATH=src python benchmarks/bench_session_protocol.py [n_transactions] [workers]
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_parallel_support import MAX_EDGES, MIN_SUPPORT, build_corpus  # noqa: E402
from conftest import bench_env  # noqa: E402

from repro.mining.fsg.miner import FSGMiner  # noqa: E402
from repro.runtime import ShardedEngine  # noqa: E402

DEFAULT_TRANSACTIONS = 400
DEFAULT_WORKERS = 2


def mine(corpus, runtime=None):
    miner = FSGMiner(min_support=MIN_SUPPORT, max_edges=MAX_EDGES, runtime=runtime)
    start = time.perf_counter()
    result = miner.mine(corpus)
    elapsed = time.perf_counter() - start
    signature = sorted(
        (
            entry.pattern.n_vertices,
            entry.pattern.n_edges,
            tuple(sorted(entry.supporting_transactions)),
        )
        for entry in result.patterns
    )
    return elapsed, len(result.patterns), signature, result


def main() -> None:
    n_transactions = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_TRANSACTIONS
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else DEFAULT_WORKERS
    corpus = build_corpus(n_transactions)
    n_edges = sum(graph.n_edges for graph in corpus)
    print(f"corpus: {n_transactions} transactions, {n_edges} edges; workers={workers}")

    timings: dict[str, float] = {}
    level_wire: dict[str, dict[str, float]] = {}
    totals: dict[str, dict[str, float]] = {}
    divergent: list[str] = []
    reference_signature = None

    def record(label, elapsed, count, signature, result):
        nonlocal reference_signature
        timings[label] = elapsed
        level_wire[label] = {
            str(level): counters["wire_bytes"]
            for level, counters in sorted(result.level_telemetry.items())
        }
        totals[label] = result.session_totals()
        if reference_signature is None:
            reference_signature = signature
        elif signature != reference_signature:
            divergent.append(label)
            print(f"ERROR: {label} changed mining output", file=sys.stderr)
        wire = totals[label].get("wire_bytes", 0)
        print(f"{label:24s} {elapsed:8.2f}s   {count} patterns   {wire:>12,.0f} wire bytes")

    record("serial", *mine(corpus))
    for label, backend, protocol in (
        ("session-full", "serial", "full"),
        ("session-delta", "serial", "delta"),
        ("session-delta-process", "process", "delta"),
    ):
        runtime = ShardedEngine(shards=workers, backend=backend, session_protocol=protocol)
        try:
            record(label, *mine(corpus, runtime=runtime))
        finally:
            runtime.close()

    full_bytes = totals["session-full"]["wire_bytes"]
    delta_bytes = totals["session-delta"]["wire_bytes"]
    reduction = full_bytes / delta_bytes if delta_bytes else float("inf")
    per_level_reduction = {
        level: round(full_bytes_level / delta_bytes_level, 2)
        for (level, full_bytes_level), delta_bytes_level in zip(
            level_wire["session-full"].items(), level_wire["session-delta"].values()
        )
        if delta_bytes_level
    }
    cpu_count = os.cpu_count() or 1
    report = {
        "env": bench_env(),
        "n_transactions": n_transactions,
        "total_edges": n_edges,
        "workers": workers,
        "cpu_count": cpu_count,
        "min_support": MIN_SUPPORT,
        "max_edges": MAX_EDGES,
        "n_patterns": len(reference_signature),
        "seconds": {key: round(value, 3) for key, value in timings.items()},
        "wire_bytes": {key: total.get("wire_bytes", 0) for key, total in totals.items()},
        "level_wire_bytes": level_wire,
        "wire_reduction_delta_vs_full": round(reduction, 2),
        "per_level_wire_reduction": per_level_reduction,
        "session_counters": {
            key: {name: value for name, value in total.items() if name != "planning_seconds"}
            for key, total in totals.items()
        },
        "planning_seconds": {
            key: round(total.get("planning_seconds", 0.0), 3)
            for key, total in totals.items()
        },
        "outputs_identical": not divergent,
    }
    if divergent:
        report["divergent_modes"] = divergent
    print(
        f"delta protocol ships {report['wire_reduction_delta_vs_full']}x fewer wire "
        f"bytes than the full-wire baseline ({full_bytes:,.0f} -> {delta_bytes:,.0f})"
    )
    out = Path(__file__).resolve().parent.parent / "BENCH_session.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    if divergent:
        raise SystemExit(1)
    if delta_bytes > full_bytes:
        print(
            "ERROR: delta protocol shipped more wire bytes than the full-wire baseline",
            file=sys.stderr,
        )
        raise SystemExit(1)


if __name__ == "__main__":
    main()
