"""Benchmark F2/F3 — Figures 2 & 3, Section 5.2.2: FSG over BFS/DFS partitions."""

from __future__ import annotations

from conftest import run_once

from repro.core.experiments import experiment_fig2_fig3_fsg_partitioning


def test_bench_fig2_fig3_fsg_partitioning(benchmark, experiment_config, record_report):
    """Structural partitioning + FSG: pattern counts and shapes per strategy."""
    report = run_once(
        benchmark,
        experiment_fig2_fig3_fsg_partitioning,
        experiment_config,
        paper_partition_counts=(400, 1600),
        max_pattern_edges=4,
    )
    record_report(report)
    measured = report.measured
    # The paper's headline qualitative findings.
    assert measured["breadth_first_finds_hub_and_spoke"] is True
    assert measured["depth_first_finds_chain"] is True
    assert measured["fewer_partitions_more_patterns"] is True
    assert measured["avg_patterns_breadth_first"] > 0
    assert measured["avg_patterns_depth_first"] > 0
