"""Benchmark T2 — Table 2: summary of temporally partitioned graph data."""

from __future__ import annotations

from conftest import run_once

from repro.core.experiments import experiment_table2_temporal


def test_bench_table2_temporal(benchmark, experiment_config, record_report):
    """Per-day graph transactions: counts, label cardinalities, size distribution."""
    report = run_once(benchmark, experiment_table2_temporal, experiment_config)
    record_report(report)
    measured = report.measured
    # Roughly one transaction per day of the six-month window.
    assert 120 <= measured["n_transactions"] <= 220
    # Seven weight bins label the edges, as in the paper.
    assert measured["distinct_edge_labels"] == 7
    # Vertex labels are unique per location, so the count tracks the location count.
    assert measured["distinct_vertex_labels"] > 50
    assert measured["max_edges"] >= measured["average_edges"]
