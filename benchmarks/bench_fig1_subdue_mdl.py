"""Benchmark F1 — Figure 1: SUBDUE with the MDL principle on OD_GW."""

from __future__ import annotations

from conftest import run_once

from repro.core.experiments import experiment_figure1_subdue_mdl


def test_bench_fig1_subdue_mdl(benchmark, experiment_config, record_report):
    """SUBDUE/MDL on a truncated OD_GW graph finds small repetitive patterns."""
    report = run_once(benchmark, experiment_figure1_subdue_mdl, experiment_config, n_vertices=40)
    record_report(report)
    measured = report.measured
    assert measured["best_patterns_reported"] >= 3
    assert measured["patterns_are_repetitive"] is True
    # MDL favours trivial small patterns on the uniformly-labeled graph.
    assert max(measured["pattern_sizes"]) <= 4
