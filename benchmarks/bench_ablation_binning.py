"""Ablation — edge-label binning granularity (a DESIGN.md design choice).

Section 3 of the paper bins the numeric edge attributes (seven bins for
gross weight, ten for transit hours) so that similar loads support the same
pattern.  This ablation sweeps the weight-bin count and measures how the
number of distinct frequent patterns found by the structural pipeline
responds: too few bins collapse distinct behaviours into the same label (few
distinct patterns, all trivial), while too many bins make recurring lanes
land in different bins trip to trip (patterns lose support).  The paper's
moderate granularity sits at the productive middle.
"""

from __future__ import annotations

from conftest import run_once

from repro.datasets.binning import default_binning_scheme
from repro.graphs.builders import build_od_graph
from repro.partitioning.split_graph import PartitionStrategy
from repro.partitioning.structural import StructuralMiningConfig, mine_single_graph


def _pattern_counts_by_bin_count(config, bin_counts=(2, 7, 60)) -> dict[int, int]:
    dataset = config.dataset()
    counts: dict[int, int] = {}
    for weight_bins in bin_counts:
        binning = default_binning_scheme(weight_bins=weight_bins)
        graph = build_od_graph(dataset, edge_attribute="GROSS_WEIGHT", binning=binning, vertex_labeling="uniform")
        k = max(8, graph.n_edges // 26)
        mining_config = StructuralMiningConfig(
            k=k,
            repetitions=1,
            min_support=max(2, k // 4),
            strategy=PartitionStrategy.BREADTH_FIRST,
            max_pattern_edges=3,
            seed=31,
        )
        counts[weight_bins] = len(mine_single_graph(graph, mining_config))
    return counts


def test_bench_ablation_binning(benchmark, experiment_config):
    """The paper's moderate bin count finds the most distinct frequent patterns."""
    counts = run_once(benchmark, _pattern_counts_by_bin_count, experiment_config)
    print(f"\nfrequent patterns by weight-bin count: {counts}")
    coarse, paper_setting, fine = counts[2], counts[7], counts[60]
    assert paper_setting >= coarse
    assert paper_setting >= fine
    assert paper_setting > 0
