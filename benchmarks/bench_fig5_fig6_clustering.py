"""Benchmark F5/F6 — Figures 5 & 6: EM clustering of the numeric attributes."""

from __future__ import annotations

from conftest import run_once

from repro.core.experiments import experiment_fig5_fig6_clustering
from repro.reporting.figures import render_cluster_summaries


def test_bench_fig5_fig6_clustering(benchmark, experiment_config, record_report):
    """Nine EM clusters with a tiny air-freight outlier cluster and a short/long-haul split."""
    report = run_once(benchmark, experiment_fig5_fig6_clustering, experiment_config, n_clusters=9)
    record_report(report)
    measured = report.measured
    assert measured["n_clusters"] >= 7
    assert measured["outlier_cluster_is_air_freight"] is True
    assert measured["short_haul_and_long_haul_split"] is True
    assert measured["smallest_cluster_size"] <= 10
    print()
    print(render_cluster_summaries(report.details["summaries"], title="Figure 5/6 equivalent"))
