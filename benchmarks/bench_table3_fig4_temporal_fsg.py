"""Benchmark T3/F4 — Table 3 + Figure 4: FSG on filtered temporal transactions."""

from __future__ import annotations

from conftest import run_once

from repro.core.experiments import experiment_table3_fig4_temporal_fsg
from repro.reporting.figures import render_pattern


def test_bench_table3_fig4_temporal_fsg(benchmark, experiment_config, record_report):
    """FSG at 5% support on the filtered per-day transactions finds a repeated hub-and-spoke."""
    report = run_once(benchmark, experiment_table3_fig4_temporal_fsg, experiment_config)
    record_report(report)
    measured = report.measured
    assert measured["n_frequent_patterns"] > 0
    assert measured["most_patterns_small"] is True
    # The largest pattern is a multi-edge hub-and-spoke, as in Figure 4.
    assert measured["largest_pattern_edges"] >= 2
    assert measured["largest_pattern_shape"] == "hub_and_spoke"
    largest = report.details["outcome"].mining.largest()
    print()
    print(render_pattern(largest.pattern, title="Figure 4 equivalent (largest temporal pattern)"))
