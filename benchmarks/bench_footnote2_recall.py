"""Benchmark FN2 — footnote 2: recall of planted patterns after partitioning."""

from __future__ import annotations

from conftest import run_once

from repro.core.experiments import experiment_footnote2_recall


def test_bench_footnote2_recall(benchmark, experiment_config, record_report):
    """Recall of known planted patterns is at least ~50% for both strategies."""
    report = run_once(benchmark, experiment_footnote2_recall, experiment_config, copies=12, partitions=14)
    record_report(report)
    measured = report.measured
    assert measured["recall_breadth_first"] >= 0.5
    assert measured["recall_depth_first"] >= 0.5
