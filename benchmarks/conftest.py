"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper by calling
the corresponding experiment driver in :mod:`repro.core.experiments`, then
prints (and saves under ``benchmarks/results/``) the paper-versus-measured
comparison.  Timings are collected with pytest-benchmark using a single
round per experiment — the experiments themselves are the workload, and
several of them take tens of seconds.

Set the ``REPRO_BENCH_SCALE`` environment variable to change the synthetic
dataset scale (default 0.03; the paper's full-size dataset is 1.0).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.config import ExperimentConfig
from repro.core.results import ExperimentReport
from repro.reporting.comparison import agreement_summary, render_comparison

RESULTS_DIR = Path(__file__).parent / "results"


def _bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.03"))


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    """One shared configuration (and cached dataset) for all benchmarks."""
    return ExperimentConfig(scale=_bench_scale(), seed=20050405)


@pytest.fixture(scope="session")
def record_report():
    """A helper that prints a report and writes it to benchmarks/results/."""

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _record(report: ExperimentReport) -> ExperimentReport:
        text = render_comparison(report)
        agreements = agreement_summary(report)
        lines = [text]
        if agreements:
            matched = sum(1 for ok in agreements.values() if ok)
            lines.append(f"qualitative claims matched: {matched}/{len(agreements)}")
        rendered = "\n".join(lines)
        print("\n" + rendered)
        safe_id = report.experiment_id.replace("/", "_").replace(".", "_")
        (RESULTS_DIR / f"{safe_id}.txt").write_text(rendered + "\n", encoding="utf-8")
        return report

    return _record


def run_once(benchmark, function, *args, **kwargs):
    """Run *function* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def bench_env(scenario: str | None = None, corpus_size: int | None = None) -> dict:
    """The environment stamp every ``BENCH_*.json`` report embeds.

    Records what actually shaped the numbers — the resolved match-kernel
    backend, the numpy version backing it (``None`` when numpy is not
    importable), the interpreter, the machine (CPU count and, where the
    platform exposes it, 1-minute load average at stamp time), the
    resolved runtime knobs (worker count and sharded backend), and every
    ``REPRO_*`` environment override in effect — so two benchmark
    artifacts can be compared without guessing how they were produced.

    Scenario-driven benchmarks additionally pass *scenario* (the
    registered scenario name) and *corpus_size* (its transaction count),
    which land in the stamp so a per-scenario timing can never be
    compared against a run of a different workload shape.
    """
    import platform

    from repro.graphs import columns
    from repro.runtime import (
        resolve_backend,
        resolve_kernel,
        resolve_wire,
        resolve_workers,
    )

    try:
        load_avg = round(os.getloadavg()[0], 2)
    except (AttributeError, OSError):
        load_avg = None

    stamp = {
        "kernel": resolve_kernel(None),
        "numpy_version": None if columns.np is None else str(columns.np.__version__),
        "python_version": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "load_avg": load_avg,
        "workers": resolve_workers(None),
        "backend": resolve_backend(None),
        "wire": resolve_wire(None),
        "env_overrides": {
            key: value
            for key, value in sorted(os.environ.items())
            if key.startswith("REPRO_")
        },
    }
    if scenario is not None:
        stamp["scenario"] = scenario
    if corpus_size is not None:
        stamp["corpus_size"] = corpus_size
    return stamp
