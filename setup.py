"""Setuptools shim for environments without PEP 517 build isolation."""

from setuptools import find_packages, setup

setup(
    name="repro-transportation-kdd",
    version="0.6.0",
    description=(
        "Reproduction of 'Knowledge Discovery from Transportation Network Data' "
        "(ICDE 2005): FSG/SUBDUE mining over transaction graphs"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # numpy backs the vectorized match kernel and the packed-bitset
    # helpers; the pure-python paths still run without it (requesting
    # kernel="vectorized" without numpy raises a clear ImportError from
    # repro.graphs.columns.require_numpy).
    install_requires=["numpy"],
)
