"""Validating the partitioning approach on simulated data (footnote 2).

The paper validates Algorithm 1/2 by building simulated single graphs from
subgraphs with known frequent patterns, partitioning them, and measuring
how many of the planted patterns are still found — recall was "in the 50%
and above range" for both strategies, better on smaller graphs.

This example builds such a planted graph, sweeps the number of
repetitions ``m`` of Algorithm 1, and prints the recall for breadth-first
and depth-first partitioning, showing how repeating the partitioning
reduces false drops.

Run with::

    python examples/planted_pattern_recall.py
"""

from __future__ import annotations

from repro import PartitionStrategy, StructuralMiningConfig, mine_single_graph
from repro.graphs.motifs import chain, cycle, hub_and_spoke
from repro.patterns.planted import PlantedGraphSpec, build_planted_graph
from repro.patterns.recall import measure_recall


def main() -> None:
    spec = PlantedGraphSpec(background_edges=40, seed=3)
    spec.add("hub4", hub_and_spoke(4, edge_labels=[1, 1, 1, 1]), copies=10)
    spec.add("chain3", chain(3, edge_labels=[2, 2, 2]), copies=10)
    spec.add("cycle3", cycle(3, edge_labels=[3, 3, 3]), copies=10)
    planted = build_planted_graph(spec)
    print(f"planted graph: {planted.graph.n_vertices} vertices, {planted.graph.n_edges} edges, "
          f"{planted.total_planted_copies} planted pattern copies\n")

    print(f"{'strategy':15s} {'repetitions':>12s} {'recall':>8s} {'partial':>8s} {'patterns':>9s}")
    for strategy in (PartitionStrategy.BREADTH_FIRST, PartitionStrategy.DEPTH_FIRST):
        for repetitions in (1, 2, 4):
            config = StructuralMiningConfig(
                k=12,
                repetitions=repetitions,
                min_support=4,
                strategy=strategy,
                max_pattern_edges=4,
                seed=23,
            )
            result = mine_single_graph(planted.graph, config)
            report = measure_recall(planted.ground_truth, result.patterns)
            print(f"{strategy.value:15s} {repetitions:12d} {report.recall:8.2f} "
                  f"{report.partial_recall:8.2f} {len(result):9d}")
    print("\nThe paper reports recall of 50% and above for both strategies (footnote 2);")
    print("repeating the partitioning (larger m in Algorithm 1) recovers patterns that a")
    print("single unlucky partitioning would split across transactions.")


if __name__ == "__main__":
    main()
