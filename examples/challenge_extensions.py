"""The Section 9 challenges, made measurable: periodicity, windows, interestingness.

The paper closes with a list of open problems for graph mining on
transportation data.  Three of them have concrete implementations in this
library, demonstrated here:

1. **Periodicity of routes** — which lanes repeat with a stable period
   (weekly distribution runs, every-other-day shuttles)?
2. **Patterns over a time window** — how many frequent patterns only exist
   when activity is viewed over a week rather than a single day?
3. **Interestingness of graph patterns** — rank the mined patterns by lift
   against a label-frequency null model and filter to maximal patterns, so
   the trivial single-edge output the paper complains about sinks to the
   bottom.

Run with::

    python examples/challenge_extensions.py [scale]
"""

from __future__ import annotations

import sys

from repro import generate_dataset
from repro.mining.fsg.miner import FSGMiner
from repro.partitioning.temporal import graphs_of, partition_by_date, prepare_temporal_transactions
from repro.partitioning.windows import partition_by_window, window_graphs
from repro.patterns.graph_interestingness import maximal_patterns, score_patterns
from repro.patterns.periodicity import period_histogram, periodic_lanes
from repro.reporting.figures import render_pattern


def main(scale: float = 0.02) -> None:
    dataset = generate_dataset(scale=scale, seed=7)
    print(f"dataset: {len(dataset)} transactions\n")

    # ------------------------------------------------------------------
    # 1. Periodicity of repeated routes
    # ------------------------------------------------------------------
    lanes = periodic_lanes(dataset, min_occurrences=6, min_regularity=0.7)
    print(f"periodic lanes detected: {len(lanes)}")
    print(f"period histogram (days -> lanes): {period_histogram(lanes)}")
    if lanes:
        strongest = lanes[0]
        print(f"most regular lane: {strongest.origin.label()} -> {strongest.destination.label()} "
              f"every {strongest.period_days} day(s), {strongest.occurrences} runs, "
              f"regularity {strongest.regularity:.0%}\n")

    # ------------------------------------------------------------------
    # 2. Patterns over a time window vs a single date
    # ------------------------------------------------------------------
    miner = FSGMiner(min_support=0.3, max_edges=2)
    daily = prepare_temporal_transactions(partition_by_date(dataset))
    weekly = partition_by_window(dataset, window_days=7)
    daily_count = len(miner.mine(graphs_of(daily))) if daily else 0
    weekly_count = len(miner.mine(window_graphs(weekly))) if weekly else 0
    print(f"frequent patterns at 30% support, per-date transactions:  {daily_count}")
    print(f"frequent patterns at 30% support, 7-day window view:      {weekly_count}")
    print(f"patterns only visible over a window: {max(0, weekly_count - daily_count)}\n")

    # ------------------------------------------------------------------
    # 3. Interestingness and maximality of mined patterns
    # ------------------------------------------------------------------
    transactions = window_graphs(weekly)
    result = miner.mine(transactions) if transactions else None
    if result is not None and len(result) > 0:
        maximal = maximal_patterns(result.patterns)
        scored = score_patterns(maximal, transactions)
        print(f"frequent patterns: {len(result)}; after maximality filter: {len(maximal)}")
        print("top patterns by interestingness (lift x size-weighted support, shape-boosted):")
        for score in scored[:3]:
            print(f"  lift={score.lift:6.2f}  shape={score.shape.value:14s} "
                  f"support={score.pattern.support}")
        print()
        print(render_pattern(scored[0].pattern.pattern, title="Most interesting pattern"))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
