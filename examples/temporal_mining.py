"""Temporally repeated routes (Section 6): per-day partitioning with FSG.

The second study keeps the vertices' identities (each place gets a unique
latitude/longitude label) and asks which routes repeat *over time*: the
dataset is partitioned into one graph transaction per calendar date,
containing every OD pair active on that date; each per-day graph is split
into connected components, filtered, and mined with FSG at 5% support.
The headline result is a small hub-and-spoke distribution run repeated
across many dates (Figure 4), with edges labeled by gross-weight ranges.

Run with::

    python examples/temporal_mining.py [scale]
"""

from __future__ import annotations

import sys

from repro import TemporalMiningPipeline, generate_dataset
from repro.reporting.figures import render_pattern
from repro.reporting.tables import render_temporal_summary


def main(scale: float = 0.02) -> None:
    dataset = generate_dataset(scale=scale, seed=7)
    print(f"dataset: {len(dataset)} transactions over "
          f"{(dataset.date_range()[1] - dataset.date_range()[0]).days + 1} days\n")

    pipeline = TemporalMiningPipeline(
        edge_attribute="GROSS_WEIGHT",
        min_support=0.05,
        max_vertex_labels=None,       # first look at everything (Table 2)
        max_pattern_edges=3,
        use_interval_labels=True,
    )
    outcome = pipeline.run(dataset)

    print(render_temporal_summary(outcome.raw_summary, title="Table 2 equivalent: per-day graph transactions"))
    print()
    print(render_temporal_summary(outcome.prepared_summary,
                                  title="Table 3 equivalent: after component split and filtering"))
    print()

    print(f"frequent patterns at 5% support: {len(outcome.mining)}")
    largest = outcome.mining.largest()
    if largest is not None:
        print()
        print(render_pattern(
            largest.pattern,
            title=f"Figure 4 equivalent: largest temporally repeated pattern "
                  f"(support {largest.support} transactions)",
        ))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
