"""Structurally similar routes (Section 5): BFS vs DFS partitioning with FSG.

The paper's first study looks for shapes that recur in many places: all
vertices get the same label so only structure (plus binned edge labels)
matters, the single network graph is partitioned into graph transactions
(Algorithm 2), and FSG mines frequent subgraphs across the partitions
(Algorithm 1).  Breadth-first partitioning preserves hub-and-spoke
patterns (Figure 2); depth-first partitioning preserves delivery chains
(Figure 3).

This example runs both strategies side by side on the same graph and
prints the pattern-count and shape comparison, plus one example pattern of
each kind, mirroring the paper's Figures 2 and 3.

Run with::

    python examples/structural_mining.py [scale]
"""

from __future__ import annotations

import sys

from repro import PartitionStrategy, StructuralMiningConfig, build_od_graph, generate_dataset, mine_single_graph
from repro.graphs.motifs import MotifShape
from repro.patterns.matching import patterns_with_shape, summarize_shapes
from repro.reporting.figures import render_pattern


def run_strategy(graph, strategy: PartitionStrategy, k: int, support: int):
    config = StructuralMiningConfig(
        k=k,
        repetitions=2,
        min_support=support,
        strategy=strategy,
        max_pattern_edges=4,
        seed=17,
    )
    return mine_single_graph(graph, config)


def main(scale: float = 0.02) -> None:
    dataset = generate_dataset(scale=scale, seed=7)
    graph = build_od_graph(dataset, edge_attribute="OD_TH", vertex_labeling="uniform")
    print(f"OD_TH graph: {graph.n_vertices} vertices, {graph.n_edges} edges")

    k = max(8, graph.n_edges // 26)
    support = max(3, k // 4)
    print(f"partitioning into ~{k} graph transactions, support threshold {support}\n")

    results = {}
    for strategy in (PartitionStrategy.BREADTH_FIRST, PartitionStrategy.DEPTH_FIRST):
        result = run_strategy(graph, strategy, k, support)
        results[strategy] = result
        shapes = summarize_shapes(result.patterns)
        print(f"{strategy.value:15s} frequent patterns: {len(result):5d}   "
              f"hub-and-spoke: {shapes.count(MotifShape.HUB_AND_SPOKE):4d}   "
              f"chains: {shapes.count(MotifShape.CHAIN):4d}")

    print()
    bf_stars = patterns_with_shape(results[PartitionStrategy.BREADTH_FIRST].patterns, MotifShape.HUB_AND_SPOKE)
    if bf_stars:
        best = max(bf_stars, key=lambda p: (p.n_edges, p.support))
        print(render_pattern(best.pattern, title="Figure 2 equivalent: hub-and-spoke found by breadth-first partitioning"))
        print()
    df_chains = patterns_with_shape(results[PartitionStrategy.DEPTH_FIRST].patterns, MotifShape.CHAIN)
    if df_chains:
        best = max(df_chains, key=lambda p: (p.n_edges, p.support))
        print(render_pattern(best.pattern, title="Figure 3 equivalent: chain found by depth-first partitioning"))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
