"""Conventional data mining on the flat transaction table (Section 7).

The third study ignores the network structure and treats the dataset as a
plain table, as the paper did with Weka: association rules from the
discretised attributes (Section 7.1), a C4.5-style decision tree for the
transport mode (Section 7.2), and EM clustering of the numeric attributes
(Section 7.3) with its air-freight outlier cluster and short-haul /
long-haul split.

Run with::

    python examples/conventional_mining.py [scale]
"""

from __future__ import annotations

import sys

from repro import TransactionalMiningPipeline, generate_dataset
from repro.mining.transactional import COORDINATE_ATTRIBUTES
from repro.reporting.figures import render_bar_chart, render_cluster_summaries


def main(scale: float = 0.02) -> None:
    dataset = generate_dataset(scale=scale, seed=7)
    print(f"dataset: {len(dataset)} transactions\n")

    # ------------------------------------------------------------------
    # Section 7.1 — association rules
    # ------------------------------------------------------------------
    pipeline = TransactionalMiningPipeline(
        min_support=0.08, min_confidence=0.75, discretize_strategy="equal_frequency"
    )
    rules = pipeline.run_association(dataset)
    print("Section 7.1 / Experiment 1: top association rules")
    for rule in rules[:5]:
        print(f"  {rule}")
    weight_rules = [r for r in rules if r.mentions("GROSS_WEIGHT=") and r.mentions("TRANS_MODE=")]
    if weight_rules:
        print(f"  -> weight/mode rule (the paper's 'trivial but true' finding): {weight_rules[0]}")
    print()

    coordinate_pipeline = TransactionalMiningPipeline(
        min_support=0.08, min_confidence=0.75, attributes=COORDINATE_ATTRIBUTES
    )
    coordinate_rules = coordinate_pipeline.run_association(dataset)
    geographic = [
        r for r in coordinate_rules
        if r.mentions("ORIGIN_LONGITUDE=") and any(i.startswith("ORIGIN_LATITUDE=") for i in r.consequent)
    ]
    print("Section 7.1 / Experiment 2: origin-geography rules")
    for rule in geographic[:3]:
        print(f"  {rule}")
    print()

    # ------------------------------------------------------------------
    # Section 7.2 — classification
    # ------------------------------------------------------------------
    classifier_pipeline = TransactionalMiningPipeline(n_bins=10, discretize_strategy="equal_frequency")
    classification = classifier_pipeline.run_classification(dataset)
    print("Section 7.2: J4.8-style classification of TRANS_MODE")
    print(f"  accuracy: {classification.accuracy:.1%} (paper: 96%)")
    print(f"  root split attribute: {classification.root_attribute} (paper: GROSS_WEIGHT)")
    print()

    # ------------------------------------------------------------------
    # Section 7.3 — EM clustering
    # ------------------------------------------------------------------
    clustering = TransactionalMiningPipeline(n_clusters=9).run_clustering(dataset)
    print("Section 7.3: EM clustering (Figures 5 and 6)")
    print(render_cluster_summaries(clustering.summaries))
    print()
    distance_by_cluster = {
        f"c{summary.index}": summary.means["TOTAL_DISTANCE"] for summary in clustering.summaries
    }
    print(render_bar_chart(distance_by_cluster, title="Figure 6(a) equivalent: mean TOTAL_DISTANCE per cluster"))
    outliers = [
        summary for summary in clustering.summaries
        if summary.means["TOTAL_DISTANCE"] > 2_500 and summary.means["MOVE_TRANSIT_HOURS"] < 24
    ]
    if outliers:
        outlier = outliers[0]
        print(f"\nair-freight outlier cluster: {outlier.size} shipments, "
              f"{outlier.means['TOTAL_DISTANCE']:.0f} miles in {outlier.means['MOVE_TRANSIT_HOURS']:.0f} hours")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
