"""Quickstart: generate a transportation dataset, build the OD graph, mine it.

This walks the shortest path through the library:

1. generate a synthetic origin-destination dataset calibrated to the
   paper's statistics (Section 3);
2. print the Table 1 style dataset summary;
3. build the ``OD_GW`` labeled graph (edges labeled by binned gross
   weight, all vertices labeled identically);
4. partition it breadth-first and mine frequent subgraphs with the FSG
   reimplementation (Section 5);
5. print the discovered pattern shapes.

Run with::

    python examples/quickstart.py [scale]

where ``scale`` (default 0.02) is the fraction of the paper's dataset size
to generate.
"""

from __future__ import annotations

import sys

from repro import (
    PartitionStrategy,
    StructuralMiningConfig,
    build_od_graph,
    generate_dataset,
    mine_single_graph,
)
from repro.datasets.statistics import compute_statistics
from repro.patterns.matching import summarize_shapes
from repro.reporting.figures import render_pattern
from repro.reporting.tables import render_dataset_description, render_statistics_table


def main(scale: float = 0.02) -> None:
    print(render_dataset_description())
    print()

    dataset = generate_dataset(scale=scale, seed=7)
    statistics = compute_statistics(dataset)
    print(render_statistics_table(statistics, title=f"Synthetic dataset at scale {scale}"))
    print()

    graph = build_od_graph(dataset, edge_attribute="OD_GW", vertex_labeling="uniform")
    print(f"OD_GW graph: {graph.n_vertices} vertices, {graph.n_edges} edges")

    config = StructuralMiningConfig(
        k=max(8, graph.n_edges // 30),
        repetitions=2,
        min_support=4,
        strategy=PartitionStrategy.BREADTH_FIRST,
        max_pattern_edges=3,
        seed=11,
    )
    result = mine_single_graph(graph, config)
    shapes = summarize_shapes(result.patterns)
    print(f"frequent patterns found: {len(result)} "
          f"(average {result.average_patterns_per_repetition:.0f} per repetition)")
    for shape, count in sorted(shapes.counts.items(), key=lambda item: -item[1]):
        print(f"  {shape.value:15s} {count}")

    multi_edge = [p for p in result.patterns if p.n_edges >= 2]
    if multi_edge:
        best = max(multi_edge, key=lambda p: p.support)
        print()
        print(render_pattern(best.pattern, title=f"Most supported multi-edge pattern (support {best.support})"))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
