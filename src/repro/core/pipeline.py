"""End-to-end pipelines for the paper's three studies.

Each pipeline packages the steps a practitioner would run:

* :class:`StructuralMiningPipeline` — Section 5: build an OD graph with
  uniformly labeled vertices, partition it breadth- or depth-first, mine
  the partitions with FSG across several repetitions, and summarise the
  shapes of the discovered patterns.
* :class:`TemporalMiningPipeline` — Section 6: partition the dataset by
  active date, split into connected components, filter, mine with FSG,
  and summarise the transactions (Tables 2 and 3) and patterns.
* :class:`TransactionalMiningPipeline` — Section 7: flatten the dataset,
  discretise, and run association-rule mining, classification, and EM
  clustering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.datasets.binning import BinningScheme
from repro.datasets.schema import TransactionDataset
from repro.graphs.builders import build_od_graph
from repro.graphs.engine import MatchEngine
from repro.mining.apriori import Apriori, AssociationRule
from repro.mining.decision_tree import DecisionTreeClassifier, train_test_split
from repro.mining.discretize import Discretizer
from repro.mining.em_clustering import ClusterSummary, EMClustering
from repro.mining.fsg.miner import FSGMiner
from repro.mining.fsg.results import FSGResult
from repro.mining.transactional import (
    CONVENTIONAL_ATTRIBUTES,
    dataset_to_feature_table,
    feature_table_to_item_transactions,
    numeric_matrix,
)
from repro.obs.tracer import get_tracer
from repro.partitioning.split_graph import PartitionStrategy
from repro.runtime import MiningRuntime, SerialRuntime, create_runtime, resolve_workers
from repro.partitioning.structural import (
    StructuralMiningConfig,
    StructuralMiningResult,
    mine_single_graph,
)
from repro.partitioning.temporal import (
    TemporalPartitionSummary,
    TemporalTransaction,
    graphs_of,
    partition_by_date,
    prepare_temporal_transactions,
    summarize_transactions,
)
from repro.patterns.matching import ShapeSummary, summarize_shapes


def _resolve_runtime(
    runtime: MiningRuntime | None,
    workers: int | None,
    backend: str | None,
    engine: MatchEngine,
    kernel: str | None = None,
) -> tuple[MiningRuntime, bool]:
    """The runtime a pipeline run should mine through.

    Returns ``(runtime, created)``; a runtime built here (from the
    ``workers`` knob, or the serial default over *engine*) is flagged so
    the pipeline closes it when the run is done, while a caller-supplied
    runtime is left alone.
    """
    if runtime is not None:
        return runtime, False
    if resolve_workers(workers) > 1:
        return create_runtime(workers=workers, backend=backend, kernel=kernel), True
    return SerialRuntime(engine=engine), True


# ----------------------------------------------------------------------
# Structural mining (Section 5)
# ----------------------------------------------------------------------
@dataclass
class StructuralMiningPipeline:
    """Section 5 pipeline: single OD graph -> partitions -> FSG -> shapes.

    The pipeline owns one :class:`~repro.graphs.engine.MatchEngine` (or
    accepts a caller-supplied one) and threads it through partition mining
    so every repetition shares the same label table, graph indexes, and
    verdict cache.  ``workers`` (or a caller-supplied ``runtime``) spreads
    support counting across shard workers; the mined patterns are
    identical whatever the worker count, and the outcome's
    ``engine_stats`` aggregates the matching counters across every shard.
    """

    edge_attribute: str = "GROSS_WEIGHT"
    binning: BinningScheme | None = None
    k: int = 400
    repetitions: int = 2
    min_support: float | int = 5
    strategy: PartitionStrategy = PartitionStrategy.BREADTH_FIRST
    max_pattern_edges: int | None = 5
    seed: int = 17
    engine: MatchEngine | None = None
    workers: int | None = None
    backend: str | None = None
    kernel: str | None = None
    runtime: MiningRuntime | None = None

    def run(self, dataset: TransactionDataset) -> "StructuralMiningOutcome":
        """Run the pipeline on *dataset*."""
        engine = self.engine if self.engine is not None else MatchEngine(kernel=self.kernel)
        graph = build_od_graph(
            dataset,
            edge_attribute=self.edge_attribute,
            binning=self.binning,
            vertex_labeling="uniform",
        )
        config = StructuralMiningConfig(
            k=self.k,
            repetitions=self.repetitions,
            min_support=self.min_support,
            strategy=self.strategy,
            max_pattern_edges=self.max_pattern_edges,
            seed=self.seed,
        )
        runtime, created = _resolve_runtime(
            self.runtime, self.workers, self.backend, engine, kernel=self.kernel
        )
        try:
            with get_tracer().span(
                "pipeline.structural", k=self.k, repetitions=self.repetitions
            ):
                mining = mine_single_graph(graph, config, engine=engine, runtime=runtime)
            engine_stats = runtime.stats()
        finally:
            if created:
                runtime.close()
        shapes = summarize_shapes(mining.patterns)
        return StructuralMiningOutcome(
            graph_name=graph.name,
            mining=mining,
            shapes=shapes,
            engine=engine,
            engine_stats=engine_stats,
        )


@dataclass
class StructuralMiningOutcome:
    """Output of the structural pipeline."""

    graph_name: str
    mining: StructuralMiningResult
    shapes: ShapeSummary
    engine: MatchEngine | None = None
    engine_stats: dict[str, int] | None = None


# ----------------------------------------------------------------------
# Temporal mining (Section 6)
# ----------------------------------------------------------------------
@dataclass
class TemporalMiningPipeline:
    """Section 6 pipeline: per-day transactions -> filtering -> FSG."""

    edge_attribute: str = "GROSS_WEIGHT"
    binning: BinningScheme | None = None
    min_support: float | int = 0.05
    max_vertex_labels: int | None = 200
    max_pattern_edges: int | None = 5
    memory_budget: int | None = None
    use_interval_labels: bool = False
    engine: MatchEngine | None = None
    workers: int | None = None
    backend: str | None = None
    kernel: str | None = None
    runtime: MiningRuntime | None = None

    def run(self, dataset: TransactionDataset) -> "TemporalMiningOutcome":
        """Run the pipeline on *dataset*."""
        engine = self.engine if self.engine is not None else MatchEngine(kernel=self.kernel)
        raw = partition_by_date(
            dataset,
            edge_attribute=self.edge_attribute,
            binning=self.binning,
            use_interval_labels=self.use_interval_labels,
        )
        raw_summary = summarize_transactions(raw) if raw else None
        prepared = prepare_temporal_transactions(
            raw,
            split_components=True,
            drop_single_edge=True,
            max_vertex_labels=self.max_vertex_labels,
        )
        prepared_summary = summarize_transactions(prepared) if prepared else None
        runtime, created = _resolve_runtime(
            self.runtime, self.workers, self.backend, engine, kernel=self.kernel
        )
        try:
            miner = FSGMiner(
                min_support=self.min_support,
                max_edges=self.max_pattern_edges,
                memory_budget=self.memory_budget,
                engine=engine,
                runtime=runtime,
            )
            with get_tracer().span(
                "pipeline.temporal", transactions=len(prepared)
            ):
                mining = miner.mine(graphs_of(prepared)) if prepared else FSGResult()
            engine_stats = runtime.stats()
        finally:
            if created:
                runtime.close()
        shapes = summarize_shapes(mining.patterns)
        return TemporalMiningOutcome(
            raw_transactions=raw,
            prepared_transactions=prepared,
            raw_summary=raw_summary,
            prepared_summary=prepared_summary,
            mining=mining,
            shapes=shapes,
            engine=engine,
            engine_stats=engine_stats,
        )


@dataclass
class TemporalMiningOutcome:
    """Output of the temporal pipeline."""

    raw_transactions: list[TemporalTransaction]
    prepared_transactions: list[TemporalTransaction]
    raw_summary: TemporalPartitionSummary | None
    prepared_summary: TemporalPartitionSummary | None
    mining: FSGResult
    shapes: ShapeSummary
    engine: MatchEngine | None = None
    engine_stats: dict[str, int] | None = None


# ----------------------------------------------------------------------
# Conventional mining (Section 7)
# ----------------------------------------------------------------------
@dataclass
class TransactionalMiningPipeline:
    """Section 7 pipeline: flat table -> discretise -> rules / tree / clusters."""

    n_bins: int = 7
    discretize_strategy: str = "equal_width"
    min_support: float = 0.1
    min_confidence: float = 0.8
    n_clusters: int = 9
    class_attribute: str = "TRANS_MODE"
    attributes: Sequence[str] = CONVENTIONAL_ATTRIBUTES
    test_fraction: float = 0.33
    seed: int = 7

    def feature_table(self, dataset: TransactionDataset) -> list[dict[str, object]]:
        """The flat (undiscretised) feature table used by every step."""
        return dataset_to_feature_table(dataset, attributes=self.attributes)

    def run_association(self, dataset: TransactionDataset) -> list[AssociationRule]:
        """Discretise and mine association rules (Section 7.1, Experiment 1)."""
        table = self.feature_table(dataset)
        discretizer = Discretizer(n_bins=self.n_bins, strategy=self.discretize_strategy)
        discretized = discretizer.fit_transform(table)
        transactions = feature_table_to_item_transactions(discretized)
        miner = Apriori(min_support=self.min_support, min_confidence=self.min_confidence, max_itemset_size=3)
        return miner.rules(transactions)

    def run_classification(self, dataset: TransactionDataset) -> "ClassificationOutcome":
        """Discretise (features only) and train the decision tree (Section 7.2)."""
        table = self.feature_table(dataset)
        feature_attributes = [a for a in self.attributes if a != self.class_attribute]
        discretizer = Discretizer(
            n_bins=self.n_bins,
            strategy=self.discretize_strategy,
            attributes=feature_attributes,
        )
        discretized = discretizer.fit_transform(table)
        train, test = train_test_split(discretized, test_fraction=self.test_fraction, seed=self.seed)
        tree = DecisionTreeClassifier(max_depth=6, min_samples_leaf=5)
        tree.fit(train, class_attribute=self.class_attribute)
        return ClassificationOutcome(
            tree=tree,
            accuracy=tree.accuracy(test),
            root_attribute=tree.root_attribute(),
            attribute_depths=tree.attribute_depths(),
        )

    def run_clustering(self, dataset: TransactionDataset) -> "ClusteringOutcome":
        """Cluster the undiscretised numeric attributes with EM (Section 7.3)."""
        table = self.feature_table(dataset)
        numeric_attributes = [
            attribute
            for attribute in self.attributes
            if attribute != self.class_attribute
        ]
        matrix = numeric_matrix(table, numeric_attributes)
        model = EMClustering(n_clusters=self.n_clusters, seed=self.seed)
        model.fit(matrix, attribute_names=numeric_attributes)
        summaries = model.cluster_summaries(matrix)
        return ClusteringOutcome(model=model, summaries=summaries)


@dataclass
class ClassificationOutcome:
    """Output of the classification step."""

    tree: DecisionTreeClassifier
    accuracy: float
    root_attribute: str | None
    attribute_depths: dict[str, int]


@dataclass
class ClusteringOutcome:
    """Output of the clustering step."""

    model: EMClustering
    summaries: list[ClusterSummary]

    def sorted_by_size(self) -> list[ClusterSummary]:
        """Cluster summaries from smallest to largest."""
        return sorted(self.summaries, key=lambda summary: summary.size)
