"""One driver per paper table / figure (the experiment index of DESIGN.md).

Every function returns an :class:`~repro.core.results.ExperimentReport`
whose ``paper`` dict records what the paper reports (numbers where it
gives numbers, qualitative claims otherwise) and whose ``measured`` dict
records the reproduction's result on the same axes.  The benchmark harness
calls these functions and prints the comparison; EXPERIMENTS.md is written
from the same output.

The paper ran on the full proprietary dataset and, for the graph-mining
experiments, on hand-picked truncations of it (its SUBDUE runs took hours
to days).  The drivers accept an :class:`~repro.core.config.ExperimentConfig`
whose ``scale`` controls the synthetic dataset size; thresholds that the
paper states in absolute terms (support counts of 120 / 240, the
200-vertex-label filter) are scaled proportionally so the experiments keep
the same relative shape at any scale.
"""

from __future__ import annotations

import time

from repro.core.config import ExperimentConfig
from repro.core.pipeline import (
    StructuralMiningPipeline,
    TemporalMiningPipeline,
    TransactionalMiningPipeline,
)
from repro.core.results import ExperimentReport
from repro.datasets.statistics import PAPER_REPORTED_STATISTICS, compute_statistics
from repro.graphs.builders import build_od_graph
from repro.graphs.components import truncate_to_vertices
from repro.graphs.motifs import MotifShape, chain, classify_shape, cycle, hub_and_spoke
from repro.mining.em_clustering import ClusterSummary
from repro.mining.fsg.exceptions import MemoryBudgetExceeded
from repro.mining.fsg.miner import FSGMiner
from repro.mining.subdue.evaluation import EvaluationPrinciple
from repro.mining.subdue.miner import SubdueMiner
from repro.mining.transactional import COORDINATE_ATTRIBUTES
from repro.partitioning.split_graph import PartitionStrategy, split_graph
from repro.partitioning.structural import StructuralMiningConfig, mine_single_graph
from repro.partitioning.temporal import graphs_of, partition_by_date, prepare_temporal_transactions, summarize_transactions
from repro.patterns.matching import patterns_with_shape, summarize_shapes
from repro.patterns.planted import PlantedGraphSpec, build_planted_graph
from repro.patterns.recall import measure_recall


def _default_config(config: ExperimentConfig | None) -> ExperimentConfig:
    return config if config is not None else ExperimentConfig()


# ----------------------------------------------------------------------
# Table 1 / Section 3 — dataset description
# ----------------------------------------------------------------------
def experiment_table1(config: ExperimentConfig | None = None) -> ExperimentReport:
    """Table 1 / Section 3: dataset size, OD-pair, and degree statistics."""
    config = _default_config(config)
    dataset = config.dataset()
    statistics = compute_statistics(dataset)
    report = ExperimentReport(
        experiment_id="T1",
        description="Dataset description (Table 1 / Section 3 statistics)",
        paper=dict(PAPER_REPORTED_STATISTICS),
        measured=statistics.as_dict(),
        details={"statistics": statistics, "scale": config.scale},
    )
    report.measured["transactions_per_od_pair"] = round(statistics.transactions_per_od_pair, 2)
    report.paper["transactions_per_od_pair"] = round(
        PAPER_REPORTED_STATISTICS["n_transactions"] / PAPER_REPORTED_STATISTICS["n_od_pairs"], 2
    )
    return report


# ----------------------------------------------------------------------
# Figure 1 / Section 5.1 — SUBDUE with the MDL principle
# ----------------------------------------------------------------------
def experiment_figure1_subdue_mdl(
    config: ExperimentConfig | None = None,
    n_vertices: int = 60,
) -> ExperimentReport:
    """Figure 1: SUBDUE / MDL on a truncated OD_GW graph finds small frequent patterns."""
    config = _default_config(config)
    dataset = config.dataset()
    graph = build_od_graph(dataset, edge_attribute="OD_GW", binning=config.binning(), vertex_labeling="uniform")
    truncated = truncate_to_vertices(graph, n_vertices)
    miner = SubdueMiner(
        beam_width=4,
        max_best=5,
        max_substructure_edges=4,
        principle=EvaluationPrinciple.MDL,
        limit=400,
    )
    result = miner.mine(truncated)
    best_sizes = [substructure.n_edges for substructure in result.best]
    best_instances = [substructure.n_non_overlapping for substructure in result.best]
    shapes = [classify_shape(substructure.pattern).value for substructure in result.best]
    # Figure 1's headline pattern is a through-traffic (deadhead) shape: a
    # vertex with traffic flowing in and out but little return traffic.
    has_through_traffic = any(
        any(
            substructure.pattern.in_degree(vertex) >= 1 and substructure.pattern.out_degree(vertex) >= 1
            for vertex in substructure.pattern.vertices()
        )
        for substructure in result.best
    )
    report = ExperimentReport(
        experiment_id="F1",
        description="SUBDUE with the MDL principle on a truncated OD_GW graph (Figure 1)",
        paper={
            "best_patterns_reported": "3 (best 3 of beam 4)",
            "pattern_sizes": "small (1-4 edges)",
            "patterns_are_repetitive": True,
            "includes_through_traffic_deadhead": True,
        },
        measured={
            "best_patterns_reported": len(result.best),
            "pattern_sizes": best_sizes,
            "patterns_are_repetitive": bool(best_instances) and min(best_instances) >= 2,
            "includes_through_traffic_deadhead": has_through_traffic,
        },
        details={
            "result": result,
            "graph_vertices": truncated.n_vertices,
            "graph_edges": truncated.n_edges,
            "best_instances": best_instances,
            "best_shapes": shapes,
        },
    )
    return report


# ----------------------------------------------------------------------
# Section 5.1 — SUBDUE runtime scaling and MDL vs Size behaviour
# ----------------------------------------------------------------------
def experiment_sec51_subdue_scaling(
    config: ExperimentConfig | None = None,
    sizes: tuple[int, ...] = (20, 40, 60),
) -> ExperimentReport:
    """Section 5.1: SUBDUE runtime grows steeply with graph size; Size finds larger patterns than MDL."""
    config = _default_config(config)
    dataset = config.dataset()
    graph = build_od_graph(dataset, edge_attribute="OD_TD", binning=config.binning(), vertex_labeling="uniform")

    runtimes: dict[int, float] = {}
    mdl_best_edges: dict[int, int] = {}
    size_best_edges: dict[int, int] = {}
    for n_vertices in sizes:
        truncated = truncate_to_vertices(graph, n_vertices)
        for principle, store in (
            (EvaluationPrinciple.MDL, mdl_best_edges),
            (EvaluationPrinciple.SIZE, size_best_edges),
        ):
            miner = SubdueMiner(
                beam_width=4,
                max_best=3,
                max_substructure_edges=6,
                principle=principle,
                limit=300,
            )
            start = time.perf_counter()
            result = miner.mine(truncated)
            elapsed = time.perf_counter() - start
            if principle is EvaluationPrinciple.MDL:
                runtimes[n_vertices] = elapsed
            top = result.top()
            store[n_vertices] = top.n_edges if top is not None else 0

    largest = max(sizes)
    smallest = min(sizes)
    report = ExperimentReport(
        experiment_id="S5.1",
        description="SUBDUE runtime scaling and MDL-versus-Size behaviour (Section 5.1)",
        paper={
            "runtime_grows_with_size": True,
            "size_finds_larger_patterns_than_mdl": True,
            "mdl_prefers_small_patterns": True,
        },
        measured={
            "runtime_grows_with_size": runtimes[largest] > runtimes[smallest],
            "size_finds_larger_patterns_than_mdl": size_best_edges[largest] >= mdl_best_edges[largest],
            "mdl_prefers_small_patterns": mdl_best_edges[largest] <= 3,
        },
        details={
            "runtimes_seconds": runtimes,
            "mdl_best_edges": mdl_best_edges,
            "size_best_edges": size_best_edges,
        },
    )
    return report


# ----------------------------------------------------------------------
# Figures 2 & 3 / Section 5.2.2 — FSG over BFS / DFS partitions
# ----------------------------------------------------------------------
def _scaled_partition_count(n_edges: int, paper_partitions: int) -> int:
    """Scale the paper's partition count so partitions keep ~the same edge count.

    The paper partitions a ~20,900-edge graph into 400-1600 transactions
    (13-52 edges per transaction); the same edges-per-transaction ratio is
    preserved at reduced dataset scale.
    """
    paper_edges = PAPER_REPORTED_STATISTICS["n_od_pairs"]
    edges_per_partition = max(4.0, paper_edges / paper_partitions)
    return max(4, int(round(n_edges / edges_per_partition)))


def experiment_fig2_fig3_fsg_partitioning(
    config: ExperimentConfig | None = None,
    paper_partition_counts: tuple[int, ...] = (400, 1600),
    support_fraction_bf: float = 0.25,
    support_fraction_df: float = 0.25,
    max_pattern_edges: int = 3,
) -> ExperimentReport:
    """Figures 2 & 3 / Section 5.2.2: BFS vs DFS partitioning with FSG.

    Paper observations reproduced: breadth-first partitioning yields more
    frequent patterns than depth-first (667 vs 200 on average), fewer /
    larger partitions yield more patterns, breadth-first surfaces
    hub-and-spoke patterns (Figure 2), and depth-first surfaces chain
    patterns (Figure 3).
    """
    config = _default_config(config)
    dataset = config.dataset()
    binning = config.binning()
    # Both strategies are compared on the same graph (OD_GW, the paper's
    # primary labeling) so the measured difference is attributable to the
    # partitioning strategy rather than to the edge-label distribution; the
    # paper's Figures 2 and 3 show sample patterns from OD_TH and OD_TD.
    graph = build_od_graph(dataset, edge_attribute="OD_GW", binning=binning, vertex_labeling="uniform")

    pattern_counts: dict[str, dict[int, float]] = {"breadth_first": {}, "depth_first": {}}
    hub_spoke_found = False
    chain_found = False

    for paper_k in paper_partition_counts:
        for strategy, support_fraction in (
            (PartitionStrategy.BREADTH_FIRST, support_fraction_bf),
            (PartitionStrategy.DEPTH_FIRST, support_fraction_df),
        ):
            k = _scaled_partition_count(graph.n_edges, paper_k)
            support = max(2, int(round(support_fraction * k)))
            mining_config = StructuralMiningConfig(
                k=k,
                repetitions=1,
                min_support=support,
                strategy=strategy,
                max_pattern_edges=max_pattern_edges,
                seed=config.seed + paper_k,
                workers=config.workers,
                backend=config.backend,
                kernel=config.kernel,
            )
            result = mine_single_graph(graph, mining_config)
            pattern_counts[strategy.value][paper_k] = result.average_patterns_per_repetition
            if strategy is PartitionStrategy.BREADTH_FIRST:
                if patterns_with_shape(result.patterns, MotifShape.HUB_AND_SPOKE):
                    hub_spoke_found = True
            else:
                if patterns_with_shape(result.patterns, MotifShape.CHAIN):
                    chain_found = True

    bf_average = sum(pattern_counts["breadth_first"].values()) / len(paper_partition_counts)
    df_average = sum(pattern_counts["depth_first"].values()) / len(paper_partition_counts)
    smallest_k = min(paper_partition_counts)
    largest_k = max(paper_partition_counts)
    fewer_partitions_more_patterns = (
        pattern_counts["breadth_first"][smallest_k] >= pattern_counts["breadth_first"][largest_k]
    )

    report = ExperimentReport(
        experiment_id="F2/F3",
        description="FSG over breadth-first / depth-first partitions (Figures 2 & 3, Section 5.2.2)",
        paper={
            "avg_patterns_breadth_first": 667,
            "avg_patterns_depth_first": 200,
            "breadth_first_finds_more": True,
            "fewer_partitions_more_patterns": True,
            "breadth_first_finds_hub_and_spoke": True,
            "depth_first_finds_chain": True,
        },
        measured={
            "avg_patterns_breadth_first": round(bf_average, 1),
            "avg_patterns_depth_first": round(df_average, 1),
            "breadth_first_finds_more": bf_average > df_average,
            "fewer_partitions_more_patterns": fewer_partitions_more_patterns,
            "breadth_first_finds_hub_and_spoke": hub_spoke_found,
            "depth_first_finds_chain": chain_found,
        },
        details={"pattern_counts": pattern_counts},
    )
    return report


# ----------------------------------------------------------------------
# Footnote 2 — recall of planted patterns
# ----------------------------------------------------------------------
def _planted_specification(copies: int, seed: int) -> PlantedGraphSpec:
    spec = PlantedGraphSpec(background_edges=30, seed=seed)
    spec.add("hub3", hub_and_spoke(3, edge_labels=[1, 1, 1]), copies=copies)
    spec.add("chain3", chain(3, edge_labels=[2, 2, 2]), copies=copies)
    spec.add("cycle3", cycle(3, edge_labels=[3, 3, 3]), copies=copies)
    return spec


def experiment_footnote2_recall(
    config: ExperimentConfig | None = None,
    copies: int = 12,
    partitions: int = 14,
) -> ExperimentReport:
    """Footnote 2: recall of known planted patterns after partitioning, >= ~50%."""
    config = _default_config(config)
    planted = build_planted_graph(_planted_specification(copies, seed=config.seed))
    recalls: dict[str, float] = {}
    partial_recalls: dict[str, float] = {}
    for strategy in (PartitionStrategy.BREADTH_FIRST, PartitionStrategy.DEPTH_FIRST):
        mining_config = StructuralMiningConfig(
            k=partitions,
            repetitions=3,
            min_support=max(2, copies // 3),
            strategy=strategy,
            max_pattern_edges=3,
            seed=config.seed,
            workers=config.workers,
            backend=config.backend,
            kernel=config.kernel,
        )
        result = mine_single_graph(planted.graph, mining_config)
        recall_report = measure_recall(planted.ground_truth, result.patterns)
        recalls[strategy.value] = recall_report.recall
        partial_recalls[strategy.value] = recall_report.partial_recall

    report = ExperimentReport(
        experiment_id="FN2",
        description="Recall of planted patterns after partitioning and mining (footnote 2)",
        paper={
            "recall_breadth_first": ">= 0.5",
            "recall_depth_first": ">= 0.5",
        },
        measured={
            "recall_breadth_first": round(recalls["breadth_first"], 2),
            "recall_depth_first": round(recalls["depth_first"], 2),
            "partial_recall_breadth_first": round(partial_recalls["breadth_first"], 2),
            "partial_recall_depth_first": round(partial_recalls["depth_first"], 2),
        },
        details={"planted_copies": copies, "partitions": partitions},
    )
    return report


# ----------------------------------------------------------------------
# Table 2 — temporally partitioned graph data
# ----------------------------------------------------------------------
def experiment_table2_temporal(config: ExperimentConfig | None = None) -> ExperimentReport:
    """Table 2: per-day graph transactions and their size distribution."""
    config = _default_config(config)
    dataset = config.dataset()
    transactions = partition_by_date(dataset, edge_attribute="GROSS_WEIGHT", binning=config.binning())
    summary = summarize_transactions(transactions)
    report = ExperimentReport(
        experiment_id="T2",
        description="Summary of temporally partitioned graph data (Table 2)",
        paper={
            "n_transactions": 146,
            "distinct_edge_labels": 7,
            "distinct_vertex_labels": 3835,
            "average_edges": 1092,
            "average_vertices": 601,
            "max_edges": 4462,
            "max_vertices": 2140,
        },
        measured={
            "n_transactions": summary.n_transactions,
            "distinct_edge_labels": summary.n_distinct_edge_labels,
            "distinct_vertex_labels": summary.n_distinct_vertex_labels,
            "average_edges": round(summary.average_edges, 1),
            "average_vertices": round(summary.average_vertices, 1),
            "max_edges": summary.max_edges,
            "max_vertices": summary.max_vertices,
        },
        details={"summary": summary, "scale": config.scale},
    )
    return report


# ----------------------------------------------------------------------
# Table 3 / Figure 4 / Section 6.1 — temporal FSG on filtered transactions
# ----------------------------------------------------------------------
def _scaled_vertex_label_filter(config: ExperimentConfig, keep_fraction: float = 0.40) -> int:
    """Scale the paper's '< 200 distinct vertex labels' filter to the dataset.

    The paper chose 200 so that the smallest ~36% of days (53 of 146) were
    small enough for FSG to handle.  At reduced dataset scale the per-day
    graphs shrink differently from the location count, so the equivalent
    threshold is taken as the ``keep_fraction`` percentile of the per-day
    distinct-vertex-label counts.
    """
    dataset = config.dataset()
    transactions = partition_by_date(dataset, edge_attribute="GROSS_WEIGHT", binning=config.binning())
    label_counts = sorted(
        len({t.graph.vertex_label(v) for v in t.graph.vertices()}) for t in transactions
    )
    if not label_counts:
        return 6
    index = min(len(label_counts) - 1, max(0, int(keep_fraction * len(label_counts))))
    return max(6, label_counts[index])


def experiment_table3_fig4_temporal_fsg(
    config: ExperimentConfig | None = None,
    min_support: float = 0.05,
) -> ExperimentReport:
    """Table 3 + Figure 4: FSG at 5% support on the filtered temporal transactions."""
    config = _default_config(config)
    dataset = config.dataset()
    vertex_label_filter = _scaled_vertex_label_filter(config)
    pipeline = TemporalMiningPipeline(
        edge_attribute="GROSS_WEIGHT",
        binning=config.binning(),
        min_support=min_support,
        max_vertex_labels=vertex_label_filter,
        max_pattern_edges=4,
        use_interval_labels=True,
        workers=config.workers,
        backend=config.backend,
        kernel=config.kernel,
    )
    outcome = pipeline.run(dataset)
    largest = outcome.mining.largest()
    largest_edges = largest.n_edges if largest is not None else 0
    largest_shape = classify_shape(largest.pattern).value if largest is not None else "none"
    summary = outcome.prepared_summary

    report = ExperimentReport(
        experiment_id="T3/F4",
        description="FSG on filtered temporal transactions (Table 3, Figure 4)",
        paper={
            "n_transactions": 53,
            "distinct_edge_labels": 7,
            "average_edges": 4,
            "max_edges": 8,
            "n_frequent_patterns": 22,
            "largest_pattern_edges": 3,
            "largest_pattern_shape": MotifShape.HUB_AND_SPOKE.value,
            "most_patterns_small": True,
        },
        measured={
            "n_transactions": summary.n_transactions if summary else 0,
            "distinct_edge_labels": summary.n_distinct_edge_labels if summary else 0,
            "average_edges": round(summary.average_edges, 1) if summary else 0,
            "max_edges": summary.max_edges if summary else 0,
            "n_frequent_patterns": len(outcome.mining),
            "largest_pattern_edges": largest_edges,
            "largest_pattern_shape": largest_shape,
            "most_patterns_small": _most_patterns_small(outcome.mining),
        },
        details={"outcome": outcome, "vertex_label_filter": vertex_label_filter},
    )
    return report


def _most_patterns_small(mining) -> bool:
    if len(mining) == 0:
        return False
    small = sum(1 for pattern in mining if pattern.n_edges <= 2)
    return small / len(mining) >= 0.5


def experiment_sec61_fsg_memory(
    config: ExperimentConfig | None = None,
    memory_budget: int = 250,
) -> ExperimentReport:
    """Section 6.1: FSG exhausts memory on the unfiltered temporal transactions.

    The unfiltered per-day transactions (large graphs, thousands of
    distinct vertex labels) blow up the candidate sets; the filtered set
    completes.  The candidate memory budget makes that failure explicit.
    """
    config = _default_config(config)
    dataset = config.dataset()
    binning = config.binning()
    raw = partition_by_date(dataset, edge_attribute="GROSS_WEIGHT", binning=binning)
    unfiltered = prepare_temporal_transactions(raw, max_vertex_labels=None)
    filtered = prepare_temporal_transactions(
        raw, max_vertex_labels=_scaled_vertex_label_filter(config)
    )

    unfiltered_failed = False
    failure_level = None
    try:
        miner = FSGMiner(min_support=0.01, max_edges=4, memory_budget=memory_budget)
        miner.mine(graphs_of(unfiltered))
    except MemoryBudgetExceeded as error:
        unfiltered_failed = True
        failure_level = error.level

    filtered_completed = False
    filtered_patterns = 0
    if filtered:
        try:
            miner = FSGMiner(min_support=0.05, max_edges=4, memory_budget=memory_budget)
            filtered_result = miner.mine(graphs_of(filtered))
            filtered_patterns = len(filtered_result)
            filtered_completed = True
        except MemoryBudgetExceeded:
            filtered_completed = False

    report = ExperimentReport(
        experiment_id="S6.1",
        description="FSG memory failure on unfiltered temporal transactions (Section 6.1)",
        paper={
            "unfiltered_run_fails": True,
            "filtered_run_completes": True,
        },
        measured={
            "unfiltered_run_fails": unfiltered_failed,
            "filtered_run_completes": filtered_completed,
            "filtered_patterns": filtered_patterns,
            "failure_level": failure_level,
        },
        details={
            "memory_budget": memory_budget,
            "n_unfiltered_transactions": len(unfiltered),
            "n_filtered_transactions": len(filtered),
        },
    )
    return report


# ----------------------------------------------------------------------
# Section 7.1 — association rules
# ----------------------------------------------------------------------
def experiment_sec71_association(config: ExperimentConfig | None = None) -> ExperimentReport:
    """Section 7.1: weight->mode and longitude->latitude association rules."""
    config = _default_config(config)
    dataset = config.dataset()
    # Experiment 1 uses equal-frequency bins: gross weight is heavily
    # right-skewed, and frequency-based cuts resolve the light-load range
    # where the LTL/TL boundary lives (Weka's rule boundary of -4501 shows
    # its discretisation did the same on the paper's data).
    pipeline = TransactionalMiningPipeline(
        min_support=0.08, min_confidence=0.75, discretize_strategy="equal_frequency"
    )

    # Experiment 1: all (non-date) attributes.
    rules_all = pipeline.run_association(dataset)
    weight_to_mode = [
        rule
        for rule in rules_all
        if any(item.startswith("GROSS_WEIGHT=") for item in rule.antecedent)
        and any(item == "TRANS_MODE=LTL" for item in rule.consequent)
    ]

    # Experiment 2: origin / destination coordinates only, with equal-width
    # bins (the paper's geographic intervals are equal-width cuts).
    coordinate_pipeline = TransactionalMiningPipeline(
        min_support=0.08,
        min_confidence=0.75,
        attributes=COORDINATE_ATTRIBUTES,
        discretize_strategy="equal_width",
    )
    rules_coordinates = coordinate_pipeline.run_association(dataset)
    longitude_to_latitude = [
        rule
        for rule in rules_coordinates
        if any(item.startswith("ORIGIN_LONGITUDE=") for item in rule.antecedent)
        and any(item.startswith("ORIGIN_LATITUDE=") for item in rule.consequent)
    ]
    best_lon_lat_confidence = max((rule.confidence for rule in longitude_to_latitude), default=0.0)

    report = ExperimentReport(
        experiment_id="S7.1",
        description="Association rules on the discretised table (Section 7.1)",
        paper={
            "weight_to_ltl_rule_found": True,
            "longitude_to_latitude_rule_found": True,
            "longitude_to_latitude_confidence": 0.87,
        },
        measured={
            "weight_to_ltl_rule_found": bool(weight_to_mode),
            "longitude_to_latitude_rule_found": bool(longitude_to_latitude),
            "longitude_to_latitude_confidence": round(best_lon_lat_confidence, 2),
            "n_rules_experiment1": len(rules_all),
            "n_rules_experiment2": len(rules_coordinates),
        },
        details={
            "weight_to_mode_rules": weight_to_mode[:5],
            "longitude_to_latitude_rules": longitude_to_latitude[:5],
        },
    )
    return report


# ----------------------------------------------------------------------
# Section 7.2 — classification
# ----------------------------------------------------------------------
def experiment_sec72_classification(config: ExperimentConfig | None = None) -> ExperimentReport:
    """Section 7.2: J4.8-style classification of TRANS_MODE and TOTAL_DISTANCE."""
    config = _default_config(config)
    dataset = config.dataset()
    # Equal-frequency bins give the discretised GROSS_WEIGHT attribute enough
    # resolution around the LTL/TL boundary for the tree to reach the
    # paper's ~96% accuracy.
    pipeline = TransactionalMiningPipeline(n_bins=10, discretize_strategy="equal_frequency")

    mode_outcome = pipeline.run_classification(dataset)

    # Second run: predict (discretised) TOTAL_DISTANCE with TRANS_MODE removed.
    from repro.mining.decision_tree import DecisionTreeClassifier, train_test_split
    from repro.mining.discretize import Discretizer
    from repro.mining.transactional import dataset_to_feature_table

    attributes = [a for a in pipeline.attributes if a != "TRANS_MODE"]
    table = dataset_to_feature_table(dataset, attributes=attributes)
    discretized = Discretizer(n_bins=7, strategy="equal_frequency").fit_transform(table)
    train, test = train_test_split(discretized, test_fraction=0.33, seed=7)
    distance_tree = DecisionTreeClassifier(max_depth=5, min_samples_leaf=5)
    distance_tree.fit(train, class_attribute="TOTAL_DISTANCE")
    depths = distance_tree.attribute_depths()
    latitude_depth = min(
        depths.get("DEST_LATITUDE", 99), depths.get("ORIGIN_LATITUDE", 99)
    )
    hours_depth = depths.get("MOVE_TRANSIT_HOURS", 99)

    report = ExperimentReport(
        experiment_id="S7.2",
        description="Decision-tree classification of the discretised table (Section 7.2)",
        paper={
            "trans_mode_accuracy": 0.96,
            "root_split_attribute": "GROSS_WEIGHT",
            "latitudes_more_informative_than_hours_for_distance": True,
        },
        measured={
            "trans_mode_accuracy": round(mode_outcome.accuracy, 3),
            "root_split_attribute": mode_outcome.root_attribute,
            "latitudes_more_informative_than_hours_for_distance": latitude_depth <= hours_depth,
        },
        details={
            "mode_attribute_depths": mode_outcome.attribute_depths,
            "distance_attribute_depths": depths,
            "distance_tree_accuracy": distance_tree.accuracy(test),
        },
    )
    return report


# ----------------------------------------------------------------------
# Figures 5 & 6 / Section 7.3 — EM clustering
# ----------------------------------------------------------------------
def _outlier_cluster(summaries: list[ClusterSummary]) -> ClusterSummary | None:
    """The small air-freight-style cluster: long distance, short transit time."""
    candidates = [
        summary
        for summary in summaries
        if summary.means.get("TOTAL_DISTANCE", 0.0) > 2_500.0
        and summary.means.get("MOVE_TRANSIT_HOURS", 1e9) < 24.0
    ]
    if not candidates:
        return None
    return min(candidates, key=lambda summary: summary.size)


def experiment_fig5_fig6_clustering(
    config: ExperimentConfig | None = None,
    n_clusters: int = 9,
) -> ExperimentReport:
    """Figures 5 & 6: EM clustering with an air-freight outlier cluster and a short/long-haul split."""
    config = _default_config(config)
    dataset = config.dataset()
    pipeline = TransactionalMiningPipeline(n_clusters=n_clusters)
    outcome = pipeline.run_clustering(dataset)
    summaries = outcome.summaries
    sizes = sorted(summary.size for summary in summaries)
    mean_distances = [summary.means["TOTAL_DISTANCE"] for summary in summaries]
    outlier = _outlier_cluster(summaries)
    has_short_and_long_haul = bool(mean_distances) and (
        min(mean_distances) < 600.0 and max(mean_distances) > 1_200.0
    )

    report = ExperimentReport(
        experiment_id="F5/F6",
        description="EM clustering of the numeric attributes (Figures 5 & 6)",
        paper={
            "n_clusters": 9,
            "smallest_cluster_size": 3,
            "largest_cluster_size": 19_386,
            "outlier_cluster_is_air_freight": True,
            "short_haul_and_long_haul_split": True,
        },
        measured={
            "n_clusters": len(summaries),
            "smallest_cluster_size": sizes[0] if sizes else 0,
            "largest_cluster_size": sizes[-1] if sizes else 0,
            "outlier_cluster_is_air_freight": outlier is not None,
            "short_haul_and_long_haul_split": has_short_and_long_haul,
        },
        details={
            "summaries": summaries,
            "outlier": outlier,
            "mean_distances": [round(value, 1) for value in sorted(mean_distances)],
        },
    )
    return report


# ----------------------------------------------------------------------
# Ablation — partitioning strategy and partition-size sensitivity
# ----------------------------------------------------------------------
def experiment_ablation_partitioning(
    config: ExperimentConfig | None = None,
    copies: int = 12,
    partitions: int = 14,
) -> ExperimentReport:
    """Ablation: BFS vs DFS vs METIS-like partitioning on planted data.

    Measures the design choice the paper argues for qualitatively: the
    edge-pulling strategies keep every edge (and therefore more planted
    pattern occurrences) while a METIS-like vertex partitioner loses cut
    edges, and BFS/DFS differ in which pattern shapes they preserve.
    """
    config = _default_config(config)
    planted = build_planted_graph(_planted_specification(copies, seed=config.seed + 1))
    support = max(2, copies // 3)

    recalls: dict[str, float] = {}
    shape_mixes: dict[str, dict[str, int]] = {}
    miner = FSGMiner(min_support=support, max_edges=3)

    for name, partition_fn in (
        ("breadth_first", lambda g: split_graph(g, partitions, PartitionStrategy.BREADTH_FIRST, seed=config.seed)),
        ("depth_first", lambda g: split_graph(g, partitions, PartitionStrategy.DEPTH_FIRST, seed=config.seed)),
        ("multilevel", None),
    ):
        if partition_fn is None:
            from repro.partitioning.multilevel import multilevel_partition

            parts = multilevel_partition(planted.graph, partitions, seed=config.seed)
        else:
            parts = partition_fn(planted.graph)
        result = miner.mine(parts)
        recall_report = measure_recall(planted.ground_truth, result.patterns)
        recalls[name] = recall_report.recall
        shapes = summarize_shapes(result.patterns)
        shape_mixes[name] = {shape.value: count for shape, count in shapes.counts.items()}

    report = ExperimentReport(
        experiment_id="ABL",
        description="Ablation: partitioning strategy (BFS / DFS / METIS-like) on planted data",
        paper={
            "edge_pulling_at_least_as_good_as_metis": True,
        },
        measured={
            "edge_pulling_at_least_as_good_as_metis": max(
                recalls["breadth_first"], recalls["depth_first"]
            ) >= recalls["multilevel"],
            "recall_breadth_first": round(recalls["breadth_first"], 2),
            "recall_depth_first": round(recalls["depth_first"], 2),
            "recall_multilevel": round(recalls["multilevel"], 2),
        },
        details={"shape_mixes": shape_mixes},
    )
    return report


#: All experiment drivers keyed by experiment id (used by the bench harness).
ALL_EXPERIMENTS = {
    "T1": experiment_table1,
    "F1": experiment_figure1_subdue_mdl,
    "S5.1": experiment_sec51_subdue_scaling,
    "F2/F3": experiment_fig2_fig3_fsg_partitioning,
    "FN2": experiment_footnote2_recall,
    "T2": experiment_table2_temporal,
    "T3/F4": experiment_table3_fig4_temporal_fsg,
    "S6.1": experiment_sec61_fsg_memory,
    "S7.1": experiment_sec71_association,
    "S7.2": experiment_sec72_classification,
    "F5/F6": experiment_fig5_fig6_clustering,
    "ABL": experiment_ablation_partitioning,
}
