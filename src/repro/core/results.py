"""Typed result container for paper-versus-measured experiment reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentReport:
    """What one experiment driver produces.

    ``paper`` holds the values the paper reports (or its qualitative
    claims), ``measured`` holds what the reproduction measured on the same
    axes, and ``details`` holds any richer objects a benchmark or example
    may want to inspect (mined patterns, cluster summaries, ...).
    """

    experiment_id: str
    description: str
    paper: dict[str, Any] = field(default_factory=dict)
    measured: dict[str, Any] = field(default_factory=dict)
    details: dict[str, Any] = field(default_factory=dict)

    def comparison_rows(self) -> list[tuple[str, Any, Any]]:
        """(metric, paper value, measured value) rows for every shared or one-sided key."""
        keys = list(dict.fromkeys(list(self.paper) + list(self.measured)))
        return [(key, self.paper.get(key, ""), self.measured.get(key, "")) for key in keys]

    def to_text(self) -> str:
        """A plain-text rendering used by benchmarks and EXPERIMENTS.md."""
        lines = [f"[{self.experiment_id}] {self.description}", "-" * 72]
        lines.append(f"{'metric':40s} {'paper':>15s} {'measured':>15s}")
        for key, paper_value, measured_value in self.comparison_rows():
            lines.append(f"{key:40.40s} {str(paper_value):>15.15s} {str(measured_value):>15.15s}")
        return "\n".join(lines)
