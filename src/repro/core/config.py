"""Shared experiment configuration.

Every experiment driver accepts an :class:`ExperimentConfig`, which mostly
exists to pick the dataset *scale*: the paper's experiments run on the
full ~98k-transaction dataset, but most of its graph-mining runs took
hours to days on 2005 hardware even for tiny subgraphs, so the
reproduction defaults to a reduced scale that preserves the data's shape
while keeping each experiment in the seconds-to-minutes range.  Passing
``scale=1.0`` reproduces the full-size dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.binning import BinningScheme, default_binning_scheme
from repro.datasets.generator import GeneratorConfig, TransportationDataGenerator
from repro.datasets.schema import TransactionDataset
from repro.obs.tracer import get_tracer
from repro.runtime import (
    resolve_backend,
    resolve_kernel,
    resolve_wire,
    resolve_workers,
)


@dataclass
class ExperimentConfig:
    """Configuration shared by the experiment drivers.

    Parameters
    ----------
    scale:
        Fraction of the paper's dataset size to generate (1.0 = full size).
    seed:
        Seed for the synthetic data generator.
    weight_bins, hour_bins, distance_bins:
        Edge-label binning granularity (paper: 7 weight bins, 10 hour bins).
    workers:
        Worker count for the parallel mining runtime used by the
        graph-mining experiments.  ``0`` / ``1`` mean the serial backend;
        ``>= 2`` shards support counting across that many workers.
        ``None`` defers to the ``REPRO_WORKERS`` environment variable
        (default serial).  Parallelism never changes mining output.
    backend:
        Sharded-runtime backend (``"process"`` or ``"serial"``); ``None``
        defers to ``REPRO_BACKEND`` (default ``"process"``).
    kernel:
        Support-kernel backend for the match engines (``"python"`` or
        ``"vectorized"``); ``None`` defers to ``REPRO_KERNEL`` (default
        ``"python"``).  The kernel changes wall-clock only, never the
        mined patterns.
    wire:
        Sharded-runtime message encoding (``"buffer"`` or ``"pickle"``);
        ``None`` defers to ``REPRO_WIRE`` (default ``"buffer"``).  Like
        the kernel, the wire changes bytes shipped and wall-clock only,
        never the mined patterns.
    """

    scale: float = 0.05
    seed: int = 20050405
    weight_bins: int = 7
    hour_bins: int = 10
    distance_bins: int = 10
    workers: int | None = None
    backend: str | None = None
    kernel: str | None = None
    wire: str | None = None
    _dataset_cache: TransactionDataset | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        # Fail fast on bad knobs rather than deep inside a mining run; the
        # actual resolution happens where runtimes are built.
        resolve_workers(self.workers)
        resolve_backend(self.backend)
        resolve_kernel(self.kernel)
        resolve_wire(self.wire)

    def binning(self) -> BinningScheme:
        """The binning scheme implied by the configuration."""
        return default_binning_scheme(
            weight_bins=self.weight_bins,
            hour_bins=self.hour_bins,
            distance_bins=self.distance_bins,
        )

    def dataset(self) -> TransactionDataset:
        """Generate (and cache) the synthetic dataset at the configured scale."""
        if self._dataset_cache is None:
            # Generation is a real slice of every experiment's wall clock;
            # a traced run shows it as its own span instead of letting it
            # hide inside the first experiment's timing.
            with get_tracer().span("dataset.generate", scale=self.scale, seed=self.seed):
                generator = TransportationDataGenerator(GeneratorConfig(scale=self.scale, seed=self.seed))
                self._dataset_cache = generator.generate()
        return self._dataset_cache
