"""High-level pipelines and experiment drivers.

This package ties the substrates together into the three studies the
paper runs — structural (Section 5), temporal (Section 6), and
conventional/transactional (Section 7) — and provides one driver function
per paper table and figure (:mod:`repro.core.experiments`) that the
benchmark harness and EXPERIMENTS.md use to regenerate the reported
results.
"""

from repro.core.config import ExperimentConfig
from repro.core.results import ExperimentReport
from repro.core.pipeline import (
    StructuralMiningPipeline,
    TemporalMiningPipeline,
    TransactionalMiningPipeline,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentReport",
    "StructuralMiningPipeline",
    "TemporalMiningPipeline",
    "TransactionalMiningPipeline",
]
