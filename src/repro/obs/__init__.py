"""Unified observability: spans, labeled metrics, trace export, reports.

The subsystem has four pieces, each usable alone:

* :mod:`repro.obs.tracer` — :class:`Tracer` span collection on an
  injectable clock, the :data:`NULL_TRACER` zero-overhead off switch,
  and the process-global active tracer the CLI installs;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, the labeled
  counter/gauge/histogram store whose commutative merge makes per-shard
  registries safe to combine in any order;
* :mod:`repro.obs.export` — JSONL traces on disk and Chrome Trace Event
  Format for ``chrome://tracing`` / Perfetto;
* :mod:`repro.obs.report` — the terminal run report behind
  ``repro trace summarize`` (level × shard skew table, top spans,
  metric highlights).

Instrumented layers (miner, runtimes, shard workers, scenario harness)
always record through the active tracer; with tracing off that is the
no-op singleton, so observability costs nothing and can never perturb
mining output — the golden scenario digests are byte-identical with
tracing on and off, and CI checks exactly that.
"""

from repro.obs.export import (
    TraceData,
    chrome_trace_events,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.report import render_report
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanRecord,
    TRACE_ENV,
    Tracer,
    activate,
    get_tracer,
    set_tracer,
)

__all__ = [
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Span",
    "SpanRecord",
    "TRACE_ENV",
    "TraceData",
    "Tracer",
    "activate",
    "chrome_trace_events",
    "get_tracer",
    "read_jsonl",
    "render_report",
    "set_tracer",
    "write_chrome_trace",
    "write_jsonl",
]
