"""Span tracing on an injectable clock, with a zero-overhead off switch.

A :class:`Tracer` hands out :class:`Span` context managers::

    with tracer.span("fsg.level", level=3) as span:
        ...
        span.set(survivors=17)

and collects the finished :class:`SpanRecord`\\ s plus a
:class:`~repro.obs.metrics.MetricsRegistry` of labeled counters.  The
clock is injectable (``time.perf_counter`` by default) so worker
processes can run a clock pre-aligned to the parent's timeline and the
merged trace stays on one axis without post-hoc skew correction.

When tracing is off, every call site talks to :data:`NULL_TRACER` — a
shared singleton whose ``span()`` returns one reusable no-op context
manager and whose ``metrics`` is the no-op registry.  The disabled cost
is an attribute lookup and an empty call; nothing allocates, nothing
branches on the caller's side, and mining output is untouched either
way (``benchmarks/bench_obs_overhead.py`` holds the disabled overhead
under 1%).

The module keeps one process-global *active* tracer
(:func:`get_tracer` / :func:`set_tracer` / :func:`activate`), which is
how the CLI turns on tracing for a whole run without threading a tracer
argument through every mining call.  ``REPRO_TRACE`` (:data:`TRACE_ENV`)
is the environment carrier for the trace output path.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.obs.metrics import NULL_METRICS, MetricsRegistry

#: Environment variable carrying the trace output path (JSONL); set by
#: the CLI's ``--trace`` flag or directly by the user.
TRACE_ENV = "REPRO_TRACE"


class SpanRecord:
    """One finished span: a named ``[start, end]`` interval with labels."""

    __slots__ = ("name", "start", "end", "worker", "attrs")

    def __init__(
        self,
        name: str,
        start: float,
        end: float,
        worker: str = "main",
        attrs: dict | None = None,
    ) -> None:
        self.name = name
        self.start = start
        self.end = end
        self.worker = worker
        self.attrs = attrs if attrs is not None else {}

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_wire(self) -> tuple:
        """Compact tuple form for shipping across the worker pipe."""
        return (self.name, self.start, self.end, self.worker, self.attrs)

    @classmethod
    def from_wire(cls, wire: tuple) -> "SpanRecord":
        name, start, end, worker, attrs = wire
        return cls(name, start, end, worker=worker, attrs=dict(attrs))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "worker": self.worker,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        return cls(
            payload["name"],
            payload["start"],
            payload["end"],
            worker=payload.get("worker", "main"),
            attrs=dict(payload.get("attrs", {})),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord({self.name!r}, worker={self.worker!r}, "
            f"duration={self.duration:.6f}, attrs={self.attrs!r})"
        )


class Span:
    """A live span; usable as a context manager or via :meth:`finish`.

    The clock is read at construction (``tracer.span(...)`` both creates
    and starts), so the explicit begin/finish form works across control
    flow a ``with`` block cannot straddle — the miner's level spans end
    after telemetry collection, several statements past the work they
    time.
    """

    __slots__ = ("_tracer", "name", "attrs", "start", "end", "_done")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start = tracer.clock()
        self.end = None
        self._done = False

    def set(self, **attrs) -> "Span":
        """Attach or update span attributes; returns self."""
        self.attrs.update(attrs)
        return self

    def finish(self, **attrs) -> None:
        """End the span (idempotent) and hand the record to the tracer."""
        if self._done:
            return
        self._done = True
        if attrs:
            self.attrs.update(attrs)
        self.end = self._tracer.clock()
        self._tracer._record_finished(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.finish()
        return False


class _NullSpan:
    """The one reusable no-op span behind :data:`NULL_TRACER`."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def finish(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans and metrics for one worker's timeline."""

    __slots__ = ("worker", "clock", "metrics", "_spans")

    enabled = True

    def __init__(
        self,
        worker: str = "main",
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.worker = worker
        self.clock = clock if clock is not None else time.perf_counter
        self.metrics = MetricsRegistry()
        self._spans: list[SpanRecord] = []

    def span(self, name: str, **attrs) -> Span:
        """Open (and start) a span; finish via ``with`` or :meth:`finish`."""
        return Span(self, name, attrs)

    def _record_finished(self, span: Span) -> None:
        self._spans.append(
            SpanRecord(span.name, span.start, span.end, self.worker, span.attrs)
        )

    def record(self, record: SpanRecord) -> None:
        """File an already-built record (e.g. forwarded from a worker)."""
        self._spans.append(record)

    def extend(self, records) -> None:
        self._spans.extend(records)

    @property
    def spans(self) -> list[SpanRecord]:
        """A non-draining view of the finished spans so far."""
        return list(self._spans)

    def take_spans(self) -> list[SpanRecord]:
        """Drain and return the finished spans (the worker-shipping API)."""
        taken = self._spans
        self._spans = []
        return taken


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    A singleton (:data:`NULL_TRACER`) shared by every call site when
    tracing is off; ``span()`` hands back one preallocated no-op context
    manager, so the hot path never allocates for observability it is not
    using.
    """

    __slots__ = ()

    enabled = False
    worker = "main"
    metrics = NULL_METRICS

    def clock(self) -> float:
        return 0.0

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def record(self, record: SpanRecord) -> None:
        pass

    def extend(self, records) -> None:
        pass

    @property
    def spans(self) -> list[SpanRecord]:
        return []

    def take_spans(self) -> list[SpanRecord]:
        return []


#: The shared disabled tracer.
NULL_TRACER = NullTracer()

_active: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process-global active tracer (:data:`NULL_TRACER` when off)."""
    return _active


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install *tracer* as the active tracer; returns the previous one.

    ``None`` deactivates (installs :data:`NULL_TRACER`).
    """
    global _active
    previous = _active
    _active = NULL_TRACER if tracer is None else tracer
    return previous


class activate:
    """Context manager installing a tracer for a block (tests, CLI runs)::

        with activate(Tracer()) as tracer:
            miner.mine(corpus)
        print(len(tracer.spans))
    """

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Tracer | NullTracer | None) -> None:
        self._tracer = tracer
        self._previous: Tracer | NullTracer | None = None

    def __enter__(self) -> Tracer | NullTracer:
        self._previous = set_tracer(self._tracer)
        return get_tracer()

    def __exit__(self, *exc_info) -> bool:
        set_tracer(self._previous)
        return False
