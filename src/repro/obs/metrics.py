"""Labeled metrics: the one registry behind every counter in the repo.

A :class:`MetricsRegistry` holds three instrument families keyed by
``(name, labels)``:

* **counters** — monotonically accumulated sums (engine search counts,
  wire bytes, store hits...).  Merging registries adds counters key-wise,
  which makes the merge *order-independent and associative*: per-shard
  registries gathered in any order produce the same totals as one
  registry that observed everything serially.  This is the property the
  sharded runtime's piggybacked metric shipping relies on (and that
  ``tests/test_obs.py`` pins with a property test).
* **gauges** — last-known level values (per-level wall-clock, shard
  store sizes).  Merging keeps the *maximum*, the only simple rule that
  stays commutative when the same gauge arrives from several shards.
* **histograms** — ``(count, total, min, max)`` summaries for values
  whose distribution matters more than their sum (per-message wire
  cost, per-level durations).  Element-wise merge is again commutative.

The registry supersedes the repo's three historical channels —
``FSGResult.level_seconds``, ``FSGResult.level_telemetry``, and
``MatchEngine.stats_snapshot()`` — which now feed it through
:meth:`absorb` while remaining available as back-compat shims.

Labels are normalised to sorted ``(key, value)`` string tuples, so
``counter("hits", shard="0", level="2")`` and
``counter("hits", level="2", shard="0")`` address the same series.
"""

from __future__ import annotations

from typing import Iterable, Mapping

_LabelKey = tuple[tuple[str, str], ...]
_SeriesKey = tuple[str, _LabelKey]


def _label_key(labels: Mapping[str, object]) -> _LabelKey:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


class MetricsRegistry:
    """Labeled counters, gauges, and histogram summaries."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    #: The no-op registry reports itself disabled; a real one is live.
    enabled = True

    def __init__(self) -> None:
        self._counters: dict[_SeriesKey, float] = {}
        self._gauges: dict[_SeriesKey, float] = {}
        # value = [count, total, minimum, maximum]
        self._histograms: dict[_SeriesKey, list[float]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def counter(self, name: str, value: float = 1, **labels) -> None:
        """Add *value* to the counter series ``(name, labels)``."""
        key = (name, _label_key(labels))
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set the gauge series ``(name, labels)`` to *value*."""
        self._gauges[(name, _label_key(labels))] = value

    def histogram(self, name: str, value: float, **labels) -> None:
        """Fold *value* into the histogram summary ``(name, labels)``."""
        key = (name, _label_key(labels))
        summary = self._histograms.get(key)
        if summary is None:
            self._histograms[key] = [1, value, value, value]
        else:
            summary[0] += 1
            summary[1] += value
            summary[2] = min(summary[2], value)
            summary[3] = max(summary[3], value)

    def absorb(self, counters: Mapping[str, float], **labels) -> None:
        """Fold a plain ``name -> value`` counter dict into the registry.

        The adapter for the legacy channels (engine stat snapshots,
        session telemetry records): every non-zero entry becomes a
        counter increment under *labels*.  Zero entries are skipped so
        absorbing a zeroed snapshot leaves no empty series behind.
        """
        for name, value in counters.items():
            if value:
                self.counter(name, value, **labels)

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other* into this registry, in place.

        Counters add, gauges keep the max, histograms combine summaries
        — every rule commutative and associative, so any merge order
        over any partition of the same observations yields identical
        registries.
        """
        for key, value in other._counters.items():
            self._counters[key] = self._counters.get(key, 0) + value
        for key, value in other._gauges.items():
            current = self._gauges.get(key)
            self._gauges[key] = value if current is None else max(current, value)
        for key, summary in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                self._histograms[key] = list(summary)
            else:
                mine[0] += summary[0]
                mine[1] += summary[1]
                mine[2] = min(mine[2], summary[2])
                mine[3] = max(mine[3], summary[3])

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels) -> float:
        """The value of one counter series (0 when never incremented)."""
        return self._counters.get((name, _label_key(labels)), 0)

    def counter_total(self, name: str) -> float:
        """The sum of counter *name* across every label set."""
        return sum(
            value for (series, _), value in self._counters.items() if series == name
        )

    def counter_series(self, name: str) -> dict[_LabelKey, float]:
        """Every label set of counter *name* with its value."""
        return {
            labels: value
            for (series, labels), value in self._counters.items()
            if series == name
        }

    def counter_names(self) -> list[str]:
        """Sorted distinct counter names."""
        return sorted({series for series, _ in self._counters})

    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Canonical JSON-able form; series sorted by (name, labels)."""

        def _series(table: Mapping[_SeriesKey, object]) -> Iterable[_SeriesKey]:
            return sorted(table)

        return {
            "counters": [
                {"name": name, "labels": dict(labels), "value": self._counters[(name, labels)]}
                for name, labels in _series(self._counters)
            ],
            "gauges": [
                {"name": name, "labels": dict(labels), "value": self._gauges[(name, labels)]}
                for name, labels in _series(self._gauges)
            ],
            "histograms": [
                {
                    "name": name,
                    "labels": dict(labels),
                    "count": summary[0],
                    "total": summary[1],
                    "min": summary[2],
                    "max": summary[3],
                }
                for (name, labels), summary in sorted(self._histograms.items())
            ],
        }

    @classmethod
    def from_snapshot(cls, snapshot: Mapping) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        registry = cls()
        for entry in snapshot.get("counters", ()):
            registry.counter(entry["name"], entry["value"], **entry.get("labels", {}))
        for entry in snapshot.get("gauges", ()):
            registry.gauge(entry["name"], entry["value"], **entry.get("labels", {}))
        for entry in snapshot.get("histograms", ()):
            key = (entry["name"], _label_key(entry.get("labels", {})))
            registry._histograms[key] = [
                entry["count"],
                entry["total"],
                entry["min"],
                entry["max"],
            ]
        return registry


class NullMetrics:
    """The no-op registry behind a disabled tracer.

    Every recording method is an empty-body call, so instrumented code
    can record unconditionally without a single branch on its own — the
    disabled cost is one attribute lookup plus one no-op call.
    """

    __slots__ = ()

    enabled = False

    def counter(self, name: str, value: float = 1, **labels) -> None:
        pass

    def gauge(self, name: str, value: float, **labels) -> None:
        pass

    def histogram(self, name: str, value: float, **labels) -> None:
        pass

    def absorb(self, counters: Mapping[str, float], **labels) -> None:
        pass

    def merge(self, other) -> None:
        pass

    def counter_value(self, name: str, **labels) -> float:
        return 0

    def counter_total(self, name: str) -> float:
        return 0

    def counter_series(self, name: str) -> dict:
        return {}

    def counter_names(self) -> list[str]:
        return []

    def is_empty(self) -> bool:
        return True

    def snapshot(self) -> dict:
        return {"counters": [], "gauges": [], "histograms": []}


#: Shared no-op registry (see :data:`repro.obs.tracer.NULL_TRACER`).
NULL_METRICS = NullMetrics()
