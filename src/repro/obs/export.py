"""Trace export and import: JSONL on disk, Chrome Trace Event for viewers.

The native on-disk form is JSONL — one self-describing object per line::

    {"type": "meta", "command": "scenarios run", "cpu_count": 8, ...}
    {"type": "span", "name": "fsg.level", "worker": "shard1", ...}
    {"type": "metrics", "snapshot": {"counters": [...], ...}}

Line-oriented output appends safely, survives truncation (every complete
line is valid on its own), and greps well.  :func:`read_jsonl` tolerates
unknown ``type`` values so future writers stay readable by old readers.

:func:`write_chrome_trace` converts a trace to the Chrome Trace Event
Format (``chrome://tracing`` / Perfetto / ``about:tracing``): one ``"X"``
complete event per span with microsecond timestamps, plus ``"M"``
metadata events naming each worker's thread row — so a sharded mining
run renders as K parallel swimlanes whose per-level skew is visible at a
glance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer, SpanRecord, Tracer


@dataclass
class TraceData:
    """A loaded (or about-to-be-written) trace: meta + spans + metrics."""

    meta: dict = field(default_factory=dict)
    spans: list[SpanRecord] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @classmethod
    def from_tracer(
        cls, tracer: Tracer | NullTracer, meta: dict | None = None
    ) -> "TraceData":
        """Snapshot a live tracer without draining it."""
        return cls(
            meta=dict(meta or {}),
            spans=list(tracer.spans),
            metrics=tracer.metrics,
        )

    def workers(self) -> list[str]:
        """Distinct span workers, ``main`` first, shards in index order."""
        names = {span.worker for span in self.spans}
        ordered = sorted(names - {"main"})
        return (["main"] if "main" in names else []) + ordered


def write_jsonl(
    path: str | Path,
    trace: TraceData | Tracer | NullTracer,
    meta: dict | None = None,
) -> Path:
    """Write *trace* (a :class:`TraceData` or a live tracer) as JSONL."""
    data = (
        trace
        if isinstance(trace, TraceData)
        else TraceData.from_tracer(trace, meta=meta)
    )
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        if data.meta:
            handle.write(json.dumps({"type": "meta", **data.meta}, default=str) + "\n")
        for span in data.spans:
            handle.write(
                json.dumps({"type": "span", **span.to_dict()}, default=str) + "\n"
            )
        snapshot = data.metrics.snapshot()
        if any(snapshot.values()):
            handle.write(
                json.dumps({"type": "metrics", "snapshot": snapshot}, default=str)
                + "\n"
            )
    return path


def read_jsonl(path: str | Path) -> TraceData:
    """Load a JSONL trace written by :func:`write_jsonl`."""
    data = TraceData()
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            kind = entry.get("type")
            if kind == "meta":
                meta = dict(entry)
                meta.pop("type", None)
                data.meta.update(meta)
            elif kind == "span":
                data.spans.append(SpanRecord.from_dict(entry))
            elif kind == "metrics":
                data.metrics.merge(MetricsRegistry.from_snapshot(entry["snapshot"]))
            # Unknown types are skipped: forward compatibility.
    return data


def chrome_trace_events(data: TraceData) -> list[dict]:
    """The Chrome Trace Event list for *data* (``"M"`` names + ``"X"`` spans)."""
    workers = data.workers()
    tid_of = {worker: tid for tid, worker in enumerate(workers)}
    events: list[dict] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": worker},
        }
        for worker, tid in tid_of.items()
    ]
    for span in data.spans:
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": 0,
                "tid": tid_of[span.worker],
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "args": dict(span.attrs),
            }
        )
    return events


def write_chrome_trace(path: str | Path, data: TraceData) -> Path:
    """Write *data* in Chrome Trace Event Format (a single JSON object)."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": chrome_trace_events(data),
        "displayTimeUnit": "ms",
        "metadata": dict(data.meta),
    }
    path.write_text(json.dumps(payload, default=str) + "\n", encoding="utf-8")
    return path


def span_records(spans: Iterable[SpanRecord], name: str) -> list[SpanRecord]:
    """The spans called *name*, in recorded order (a report convenience)."""
    return [span for span in spans if span.name == name]
