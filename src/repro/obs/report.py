"""Terminal run reports over trace data.

:func:`render_report` turns a :class:`~repro.obs.export.TraceData` into
the plain-text report ``repro trace summarize`` prints:

* a **level × worker table** of seconds spent per mining level on each
  timeline (shard workers when the run was sharded, the main timeline
  otherwise), with a per-level imbalance ratio — the max/min across
  shards that round-robin tid placement cannot always keep near 1.0;
* the **top-N spans** by duration, across all workers;
* **metric highlights** — wire bytes, shipment mix, store and
  verdict-cache hit rates — derived from the registry counters.

Everything renders from the trace alone, so the report works the same
on a live tracer (``scenarios verify --report``) and on a JSONL file
loaded weeks later.
"""

from __future__ import annotations

from repro.obs.export import TraceData

#: Span names whose duration counts toward a worker's per-level cell.
#: Shard timelines are summed over their leveled message spans; the main
#: timeline uses the miner's own level spans.
_SHARD_LEVEL_SPANS = ("shard.slevel", "shard.level", "shard.batch")
_MAIN_LEVEL_SPAN = "fsg.level"


def _level_sort_key(label: str):
    try:
        return (0, int(label))
    except (TypeError, ValueError):
        return (1, str(label))


def _level_worker_cells(data: TraceData) -> tuple[list[str], list[str], dict]:
    """(levels, workers, {(level, worker): seconds}) for the skew table."""
    shard_workers = sorted({s.worker for s in data.spans if s.worker != "main"})
    cells: dict[tuple[str, str], float] = {}
    if shard_workers:
        workers = shard_workers
        source = [
            s
            for s in data.spans
            if s.worker != "main" and s.name in _SHARD_LEVEL_SPANS
        ]
    else:
        workers = ["main"]
        source = [s for s in data.spans if s.name == _MAIN_LEVEL_SPAN]
    for span in source:
        level = span.attrs.get("level")
        if level is None:
            continue
        key = (str(level), span.worker)
        cells[key] = cells.get(key, 0.0) + span.duration
    levels = sorted({level for level, _ in cells}, key=_level_sort_key)
    return levels, workers, cells


def _format_table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(str(headers[column])), *(len(str(row[column])) for row in rows))
        if rows
        else len(str(headers[column]))
        for column in range(len(headers))
    ]
    def fmt(values):
        return "  ".join(str(value).rjust(width) for value, width in zip(values, widths))
    lines = [fmt(headers), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines


def _seconds(value: float) -> str:
    return f"{value:.4f}"


def _skew_section(data: TraceData) -> list[str]:
    levels, workers, cells = _level_worker_cells(data)
    if not levels:
        return ["(no leveled spans in this trace)"]
    multi = len(workers) > 1
    headers = ["level", *workers, "total"] + (["imbalance"] if multi else [])
    rows: list[list[str]] = []
    worker_totals = {worker: 0.0 for worker in workers}
    for level in levels:
        values = [cells.get((level, worker), 0.0) for worker in workers]
        for worker, value in zip(workers, values):
            worker_totals[worker] += value
        row = [level, *(_seconds(v) for v in values), _seconds(sum(values))]
        if multi:
            busy = [v for v in values if v > 0]
            ratio = (max(busy) / min(busy)) if len(busy) > 1 else float("nan")
            row.append(f"{ratio:.2f}" if busy and len(busy) > 1 else "-")
        rows.append(row)
    totals_row = [
        "total",
        *(_seconds(worker_totals[worker]) for worker in workers),
        _seconds(sum(worker_totals.values())),
    ]
    if multi:
        busy = [v for v in worker_totals.values() if v > 0]
        totals_row.append(f"{max(busy) / min(busy):.2f}" if len(busy) > 1 else "-")
    rows.append(totals_row)
    title = (
        "seconds per level x shard (imbalance = max/min across shards)"
        if multi
        else "seconds per level (single timeline)"
    )
    return [title, *_format_table(headers, rows)]


def _top_spans_section(data: TraceData, top: int) -> list[str]:
    if not data.spans:
        return []
    ranked = sorted(data.spans, key=lambda span: -span.duration)[:top]
    rows = []
    for span in ranked:
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(span.attrs.items(), key=str)
        )
        rows.append(
            [span.name, span.worker, _seconds(span.duration), attrs]
        )
    return [
        f"top {len(ranked)} spans by duration",
        *_format_table(["span", "worker", "seconds", "attrs"], rows),
    ]


def _rate(hits: float, misses: float) -> str:
    total = hits + misses
    return f"{hits / total:.1%}" if total else "-"


def _metrics_section(data: TraceData) -> list[str]:
    metrics = data.metrics
    names = metrics.counter_names()
    if not names:
        return []
    lines = ["metric totals (summed across labels)"]
    rows = [[name, f"{metrics.counter_total(name):,.6g}"] for name in names]
    lines.extend(_format_table(["counter", "total"], rows))
    wire = metrics.counter_total("wire_bytes") or metrics.counter_total(
        "wire_bytes_shipped"
    )
    derived = []
    if wire:
        derived.append(f"wire bytes shipped: {wire:,.0f}")
    delta = metrics.counter_total("patterns_delta") or metrics.counter_total(
        "patterns_shipped_delta"
    )
    full = metrics.counter_total("patterns_full") or metrics.counter_total(
        "patterns_shipped_full"
    )
    if delta or full:
        derived.append(
            f"pattern shipments: {full:,.0f} full / {delta:,.0f} delta "
            f"(delta share {_rate(delta, full)})"
        )
    verdict_hits = metrics.counter_total("verdict_hits")
    verdict_misses = metrics.counter_total("verdict_misses")
    if verdict_hits or verdict_misses:
        derived.append(f"verdict-cache hit rate: {_rate(verdict_hits, verdict_misses)}")
    store_hits = metrics.counter_total("store_hits")
    if store_hits or full:
        derived.append(f"session store hits: {store_hits:,.0f}")
    if derived:
        lines.append("")
        lines.extend(derived)
    return lines


def render_report(data: TraceData, top: int = 10) -> str:
    """The full terminal report for *data*."""
    lines: list[str] = ["== repro run report =="]
    if data.meta:
        meta = " ".join(
            f"{key}={value}" for key, value in sorted(data.meta.items(), key=str)
        )
        lines.append(meta)
    lines.append(f"spans: {len(data.spans)}  workers: {', '.join(data.workers()) or '-'}")
    for section in (
        _skew_section(data),
        _top_spans_section(data, top),
        _metrics_section(data),
    ):
        if section:
            lines.append("")
            lines.extend(section)
    return "\n".join(lines)
