"""Reproduction of "Knowledge Discovery from Transportation Network Data" (ICDE 2005).

The library reimplements, from scratch, everything the paper evaluates on
its proprietary origin-destination freight dataset:

* a calibrated synthetic dataset generator and the Table 1 schema
  (:mod:`repro.datasets`);
* the labeled directed graph substrate, label-preserving isomorphism, and
  the OD graph builders (:mod:`repro.graphs`);
* the miners the paper uses as black boxes — an FSG-style frequent
  subgraph miner, a SUBDUE-style single-graph substructure discoverer,
  and the Weka-style conventional miners (Apriori, C4.5-like trees, EM
  clustering) (:mod:`repro.mining`);
* the paper's own contributions — single-graph pattern identity and the
  structural / temporal partitioning strategies (:mod:`repro.partitioning`,
  :mod:`repro.patterns`);
* end-to-end pipelines and per-table/figure experiment drivers
  (:mod:`repro.core`) with text reporting (:mod:`repro.reporting`).

Quickstart::

    from repro import ExperimentConfig, generate_dataset
    from repro.core.experiments import experiment_table1

    report = experiment_table1(ExperimentConfig(scale=0.05))
    print(report.to_text())
"""

from repro.core.config import ExperimentConfig
from repro.core.pipeline import (
    StructuralMiningPipeline,
    TemporalMiningPipeline,
    TransactionalMiningPipeline,
)
from repro.core.results import ExperimentReport
from repro.datasets.generator import GeneratorConfig, TransportationDataGenerator, generate_dataset
from repro.datasets.schema import Location, TransMode, Transaction, TransactionDataset
from repro.graphs.builders import build_od_graph
from repro.graphs.engine import MatchEngine, default_engine
from repro.graphs.labeled_graph import Edge, LabeledGraph, LabeledMultiGraph
from repro.mining.fsg.miner import FSGMiner, mine_frequent_subgraphs
from repro.mining.subdue.miner import SubdueMiner
from repro.partitioning.split_graph import PartitionStrategy, split_graph
from repro.partitioning.structural import StructuralMiningConfig, mine_single_graph
from repro.runtime import MiningRuntime, SerialRuntime, ShardedEngine, create_runtime

__version__ = "1.0.0"

__all__ = [
    "ExperimentConfig",
    "ExperimentReport",
    "StructuralMiningPipeline",
    "TemporalMiningPipeline",
    "TransactionalMiningPipeline",
    "GeneratorConfig",
    "TransportationDataGenerator",
    "generate_dataset",
    "Location",
    "TransMode",
    "Transaction",
    "TransactionDataset",
    "build_od_graph",
    "MatchEngine",
    "default_engine",
    "Edge",
    "LabeledGraph",
    "LabeledMultiGraph",
    "FSGMiner",
    "mine_frequent_subgraphs",
    "SubdueMiner",
    "PartitionStrategy",
    "split_graph",
    "StructuralMiningConfig",
    "mine_single_graph",
    "MiningRuntime",
    "SerialRuntime",
    "ShardedEngine",
    "create_runtime",
    "__version__",
]
