"""Mapping the OD dataset into flat transactional / tabular forms (Section 7).

The conventional-mining experiments ignore the network structure and work
on the transaction table directly.  Two representations are needed:

* a *feature table* — one dict per transaction with the Table 1 attributes
  (the two date attributes are excluded by default, as in the paper, which
  dropped them because Weka's DATE-to-REAL mapping made results hard to
  interpret);
* *item transactions* — one set of ``ATTRIBUTE=value`` items per row, the
  market-basket representation consumed by Apriori.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.datasets.schema import Transaction, TransactionDataset

#: Attributes used by the conventional-mining experiments (dates excluded).
CONVENTIONAL_ATTRIBUTES: tuple[str, ...] = (
    "ORIGIN_LATITUDE",
    "ORIGIN_LONGITUDE",
    "DEST_LATITUDE",
    "DEST_LONGITUDE",
    "TOTAL_DISTANCE",
    "GROSS_WEIGHT",
    "MOVE_TRANSIT_HOURS",
    "TRANS_MODE",
)

#: The attribute subset used by Section 7.1's Experiment 2 (OD coordinates only).
COORDINATE_ATTRIBUTES: tuple[str, ...] = (
    "ORIGIN_LATITUDE",
    "ORIGIN_LONGITUDE",
    "DEST_LATITUDE",
    "DEST_LONGITUDE",
)


def transaction_features(
    transaction: Transaction,
    attributes: Sequence[str] = CONVENTIONAL_ATTRIBUTES,
) -> dict[str, object]:
    """The flat feature dict of one transaction restricted to *attributes*."""
    record = transaction.as_record()
    unknown = set(attributes) - set(record)
    if unknown:
        raise KeyError(f"unknown attributes requested: {sorted(unknown)}")
    return {attribute: record[attribute] for attribute in attributes}


def dataset_to_feature_table(
    dataset: TransactionDataset,
    attributes: Sequence[str] = CONVENTIONAL_ATTRIBUTES,
) -> list[dict[str, object]]:
    """The full feature table of *dataset* (one dict per transaction)."""
    return [transaction_features(transaction, attributes) for transaction in dataset]


def feature_table_to_item_transactions(
    table: Sequence[Mapping[str, object]],
) -> list[frozenset[str]]:
    """Convert a (typically discretised) feature table to item transactions.

    Each row becomes a set of ``ATTRIBUTE=value`` items — the standard
    market-basket encoding for mining association rules over tabular data.
    """
    transactions: list[frozenset[str]] = []
    for row in table:
        items = frozenset(f"{attribute}={value}" for attribute, value in row.items())
        transactions.append(items)
    return transactions


def numeric_matrix(
    table: Sequence[Mapping[str, object]],
    attributes: Sequence[str],
) -> list[list[float]]:
    """Extract a pure-numeric matrix (rows x attributes) from a feature table.

    Used by the EM clustering experiment, which runs on the undiscretised
    numeric attributes.  Raises ``ValueError`` when a value is not numeric.
    """
    matrix: list[list[float]] = []
    for index, row in enumerate(table):
        values: list[float] = []
        for attribute in attributes:
            value = row[attribute]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"attribute {attribute!r} in row {index} is not numeric: {value!r}"
                )
            values.append(float(value))
        matrix.append(values)
    return matrix
