"""Apriori frequent itemsets and association rules (Section 7.1).

The paper runs Weka's Apriori on the discretised transaction table.  This
module implements the classic Agrawal-Srikant algorithm: level-wise
candidate generation with the downward-closure prune, followed by rule
generation from the frequent itemsets.  Rules are annotated with the
interestingness metrics of :mod:`repro.mining.interestingness` so they can
be ranked by confidence (as in the paper) or any other measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Sequence

from repro.mining.interestingness import rule_metrics

Item = str
Itemset = frozenset


@dataclass(frozen=True)
class FrequentItemset:
    """An itemset and the number of transactions containing it."""

    items: Itemset
    support_count: int

    def relative_support(self, n_transactions: int) -> float:
        """Support as a fraction of the transaction count."""
        return self.support_count / n_transactions

    def __len__(self) -> int:
        return len(self.items)


@dataclass(frozen=True)
class AssociationRule:
    """A rule ``antecedent -> consequent`` with its quality metrics."""

    antecedent: Itemset
    consequent: Itemset
    support: float
    confidence: float
    lift: float
    leverage: float
    conviction: float

    def __str__(self) -> str:
        lhs = " & ".join(sorted(self.antecedent))
        rhs = " & ".join(sorted(self.consequent))
        return f"{lhs} -> {rhs} (conf={self.confidence:.2f}, supp={self.support:.3f})"

    def mentions(self, attribute_prefix: str) -> bool:
        """Whether any item in the rule starts with ``attribute_prefix``."""
        return any(
            item.startswith(attribute_prefix)
            for item in self.antecedent | self.consequent
        )


@dataclass
class Apriori:
    """Classic Apriori miner for frequent itemsets and association rules.

    Parameters
    ----------
    min_support:
        Minimum relative support of an itemset (fraction of transactions).
    min_confidence:
        Minimum confidence for generated rules.
    max_itemset_size:
        Largest itemset size to mine; ``None`` means unbounded.
    """

    min_support: float = 0.1
    min_confidence: float = 0.8
    max_itemset_size: int | None = None
    _support_index: dict[Itemset, int] = field(default_factory=dict, init=False)
    _n_transactions: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.min_support <= 1.0:
            raise ValueError("min_support must be in (0, 1]")
        if not 0.0 < self.min_confidence <= 1.0:
            raise ValueError("min_confidence must be in (0, 1]")

    # ------------------------------------------------------------------
    # Frequent itemsets
    # ------------------------------------------------------------------
    def frequent_itemsets(self, transactions: Sequence[Iterable[Item]]) -> list[FrequentItemset]:
        """Mine all frequent itemsets from *transactions*."""
        baskets = [frozenset(transaction) for transaction in transactions]
        self._n_transactions = len(baskets)
        if self._n_transactions == 0:
            raise ValueError("cannot mine an empty transaction set")
        min_count = max(1, int(round(self.min_support * self._n_transactions)))
        self._support_index.clear()

        # Level 1: frequent single items.
        counts: dict[Itemset, int] = {}
        for basket in baskets:
            # Sorted so the level's (and therefore every consumer's) order
            # does not depend on frozenset hash order / PYTHONHASHSEED.
            # Keyed on str() so hashable-but-non-comparable item mixes
            # still mine (items are nominally strings, but don't narrow).
            for item in sorted(basket, key=str):
                key = frozenset([item])
                counts[key] = counts.get(key, 0) + 1
        current = {itemset: count for itemset, count in counts.items() if count >= min_count}
        frequent: list[FrequentItemset] = []
        self._record_level(current, frequent)

        size = 1
        while current:
            if self.max_itemset_size is not None and size >= self.max_itemset_size:
                break
            candidates = self._generate_candidates(set(current), size + 1)
            if not candidates:
                break
            counts = {
                candidate: 0
                for candidate in sorted(candidates, key=lambda c: sorted(map(str, c)))
            }
            for basket in baskets:
                for candidate in candidates:
                    if candidate <= basket:
                        counts[candidate] += 1
            current = {itemset: count for itemset, count in counts.items() if count >= min_count}
            self._record_level(current, frequent)
            size += 1
        return frequent

    def _record_level(self, level: dict[Itemset, int], accumulator: list[FrequentItemset]) -> None:
        for itemset, count in level.items():
            self._support_index[itemset] = count
            accumulator.append(FrequentItemset(items=itemset, support_count=count))

    def _generate_candidates(self, frequent_prev: set[Itemset], size: int) -> set[Itemset]:
        """Join frequent (size-1)-itemsets and prune by downward closure."""
        candidates: set[Itemset] = set()
        frequent_list = sorted(frequent_prev, key=lambda s: sorted(map(str, s)))
        for index, first in enumerate(frequent_list):
            for second in frequent_list[index + 1:]:
                union = first | second
                if len(union) != size:
                    continue
                if all(frozenset(subset) in frequent_prev for subset in combinations(union, size - 1)):
                    candidates.add(union)
        return candidates

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    def rules(
        self,
        transactions: Sequence[Iterable[Item]] | None = None,
        itemsets: Sequence[FrequentItemset] | None = None,
    ) -> list[AssociationRule]:
        """Generate association rules meeting the confidence threshold.

        Either pass *transactions* (itemsets are mined first) or reuse the
        *itemsets* from a prior :meth:`frequent_itemsets` call on the same
        miner instance.
        """
        if itemsets is None:
            if transactions is None:
                raise ValueError("either transactions or itemsets must be provided")
            itemsets = self.frequent_itemsets(transactions)
        if not self._support_index:
            raise RuntimeError("frequent_itemsets must be mined before generating rules")

        rules: list[AssociationRule] = []
        for frequent in itemsets:
            if len(frequent.items) < 2:
                continue
            rules.extend(self._rules_from_itemset(frequent))
        # Ties on (confidence, support) are broken by the rendered rule so
        # the ranking is reproducible across hash seeds.
        rules.sort(key=lambda rule: (-rule.confidence, -rule.support, str(rule)))
        return rules

    def _rules_from_itemset(self, frequent: FrequentItemset) -> list[AssociationRule]:
        produced: list[AssociationRule] = []
        items = frequent.items
        support_both = frequent.support_count / self._n_transactions
        for split_size in range(1, len(items)):
            for antecedent_items in combinations(sorted(items), split_size):
                antecedent = frozenset(antecedent_items)
                consequent = items - antecedent
                antecedent_count = self._support_index.get(antecedent)
                consequent_count = self._support_index.get(consequent)
                if antecedent_count is None or consequent_count is None:
                    continue
                metrics = rule_metrics(
                    support_both,
                    antecedent_count / self._n_transactions,
                    consequent_count / self._n_transactions,
                )
                if metrics["confidence"] < self.min_confidence:
                    continue
                produced.append(
                    AssociationRule(
                        antecedent=antecedent,
                        consequent=consequent,
                        support=metrics["support"],
                        confidence=metrics["confidence"],
                        lift=metrics["lift"],
                        leverage=metrics["leverage"],
                        conviction=metrics["conviction"],
                    )
                )
        return produced
