"""Evaluation principles for candidate substructures (MDL, Size, Set-Cover).

SUBDUE 5.1 offers three ways to score a candidate substructure S against a
host graph G:

* **MDL** — ``DL(G) / (DL(S) + DL(G | S))`` where ``DL`` is the
  description length and ``G | S`` is G with S's instances collapsed;
  larger is better (more compression).
* **Size** — the same ratio computed with the simpler ``vertices + edges``
  size measure.
* **Set-Cover** — for supervised settings with positive and negative
  example graphs: the fraction of positive examples containing S plus
  negative examples not containing S.  The paper notes this principle does
  not apply to the transportation data (there are no negative examples);
  it is implemented for completeness and tested on toy data.
"""

from __future__ import annotations

import enum
import math
from typing import Sequence

from repro.graphs.engine import MatchEngine
from repro.graphs.isomorphism import has_embedding
from repro.graphs.labeled_graph import LabeledGraph
from repro.mining.subdue.compression import compress_instances
from repro.mining.subdue.mdl import description_length, graph_size
from repro.mining.subdue.substructure import Substructure


def _host_label_counts(
    host: LabeledGraph, engine: MatchEngine | None
) -> tuple[int, int]:
    """(#vertex labels, #edge labels) of *host*, from the engine index if any.

    The host's label alphabet is fixed for a whole mining run, so reading
    it off the precomputed index avoids an O(V + E) recount per candidate
    evaluation.
    """
    if engine is not None:
        index = engine.index_of(host)
        return (
            max(1, len(index.vertex_label_hist)),
            max(1, len(index.edge_label_hist)),
        )
    return (
        max(1, len(host.vertex_label_counts())),
        max(1, len(host.edge_label_counts())),
    )


def _compression_stats(host: LabeledGraph, substructure: Substructure) -> dict[str, object]:
    """Compress the host and account for edges merged away by the rewrite.

    The compressed graph is a simple graph, so boundary edges from several
    instance vertices to the same outside vertex merge into one edge.
    Those merged edges still have to be described in a lossless encoding,
    so the evaluation functions add them back explicitly.
    """
    instances = substructure.non_overlapping()
    compressed = compress_instances(host, instances)
    internal_edges = sum(instance.n_edges for instance in instances)
    covered_vertices = sum(len(instance.vertices) for instance in instances)
    merged_edges = max(0, (host.n_edges - internal_edges) - compressed.n_edges)
    replacement_vertices = {
        vertex for vertex in compressed.vertices() if compressed.vertex_label(vertex) == "SUB"
    }
    boundary_edges = sum(
        1
        for edge in compressed.edges()
        if edge.source in replacement_vertices or edge.target in replacement_vertices
    )
    return {
        "compressed": compressed,
        "n_instances": len(instances),
        "internal_edges": internal_edges,
        "covered_vertices": covered_vertices,
        "merged_edges": merged_edges,
        "boundary_edges": boundary_edges + merged_edges,
    }


class EvaluationPrinciple(str, enum.Enum):
    """How candidate substructures are scored."""

    MDL = "mdl"
    SIZE = "size"
    SET_COVER = "set_cover"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def mdl_value(
    host: LabeledGraph,
    substructure: Substructure,
    engine: MatchEngine | None = None,
) -> float:
    """MDL compression value of *substructure* against *host*.

    The description of the compressed graph alone is not lossless: to
    reconstruct the original graph one must also record *where* each
    instance sits (which host vertices it covered) and, for every boundary
    edge re-attached to a replacement vertex, which internal vertex of the
    instance it originally connected to.  Both overheads grow with the
    substructure's size and coverage, which is why SUBDUE's MDL principle
    favours small, very frequent substructures on uniformly-labeled graphs
    (the Section 5.1 observation) while the simpler Size principle — which
    ignores reconstruction overhead — rewards the largest substructure
    that still repeats.
    """
    n_vertex_labels, n_edge_labels = _host_label_counts(host, engine)
    original = description_length(host, n_vertex_labels, n_edge_labels)
    sub_dl = description_length(substructure.pattern, n_vertex_labels, n_edge_labels)
    stats = _compression_stats(host, substructure)
    compressed = stats["compressed"]
    compressed_dl = description_length(compressed, n_vertex_labels + 1, n_edge_labels)

    # Edges merged away by the simple-graph rewrite still need describing.
    per_edge_bits = 2.0 * math.log2(max(2, compressed.n_vertices)) + math.log2(max(2, n_edge_labels))
    merged_bits = stats["merged_edges"] * per_edge_bits
    # Boundary edges must record which internal vertex they attached to.
    attachment_bits = stats["boundary_edges"] * math.log2(max(2, substructure.pattern.n_vertices))
    # Instance locations must be recorded to reconstruct the original graph.
    location_bits = stats["covered_vertices"] * math.log2(max(2, host.n_vertices))

    denominator = sub_dl + compressed_dl + merged_bits + attachment_bits + location_bits
    if denominator <= 0:
        return 0.0
    return original / denominator


def size_value(host: LabeledGraph, substructure: Substructure) -> float:
    """Size-principle compression value of *substructure* against *host*.

    The size measure counts vertices plus edges; edges merged away by the
    simple-graph rewrite are added back so the rewrite itself does not
    fabricate compression.
    """
    original = graph_size(host)
    stats = _compression_stats(host, substructure)
    compressed_size = graph_size(stats["compressed"]) + stats["merged_edges"]
    denominator = graph_size(substructure.pattern) + compressed_size
    if denominator <= 0:
        return 0.0
    return original / denominator


def set_cover_value(
    substructure: Substructure,
    positive_examples: Sequence[LabeledGraph],
    negative_examples: Sequence[LabeledGraph],
    engine: MatchEngine | None = None,
) -> float:
    """Set-Cover value: positives containing S plus negatives not containing S, over all examples."""
    total = len(positive_examples) + len(negative_examples)
    if total == 0:
        raise ValueError("set-cover evaluation needs at least one example graph")
    occurs = engine.has_embedding if engine is not None else has_embedding
    covered_positives = sum(
        1 for example in positive_examples if occurs(substructure.pattern, example)
    )
    excluded_negatives = sum(
        1 for example in negative_examples if not occurs(substructure.pattern, example)
    )
    return (covered_positives + excluded_negatives) / total


def evaluate(
    host: LabeledGraph,
    substructure: Substructure,
    principle: EvaluationPrinciple,
    positive_examples: Sequence[LabeledGraph] | None = None,
    negative_examples: Sequence[LabeledGraph] | None = None,
    engine: MatchEngine | None = None,
) -> float:
    """Score *substructure* under the chosen principle."""
    if principle is EvaluationPrinciple.MDL:
        return mdl_value(host, substructure, engine=engine)
    if principle is EvaluationPrinciple.SIZE:
        return size_value(host, substructure)
    if principle is EvaluationPrinciple.SET_COVER:
        return set_cover_value(
            substructure, positive_examples or [], negative_examples or [], engine=engine
        )
    raise ValueError(f"unknown evaluation principle: {principle}")
