"""Substructures and their instances in a host graph.

A *substructure* is a small pattern graph together with the list of its
*instances* — concrete occurrences inside the host graph, each identified
by the host vertices and edges it covers.  SUBDUE grows substructures by
extending every instance by one incident edge and re-grouping the extended
instances by the pattern they form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graphs.canonical import graph_invariant
from repro.graphs.engine import MatchEngine
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.labeled_graph import Edge, LabeledGraph, VertexId


@dataclass(frozen=True)
class Instance:
    """One concrete occurrence of a substructure inside the host graph."""

    vertices: frozenset[VertexId]
    edges: frozenset[Edge]

    @classmethod
    def from_vertex(cls, vertex: VertexId) -> "Instance":
        """A single-vertex instance (the starting point of the search)."""
        return cls(vertices=frozenset([vertex]), edges=frozenset())

    def extended_with(self, edge: Edge) -> "Instance":
        """A new instance including *edge* and its endpoints."""
        return Instance(
            vertices=self.vertices | {edge.source, edge.target},
            edges=self.edges | {edge},
        )

    def overlaps(self, other: "Instance") -> bool:
        """Whether the two instances share any vertex."""
        return bool(self.vertices & other.vertices)

    @property
    def n_edges(self) -> int:
        """Number of edges covered by the instance."""
        return len(self.edges)


def instance_key(instance: Instance) -> tuple:
    """A total order over instances independent of hash seed.

    Instances live in frozensets whose iteration order follows the
    process hash seed; everything that turns instances into an ordered
    choice (greedy non-overlap selection, expansion, truncation) sorts by
    this key first so SUBDUE output is identical across interpreter runs.
    """
    return (
        len(instance.edges),
        sorted((str(e.source), str(e.label), str(e.target)) for e in instance.edges),
        sorted(str(v) for v in instance.vertices),
    )


def instance_pattern(host: LabeledGraph, instance: Instance) -> LabeledGraph:
    """The pattern graph an instance represents (host labels preserved)."""
    pattern = LabeledGraph(name="substructure")
    for vertex in sorted(instance.vertices, key=str):
        pattern.add_vertex(vertex, host.vertex_label(vertex))
    for edge in sorted(instance.edges, key=lambda e: (str(e.source), str(e.target), str(e.label))):
        pattern.add_edge(edge.source, edge.target, edge.label)
    return pattern


def select_non_overlapping(instances: list[Instance]) -> list[Instance]:
    """Greedy maximal set of vertex-disjoint instances.

    The paper's experiments disallow overlapping patterns, so substructure
    value is computed from vertex-disjoint instances only.  Candidates are
    visited in :func:`instance_key` order, so the selection (and with it
    every instance count and MDL value) does not depend on the hash seed.
    """
    chosen: list[Instance] = []
    used: set[VertexId] = set()
    for instance in sorted(instances, key=instance_key):
        if instance.vertices & used:
            continue
        chosen.append(instance)
        used |= instance.vertices
    return chosen


@dataclass
class Substructure:
    """A pattern graph plus its instances in the host graph.

    ``instances`` should be *rebound* (assigned a new list), not mutated
    in place: the non-overlapping selection is cached against the list
    object itself (the kept reference also pins it, so a recycled
    allocation can never false-match).  Callers that must mutate in
    place call :meth:`invalidate` afterwards.
    """

    pattern: LabeledGraph
    instances: list[Instance] = field(default_factory=list)
    value: float = 0.0
    _non_overlap_cache: tuple | None = field(default=None, repr=False, compare=False)

    @property
    def n_instances(self) -> int:
        """Number of (possibly overlapping) instances found."""
        return len(self.instances)

    def non_overlapping(self) -> list[Instance]:
        """The greedy vertex-disjoint selection, computed once per instance list.

        Candidate filtering, evaluation, and compression all need the
        same selection, and the sort inside :func:`select_non_overlapping`
        is the hottest per-candidate work — so the result is cached and
        recomputed whenever :attr:`instances` is rebound to another list
        (the miner truncates by assigning a new, shorter one).
        """
        if self._non_overlap_cache is None or self._non_overlap_cache[0] is not self.instances:
            self._non_overlap_cache = (self.instances, select_non_overlapping(self.instances))
        return self._non_overlap_cache[1]

    def invalidate(self) -> None:
        """Drop the cached non-overlapping selection after an in-place mutation."""
        self._non_overlap_cache = None

    @property
    def n_non_overlapping(self) -> int:
        """Number of vertex-disjoint instances (the count SUBDUE reports)."""
        return len(self.non_overlapping())

    @property
    def n_edges(self) -> int:
        """Edges in the pattern graph."""
        return self.pattern.n_edges

    @property
    def n_vertices(self) -> int:
        """Vertices in the pattern graph."""
        return self.pattern.n_vertices

    def invariant(self) -> str:
        """Isomorphism-invariant fingerprint of the pattern."""
        return graph_invariant(self.pattern)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Substructure(vertices={self.n_vertices}, edges={self.n_edges}, "
            f"instances={self.n_instances}, value={self.value:.4f})"
        )


def group_instances_by_pattern(
    host: LabeledGraph,
    instances: list[Instance],
    engine: MatchEngine | None = None,
) -> list[Substructure]:
    """Group raw instances into substructures by pattern isomorphism.

    Instances whose induced patterns are isomorphic (labels included)
    belong to the same substructure.  Grouping uses the cheap invariant
    with exact isomorphism confirmation inside each bucket; with
    *engine*, the confirmation runs through its indexed kernel, so each
    bucket representative is compacted once and reused for every
    comparison against it.  The invariant itself is always computed
    directly: instance patterns are fresh one-shot objects, so routing
    them through the engine's per-graph memoization would only add
    compaction overhead with no reuse.
    """
    isomorphic = engine.are_isomorphic if engine is not None else are_isomorphic
    buckets: dict[str, list[tuple[LabeledGraph, list[Instance]]]] = {}
    for instance in instances:
        pattern = instance_pattern(host, instance)
        bucket = buckets.setdefault(graph_invariant(pattern), [])
        for existing_pattern, existing_instances in bucket:
            if isomorphic(existing_pattern, pattern):
                existing_instances.append(instance)
                break
        else:
            bucket.append((pattern, [instance]))
    substructures: list[Substructure] = []
    for bucket in buckets.values():
        for pattern, grouped in bucket:
            substructures.append(Substructure(pattern=pattern, instances=grouped))
    return substructures
