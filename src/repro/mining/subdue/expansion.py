"""Substructure expansion: growing candidates by one edge at a time.

SUBDUE's search expands every instance of the current substructure by one
edge incident on the instance, then re-groups the extended instances by
the pattern they form.  Working at the instance level (rather than
re-running subgraph isomorphism against the whole host graph) keeps each
expansion step proportional to the number of instances times the local
edge density.
"""

from __future__ import annotations

from repro.graphs.engine import MatchEngine
from repro.graphs.labeled_graph import LabeledGraph
from repro.mining.subdue.substructure import (
    Instance,
    Substructure,
    group_instances_by_pattern,
)


def initial_substructures(
    host: LabeledGraph, engine: MatchEngine | None = None
) -> list[Substructure]:
    """One single-vertex substructure per distinct vertex label.

    Each substructure's instances are all host vertices carrying that
    label; these seed the beam search.  With *engine*, the seed vertex
    groups come straight from the host index's label buckets instead of a
    fresh scan.
    """
    by_label: dict[object, list[Instance]] = {}
    if engine is not None:
        index = engine.index_of(host)
        compact = index.compact
        for label_id, bucket in index.by_label.items():
            label = compact.table.label(label_id)
            by_label[label] = [
                Instance.from_vertex(compact.vertex_ids[vertex]) for vertex in bucket
            ]
    else:
        for vertex in host.vertices():
            by_label.setdefault(host.vertex_label(vertex), []).append(
                Instance.from_vertex(vertex)
            )
    substructures: list[Substructure] = []
    for label, instances in by_label.items():
        pattern = LabeledGraph(name=f"seed-{label}")
        pattern.add_vertex("p0", label)
        substructures.append(Substructure(pattern=pattern, instances=instances))
    return substructures


def expand_instance(host: LabeledGraph, instance: Instance) -> list[Instance]:
    """All one-edge extensions of *instance* using edges incident on it."""
    extensions: list[Instance] = []
    seen: set[frozenset] = set()
    for vertex in sorted(instance.vertices, key=str):
        for edge in host.incident_edges(vertex):
            if edge in instance.edges:
                continue
            extended = instance.extended_with(edge)
            key = extended.edges
            if key in seen:
                continue
            seen.add(key)
            extensions.append(extended)
    return extensions


def expand_substructure(
    host: LabeledGraph,
    substructure: Substructure,
    engine: MatchEngine | None = None,
) -> list[Substructure]:
    """Expand every instance by one edge and re-group by pattern.

    Duplicate instances (identical edge sets reached from different parent
    instances) are merged before grouping.
    """
    extended: dict[tuple[frozenset, frozenset], Instance] = {}
    for instance in substructure.instances:
        for new_instance in expand_instance(host, instance):
            extended[(new_instance.vertices, new_instance.edges)] = new_instance
    if not extended:
        return []
    return group_instances_by_pattern(host, list(extended.values()), engine=engine)
