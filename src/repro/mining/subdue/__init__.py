"""Beam-search substructure discovery over a single labeled graph (SUBDUE).

Section 5.1 of the paper runs release 5.1 of the SUBDUE system on the
transportation graph.  SUBDUE discovers interesting, repetitive subgraphs
in a single labeled graph by beam search: starting from single-vertex
substructures, it repeatedly extends instances by one edge and evaluates
each candidate substructure with the Minimum Description Length (MDL)
principle, the Size principle, or the Set-Cover principle.  Replacing the
discovered substructure with a single vertex and repeating yields a
hierarchical description of the graph's regularities.

This package reimplements that algorithm so the paper's observations can
be reproduced: MDL rewards many small (often single-edge) patterns when
all vertices carry the same label, the Size principle surfaces larger
substructures, and runtime grows steeply with graph size.
"""

from repro.mining.subdue.substructure import Instance, Substructure
from repro.mining.subdue.evaluation import EvaluationPrinciple
from repro.mining.subdue.mdl import description_length, graph_size
from repro.mining.subdue.compression import compress_graph
from repro.mining.subdue.miner import SubdueMiner, SubdueResult

__all__ = [
    "Instance",
    "Substructure",
    "EvaluationPrinciple",
    "description_length",
    "graph_size",
    "compress_graph",
    "SubdueMiner",
    "SubdueResult",
]
