"""Graph compression by substructure replacement.

SUBDUE evaluates a substructure by how much the host graph shrinks when
every (non-overlapping) instance is collapsed into a single new vertex,
and its hierarchical mode repeats discovery on the compressed graph.  This
module implements that rewrite: instance vertices are removed, a fresh
vertex labeled with the substructure name takes their place, and edges
between an instance and the rest of the graph are re-attached to the new
vertex (edges internal to the instance disappear).
"""

from __future__ import annotations

from repro.graphs.labeled_graph import LabeledGraph, VertexId
from repro.mining.subdue.substructure import Instance, Substructure


def compress_graph(
    host: LabeledGraph,
    substructure: Substructure,
    replacement_label: str = "SUB",
) -> LabeledGraph:
    """Collapse every non-overlapping instance of *substructure* in *host*.

    Returns a new graph; the host is not modified.  Each instance becomes
    one vertex labeled *replacement_label*; boundary edges (between an
    instance vertex and an outside vertex, or between two different
    instances) are preserved and re-attached.
    """
    instances = substructure.non_overlapping()
    return compress_instances(host, instances, replacement_label)


def compress_instances(
    host: LabeledGraph,
    instances: list[Instance],
    replacement_label: str = "SUB",
) -> LabeledGraph:
    """Collapse an explicit list of vertex-disjoint instances."""
    owner: dict[VertexId, int] = {}
    for index, instance in enumerate(instances):
        for vertex in instance.vertices:
            if vertex in owner:
                raise ValueError("instances passed to compress_instances must be vertex-disjoint")
            owner[vertex] = index

    compressed = LabeledGraph(name=f"{host.name}-compressed")
    replacement_names = {index: f"{replacement_label}_{index}" for index in range(len(instances))}

    for vertex in host.vertices():
        if vertex in owner:
            continue
        compressed.add_vertex(vertex, host.vertex_label(vertex))
    for name in replacement_names.values():
        compressed.add_vertex(name, replacement_label)

    def resolve(vertex: VertexId) -> VertexId:
        if vertex in owner:
            return replacement_names[owner[vertex]]
        return vertex

    for edge in host.edges():
        source_owner = owner.get(edge.source)
        target_owner = owner.get(edge.target)
        if source_owner is not None and source_owner == target_owner:
            # Edge internal to an instance: absorbed by the replacement vertex.
            continue
        source = resolve(edge.source)
        target = resolve(edge.target)
        if source == target:
            continue
        compressed.add_edge(source, target, edge.label)
    return compressed


def compression_ratio(original: LabeledGraph, compressed: LabeledGraph) -> float:
    """Size-based compression ratio (``> 1`` means the rewrite shrank the graph)."""
    original_size = original.n_vertices + original.n_edges
    compressed_size = compressed.n_vertices + compressed.n_edges
    if compressed_size == 0:
        return float("inf")
    return original_size / compressed_size
