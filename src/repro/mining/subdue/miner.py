"""The SUBDUE beam-search driver.

:class:`SubdueMiner` reproduces the behaviour of SUBDUE 5.1 as used in
Section 5.1 of the paper:

* candidate substructures start as single vertices and grow one edge at a
  time (:mod:`repro.mining.subdue.expansion`);
* at each step only the ``beam_width`` best-valued candidates are kept;
* candidates are valued with the MDL or Size principle
  (:mod:`repro.mining.subdue.evaluation`); only substructures with at
  least ``min_instances`` non-overlapping instances are considered, since
  the paper's runs disallow overlap;
* the search stops after ``limit`` candidates have been evaluated or when
  no candidate can be expanded further, and the ``max_best`` best
  substructures are reported;
* :meth:`SubdueMiner.mine_hierarchical` repeats discovery on the
  compressed graph, producing the hierarchical description SUBDUE is known
  for.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.graphs.engine import MatchEngine
from repro.graphs.labeled_graph import LabeledGraph
from repro.mining.subdue.compression import compress_graph
from repro.mining.subdue.evaluation import EvaluationPrinciple, evaluate
from repro.mining.subdue.expansion import expand_substructure, initial_substructures
from repro.mining.subdue.substructure import Substructure


@dataclass
class SubdueResult:
    """Output of one SUBDUE run: the best substructures plus run metadata."""

    best: list[Substructure] = field(default_factory=list)
    evaluated: int = 0
    elapsed_seconds: float = 0.0
    principle: EvaluationPrinciple = EvaluationPrinciple.MDL

    def __len__(self) -> int:
        return len(self.best)

    def __iter__(self):
        return iter(self.best)

    def top(self) -> Substructure | None:
        """The single best substructure, or ``None`` if nothing was found."""
        return self.best[0] if self.best else None


@dataclass
class SubdueMiner:
    """Beam-search substructure discovery over a single labeled graph.

    Parameters mirror the SUBDUE command line options used in the paper:
    ``beam_width`` (beam size), ``max_best`` (number of substructures to
    report), ``max_substructure_edges`` (size limit), ``limit`` (number of
    candidate substructures considered before stopping), ``principle``
    (MDL or Size), and ``min_instances`` (minimum number of
    non-overlapping instances for a candidate to be worth reporting —
    a pattern seen once compresses nothing).
    """

    beam_width: int = 4
    max_best: int = 3
    max_substructure_edges: int | None = 6
    limit: int | None = 1_000
    principle: EvaluationPrinciple = EvaluationPrinciple.MDL
    min_instances: int = 2
    max_instances: int | None = 2_000
    engine: MatchEngine | None = None

    def mine(self, host: LabeledGraph) -> SubdueResult:
        """Discover the best substructures of *host*.

        The host is indexed once through the match engine (the miner's, or
        a private one) and every beam step — seeding, instance grouping,
        candidate evaluation — reuses that index instead of re-deriving
        label buckets and histograms per candidate.
        """
        start = time.perf_counter()
        engine = self.engine if self.engine is not None else MatchEngine()
        result = SubdueResult(principle=self.principle)
        frontier = initial_substructures(host, engine=engine)
        best: list[Substructure] = []
        evaluated = 0

        while frontier:
            expanded: list[Substructure] = []
            for parent in frontier:
                if (
                    self.max_substructure_edges is not None
                    and parent.pattern.n_edges >= self.max_substructure_edges
                ):
                    continue
                expanded.extend(expand_substructure(host, parent, engine=engine))
            if not expanded:
                break

            scored: list[Substructure] = []
            for candidate in expanded:
                if self.max_instances is not None and len(candidate.instances) > self.max_instances:
                    # Cap the instance list so expansion cost stays bounded on
                    # dense hubs (SUBDUE applies a similar instance limit).
                    candidate.instances = candidate.instances[: self.max_instances]
                if candidate.n_non_overlapping < self.min_instances:
                    continue
                candidate.value = evaluate(host, candidate, self.principle, engine=engine)
                evaluated += 1
                scored.append(candidate)
                if self.limit is not None and evaluated >= self.limit:
                    break

            best.extend(scored)
            best = self._keep_best(best, self.max_best)
            if self.limit is not None and evaluated >= self.limit:
                break
            frontier = self._keep_best(scored, self.beam_width)

        result.best = self._keep_best(best, self.max_best)
        result.evaluated = evaluated
        result.elapsed_seconds = time.perf_counter() - start
        return result

    def mine_hierarchical(self, host: LabeledGraph, passes: int = 3) -> list[SubdueResult]:
        """Iteratively discover and compress, producing a hierarchy of substructures.

        After each pass the best substructure's instances are collapsed
        into single vertices and discovery repeats on the compressed
        graph.  Passes stop early when no substructure is found or the
        graph no longer shrinks.
        """
        if passes < 1:
            raise ValueError("passes must be at least 1")
        results: list[SubdueResult] = []
        current = host
        for pass_index in range(passes):
            result = self.mine(current)
            results.append(result)
            top = result.top()
            if top is None or top.n_non_overlapping < self.min_instances:
                break
            compressed = compress_graph(current, top, replacement_label=f"SUB{pass_index}")
            if compressed.n_vertices + compressed.n_edges >= current.n_vertices + current.n_edges:
                break
            current = compressed
        return results

    @staticmethod
    def _keep_best(substructures: list[Substructure], count: int) -> list[Substructure]:
        """The *count* highest-valued substructures, deduplicated by pattern fingerprint.

        Value ties are broken by the fingerprint so the beam (and the
        reported best list) is identical whatever order candidates were
        discovered in — discovery order varies with the hash seed.
        """
        unique: dict[str, Substructure] = {}
        for substructure in substructures:
            key = substructure.invariant()
            existing = unique.get(key)
            if existing is None or substructure.value > existing.value:
                unique[key] = substructure
        ordered = sorted(unique.items(), key=lambda item: (-item[1].value, item[0]))
        return [substructure for _, substructure in ordered[:count]]
