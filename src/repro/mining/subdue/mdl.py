"""Description-length and size measures for SUBDUE's evaluation principles.

SUBDUE's Minimum Description Length principle values a substructure S by
how well it compresses the host graph G: the fewer bits needed to describe
S plus G rewritten with S's instances collapsed, the better.  The exact
bit-level encoding used by SUBDUE 5.1 (adjacency-row encodings with
binomial corrections) is not essential to reproduce the paper's
observations, so this module uses the standard simplified encoding:

* vertices cost ``log2(V)`` bits to state the count plus
  ``V * log2(distinct vertex labels)`` bits for their labels;
* edges cost, per edge, two vertex references (``2 * log2(V)`` bits) plus
  a label (``log2(distinct edge labels)`` bits), plus ``log2(E + 1)`` bits
  to state the count.

The *size* measure used by the Size principle is simply
``vertices + edges``.
"""

from __future__ import annotations

import math

from repro.graphs.labeled_graph import LabeledGraph


def _safe_log2(value: float) -> float:
    """log2 clamped so degenerate counts (0 or 1) contribute zero bits."""
    if value <= 1:
        return 0.0
    return math.log2(value)


def description_length(
    graph: LabeledGraph,
    n_vertex_labels: int | None = None,
    n_edge_labels: int | None = None,
) -> float:
    """Approximate number of bits needed to describe *graph*.

    ``n_vertex_labels`` / ``n_edge_labels`` give the alphabet sizes; when
    omitted they default to the number of distinct labels in the graph
    itself.  Passing the host graph's alphabet keeps substructure and
    compressed-graph encodings comparable.
    """
    n_vertices = graph.n_vertices
    n_edges = graph.n_edges
    if n_vertices == 0:
        return 0.0
    vertex_alphabet = n_vertex_labels if n_vertex_labels is not None else len(graph.vertex_label_counts())
    edge_alphabet = n_edge_labels if n_edge_labels is not None else len(graph.edge_label_counts())

    vertex_bits = _safe_log2(n_vertices) + n_vertices * _safe_log2(vertex_alphabet)
    per_edge_bits = 2.0 * _safe_log2(n_vertices) + _safe_log2(edge_alphabet)
    edge_bits = _safe_log2(n_edges + 1) + n_edges * per_edge_bits
    return vertex_bits + edge_bits


def graph_size(graph: LabeledGraph) -> int:
    """The Size-principle measure: vertices plus edges."""
    return graph.n_vertices + graph.n_edges
