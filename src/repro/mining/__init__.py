"""Mining algorithms used and evaluated by the paper.

Sub-packages and modules:

* :mod:`repro.mining.fsg` — Apriori-style frequent connected-subgraph
  mining over sets of graph transactions (the role FSG plays in
  Sections 5 and 6).
* :mod:`repro.mining.subdue` — beam-search substructure discovery over a
  single labeled graph with MDL / Size evaluation (the role SUBDUE plays
  in Section 5.1).
* :mod:`repro.mining.discretize`, :mod:`repro.mining.transactional` —
  Weka-style preprocessing of the flat transaction table (Section 7).
* :mod:`repro.mining.apriori`, :mod:`repro.mining.interestingness` —
  frequent itemsets, association rules, and rule-quality metrics
  (Section 7.1).
* :mod:`repro.mining.decision_tree` — a C4.5-style classifier standing in
  for Weka's J4.8 (Section 7.2).
* :mod:`repro.mining.em_clustering` — expectation-maximisation clustering
  of the numeric attributes (Section 7.3).
"""

from repro.mining.fsg import FSGMiner, FrequentSubgraph, MemoryBudgetExceeded, mine_frequent_subgraphs
from repro.mining.subdue import EvaluationPrinciple, SubdueMiner, Substructure
from repro.mining.apriori import AssociationRule, Apriori, FrequentItemset
from repro.mining.decision_tree import DecisionTreeClassifier
from repro.mining.em_clustering import EMClustering
from repro.mining.discretize import Discretizer
from repro.mining.transactional import dataset_to_feature_table, feature_table_to_item_transactions

__all__ = [
    "FSGMiner",
    "FrequentSubgraph",
    "MemoryBudgetExceeded",
    "mine_frequent_subgraphs",
    "EvaluationPrinciple",
    "SubdueMiner",
    "Substructure",
    "AssociationRule",
    "Apriori",
    "FrequentItemset",
    "DecisionTreeClassifier",
    "EMClustering",
    "Discretizer",
    "dataset_to_feature_table",
    "feature_table_to_item_transactions",
]
