"""Expectation-maximisation clustering (the Weka EM role, Section 7.3).

The paper clusters the undiscretised transaction table with Weka's EM
algorithm, obtaining nine clusters ranging from a three-instance outlier
cluster (air-freight shipments covering more than 3,000 miles in under a
day) to a 19,386-instance cluster, and characterises them by their mean
TOTAL_DISTANCE and TRANSIT_HOURS (Figures 5 and 6).

This module implements a diagonal-covariance Gaussian mixture fitted by
EM over the numeric attributes, with per-cluster summaries (size, mean and
standard deviation per attribute) matching what the paper reports, plus a
cross-validated log-likelihood helper for choosing the number of clusters
the way Weka's EM does when the count is not given.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class ClusterSummary:
    """Per-cluster statistics reported by the clustering experiments."""

    index: int
    size: int
    means: dict[str, float]
    std_devs: dict[str, float]

    def mean_of(self, attribute: str) -> float:
        """Mean of *attribute* within the cluster."""
        return self.means[attribute]


@dataclass
class EMClustering:
    """Diagonal-covariance Gaussian mixture fitted with EM.

    Parameters
    ----------
    n_clusters:
        Number of mixture components (the paper's run settled on nine).
    max_iterations, tolerance:
        EM stopping criteria (log-likelihood improvement below *tolerance*
        stops early).
    seed:
        Seed for the k-means++-style initialisation, making runs
        reproducible.
    min_variance:
        Variance floor preventing components from collapsing onto single
        points.
    """

    n_clusters: int = 9
    max_iterations: int = 200
    tolerance: float = 1e-4
    seed: int = 11
    min_variance: float = 1e-6

    attribute_names: list[str] = field(default_factory=list, init=False)
    means_: np.ndarray | None = field(default=None, init=False)
    variances_: np.ndarray | None = field(default=None, init=False)
    weights_: np.ndarray | None = field(default=None, init=False)
    log_likelihood_: float = field(default=float("-inf"), init=False)
    _scale_mean: np.ndarray | None = field(default=None, init=False)
    _scale_std: np.ndarray | None = field(default=None, init=False)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, matrix: Sequence[Sequence[float]], attribute_names: Sequence[str] | None = None) -> "EMClustering":
        """Fit the mixture to a numeric matrix (rows are transactions)."""
        data = np.asarray(matrix, dtype=float)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError("the input matrix must be a non-empty 2D array")
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be at least 1")
        if data.shape[0] < self.n_clusters:
            raise ValueError("cannot fit more clusters than data rows")
        n_rows, n_columns = data.shape
        self.attribute_names = (
            list(attribute_names) if attribute_names is not None else [f"x{i}" for i in range(n_columns)]
        )
        if len(self.attribute_names) != n_columns:
            raise ValueError("attribute_names length must match the number of columns")

        # Standardise columns so EM is not dominated by large-scale attributes.
        self._scale_mean = data.mean(axis=0)
        self._scale_std = data.std(axis=0)
        self._scale_std[self._scale_std == 0] = 1.0
        scaled = (data - self._scale_mean) / self._scale_std

        rng = np.random.default_rng(self.seed)
        means = self._initial_means(scaled, rng)
        variances = np.ones((self.n_clusters, n_columns))
        weights = np.full(self.n_clusters, 1.0 / self.n_clusters)

        previous_log_likelihood = -np.inf
        for _ in range(self.max_iterations):
            responsibilities, log_likelihood = self._e_step(scaled, means, variances, weights)
            means, variances, weights = self._m_step(scaled, responsibilities)
            if abs(log_likelihood - previous_log_likelihood) < self.tolerance:
                previous_log_likelihood = log_likelihood
                break
            previous_log_likelihood = log_likelihood

        self.means_ = means
        self.variances_ = variances
        self.weights_ = weights
        self.log_likelihood_ = float(previous_log_likelihood)
        return self

    def _initial_means(self, scaled: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Farthest-point initial means (deterministic given the first seed).

        Starting from a random row and repeatedly picking the row farthest
        from all chosen seeds spreads the components across the data and
        guarantees that extreme outliers — such as the handful of
        air-freight shipments the paper's EM run isolates into a
        three-instance cluster — receive their own component.
        """
        n_rows = scaled.shape[0]
        chosen = [int(rng.integers(n_rows))]
        while len(chosen) < self.n_clusters:
            current = scaled[chosen]
            distances = np.min(
                ((scaled[:, None, :] - current[None, :, :]) ** 2).sum(axis=2), axis=1
            )
            distances[chosen] = -1.0
            chosen.append(int(distances.argmax()))
        return scaled[chosen].copy()

    def _log_gaussian(self, scaled: np.ndarray, means: np.ndarray, variances: np.ndarray) -> np.ndarray:
        """Log density of every row under every component (rows x clusters)."""
        diff = scaled[:, None, :] - means[None, :, :]
        log_density = -0.5 * (
            np.log(2.0 * np.pi * variances[None, :, :]) + diff**2 / variances[None, :, :]
        )
        return log_density.sum(axis=2)

    def _e_step(
        self,
        scaled: np.ndarray,
        means: np.ndarray,
        variances: np.ndarray,
        weights: np.ndarray,
    ) -> tuple[np.ndarray, float]:
        log_prob = self._log_gaussian(scaled, means, variances) + np.log(weights[None, :])
        max_log = log_prob.max(axis=1, keepdims=True)
        log_norm = max_log + np.log(np.exp(log_prob - max_log).sum(axis=1, keepdims=True))
        responsibilities = np.exp(log_prob - log_norm)
        return responsibilities, float(log_norm.sum())

    def _m_step(self, scaled: np.ndarray, responsibilities: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        cluster_mass = responsibilities.sum(axis=0) + 1e-12
        means = (responsibilities.T @ scaled) / cluster_mass[:, None]
        diff = scaled[:, None, :] - means[None, :, :]
        variances = (responsibilities[:, :, None] * diff**2).sum(axis=0) / cluster_mass[:, None]
        variances = np.maximum(variances, self.min_variance)
        weights = cluster_mass / scaled.shape[0]
        return means, variances, weights

    # ------------------------------------------------------------------
    # Prediction and summaries
    # ------------------------------------------------------------------
    def _require_fit(self) -> None:
        if self.means_ is None:
            raise RuntimeError("the model must be fitted before use")

    def predict(self, matrix: Sequence[Sequence[float]]) -> list[int]:
        """Hard cluster assignment (most probable component) for each row."""
        self._require_fit()
        data = np.asarray(matrix, dtype=float)
        scaled = (data - self._scale_mean) / self._scale_std
        log_prob = self._log_gaussian(scaled, self.means_, self.variances_) + np.log(self.weights_[None, :])
        return [int(index) for index in log_prob.argmax(axis=1)]

    def log_likelihood(self, matrix: Sequence[Sequence[float]]) -> float:
        """Total log-likelihood of *matrix* under the fitted mixture."""
        self._require_fit()
        data = np.asarray(matrix, dtype=float)
        scaled = (data - self._scale_mean) / self._scale_std
        log_prob = self._log_gaussian(scaled, self.means_, self.variances_) + np.log(self.weights_[None, :])
        max_log = log_prob.max(axis=1, keepdims=True)
        log_norm = max_log + np.log(np.exp(log_prob - max_log).sum(axis=1, keepdims=True))
        return float(log_norm.sum())

    def cluster_summaries(self, matrix: Sequence[Sequence[float]]) -> list[ClusterSummary]:
        """Per-cluster sizes and attribute means/standard deviations.

        Summaries are computed from hard assignments of *matrix* (typically
        the training data), mirroring the statistics in Figures 5 and 6.
        Empty clusters are omitted.
        """
        self._require_fit()
        data = np.asarray(matrix, dtype=float)
        assignments = np.asarray(self.predict(matrix))
        summaries: list[ClusterSummary] = []
        for cluster in range(self.n_clusters):
            member_rows = data[assignments == cluster]
            if member_rows.shape[0] == 0:
                continue
            means = {
                name: float(member_rows[:, column].mean())
                for column, name in enumerate(self.attribute_names)
            }
            std_devs = {
                name: float(member_rows[:, column].std())
                for column, name in enumerate(self.attribute_names)
            }
            summaries.append(
                ClusterSummary(index=cluster, size=int(member_rows.shape[0]), means=means, std_devs=std_devs)
            )
        summaries.sort(key=lambda summary: summary.index)
        return summaries


def cross_validated_log_likelihood(
    matrix: Sequence[Sequence[float]],
    n_clusters: int,
    folds: int = 3,
    seed: int = 11,
) -> float:
    """Average held-out log-likelihood per row for a cluster count.

    Weka's EM chooses its cluster count by cross-validated log-likelihood;
    this helper lets callers reproduce that selection (the paper's run
    settled on nine clusters).
    """
    data = np.asarray(matrix, dtype=float)
    if data.shape[0] < folds * n_clusters:
        raise ValueError("not enough rows for the requested folds and clusters")
    rng = np.random.default_rng(seed)
    order = rng.permutation(data.shape[0])
    fold_slices = np.array_split(order, folds)
    total = 0.0
    count = 0
    for fold_index in range(folds):
        test_index = fold_slices[fold_index]
        train_index = np.concatenate([fold_slices[i] for i in range(folds) if i != fold_index])
        model = EMClustering(n_clusters=n_clusters, seed=seed)
        model.fit(data[train_index])
        total += model.log_likelihood(data[test_index])
        count += len(test_index)
    return total / count
