"""A C4.5-style decision tree classifier (the J4.8 role, Section 7.2).

The paper trains Weka's J4.8 (an implementation of C4.5) on the
discretised transaction table and reports 96% accuracy classifying
TRANS_MODE, with GROSS_WEIGHT chosen as the root split.  This module
implements the same family of classifier for categorical (discretised)
attributes: multiway splits chosen by gain ratio, with simple stopping
rules (minimum leaf size, maximum depth, or a pure node).

The implementation purposely works on plain feature dicts (the output of
:class:`repro.mining.discretize.Discretizer`) so the conventional-mining
pipeline mirrors the paper's Weka workflow.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Sequence

FeatureRow = Mapping[str, object]


@dataclass
class TreeNode:
    """One node of the decision tree."""

    attribute: str | None = None
    children: dict[object, "TreeNode"] = field(default_factory=dict)
    prediction: object = None
    samples: int = 0

    @property
    def is_leaf(self) -> bool:
        """Whether the node has no split."""
        return self.attribute is None

    def depth(self) -> int:
        """Depth of the subtree rooted at this node (a leaf has depth 1)."""
        if self.is_leaf:
            return 1
        return 1 + max(child.depth() for child in self.children.values())

    def n_leaves(self) -> int:
        """Number of leaves in the subtree."""
        if self.is_leaf:
            return 1
        return sum(child.n_leaves() for child in self.children.values())


def _entropy(labels: Sequence[object]) -> float:
    counts = Counter(labels)
    total = len(labels)
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy


def _split_information(groups: Mapping[object, list[int]], total: int) -> float:
    info = 0.0
    for indices in groups.values():
        fraction = len(indices) / total
        if fraction > 0:
            info -= fraction * math.log2(fraction)
    return info


@dataclass
class DecisionTreeClassifier:
    """Gain-ratio decision tree over categorical attributes.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 1); ``None`` means unbounded.
    min_samples_leaf:
        Minimum number of training rows required in a child for a split to
        be considered.
    min_gain:
        Minimum information gain for a split to be accepted.
    """

    max_depth: int | None = None
    min_samples_leaf: int = 2
    min_gain: float = 1e-6
    root: TreeNode | None = field(default=None, init=False)
    class_attribute: str = field(default="", init=False)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, table: Sequence[FeatureRow], class_attribute: str) -> "DecisionTreeClassifier":
        """Train on *table*, predicting *class_attribute* from the other columns."""
        if not table:
            raise ValueError("cannot train on an empty table")
        if class_attribute not in table[0]:
            raise KeyError(f"class attribute {class_attribute!r} not present in the table")
        self.class_attribute = class_attribute
        attributes = [attribute for attribute in table[0] if attribute != class_attribute]
        labels = [row[class_attribute] for row in table]
        self.root = self._build(table, labels, attributes, depth=1)
        return self

    def _majority(self, labels: Sequence[object]) -> object:
        counts = Counter(labels)
        # Deterministic tie-break by string representation.
        return max(sorted(counts, key=str), key=lambda label: counts[label])

    def _build(
        self,
        table: Sequence[FeatureRow],
        labels: Sequence[object],
        attributes: Sequence[str],
        depth: int,
    ) -> TreeNode:
        node = TreeNode(prediction=self._majority(labels), samples=len(labels))
        if len(set(labels)) == 1 or not attributes:
            return node
        if self.max_depth is not None and depth >= self.max_depth:
            return node

        best_attribute, best_groups, best_gain_ratio = self._best_split(table, labels, attributes)
        if best_attribute is None or best_gain_ratio <= self.min_gain:
            return node

        node.attribute = best_attribute
        remaining = [attribute for attribute in attributes if attribute != best_attribute]
        for value, indices in best_groups.items():
            child_table = [table[index] for index in indices]
            child_labels = [labels[index] for index in indices]
            node.children[value] = self._build(child_table, child_labels, remaining, depth + 1)
        return node

    def _best_split(
        self,
        table: Sequence[FeatureRow],
        labels: Sequence[object],
        attributes: Sequence[str],
    ) -> tuple[str | None, dict[object, list[int]], float]:
        base_entropy = _entropy(labels)
        total = len(labels)
        best_attribute: str | None = None
        best_groups: dict[object, list[int]] = {}
        best_gain_ratio = 0.0
        for attribute in attributes:
            groups: dict[object, list[int]] = {}
            for index, row in enumerate(table):
                groups.setdefault(row[attribute], []).append(index)
            if len(groups) < 2:
                continue
            if any(len(indices) < self.min_samples_leaf for indices in groups.values()):
                continue
            weighted_entropy = sum(
                len(indices) / total * _entropy([labels[i] for i in indices])
                for indices in groups.values()
            )
            gain = base_entropy - weighted_entropy
            split_info = _split_information(groups, total)
            if split_info <= 0:
                continue
            gain_ratio = gain / split_info
            if gain_ratio > best_gain_ratio:
                best_gain_ratio = gain_ratio
                best_attribute = attribute
                best_groups = groups
        return best_attribute, best_groups, best_gain_ratio

    # ------------------------------------------------------------------
    # Prediction / evaluation
    # ------------------------------------------------------------------
    def predict_row(self, row: FeatureRow) -> object:
        """Predict the class of one feature row."""
        if self.root is None:
            raise RuntimeError("classifier must be fitted before predicting")
        node = self.root
        while not node.is_leaf:
            value = row.get(node.attribute)
            child = node.children.get(value)
            if child is None:
                break
            node = child
        return node.prediction

    def predict(self, table: Sequence[FeatureRow]) -> list[object]:
        """Predict the class of every row in *table*."""
        return [self.predict_row(row) for row in table]

    def accuracy(self, table: Sequence[FeatureRow]) -> float:
        """Fraction of rows in *table* whose class is predicted correctly."""
        if not table:
            raise ValueError("cannot evaluate on an empty table")
        correct = sum(
            1 for row in table if self.predict_row(row) == row[self.class_attribute]
        )
        return correct / len(table)

    def root_attribute(self) -> str | None:
        """The attribute chosen at the root split (``None`` for a single-leaf tree)."""
        if self.root is None:
            raise RuntimeError("classifier must be fitted first")
        return self.root.attribute

    def attribute_depths(self) -> dict[str, int]:
        """The shallowest depth at which each attribute is used (root = 1).

        Shallower attributes are more informative for the class; the paper
        uses this to argue latitude attributes predict distance better
        than transit hours do.
        """
        if self.root is None:
            raise RuntimeError("classifier must be fitted first")
        depths: dict[str, int] = {}

        def walk(node: TreeNode, depth: int) -> None:
            if node.is_leaf:
                return
            if node.attribute not in depths or depth < depths[node.attribute]:
                depths[node.attribute] = depth
            for child in node.children.values():
                walk(child, depth + 1)

        walk(self.root, 1)
        return depths


def train_test_split(
    table: Sequence[FeatureRow],
    test_fraction: float = 0.33,
    seed: int = 7,
) -> tuple[list[FeatureRow], list[FeatureRow]]:
    """Random train/test split of a feature table (reproducible via *seed*)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rows = list(table)
    rng = random.Random(seed)
    rng.shuffle(rows)
    split_point = int(len(rows) * (1.0 - test_fraction))
    return rows[:split_point], rows[split_point:]
