"""Candidate generation for the level-wise frequent-subgraph miner.

FSG builds size-(k+1) candidates from size-k frequent subgraphs using
edges as the unit of growth.  The reimplementation generates candidates by
*extension*: every frequent k-edge pattern is extended by one edge in all
possible ways, where the new edge either connects an existing pattern
vertex to a brand-new vertex or closes a connection between two existing
vertices, and the (source label, edge label, target label) triple of the
new edge must itself be frequent.  Because every connected (k+1)-edge
pattern contains a connected k-edge subgraph obtained by removing a
non-bridging edge (or a spanning-tree leaf edge), extending all frequent
k-patterns enumerates every potentially frequent (k+1)-pattern; the
Apriori principle then guarantees completeness.

Candidates are deduplicated up to label-preserving isomorphism.  With a
:class:`~repro.graphs.engine.MatchEngine` the grouping key is the exact
:func:`~repro.graphs.canonical.canonical_code`; patterns too symmetric to
canonicalise (:class:`~repro.graphs.canonical.CanonicalizationError`)
fall back to the cheap :func:`~repro.graphs.canonical.graph_invariant`
fingerprint with an exact isomorphism check inside each fingerprint
bucket — the same scheme the engine-less path always uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

from repro.graphs.canonical import (
    CanonicalizationError,
    canonical_code,
    graph_invariant,
    refined_colours,
)
from repro.graphs.engine import MatchEngine
from repro.graphs.isomorphism import are_isomorphic
from repro.obs.tracer import get_tracer
from repro.graphs.labeled_graph import LabeledGraph

#: A frequent single edge described by its label triple.
EdgeTriple = tuple[Hashable, Hashable, Hashable]


def _triple_sort_key(triple: EdgeTriple) -> tuple[str, str, str]:
    """A hash-seed-independent ordering key for label triples.

    Labels are compared by their ``str()`` forms — the same assumption
    canonicalisation already makes — so iteration orders derived from
    triple *sets* are stable across ``PYTHONHASHSEED`` values and across
    runtime shards.
    """
    source_label, edge_label, target_label = triple
    return (str(source_label), str(edge_label), str(target_label))


def sorted_triples(triples: Iterable[EdgeTriple]) -> list[EdgeTriple]:
    """*triples* in the deterministic :func:`_triple_sort_key` order."""
    return sorted(triples, key=_triple_sort_key)


#: A one-edge extension descriptor in compact vertex positions:
#: ``(source_position, target_position, has_new_vertex)``.  Positions are
#: indices into the candidate pattern's vertex insertion order — which
#: :meth:`repro.graphs.compact.CompactGraph.from_labeled` preserves — and
#: a new vertex is always appended last, so the descriptor survives the
#: trip through compact/wire form unchanged.
Extension = tuple[int, int, bool]


@dataclass
class Candidate:
    """A candidate pattern together with the parent transactions to scan.

    ``parent_tids`` is the union of every merged parent's supporting set
    (the legacy scan restriction).  ``parent_bits`` is the *intersection*
    of the same sets as a bitset: a candidate embeds in a transaction only
    if every one of its parents does, so when isomorphic duplicates from
    several parents merge, the intersection is the tightest sound scan
    set — strictly smaller than any single parent's list whenever the
    parents disagree.  ``uid`` / ``parent_uid`` / ``extension`` tie the
    candidate to the engine's embedding store: the candidate is
    ``parent_uid``'s pattern plus the one ``extension`` edge, and its own
    anchors are filed under ``uid`` once it survives.  Candidates built
    without derivation info (legacy call sites, tests) leave them unset
    and simply take the full-search path.
    """

    pattern: LabeledGraph
    parent_tids: frozenset[int]
    invariant: str = field(default="")
    parent_bits: int | None = None
    parent_uid: object = None
    extension: Extension | None = None
    extension_labels: tuple[Hashable, Hashable | None] | None = None
    uid: object = None
    parent_pattern: LabeledGraph | None = None
    colours: dict | None = None
    code: object = None

    def fingerprint(self) -> str:
        """The pattern's cheap isomorphism-invariant key, computed lazily.

        The refined colouring behind the invariant is kept on the
        candidate so a later canonical-code comparison (same colouring,
        by construction) does not refine the pattern a second time.
        """
        if not self.invariant:
            self.colours = refined_colours(self.pattern)
            self.invariant = graph_invariant(self.pattern, colours=self.colours)
        return self.invariant


def single_edge_pattern(source_label: Hashable, edge_label: Hashable, target_label: Hashable) -> LabeledGraph:
    """The one-edge pattern graph for a label triple."""
    graph = LabeledGraph(name="edge-pattern")
    graph.add_vertex("p0", source_label)
    graph.add_vertex("p1", target_label)
    graph.add_edge("p0", "p1", edge_label)
    return graph


def edge_triples(transaction: LabeledGraph) -> set[EdgeTriple]:
    """The set of (source label, edge label, target label) triples in a graph."""
    return {
        (transaction.vertex_label(edge.source), edge.label, transaction.vertex_label(edge.target))
        for edge in transaction.edges()
    }


def frequent_single_edges(
    transactions: Sequence[LabeledGraph],
    min_support: int,
) -> dict[EdgeTriple, frozenset[int]]:
    """Label triples occurring in at least *min_support* transactions.

    Returns a mapping from triple to the supporting transaction ids
    (indices into *transactions*).  The mapping's order — which downstream
    consumers inherit for single-edge patterns and candidate extensions —
    is fixed by sorting each transaction's triple set, so discovery order
    no longer varies with ``PYTHONHASHSEED`` and cannot differ between
    runtime shards.
    """
    occurrences: dict[EdgeTriple, set[int]] = {}
    for tid, transaction in enumerate(transactions):
        for triple in sorted_triples(edge_triples(transaction)):
            occurrences.setdefault(triple, set()).add(tid)
    return {
        triple: frozenset(tids)
        for triple, tids in occurrences.items()
        if len(tids) >= min_support
    }


def _fresh_vertex_name(pattern: LabeledGraph) -> str:
    index = pattern.n_vertices
    while f"p{index}" in pattern:
        index += 1
    return f"p{index}"


def extend_pattern(
    pattern: LabeledGraph,
    frequent_triples: Iterable[EdgeTriple],
) -> list[tuple[LabeledGraph, Extension]]:
    """All one-edge extensions of *pattern* using frequent edge triples.

    Extensions are of two kinds: attach a new vertex to an existing vertex
    (forward extension) or add an edge between two existing vertices
    (backward extension).  Both directions are considered because the
    graphs are directed.  Each extended graph is returned together with
    its :data:`Extension` descriptor (the new edge in compact vertex
    positions), which is what lets the embedding store grow a parent
    embedding into the child instead of searching from scratch.  The
    returned list may contain isomorphic duplicates; the caller
    deduplicates.
    """
    extensions: list[tuple[LabeledGraph, Extension]] = []
    vertices = list(pattern.vertices())
    position_of = {vertex: position for position, vertex in enumerate(vertices)}
    new_position = len(vertices)
    for source_label, edge_label, target_label in frequent_triples:
        for vertex in vertices:
            vertex_label = pattern.vertex_label(vertex)
            # Forward extension: existing vertex -> new vertex.
            if vertex_label == source_label:
                extended = pattern.copy()
                new_vertex = _fresh_vertex_name(extended)
                extended.add_vertex(new_vertex, target_label)
                extended.add_edge(vertex, new_vertex, edge_label)
                extensions.append((extended, (position_of[vertex], new_position, True)))
            # Forward extension: new vertex -> existing vertex.
            if vertex_label == target_label:
                extended = pattern.copy()
                new_vertex = _fresh_vertex_name(extended)
                extended.add_vertex(new_vertex, source_label)
                extended.add_edge(new_vertex, vertex, edge_label)
                extensions.append((extended, (new_position, position_of[vertex], True)))
        # Backward extension: connect two existing vertices.
        for source in vertices:
            if pattern.vertex_label(source) != source_label:
                continue
            for target in vertices:
                if source == target or pattern.vertex_label(target) != target_label:
                    continue
                if pattern.has_edge(source, target):
                    continue
                extended = pattern.copy()
                extended.add_edge(source, target, edge_label)
                extensions.append(
                    (extended, (position_of[source], position_of[target], False))
                )
    return extensions


def extension_labels(
    pattern: LabeledGraph, extension: Extension
) -> tuple[Hashable, Hashable | None]:
    """The ``(edge label, new-vertex label or None)`` of an extension.

    Positions index the pattern's vertex insertion order (the same
    convention as :data:`Extension`).  Together with the parent pattern,
    these labels are all a mining-session shard needs to rebuild the
    candidate from its resident parent — the payload of the runtime's
    delta protocol.
    """
    source_position, target_position, has_new = extension
    vertices = list(pattern.vertices())
    edge_label = pattern.edge_label(
        vertices[source_position], vertices[target_position]
    )
    new_label = pattern.vertex_label(vertices[-1]) if has_new else None
    return (edge_label, new_label)


def deduplicate(
    candidates: Iterable[Candidate],
    engine: MatchEngine | None = None,
) -> list[Candidate]:
    """Merge isomorphic candidates, unioning their parent transaction sets.

    Candidates are grouped into invariant buckets in first-seen order (the
    emission order downstream consumers — and the paper examples' printed
    representatives — depend on, so both paths preserve it).  Within a
    bucket, equality of isomorphism classes is decided by the exact
    canonical code when *engine* is given: one memoized code computation
    per representative instead of a backtracking isomorphism search per
    pair.  Candidates whose canonicalisation overflows
    (:class:`CanonicalizationError`) fall back to the exact isomorphism
    check; isomorphic graphs have identical colour-class sizes, so a
    pattern either canonicalises for its whole isomorphism class or falls
    back for all of it — the two schemes never disagree.
    """
    buckets: dict[str, list[Candidate]] = {}
    for candidate in candidates:
        bucket = buckets.setdefault(candidate.fingerprint(), [])
        for existing in bucket:
            if _same_class(existing, candidate, engine):
                existing.parent_tids = existing.parent_tids | candidate.parent_tids
                # The candidate embeds nowhere its parent doesn't, for
                # *every* parent it merged from — so the bitset scan list
                # tightens to the intersection while the legacy frozenset
                # stays the historical union.
                if existing.parent_bits is not None and candidate.parent_bits is not None:
                    existing.parent_bits &= candidate.parent_bits
                break
        else:
            bucket.append(candidate)
    unique: list[Candidate] = []
    for bucket in buckets.values():
        unique.extend(bucket)
    return unique


#: Memoized marker for patterns whose canonicalisation overflowed.
_CANON_FAILED = object()


def _canonical_of(candidate: Candidate):
    """*candidate*'s memoized canonical code (or the failure marker).

    Reuses the refined colouring cached by :meth:`Candidate.fingerprint`,
    so deciding a candidate's isomorphism class costs one refinement
    total — and no engine index build for candidates that do not survive
    deduplication.
    """
    code = candidate.code
    if code is None:
        if candidate.colours is None:
            candidate.colours = refined_colours(candidate.pattern)
        try:
            code = canonical_code(candidate.pattern, colours=candidate.colours)
        except CanonicalizationError:
            get_tracer().metrics.counter("canonical_fallbacks", site="candidates")
            code = _CANON_FAILED
        candidate.code = code
    return code


def _same_class(first: Candidate, second: Candidate, engine: MatchEngine | None) -> bool:
    """Whether two candidates are isomorphic, via canonical codes when possible."""
    if engine is not None:
        code_a = _canonical_of(first)
        code_b = _canonical_of(second)
        if code_a is _CANON_FAILED or code_b is _CANON_FAILED:
            return engine.are_isomorphic(first.pattern, second.pattern)
        return code_a == code_b
    return are_isomorphic(first.pattern, second.pattern)


def generate_candidates(
    frequent_patterns: Sequence[Candidate],
    frequent_triples: Iterable[EdgeTriple],
    engine: MatchEngine | None = None,
) -> list[Candidate]:
    """Generate deduplicated (k+1)-edge candidates from frequent k-edge patterns.

    Each candidate records its derivation — the parent's embedding-store
    uid, the extension edge, and the parent's TID bitset — so the support
    pass can extend stored parent embeddings instead of searching from
    scratch.  A deduplicated candidate keeps its first-seen derivation
    (the one consistent with its own vertex layout) while its scan bitset
    narrows to the intersection over all merged parents.
    """
    triples = list(frequent_triples)
    raw: list[Candidate] = []
    for parent in frequent_patterns:
        for extended, extension in extend_pattern(parent.pattern, triples):
            raw.append(
                Candidate(
                    pattern=extended,
                    parent_tids=parent.parent_tids,
                    parent_bits=parent.parent_bits,
                    parent_uid=parent.uid,
                    extension=extension,
                    extension_labels=extension_labels(extended, extension),
                    parent_pattern=parent.pattern,
                )
            )
    unique = deduplicate(raw, engine=engine)
    if engine is not None:
        # Derive each survivor's compact form from its parent's (one new
        # edge) and file it with the engine: the support pass then skips
        # the full from_labeled rebuild per evaluated candidate.
        for candidate in unique:
            extension = candidate.extension
            if extension is None or candidate.parent_pattern is None:
                continue
            source_pos, target_pos, _has_new = extension
            edge_label, new_vertex_label = candidate.extension_labels
            parent_compact = engine.compact_of(candidate.parent_pattern)
            engine.adopt_compact(
                candidate.pattern,
                parent_compact.extended(
                    source_pos, target_pos, edge_label, new_vertex_label,
                    candidate.pattern,
                ),
            )
    return unique
