"""The level-wise frequent connected-subgraph miner (FSG driver).

:class:`FSGMiner` mines all connected subgraphs occurring in at least
``min_support`` graph transactions, level by level on the edge count:

1. find frequent single edges (label triples);
2. repeatedly extend frequent k-edge patterns by one edge, deduplicate the
   candidates up to isomorphism, count support using TID lists, and keep
   the frequent ones;
3. stop when no new frequent pattern appears, the maximum pattern size is
   reached, or the candidate memory budget is exceeded.

The memory budget reproduces the paper's Section 6.1 observation that FSG
runs out of memory on large temporal graph transactions with many distinct
vertex labels; see :class:`~repro.mining.fsg.exceptions.MemoryBudgetExceeded`.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.graphs.canonical import CanonicalizationError
from repro.graphs.engine import MatchEngine
from repro.graphs.labeled_graph import LabeledGraph
from repro.mining.fsg.candidates import (
    Candidate,
    frequent_single_edges,
    generate_candidates,
    single_edge_pattern,
)
from repro.mining.fsg.exceptions import MemoryBudgetExceeded
from repro.mining.fsg.results import FSGResult, FrequentSubgraph
from repro.obs.tracer import get_tracer
from repro.runtime.base import (
    LevelRequest,
    MiningRuntime,
    MiningSession,
    SerialRuntime,
    zero_telemetry,
)
from repro.runtime.bitsets import (
    bits_of,
    is_contiguous,
    popcount,
    shift_bits,
    tids_of,
    translate_bits,
)

#: Distinguishes embedding-store uids across mining runs sharing one
#: runtime (e.g. the repeated-partitioning structural miner): a uid is
#: ``(run token, counter)``, so anchors from different runs can never
#: collide even if a run forgets to retire them.
_RUN_TOKENS = itertools.count()


def _resolve_min_support(min_support: float | int, n_transactions: int) -> int:
    """Turn a fractional or absolute support threshold into an absolute count."""
    if n_transactions <= 0:
        raise ValueError("cannot mine an empty transaction set")
    if isinstance(min_support, float) and 0.0 < min_support <= 1.0:
        return max(1, int(round(min_support * n_transactions)))
    absolute = int(min_support)
    if absolute < 1:
        raise ValueError("min_support must be at least 1 transaction (or a fraction in (0, 1])")
    return absolute


@dataclass
class FSGMiner:
    """Frequent connected-subgraph miner over a set of graph transactions.

    Parameters
    ----------
    min_support:
        Either an absolute transaction count (``int``) or a fraction of the
        transaction set (``float`` in ``(0, 1]``), as in the paper's 5%
        support experiments.
    max_edges:
        Largest pattern size (in edges) to mine; ``None`` means unbounded.
    memory_budget:
        Maximum number of candidate patterns allowed at a single level;
        ``None`` disables the budget.  Exceeding it raises
        :class:`MemoryBudgetExceeded` unless ``abort_on_budget`` is false,
        in which case mining stops early and the result is flagged.
    abort_on_budget:
        Whether exceeding the memory budget raises (default) or merely
        truncates the result.
    min_pattern_edges:
        Smallest pattern size to report.  The paper reports single-edge
        patterns too, so the default is 1.
    engine:
        The :class:`~repro.graphs.engine.MatchEngine` used for candidate
        deduplication (canonical codes) and, under the default serial
        runtime, for support counting.  ``None`` (the default) creates a
        private engine per :meth:`mine` call; passing a shared engine lets
        repeated runs (e.g. the repeated-partitioning structural miner)
        reuse one label table and verdict cache across mining rounds.
    runtime:
        The :class:`~repro.runtime.base.MiningRuntime` that owns the
        transactions and answers per-level batched support queries.
        ``None`` (the default) wraps *engine* in a
        :class:`~repro.runtime.base.SerialRuntime`, which preserves the
        single-engine behaviour exactly; pass a
        :class:`~repro.runtime.shards.ShardedEngine` to spread support
        counting across worker shards.  The miner never closes a
        caller-supplied runtime.
    use_embedding_store:
        Route support counting through the runtime's incremental
        embedding-store path (default): candidates carry their parents'
        intersected TID bitsets plus the one extension edge, and each
        ``(pattern, tid)`` query extends a stored parent embedding
        instead of searching from scratch, with full search as the
        correctness fallback.  Mining output is identical either way —
        ``False`` keeps the pattern-major full-search path for baselines
        and differential tests.
    """

    min_support: float | int = 0.05
    max_edges: int | None = None
    memory_budget: int | None = None
    abort_on_budget: bool = True
    min_pattern_edges: int = 1
    engine: MatchEngine | None = None
    runtime: MiningRuntime | None = None
    use_embedding_store: bool = True
    #: Match-kernel backend for the engine this miner creates when
    #: ``engine`` is ``None`` — ``"python"``, ``"vectorized"``, or
    #: ``None`` to consult ``REPRO_KERNEL``.  Ignored when a caller
    #: supplies its own engine or runtime (those already chose).
    kernel: str | None = None
    #: Tracer receiving this run's spans and metrics; ``None`` (default)
    #: uses the process-global active tracer — the no-op singleton unless
    #: tracing was turned on (``--trace`` / ``REPRO_TRACE``), so the
    #: untraced path costs nothing.  See :mod:`repro.obs`.
    tracer: object | None = None

    def mine(self, transactions: Sequence[LabeledGraph]) -> FSGResult:
        """Mine all frequent connected subgraphs from *transactions*."""
        n_transactions = len(transactions)
        support_threshold = _resolve_min_support(self.min_support, n_transactions)
        engine = self.engine if self.engine is not None else MatchEngine(kernel=self.kernel)
        runtime = self.runtime if self.runtime is not None else SerialRuntime(engine=engine)
        tracer = self.tracer if self.tracer is not None else get_tracer()
        # The parent engine's counter delta across this run covers
        # canonicalisation/dedup work always, and — under the serial
        # runtime, where runtime and parent engine coincide — the whole
        # match workload; shard engines ship their own deltas piggybacked
        # on replies (see ShardWorker).
        stats_before = engine.stats_snapshot() if tracer.enabled else None
        mine_span = tracer.span(
            "fsg.mine", n_transactions=n_transactions, min_support=support_threshold
        )
        try:
            runtime_tids = runtime.add_transactions(transactions)
            try:
                result = self._mine_levels(
                    transactions,
                    support_threshold,
                    engine,
                    runtime,
                    runtime_tids,
                    n_transactions,
                    tracer,
                )
            finally:
                # A shared runtime keeps serving after this run; drop this run's
                # transaction references so it does not retain every graph ever
                # mined (fresh tids per run make cross-run verdict reuse moot).
                runtime.release_transactions(runtime_tids)
            mine_span.set(levels=result.levels_completed, patterns=len(result.patterns))
        finally:
            mine_span.finish()
        if stats_before is not None:
            after = engine.stats_snapshot()
            tracer.metrics.absorb(
                {key: after[key] - stats_before.get(key, 0) for key in after},
                worker="main",
            )
        return result

    def _mine_levels(
        self,
        transactions: Sequence[LabeledGraph],
        support_threshold: int,
        engine: MatchEngine,
        runtime: MiningRuntime,
        runtime_tids: Sequence[int],
        n_transactions: int,
        tracer,
    ) -> FSGResult:
        result = FSGResult(
            n_transactions=n_transactions,
            min_support=support_threshold,
        )
        use_store = self.use_embedding_store
        to_global, to_local = _bitset_translators(list(runtime_tids))
        uids = (
            zip(itertools.repeat(next(_RUN_TOKENS)), itertools.count())
            if use_store
            else None
        )
        live_uids: list[object] = []
        # One mining session spans every level of this run: the runtime
        # may keep shard-resident candidate state alive between levels
        # (delta-shipped patterns, deferred evictions) — see
        # :meth:`MiningRuntime.open_session`.  The sessionless full-search
        # path never needs one.
        session: MiningSession | None = runtime.open_session() if use_store else None

        level_started = time.perf_counter()
        # Levels straddle control flow a ``with`` block cannot (the prime
        # call below lives inside the try), so level spans use the
        # explicit finish() form.
        level_span = tracer.span("fsg.level", level=1)
        triples_with_tids = frequent_single_edges(transactions, support_threshold)
        frequent_triples = list(triples_with_tids)
        level_patterns: list[tuple[Candidate, frozenset[int]]] = []
        for triple, tids in triples_with_tids.items():
            candidate = Candidate(
                pattern=single_edge_pattern(*triple),
                parent_tids=tids,
            )
            if use_store:
                candidate.uid = next(uids)
                candidate.parent_bits = bits_of(tids)
            level_patterns.append((candidate, tids))
        result.candidates_generated += len(level_patterns)
        self._record_level(result, level_patterns, level=1)
        result.levels_completed = 1

        try:
            if use_store and level_patterns:
                # Prime the embedding store: seed each frequent single
                # edge's anchors across its (already exact) support, so
                # level-2 candidates extend instead of searching.
                live_uids = [candidate.uid for candidate, _ in level_patterns]
                session.support_level(
                    self._level_requests(
                        [candidate for candidate, _ in level_patterns],
                        engine,
                        to_global,
                        wants_keys=getattr(session, "wants_keys", True),
                    )
                )
            result.level_seconds[1] = time.perf_counter() - level_started
            self._level_done(result, tracer, session, level=1)
            level_span.finish(survivors=len(level_patterns))

            level = 1
            while level_patterns:
                if self.max_edges is not None and level >= self.max_edges:
                    break
                level_started = time.perf_counter()
                level_span = tracer.span("fsg.level", level=level + 1)
                parents = [
                    Candidate(
                        pattern=candidate.pattern,
                        parent_tids=tids,
                        invariant=candidate.invariant,
                        parent_bits=bits_of(tids) if use_store else None,
                        uid=candidate.uid,
                    )
                    for candidate, tids in level_patterns
                ]
                candidates_span = tracer.span("fsg.candidates", level=level + 1)
                candidates = generate_candidates(parents, frequent_triples, engine=engine)
                candidates_span.finish(candidates=len(candidates))
                result.candidates_generated += len(candidates)
                if self.memory_budget is not None and len(candidates) > self.memory_budget:
                    if self.abort_on_budget:
                        level_span.finish(aborted=True)
                        raise MemoryBudgetExceeded(level + 1, len(candidates), self.memory_budget)
                    result.aborted = True
                    result.abort_reason = (
                        f"candidate set at level {level + 1} ({len(candidates)} patterns) "
                        f"exceeded the memory budget of {self.memory_budget}"
                    )
                    level_span.finish(aborted=True)
                    break
                support_span = tracer.span(
                    "fsg.support", level=level + 1, candidates=len(candidates)
                )
                if use_store:
                    for candidate in candidates:
                        candidate.uid = next(uids)
                    level_patterns = self._prune_level_incremental(
                        candidates, support_threshold, engine, session, to_global, to_local
                    )
                    # The parent level's anchors (and session-store
                    # patterns) have served their one consumer level, and
                    # failed candidates' will never have one — retire
                    # both, keep the survivors'.
                    surviving_uids = {candidate.uid for candidate, _ in level_patterns}
                    retired = live_uids + [
                        candidate.uid
                        for candidate in candidates
                        if candidate.uid not in surviving_uids
                    ]
                    session.evict(retired)
                    live_uids = sorted(surviving_uids)
                else:
                    level_patterns = self._prune_level(
                        candidates, support_threshold, engine, runtime, runtime_tids,
                        result=result, level=level + 1,
                    )
                support_span.finish(survivors=len(level_patterns))
                level += 1
                result.level_seconds[level] = time.perf_counter() - level_started
                self._level_done(result, tracer, session, level=level)
                level_span.finish(survivors=len(level_patterns))
                if level_patterns:
                    self._record_level(result, level_patterns, level=level)
                    result.levels_completed = level
        finally:
            if session is not None:
                if live_uids:
                    session.evict(live_uids)
                session.close()
        return result

    def _prune_level(
        self,
        candidates: Sequence[Candidate],
        support_threshold: int,
        engine: MatchEngine,
        runtime: MiningRuntime,
        runtime_tids: Sequence[int],
        result: FSGResult | None = None,
        level: int | None = None,
    ) -> list[tuple[Candidate, frozenset[int]]]:
        """Evaluate a whole level's candidates through the runtime.

        Candidate parent TID lists are local indices into this run's
        transaction sequence; they are translated to the runtime's global
        tid space for the batched query and the resulting support sets are
        translated back, so callers only ever see local ids.  Candidate
        canonical codes — memoized by deduplication an instant ago — ride
        along as verdict-cache keys so shards never recanonicalise.

        When *result*/*level* are given, a session-telemetry record
        (wire bytes, planning seconds, patterns shipped) is filed for the
        level, measured with the same rulers as the embedding-store path
        — so ``use_embedding_store=False`` A/B runs report through the
        very telemetry they are compared against.
        """
        planning_started = time.perf_counter()
        local_of = {global_tid: local for local, global_tid in enumerate(runtime_tids)}
        # A candidate's support is bounded by its parent TID list, so a
        # list already below threshold can never survive — don't even ship
        # those candidates to the runtime.
        viable = [
            candidate
            for candidate in candidates
            if len(candidate.parent_tids) >= support_threshold
        ]
        tid_lists = [
            [runtime_tids[local] for local in sorted(candidate.parent_tids)]
            for candidate in viable
        ]
        pattern_keys: list[object] = []
        for candidate in viable:
            try:
                pattern_keys.append(engine.canonical_code(candidate.pattern))
            except CanonicalizationError:
                get_tracer().metrics.counter("canonical_fallbacks", site="miner")
                pattern_keys.append(False)
        planning_seconds = time.perf_counter() - planning_started
        wire_before = getattr(runtime, "wire_bytes_shipped", 0)
        recovery = getattr(runtime, "recovery", None)
        recovery_before = dict(recovery) if recovery is not None else None
        supports = runtime.batch_support(
            [candidate.pattern for candidate in viable], tid_lists, pattern_keys
        )
        if result is not None and level is not None:
            counters = zero_telemetry()
            counters["planning_seconds"] = planning_seconds
            counters["wire_bytes"] = (
                getattr(runtime, "wire_bytes_shipped", 0) - wire_before
            )
            if recovery_before is not None:
                # Supervised runtimes respawn dead workers and replay the
                # level; file what this level cost in recoveries.
                for key in ("worker_restarts", "level_replays"):
                    counters[key] = recovery[key] - recovery_before[key]
            # The batch protocol always ships whole patterns; one count
            # per shipped candidate (a sharded runtime posts each only to
            # the shards its tid list touches, but the per-(request,
            # shard) breakdown is not visible parent-side here).
            counters["patterns_full"] = len(viable)
            scan_units = getattr(runtime, "last_level_scan_units", None)
            if scan_units:
                counters["shard_scan_max"] = max(scan_units)
                counters["shard_scan_min"] = min(scan_units)
            result.level_telemetry[level] = counters
            drain = getattr(runtime, "drain_worker_spans", None)
            if drain is not None:
                drain(level=level)
        surviving: list[tuple[Candidate, frozenset[int]]] = []
        for candidate, supported in zip(viable, supports):
            if len(supported) >= support_threshold:
                tids = frozenset(local_of[global_tid] for global_tid in supported)
                surviving.append((candidate, tids))
        return surviving

    def _level_done(
        self,
        result: FSGResult,
        tracer,
        session: MiningSession | None,
        level: int,
    ) -> None:
        """Per-level telemetry bookkeeping shared by both support paths.

        Files the level's session telemetry on the result (the sessionless
        batch path filed its own in :meth:`_prune_level`; level 1 without
        a session never touches the runtime, so it gets explicit zeros to
        keep the per-level key set identical across paths) and mirrors
        the counters into the tracer's metrics registry labeled by level.
        """
        if session is not None:
            result.level_telemetry[level] = session.take_telemetry()
        elif level not in result.level_telemetry:
            result.level_telemetry[level] = zero_telemetry()
        if tracer.enabled:
            tracer.metrics.absorb(result.level_telemetry[level], level=str(level))
            tracer.metrics.gauge(
                "fsg.level_seconds", result.level_seconds[level], level=str(level)
            )

    def _level_requests(
        self,
        candidates: Sequence[Candidate],
        engine: MatchEngine,
        to_global: Callable[[int], int],
        wants_keys: bool = True,
    ) -> list[LevelRequest]:
        """Wrap *candidates* for the runtime's incremental level API.

        Verdict-cache keys are attached only when the session asked for
        them (:attr:`MiningSession.wants_keys`): canonicalising every
        candidate is this loop's dominant cost, and sessions whose
        kernel never probes the verdict LRU mark the keys unwanted.
        ``key=False`` (uncacheable) is the always-correct substitute.
        """
        requests: list[LevelRequest] = []
        for candidate in candidates:
            if not wants_keys:
                key: object = False
            else:
                try:
                    key = engine.canonical_code(candidate.pattern)
                except CanonicalizationError:
                    get_tracer().metrics.counter("canonical_fallbacks", site="miner")
                    key = False
            requests.append(
                LevelRequest(
                    pattern=candidate.pattern,
                    tid_bits=to_global(candidate.parent_bits),
                    key=key,
                    uid=candidate.uid,
                    parent_uid=candidate.parent_uid,
                    extension=candidate.extension,
                    extension_labels=candidate.extension_labels,
                )
            )
        return requests

    def _prune_level_incremental(
        self,
        candidates: Sequence[Candidate],
        support_threshold: int,
        engine: MatchEngine,
        session: MiningSession,
        to_global: Callable[[int], int],
        to_local: Callable[[int], int],
    ) -> list[tuple[Candidate, frozenset[int]]]:
        """Evaluate a level through the mining session, all-bitset.

        A candidate's support is bounded by the *intersection* of its
        merged parents' TID sets, so candidates whose intersection is
        already below threshold never even reach the runtime; the rest
        ship their derivation (parent uid + extension edge) so shards
        extend stored parent embeddings — and, under a stateful session,
        rebuild the candidate pattern itself from the resident parent —
        with ``min_support`` arming the per-pattern early abort.  Aborted
        candidates return partial bitsets of population below threshold
        and are dropped here, so survivors — the only thing the next
        level and the result see — are exact whatever the runtime did.
        """
        viable = [
            candidate
            for candidate in candidates
            if popcount(candidate.parent_bits) >= support_threshold
        ]
        supports = session.support_level(
            self._level_requests(
                viable,
                engine,
                to_global,
                wants_keys=getattr(session, "wants_keys", True),
            ),
            min_support=support_threshold,
        )
        surviving: list[tuple[Candidate, frozenset[int]]] = []
        for candidate, global_bits in zip(viable, supports):
            if popcount(global_bits) >= support_threshold:
                surviving.append(
                    (candidate, frozenset(tids_of(to_local(global_bits))))
                )
        return surviving

    def _record_level(
        self,
        result: FSGResult,
        level_patterns: Sequence[tuple[Candidate, frozenset[int]]],
        level: int,
    ) -> None:
        if level < self.min_pattern_edges:
            return
        for candidate, tids in level_patterns:
            result.patterns.append(
                FrequentSubgraph(
                    pattern=candidate.pattern,
                    support=len(tids),
                    supporting_transactions=tids,
                )
            )


def _bitset_translators(runtime_tids: list[int]):
    """(local->global, global->local) bitset translators for one run.

    Runtimes allocate a run's global tids consecutively, so translation
    is normally a single shift; the per-bit remap is kept as a fallback
    for any runtime that ever hands out a gappy allocation.
    """
    if is_contiguous(runtime_tids):
        base = runtime_tids[0] if runtime_tids else 0
        return (
            lambda bits: shift_bits(bits, base),
            lambda bits: shift_bits(bits, -base),
        )
    global_of = runtime_tids
    local_of = {global_tid: local for local, global_tid in enumerate(runtime_tids)}
    return (
        lambda bits: translate_bits(bits, global_of),
        lambda bits: translate_bits(bits, local_of),
    )


def mine_frequent_subgraphs(
    transactions: Sequence[LabeledGraph],
    min_support: float | int = 0.05,
    max_edges: int | None = None,
    memory_budget: int | None = None,
    min_pattern_edges: int = 1,
) -> FSGResult:
    """Convenience wrapper around :class:`FSGMiner`."""
    miner = FSGMiner(
        min_support=min_support,
        max_edges=max_edges,
        memory_budget=memory_budget,
        min_pattern_edges=min_pattern_edges,
    )
    return miner.mine(transactions)


def timed_mine(
    transactions: Sequence[LabeledGraph],
    min_support: float | int = 0.05,
    max_edges: int | None = None,
) -> tuple[FSGResult, float]:
    """Mine and return (result, elapsed seconds); used by the scaling benchmarks."""
    start = time.perf_counter()
    result = mine_frequent_subgraphs(transactions, min_support=min_support, max_edges=max_edges)
    elapsed = time.perf_counter() - start
    return result, elapsed
