"""Exceptions raised by the frequent-subgraph miner."""

from __future__ import annotations


class MemoryBudgetExceeded(RuntimeError):
    """Raised when candidate generation exceeds the configured memory budget.

    The paper could not run FSG on the large temporal graph transactions
    because the candidate sets exhausted memory and swap (Section 6.1 and
    Section 8).  The reimplementation models that limit explicitly: the
    miner tracks how many candidate patterns are alive at each level and
    raises this exception when the configured budget is exceeded, allowing
    the failure mode to be reproduced and tested deterministically instead
    of actually exhausting the machine.
    """

    def __init__(self, level: int, candidates: int, budget: int) -> None:
        self.level = level
        self.candidates = candidates
        self.budget = budget
        super().__init__(
            f"candidate set at level {level} has {candidates} patterns, "
            f"exceeding the memory budget of {budget}"
        )
