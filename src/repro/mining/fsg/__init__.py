"""Apriori-style frequent connected-subgraph mining (the FSG role).

The paper uses Kuramochi & Karypis's FSG executable to mine frequent
connected subgraphs from sets of graph transactions produced by the
structural (Section 5) and temporal (Section 6) partitionings.  This
package reimplements the same contract: given labeled graph transactions
and a minimum support, find every connected subgraph (with matching vertex
and edge labels) occurring in at least that many transactions.

The miner is level-wise on the number of edges, mirroring FSG's use of
edges as building blocks, and exposes an explicit *candidate memory
budget* so the out-of-memory failures the paper reports on large graph
transactions (Section 6.1) can be reproduced deterministically.
"""

from repro.mining.fsg.exceptions import MemoryBudgetExceeded
from repro.mining.fsg.results import FSGResult, FrequentSubgraph
from repro.mining.fsg.miner import FSGMiner, mine_frequent_subgraphs

__all__ = [
    "MemoryBudgetExceeded",
    "FSGResult",
    "FrequentSubgraph",
    "FSGMiner",
    "mine_frequent_subgraphs",
]
