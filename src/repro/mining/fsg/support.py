"""Support counting for candidate subgraph patterns.

A pattern's support is the number of graph transactions containing at
least one embedding of the pattern (label-preserving subgraph isomorphism,
Section 4 of the paper).  Counting uses transaction-id (TID) lists: a
candidate produced by extending a parent pattern can only occur in
transactions that supported the parent, so only those are scanned.  This
is the standard Apriori optimisation and keeps the isomorphism workload
proportional to the surviving candidates.
"""

from __future__ import annotations

from typing import Sequence

from repro.graphs.isomorphism import has_embedding
from repro.graphs.labeled_graph import LabeledGraph
from repro.mining.fsg.candidates import Candidate


def supporting_transactions(
    candidate: Candidate,
    transactions: Sequence[LabeledGraph],
    restrict_to_parent_tids: bool = True,
) -> frozenset[int]:
    """The ids of transactions containing the candidate pattern."""
    if restrict_to_parent_tids:
        tids_to_scan = sorted(candidate.parent_tids)
    else:
        tids_to_scan = range(len(transactions))
    supported = {
        tid
        for tid in tids_to_scan
        if has_embedding(candidate.pattern, transactions[tid])
    }
    return frozenset(supported)


def count_support(
    candidate: Candidate,
    transactions: Sequence[LabeledGraph],
    restrict_to_parent_tids: bool = True,
) -> int:
    """Number of transactions containing the candidate pattern."""
    return len(supporting_transactions(candidate, transactions, restrict_to_parent_tids))


def prune_infrequent(
    candidates: Sequence[Candidate],
    transactions: Sequence[LabeledGraph],
    min_support: int,
) -> list[tuple[Candidate, frozenset[int]]]:
    """Keep candidates whose support meets the threshold.

    Returns (candidate, supporting transaction ids) pairs; the TID set
    becomes the parent TID list for the next level's candidates.
    """
    surviving: list[tuple[Candidate, frozenset[int]]] = []
    for candidate in candidates:
        tids = supporting_transactions(candidate, transactions)
        if len(tids) >= min_support:
            surviving.append((candidate, tids))
    return surviving
