"""Support counting for candidate subgraph patterns.

A pattern's support is the number of graph transactions containing at
least one embedding of the pattern (label-preserving subgraph isomorphism,
Section 4 of the paper).  Counting uses transaction-id (TID) lists: a
candidate produced by extending a parent pattern can only occur in
transactions that supported the parent, so only those are scanned.  This
is the standard Apriori optimisation and keeps the isomorphism workload
proportional to the surviving candidates.

When a :class:`~repro.graphs.engine.MatchEngine` holding the indexed
transactions is supplied, the isomorphism checks run through it: the
per-transaction candidate indexes are reused across every candidate at
every level, invariant mismatches are rejected before any search, and
repeat (pattern, transaction) verdicts come from the engine's LRU.
Without an engine the original per-call path is used.
"""

from __future__ import annotations

from typing import Sequence

from repro.graphs.engine import MatchEngine
from repro.graphs.isomorphism import has_embedding
from repro.graphs.labeled_graph import LabeledGraph
from repro.mining.fsg.candidates import Candidate


def supporting_transactions(
    candidate: Candidate,
    transactions: Sequence[LabeledGraph],
    restrict_to_parent_tids: bool = True,
    engine: MatchEngine | None = None,
    tid_offset: int = 0,
    min_support: int | None = None,
) -> frozenset[int]:
    """The ids of transactions containing the candidate pattern.

    With *engine*, ``transactions[i]`` must be the engine's registered
    transaction ``tid_offset + i`` (a shared engine keeps registering
    across mining rounds, so local indices are offset into its global tid
    space) and matching goes through the engine's indexed, cached path.
    The returned ids are always local indices into *transactions*.

    *min_support* arms the early-abort bound: the scan of a candidate
    stops as soon as even a hit on every unscanned transaction could not
    lift its support to the threshold.  The partial result is then always
    below *min_support*, so thresholding callers (``prune_infrequent``,
    the miner) are unaffected — doomed candidates just stop burning
    matcher time on their hopeless tails.
    """
    if restrict_to_parent_tids:
        tids_to_scan = sorted(candidate.parent_tids)
    else:
        tids_to_scan = range(len(transactions))
    if engine is not None:
        supported_global = engine.support(
            candidate.pattern,
            (tid + tid_offset for tid in tids_to_scan),
            min_support=min_support,
        )
        return frozenset(tid - tid_offset for tid in supported_global)
    supported: set[int] = set()
    remaining = len(tids_to_scan)
    for tid in tids_to_scan:
        if min_support is not None and len(supported) + remaining < min_support:
            break
        remaining -= 1
        if has_embedding(candidate.pattern, transactions[tid]):
            supported.add(tid)
    return frozenset(supported)


def count_support(
    candidate: Candidate,
    transactions: Sequence[LabeledGraph],
    restrict_to_parent_tids: bool = True,
    engine: MatchEngine | None = None,
    tid_offset: int = 0,
) -> int:
    """Number of transactions containing the candidate pattern."""
    return len(
        supporting_transactions(
            candidate, transactions, restrict_to_parent_tids, engine, tid_offset
        )
    )


def prune_infrequent(
    candidates: Sequence[Candidate],
    transactions: Sequence[LabeledGraph],
    min_support: int,
    engine: MatchEngine | None = None,
    tid_offset: int = 0,
) -> list[tuple[Candidate, frozenset[int]]]:
    """Keep candidates whose support meets the threshold.

    Returns (candidate, supporting transaction ids) pairs; the TID set
    becomes the parent TID list for the next level's candidates.
    """
    surviving: list[tuple[Candidate, frozenset[int]]] = []
    for candidate in candidates:
        tids = supporting_transactions(
            candidate,
            transactions,
            engine=engine,
            tid_offset=tid_offset,
            min_support=min_support,
        )
        if len(tids) >= min_support:
            surviving.append((candidate, tids))
    return surviving
