"""Result containers for frequent-subgraph mining."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.motifs import MotifShape, classify_shape


@dataclass
class FrequentSubgraph:
    """A frequent connected subgraph and the transactions supporting it."""

    pattern: LabeledGraph
    support: int
    supporting_transactions: frozenset[int]

    @property
    def n_edges(self) -> int:
        """Number of edges in the pattern."""
        return self.pattern.n_edges

    @property
    def n_vertices(self) -> int:
        """Number of vertices in the pattern."""
        return self.pattern.n_vertices

    @property
    def shape(self) -> MotifShape:
        """The transportation motif shape of the pattern (labels ignored)."""
        return classify_shape(self.pattern)

    def relative_support(self, n_transactions: int) -> float:
        """Support as a fraction of the transaction count."""
        if n_transactions <= 0:
            raise ValueError("n_transactions must be positive")
        return self.support / n_transactions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrequentSubgraph(edges={self.n_edges}, vertices={self.n_vertices}, "
            f"support={self.support}, shape={self.shape.value})"
        )


@dataclass
class FSGResult:
    """The full output of one frequent-subgraph mining run."""

    patterns: list[FrequentSubgraph] = field(default_factory=list)
    n_transactions: int = 0
    min_support: int = 0
    levels_completed: int = 0
    candidates_generated: int = 0
    aborted: bool = False
    abort_reason: str = ""
    #: Wall-clock seconds spent per level (candidate generation +
    #: support counting for that level); keyed by the level's edge count.
    #: Purely observational — never part of any digest or comparison.
    level_seconds: dict[int, float] = field(default_factory=dict, compare=False)
    #: Mining-session counters per level (wire bytes shipped, planning
    #: seconds, full-vs-delta pattern shipments, store hits, evictions —
    #: see :data:`repro.runtime.base.SESSION_TELEMETRY_KEYS`), keyed like
    #: :attr:`level_seconds`.  The embedding-store path fills every key;
    #: store-less runs fill the wire/planning counters and zero the rest.
    #: Purely observational, never part of any digest.
    level_telemetry: dict[int, dict[str, float]] = field(
        default_factory=dict, compare=False
    )

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self):
        return iter(self.patterns)

    def session_totals(self) -> dict[str, float]:
        """Session telemetry summed across levels (empty dict when none)."""
        totals: dict[str, float] = {}
        for counters in self.level_telemetry.values():
            for key, value in counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def by_size(self) -> dict[int, list[FrequentSubgraph]]:
        """Group the frequent patterns by edge count."""
        grouped: dict[int, list[FrequentSubgraph]] = {}
        for pattern in self.patterns:
            grouped.setdefault(pattern.n_edges, []).append(pattern)
        return grouped

    def shape_counts(self) -> dict[MotifShape, int]:
        """Histogram of motif shapes among the frequent patterns."""
        counts: dict[MotifShape, int] = {}
        for pattern in self.patterns:
            shape = pattern.shape
            counts[shape] = counts.get(shape, 0) + 1
        return counts

    def largest(self) -> FrequentSubgraph | None:
        """The frequent pattern with the most edges (ties broken by support)."""
        if not self.patterns:
            return None
        return max(self.patterns, key=lambda p: (p.n_edges, p.support))

    def top(self, count: int) -> list[FrequentSubgraph]:
        """The *count* most supported patterns, largest support first."""
        ordered = sorted(self.patterns, key=lambda p: (p.support, p.n_edges), reverse=True)
        return ordered[:count]
