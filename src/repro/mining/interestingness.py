"""Interestingness measures for association rules.

Section 7.1 reports association rules with their confidence; Section 9
points out that a variety of interestingness metrics exist for association
rules (citing Silverstein et al. and Tan et al.) and that analogous
measures are still missing for graph patterns.  This module implements the
standard rule metrics so mined rules can be ranked and filtered the way
those papers propose: confidence, lift (interest), leverage
(Piatetsky-Shapiro), conviction, and the chi-squared-style dependence
measure.

All functions take plain probabilities (relative supports) so they can be
used both by the Apriori rule generator and in isolation.
"""

from __future__ import annotations

import math


def _validate_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")


def confidence(support_both: float, support_antecedent: float) -> float:
    """P(consequent | antecedent) = support(A ∪ C) / support(A)."""
    _validate_probability("support_both", support_both)
    _validate_probability("support_antecedent", support_antecedent)
    if support_antecedent == 0:
        return 0.0
    return support_both / support_antecedent


def lift(support_both: float, support_antecedent: float, support_consequent: float) -> float:
    """Ratio of observed co-occurrence to the independence expectation.

    Lift 1 means independence; above 1 means positive association.
    """
    _validate_probability("support_consequent", support_consequent)
    conf = confidence(support_both, support_antecedent)
    if support_consequent == 0:
        return 0.0
    return conf / support_consequent


def leverage(support_both: float, support_antecedent: float, support_consequent: float) -> float:
    """Piatetsky-Shapiro leverage: P(A,C) - P(A)P(C)."""
    _validate_probability("support_both", support_both)
    _validate_probability("support_antecedent", support_antecedent)
    _validate_probability("support_consequent", support_consequent)
    return support_both - support_antecedent * support_consequent


def conviction(support_both: float, support_antecedent: float, support_consequent: float) -> float:
    """Conviction: P(A)P(not C) / P(A, not C); infinite for exact implications."""
    conf = confidence(support_both, support_antecedent)
    if conf >= 1.0:
        return math.inf
    return (1.0 - support_consequent) / (1.0 - conf)


def dependence(support_both: float, support_antecedent: float, support_consequent: float) -> float:
    """Absolute deviation from independence, normalised to [0, 1].

    A simple dependence-rule style measure: |P(A,C) - P(A)P(C)| divided by
    its maximum possible value given the marginals.
    """
    expected = support_antecedent * support_consequent
    maximum = min(support_antecedent, support_consequent) - expected
    if maximum <= 0:
        return 0.0
    return abs(support_both - expected) / maximum


def rule_metrics(
    support_both: float,
    support_antecedent: float,
    support_consequent: float,
) -> dict[str, float]:
    """All implemented metrics for one rule, keyed by metric name."""
    return {
        "support": support_both,
        "confidence": confidence(support_both, support_antecedent),
        "lift": lift(support_both, support_antecedent, support_consequent),
        "leverage": leverage(support_both, support_antecedent, support_consequent),
        "conviction": conviction(support_both, support_antecedent, support_consequent),
        "dependence": dependence(support_both, support_antecedent, support_consequent),
    }
