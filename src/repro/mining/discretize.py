"""Weka-style discretisation of numeric attributes (Section 7 preprocessing).

The conventional-mining experiments first discretise the numeric columns of
the flat transaction table; the association rules in Section 7.1 are stated
over interval labels such as ``(-inf--4501]`` and ``(-84.76--75.43]``.
:class:`Discretizer` reproduces that step: it learns bin boundaries per
attribute (equal-width or equal-frequency) from a feature table and
rewrites numeric values as Weka-style interval strings, leaving
non-numeric attributes untouched.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Mapping, Sequence

FeatureRow = Mapping[str, object]


def _format_boundary(value: float) -> str:
    if value == float("inf"):
        return "inf"
    if value == float("-inf"):
        return "-inf"
    return f"{value:g}"


def interval_label(lower: float, upper: float) -> str:
    """Weka-style half-open interval label ``(lower-upper]``."""
    return f"({_format_boundary(lower)}-{_format_boundary(upper)}]"


@dataclass
class AttributeDiscretization:
    """Learned cut points for one numeric attribute."""

    attribute: str
    cut_points: list[float]

    def label_for(self, value: float) -> str:
        """The interval label for *value*."""
        position = bisect_left(self.cut_points, value)
        lower = float("-inf") if position == 0 else self.cut_points[position - 1]
        upper = float("inf") if position == len(self.cut_points) else self.cut_points[position]
        return interval_label(lower, upper)

    @property
    def n_bins(self) -> int:
        """Number of intervals produced by the cut points."""
        return len(self.cut_points) + 1


@dataclass
class Discretizer:
    """Discretise numeric attributes of a feature table into interval labels.

    Parameters
    ----------
    n_bins:
        Number of intervals per attribute.
    strategy:
        ``"equal_width"`` (default, matching Weka's unsupervised default)
        or ``"equal_frequency"``.
    attributes:
        Attributes to discretise; ``None`` means every attribute whose
        values are all numeric.
    """

    n_bins: int = 10
    strategy: str = "equal_width"
    attributes: Sequence[str] | None = None
    _discretizations: dict[str, AttributeDiscretization] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if self.n_bins < 2:
            raise ValueError("n_bins must be at least 2")
        if self.strategy not in ("equal_width", "equal_frequency"):
            raise ValueError("strategy must be 'equal_width' or 'equal_frequency'")

    # ------------------------------------------------------------------
    def _numeric_attributes(self, table: Sequence[FeatureRow]) -> list[str]:
        if not table:
            return []
        if self.attributes is not None:
            return list(self.attributes)
        candidates = []
        for attribute in table[0]:
            values = [row[attribute] for row in table]
            if all(isinstance(value, (int, float)) and not isinstance(value, bool) for value in values):
                candidates.append(attribute)
        return candidates

    def _cut_points(self, values: list[float]) -> list[float]:
        low, high = min(values), max(values)
        if low == high:
            return []
        if self.strategy == "equal_width":
            width = (high - low) / self.n_bins
            return [low + width * index for index in range(1, self.n_bins)]
        ordered = sorted(values)
        cuts = []
        for index in range(1, self.n_bins):
            position = int(round(index * len(ordered) / self.n_bins))
            position = min(len(ordered) - 1, max(0, position))
            cuts.append(ordered[position])
        # Remove duplicate cut points produced by heavy ties.
        unique = sorted(set(cuts))
        return [cut for cut in unique if low < cut < high]

    # ------------------------------------------------------------------
    def fit(self, table: Sequence[FeatureRow]) -> "Discretizer":
        """Learn cut points from *table*."""
        if not table:
            raise ValueError("cannot fit a discretizer on an empty table")
        self._discretizations.clear()
        for attribute in self._numeric_attributes(table):
            values = [float(row[attribute]) for row in table]
            self._discretizations[attribute] = AttributeDiscretization(
                attribute=attribute, cut_points=self._cut_points(values)
            )
        return self

    def transform(self, table: Sequence[FeatureRow]) -> list[dict[str, object]]:
        """Rewrite numeric values as interval labels (non-numeric pass through)."""
        if not self._discretizations:
            raise RuntimeError("discretizer must be fitted before transform")
        transformed: list[dict[str, object]] = []
        for row in table:
            new_row: dict[str, object] = {}
            for attribute, value in row.items():
                discretization = self._discretizations.get(attribute)
                if discretization is None:
                    new_row[attribute] = value
                else:
                    new_row[attribute] = discretization.label_for(float(value))
            transformed.append(new_row)
        return transformed

    def fit_transform(self, table: Sequence[FeatureRow]) -> list[dict[str, object]]:
        """Fit on *table* and transform it."""
        return self.fit(table).transform(table)

    def discretization_for(self, attribute: str) -> AttributeDiscretization:
        """The learned discretisation of *attribute* (``KeyError`` if not numeric/fitted)."""
        return self._discretizations[attribute]
