"""Rendering of tables, figures, and paper-versus-measured comparisons.

The paper's evaluation artifacts are tables of statistics and small
pattern diagrams.  This package renders the reproduction's equivalents as
plain text: Table 1-3 style tables, ASCII drawings of pattern graphs
(Figures 1-4), cluster summaries (Figures 5-6), and the side-by-side
comparison used by EXPERIMENTS.md and the benchmark harness.
"""

from repro.reporting.tables import (
    render_dataset_description,
    render_statistics_table,
    render_temporal_summary,
)
from repro.reporting.figures import render_cluster_summaries, render_pattern
from repro.reporting.comparison import render_comparison

__all__ = [
    "render_dataset_description",
    "render_statistics_table",
    "render_temporal_summary",
    "render_cluster_summaries",
    "render_pattern",
    "render_comparison",
]
