"""Plain-text renderings of the paper's figures.

The figures in the paper are small labeled pattern graphs (Figures 1-4)
and per-cluster bar charts (Figures 5-6).  In a terminal-first library the
equivalents are an adjacency-style listing of a pattern graph and an
aligned table of cluster means; both renderers are deliberately simple and
dependency-free.
"""

from __future__ import annotations

from typing import Sequence

from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.motifs import classify_shape
from repro.mining.em_clustering import ClusterSummary


def render_pattern(graph: LabeledGraph, title: str = "") -> str:
    """Render a pattern graph as an edge list with labels.

    Vertices are numbered in a stable order; each line shows one edge as
    ``source -[label]-> target`` so the hub-and-spoke / chain structure of
    Figures 1-4 is visible at a glance, together with the detected shape.
    """
    ordering = {vertex: index for index, vertex in enumerate(sorted(graph.vertices(), key=str))}
    lines: list[str] = []
    if title:
        lines.append(title)
    shape = classify_shape(graph)
    lines.append(
        f"pattern: {graph.n_vertices} vertices, {graph.n_edges} edges, shape={shape.value}"
    )
    for vertex, index in ordering.items():
        lines.append(f"  v{index}: label={graph.vertex_label(vertex)!r}")
    for edge in sorted(graph.edges(), key=lambda e: (str(e.source), str(e.target))):
        lines.append(
            f"  v{ordering[edge.source]} -[{edge.label}]-> v{ordering[edge.target]}"
        )
    return "\n".join(lines)


def render_cluster_summaries(
    summaries: Sequence[ClusterSummary],
    attributes: Sequence[str] = ("TOTAL_DISTANCE", "MOVE_TRANSIT_HOURS"),
    title: str = "Clustering statistics",
) -> str:
    """Render per-cluster sizes and attribute means (Figures 5 and 6)."""
    lines = [title, "-" * 72]
    header = f"{'cluster':>8s} {'size':>8s}" + "".join(f" {attribute:>20s}" for attribute in attributes)
    lines.append(header)
    for summary in summaries:
        row = f"{summary.index:>8d} {summary.size:>8d}"
        for attribute in attributes:
            value = summary.means.get(attribute, float("nan"))
            row += f" {value:>20.1f}"
        lines.append(row)
    return "\n".join(lines)


def render_bar_chart(
    values: dict[object, float],
    title: str = "",
    width: int = 40,
) -> str:
    """A simple horizontal ASCII bar chart (used for Figure 6 style plots)."""
    lines: list[str] = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines + ["(no data)"])
    maximum = max(abs(value) for value in values.values()) or 1.0
    for key, value in values.items():
        bar = "#" * max(0, int(round(width * abs(value) / maximum)))
        lines.append(f"{str(key):>12s} | {bar} {value:.1f}")
    return "\n".join(lines)
