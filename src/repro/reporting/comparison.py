"""Paper-versus-measured comparison rendering."""

from __future__ import annotations

from typing import Sequence

from repro.core.results import ExperimentReport


def render_comparison(report: ExperimentReport) -> str:
    """Render one experiment report as an aligned paper-vs-measured table."""
    lines = [f"[{report.experiment_id}] {report.description}", "=" * 78]
    lines.append(f"{'metric':44s}{'paper':>16s}{'measured':>16s}")
    lines.append("-" * 78)
    for metric, paper_value, measured_value in report.comparison_rows():
        lines.append(f"{metric:44.44s}{str(paper_value):>16.16s}{str(measured_value):>16.16s}")
    return "\n".join(lines)


def render_comparisons(reports: Sequence[ExperimentReport]) -> str:
    """Render several experiment reports separated by blank lines."""
    return "\n\n".join(render_comparison(report) for report in reports)


def agreement_summary(report: ExperimentReport) -> dict[str, bool]:
    """Which boolean claims of the paper the measurement agrees with.

    Only metrics whose paper value is a boolean are compared; numeric
    metrics are reported side by side but not judged automatically, since
    absolute numbers depend on the dataset scale.
    """
    agreement: dict[str, bool] = {}
    for metric, paper_value, measured_value in report.comparison_rows():
        if isinstance(paper_value, bool):
            agreement[metric] = bool(measured_value) == paper_value
    return agreement
