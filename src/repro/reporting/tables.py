"""Plain-text renderings of the paper's tables."""

from __future__ import annotations

from repro.datasets.schema import ATTRIBUTE_DESCRIPTIONS, ATTRIBUTE_NAMES
from repro.datasets.statistics import DatasetStatistics
from repro.partitioning.temporal import TemporalPartitionSummary


def _rule(width: int = 72) -> str:
    return "-" * width


def render_dataset_description() -> str:
    """Render Table 1: the attribute names and descriptions of the dataset."""
    lines = ["Table 1. Transportation Network Data Description", _rule()]
    name_width = max(len(name) for name in ATTRIBUTE_NAMES) + 2
    lines.append(f"{'Name':{name_width}s}Description")
    lines.append(_rule())
    for name in ATTRIBUTE_NAMES:
        lines.append(f"{name:{name_width}s}{ATTRIBUTE_DESCRIPTIONS[name]}")
    return "\n".join(lines)


def render_statistics_table(statistics: DatasetStatistics, title: str = "Dataset statistics") -> str:
    """Render the Section 3 headline statistics of a dataset."""
    rows = [
        ("Transactions", statistics.n_transactions),
        ("Distinct locations (LL pairs)", statistics.n_locations),
        ("Distinct origins", statistics.n_origins),
        ("Distinct destinations", statistics.n_destinations),
        ("Distinct OD pairs", statistics.n_od_pairs),
        ("Out-degree (min/max/avg)",
         f"{statistics.out_degree.minimum}/{statistics.out_degree.maximum}/{statistics.out_degree.average:.1f}"),
        ("In-degree (min/max/avg)",
         f"{statistics.in_degree.minimum}/{statistics.in_degree.maximum}/{statistics.in_degree.average:.1f}"),
        ("Transactions per OD pair", f"{statistics.transactions_per_od_pair:.2f}"),
        ("Date span (days)", statistics.date_span_days),
    ]
    lines = [title, _rule()]
    for label, value in rows:
        lines.append(f"{label:38s}{value}")
    for mode, count in sorted(statistics.mode_counts.items()):
        lines.append(f"{'Mode ' + mode:38s}{count}")
    return "\n".join(lines)


def render_temporal_summary(summary: TemporalPartitionSummary, title: str = "Temporally partitioned graph data") -> str:
    """Render a Table 2 / Table 3 style summary of graph transactions."""
    lines = [title, _rule()]
    for label, value in summary.as_rows():
        lines.append(f"{label:55s}{value}")
    return "\n".join(lines)
