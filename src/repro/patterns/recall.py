"""Recall of planted patterns after partitioning and mining (footnote 2).

Given the ground truth of a planted graph and the frequent patterns
returned by a mining run, this module measures which planted patterns
were recovered.  A planted pattern counts as recovered when some mined
pattern contains it (the mined pattern has an embedding of the planted
one) or is exactly identical to it — partitioning often trims a planted
pattern, so containment in either direction with a minimum size is also
reported separately as *partial recall*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.graphs.engine import MatchEngine, default_engine
from repro.graphs.labeled_graph import LabeledGraph
from repro.mining.fsg.results import FrequentSubgraph
from repro.patterns.planted import PlantedPattern


@dataclass
class RecallReport:
    """Which planted patterns a mining run recovered."""

    recovered: list[str] = field(default_factory=list)
    partially_recovered: list[str] = field(default_factory=list)
    missed: list[str] = field(default_factory=list)
    n_mined_patterns: int = 0

    @property
    def recall(self) -> float:
        """Fraction of planted patterns recovered exactly or by containment."""
        total = len(self.recovered) + len(self.partially_recovered) + len(self.missed)
        if total == 0:
            return 0.0
        return len(self.recovered) / total

    @property
    def partial_recall(self) -> float:
        """Fraction recovered at least partially (a large sub-piece was found)."""
        total = len(self.recovered) + len(self.partially_recovered) + len(self.missed)
        if total == 0:
            return 0.0
        return (len(self.recovered) + len(self.partially_recovered)) / total


def _mined_graphs(mined: Sequence[FrequentSubgraph | LabeledGraph]) -> list[LabeledGraph]:
    graphs: list[LabeledGraph] = []
    for pattern in mined:
        graphs.append(pattern.pattern if isinstance(pattern, FrequentSubgraph) else pattern)
    return graphs


def measure_recall(
    ground_truth: Sequence[PlantedPattern],
    mined: Sequence[FrequentSubgraph | LabeledGraph],
    partial_fraction: float = 0.5,
    engine: MatchEngine | None = None,
) -> RecallReport:
    """Measure recall of *ground_truth* patterns among *mined* patterns.

    A planted pattern is *recovered* when a mined pattern is identical to
    it or contains it entirely; it is *partially recovered* when a mined
    pattern matches a connected piece covering at least ``partial_fraction``
    of its edges (approximated by edge-count comparison of mined patterns
    embedded inside the planted pattern).  Containment checks run through
    *engine* (the shared default when omitted), so each planted and mined
    pattern is indexed once for the whole all-pairs comparison.
    """
    if not 0.0 < partial_fraction <= 1.0:
        raise ValueError("partial_fraction must be in (0, 1]")
    matcher = engine if engine is not None else default_engine()
    mined_graphs = _mined_graphs(mined)
    report = RecallReport(n_mined_patterns=len(mined_graphs))
    for planted in ground_truth:
        target = planted.pattern
        exact = any(
            matcher.are_isomorphic(target, candidate)
            or matcher.has_embedding(target, candidate)
            for candidate in mined_graphs
        )
        if exact:
            report.recovered.append(planted.name)
            continue
        threshold_edges = max(1, int(round(partial_fraction * target.n_edges)))
        partial = any(
            candidate.n_edges >= threshold_edges and matcher.has_embedding(candidate, target)
            for candidate in mined_graphs
        )
        if partial:
            report.partially_recovered.append(planted.name)
        else:
            report.missed.append(planted.name)
    return report
