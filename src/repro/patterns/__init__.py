"""The pattern layer: single-graph pattern identity, catalogue, and recall.

Section 4 of the paper defines when two subgraphs of a single graph
support the same pattern; this package implements that definition and the
machinery built on it:

* :mod:`repro.patterns.pattern` — pattern identity and support of a
  pattern within a single graph (non-overlapping occurrences);
* :mod:`repro.patterns.catalog` — the named "good" transportation shapes
  the paper discusses and helpers to instantiate them with labels;
* :mod:`repro.patterns.matching` — classifying mined patterns against the
  catalogue and summarising a mining result by shape;
* :mod:`repro.patterns.planted` — simulated single graphs built by joining
  subgraphs with known frequent patterns (footnote 2 of the paper);
* :mod:`repro.patterns.recall` — recall/precision of a mining run against
  the planted ground truth;
* :mod:`repro.patterns.periodicity` and
  :mod:`repro.patterns.graph_interestingness` — implementations of two of
  the paper's Section 9 challenges: periodicity of repeated routes, and
  interestingness measures / maximality filtering for graph patterns.
"""

from repro.patterns.pattern import Pattern, pattern_support, patterns_identical
from repro.patterns.catalog import CatalogEntry, PATTERN_CATALOG, catalog_pattern
from repro.patterns.matching import ShapeSummary, summarize_shapes
from repro.patterns.planted import PlantedGraphSpec, PlantedPattern, build_planted_graph
from repro.patterns.recall import RecallReport, measure_recall
from repro.patterns.periodicity import PeriodicLane, detect_period, periodic_lanes
from repro.patterns.graph_interestingness import PatternScore, maximal_patterns, score_patterns

__all__ = [
    "PeriodicLane",
    "detect_period",
    "periodic_lanes",
    "PatternScore",
    "maximal_patterns",
    "score_patterns",
    "Pattern",
    "pattern_support",
    "patterns_identical",
    "CatalogEntry",
    "PATTERN_CATALOG",
    "catalog_pattern",
    "ShapeSummary",
    "summarize_shapes",
    "PlantedGraphSpec",
    "PlantedPattern",
    "build_planted_graph",
    "RecallReport",
    "measure_recall",
]
