"""Classifying mined patterns against the transportation motif catalogue.

The paper interprets its mining output qualitatively: breadth-first
partitioning surfaces hub-and-spoke patterns (Figure 2), depth-first
partitioning surfaces chains (Figure 3), and the temporal experiment's
largest pattern is a three-edge hub-and-spoke (Figure 4).  This module
turns that interpretation into a measurement: given the frequent patterns
of a mining run, it reports how many fall into each motif shape and which
shapes dominate, so benchmarks can assert the paper's qualitative claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.graphs.engine import MatchEngine, default_engine
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.motifs import MotifShape, classify_shape
from repro.mining.fsg.results import FrequentSubgraph


@dataclass
class ShapeSummary:
    """Distribution of motif shapes among a set of patterns."""

    counts: dict[MotifShape, int] = field(default_factory=dict)
    total: int = 0

    def fraction(self, shape: MotifShape) -> float:
        """Fraction of patterns with the given shape."""
        if self.total == 0:
            return 0.0
        return self.counts.get(shape, 0) / self.total

    def count(self, shape: MotifShape) -> int:
        """Number of patterns with the given shape."""
        return self.counts.get(shape, 0)

    def dominant_shape(self, ignore_single_edges: bool = True) -> MotifShape | None:
        """The most common shape (optionally ignoring trivial single edges)."""
        candidates = {
            shape: count
            for shape, count in self.counts.items()
            if not (ignore_single_edges and shape is MotifShape.SINGLE_EDGE)
        }
        if not candidates:
            return None
        return max(candidates, key=lambda shape: candidates[shape])

    def multi_edge_count(self) -> int:
        """Number of patterns with more than one edge."""
        return self.total - self.counts.get(MotifShape.SINGLE_EDGE, 0)


def _as_graphs(patterns: Iterable[FrequentSubgraph | LabeledGraph]) -> list[LabeledGraph]:
    graphs: list[LabeledGraph] = []
    for pattern in patterns:
        if isinstance(pattern, FrequentSubgraph):
            graphs.append(pattern.pattern)
        else:
            graphs.append(pattern)
    return graphs


def summarize_shapes(patterns: Sequence[FrequentSubgraph | LabeledGraph]) -> ShapeSummary:
    """Classify every pattern and return the shape distribution."""
    summary = ShapeSummary()
    for graph in _as_graphs(patterns):
        shape = classify_shape(graph)
        summary.counts[shape] = summary.counts.get(shape, 0) + 1
        summary.total += 1
    return summary


def patterns_with_shape(
    patterns: Sequence[FrequentSubgraph],
    shape: MotifShape,
    min_edges: int = 2,
) -> list[FrequentSubgraph]:
    """The mined patterns with the given shape and at least *min_edges* edges."""
    return [
        pattern
        for pattern in patterns
        if pattern.n_edges >= min_edges and classify_shape(pattern.pattern) is shape
    ]


def distinct_patterns(
    patterns: Sequence[FrequentSubgraph | LabeledGraph],
    engine: MatchEngine | None = None,
) -> list[FrequentSubgraph | LabeledGraph]:
    """Drop isomorphic duplicates, keeping the first representative of each class.

    Pattern sets assembled from several mining runs (repetitions, shards)
    routinely contain the same pattern under different vertex namings;
    summarising shapes over the raw union double-counts them.  Grouping
    uses the engine's memoized invariants with exact isomorphism
    confirmation inside each bucket.
    """
    matcher = engine if engine is not None else default_engine()
    kept: list[FrequentSubgraph | LabeledGraph] = []
    buckets: dict[str, list[LabeledGraph]] = {}
    for pattern in patterns:
        graph = pattern.pattern if isinstance(pattern, FrequentSubgraph) else pattern
        bucket = buckets.setdefault(matcher.graph_invariant(graph), [])
        if any(matcher.are_isomorphic(existing, graph) for existing in bucket):
            continue
        bucket.append(graph)
        kept.append(pattern)
    return kept
