"""Pattern identity and support within a single graph (Section 4).

The paper formalises a pattern in a single graph ``G`` as a set ``P`` of
distinct subgraphs of ``G`` that are pairwise *identical* — isomorphic
with matching vertex and edge labels — with ``|P| >= s`` for a support
threshold ``s``.  This module wraps a pattern graph with that identity
notion and provides single-graph support counting based on
non-overlapping embeddings (the paper's experiments disallow overlap).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.canonical import graph_invariant
from repro.graphs.isomorphism import (
    are_isomorphic,
    find_embeddings,
    non_overlapping_embeddings,
)
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.motifs import MotifShape, classify_shape


def patterns_identical(first: LabeledGraph, second: LabeledGraph) -> bool:
    """Section 4 identity: label-preserving isomorphism between two subgraphs."""
    return are_isomorphic(first, second)


@dataclass
class Pattern:
    """A labeled pattern graph with convenience accessors."""

    graph: LabeledGraph
    name: str = ""

    @property
    def n_vertices(self) -> int:
        """Vertices in the pattern."""
        return self.graph.n_vertices

    @property
    def n_edges(self) -> int:
        """Edges in the pattern."""
        return self.graph.n_edges

    @property
    def shape(self) -> MotifShape:
        """The transportation motif shape of the pattern."""
        return classify_shape(self.graph)

    def invariant(self) -> str:
        """Isomorphism-invariant fingerprint (used for grouping patterns)."""
        return graph_invariant(self.graph)

    def is_identical_to(self, other: "Pattern") -> bool:
        """Section 4 identity between two patterns."""
        return patterns_identical(self.graph, other.graph)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Pattern(name={self.name!r}, vertices={self.n_vertices}, "
            f"edges={self.n_edges}, shape={self.shape.value})"
        )


def pattern_support(
    pattern: LabeledGraph | Pattern,
    graph: LabeledGraph,
    allow_overlap: bool = False,
) -> int:
    """Number of occurrences of *pattern* within the single graph *graph*.

    With ``allow_overlap=False`` (the default and the paper's setting)
    occurrences are counted greedily so no graph vertex participates in
    two occurrences; with ``allow_overlap=True`` every embedding counts.
    """
    pattern_graph = pattern.graph if isinstance(pattern, Pattern) else pattern
    if allow_overlap:
        return len(find_embeddings(pattern_graph, graph))
    return len(non_overlapping_embeddings(pattern_graph, graph))


def is_frequent_in_graph(
    pattern: LabeledGraph | Pattern,
    graph: LabeledGraph,
    support_threshold: int,
    allow_overlap: bool = False,
) -> bool:
    """Whether *pattern* meets the Section 4 support threshold in *graph*."""
    if support_threshold < 1:
        raise ValueError("support_threshold must be at least 1")
    return pattern_support(pattern, graph, allow_overlap) >= support_threshold
