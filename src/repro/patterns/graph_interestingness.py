"""Interestingness measures for graph patterns (a Section 9 challenge, implemented).

The paper observes that "even at high support levels ... many of these
patterns turn out to be trivial or uninteresting", and that the
interestingness measures developed for association rules have no analogue
for graph mining.  This module provides such measures for the frequent
subgraphs produced by the FSG reimplementation:

* **lift against a label-frequency null model** — how much more often the
  pattern occurs than expected if edges were drawn independently with the
  observed label-triple frequencies;
* **size-weighted support** — support multiplied by edge count, so a large
  pattern at moderate support can outrank a ubiquitous single edge;
* **shape bonus** — whether the pattern matches one of the named
  transportation motifs (hub-and-spoke, chain, cycle, bow-tie), which is
  what a transportation analyst would recognise as actionable;
* **maximality filtering** — the paper notes that "recent work in finding
  maximal graph patterns ... may address this challenge"; dropping every
  pattern contained in another frequent pattern removes the bulk of the
  trivial output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graphs.engine import MatchEngine, default_engine
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.motifs import MotifShape, classify_shape
from repro.mining.fsg.candidates import edge_triples
from repro.mining.fsg.results import FrequentSubgraph

#: Shapes a transportation analyst recognises as actionable.
_ACTIONABLE_SHAPES = {
    MotifShape.HUB_AND_SPOKE,
    MotifShape.CHAIN,
    MotifShape.CYCLE,
    MotifShape.BOWTIE,
}


@dataclass(frozen=True)
class PatternScore:
    """Interestingness scores of one frequent subgraph."""

    pattern: FrequentSubgraph
    lift: float
    size_weighted_support: float
    shape: MotifShape
    actionable_shape: bool

    @property
    def combined(self) -> float:
        """A single ranking score: lift x size-weighted support, shape-boosted."""
        bonus = 1.5 if self.actionable_shape else 1.0
        return self.lift * self.size_weighted_support * bonus


def triple_frequencies(transactions: Sequence[LabeledGraph]) -> dict[tuple, float]:
    """Fraction of transactions containing each (source label, edge label, target label) triple."""
    if not transactions:
        raise ValueError("cannot compute triple frequencies of an empty transaction set")
    counts: dict[tuple, int] = {}
    for transaction in transactions:
        for triple in edge_triples(transaction):
            counts[triple] = counts.get(triple, 0) + 1
    total = len(transactions)
    return {triple: count / total for triple, count in counts.items()}


def expected_support(pattern: LabeledGraph, frequencies: dict[tuple, float]) -> float:
    """Expected relative support under edge-independence.

    The null model treats the pattern's edges as independent events: the
    probability that a transaction contains all of them is the product,
    over the pattern's edges, of the frequency of each edge's label triple.
    This mirrors the independence assumption behind association-rule lift;
    patterns whose edges co-occur more often than independence predicts get
    lift above one.
    """
    probability = 1.0
    for edge in pattern.edges():
        triple = (
            pattern.vertex_label(edge.source),
            edge.label,
            pattern.vertex_label(edge.target),
        )
        probability *= frequencies.get(triple, 0.0)
    return probability


def pattern_lift(
    pattern: FrequentSubgraph,
    n_transactions: int,
    frequencies: dict[tuple, float],
) -> float:
    """Observed relative support over the independence expectation."""
    if n_transactions <= 0:
        raise ValueError("n_transactions must be positive")
    observed = pattern.support / n_transactions
    expected = expected_support(pattern.pattern, frequencies)
    if expected <= 0.0:
        return float("inf") if observed > 0 else 0.0
    return observed / expected


def score_patterns(
    patterns: Sequence[FrequentSubgraph],
    transactions: Sequence[LabeledGraph],
) -> list[PatternScore]:
    """Score every mined pattern, most interesting first."""
    frequencies = triple_frequencies(transactions)
    n_transactions = len(transactions)
    scored: list[PatternScore] = []
    for pattern in patterns:
        shape = classify_shape(pattern.pattern)
        scored.append(
            PatternScore(
                pattern=pattern,
                lift=pattern_lift(pattern, n_transactions, frequencies),
                size_weighted_support=pattern.support * pattern.n_edges / n_transactions,
                shape=shape,
                actionable_shape=shape in _ACTIONABLE_SHAPES,
            )
        )
    scored.sort(key=lambda score: score.combined, reverse=True)
    return scored


def maximal_patterns(
    patterns: Sequence[FrequentSubgraph],
    engine: MatchEngine | None = None,
) -> list[FrequentSubgraph]:
    """Keep only patterns not contained in any other frequent pattern.

    A pattern is dropped when some other (larger) pattern in the result has
    an embedding of it; ties on equal size are kept.  This is the maximal
    -pattern filter the paper points to for taming trivial output.  The
    all-pairs containment checks run through *engine* (the shared default
    when omitted), so every pattern is indexed once for the whole sweep.
    """
    matcher = engine if engine is not None else default_engine()
    ordered = sorted(patterns, key=lambda p: p.n_edges, reverse=True)
    kept: list[FrequentSubgraph] = []
    for candidate in ordered:
        contained = any(
            other.n_edges > candidate.n_edges
            and matcher.has_embedding(candidate.pattern, other.pattern)
            for other in kept
        )
        if not contained:
            kept.append(candidate)
    return kept
