"""Simulated single graphs with planted frequent patterns (footnote 2).

Footnote 2 of the paper describes a validation experiment: simulated data
constructed by joining subgraphs with known frequent patterns into a
single graph, which is then partitioned and mined; the recall of the
known patterns was "in the 50% and above range" for both breadth-first
and depth-first partitioning, with better results on smaller graphs.

This module builds such graphs: each planted pattern is copied a
configurable number of times with fresh vertex identities, the copies are
stitched together with random background edges so the result is one
connected graph, and the ground truth (which patterns were planted, how
many times) is returned alongside the graph for recall measurement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.graphs.labeled_graph import LabeledGraph


@dataclass
class PlantedPattern:
    """A pattern planted into a simulated graph, with its plant count."""

    name: str
    pattern: LabeledGraph
    copies: int

    def __post_init__(self) -> None:
        if self.copies < 1:
            raise ValueError("a planted pattern needs at least one copy")


@dataclass
class PlantedGraphSpec:
    """Specification of a simulated single graph with planted patterns.

    ``background_edges`` random edges are added between vertices of
    different pattern copies (with a dedicated background label) to join
    everything into a single connected graph, as the footnote describes.
    """

    patterns: list[PlantedPattern] = field(default_factory=list)
    background_edges: int = 50
    background_edge_label: object = "bg"
    vertex_label: object = "place"
    seed: int = 23

    def add(self, name: str, pattern: LabeledGraph, copies: int) -> "PlantedGraphSpec":
        """Add a planted pattern (fluent helper)."""
        self.patterns.append(PlantedPattern(name=name, pattern=pattern, copies=copies))
        return self


@dataclass
class PlantedGraph:
    """The simulated graph plus its ground truth."""

    graph: LabeledGraph
    ground_truth: list[PlantedPattern]

    @property
    def total_planted_copies(self) -> int:
        """Total number of pattern copies planted."""
        return sum(planted.copies for planted in self.ground_truth)


def _copy_pattern_into(
    target: LabeledGraph,
    pattern: LabeledGraph,
    copy_index: int,
    name: str,
    vertex_label: object,
) -> list[str]:
    """Copy *pattern* into *target* with fresh vertex identities; return the new vertex names."""
    mapping: dict[object, str] = {}
    for vertex in pattern.vertices():
        new_name = f"{name}#{copy_index}#{vertex}"
        mapping[vertex] = new_name
        target.add_vertex(new_name, vertex_label)
    for edge in pattern.edges():
        target.add_edge(mapping[edge.source], mapping[edge.target], edge.label)
    return list(mapping.values())


def build_planted_graph(spec: PlantedGraphSpec) -> PlantedGraph:
    """Build a single graph containing every planted pattern copy plus background edges."""
    if not spec.patterns:
        raise ValueError("the specification must contain at least one planted pattern")
    rng = random.Random(spec.seed)
    graph = LabeledGraph(name="planted")
    copy_vertex_groups: list[list[str]] = []
    for planted in spec.patterns:
        for copy_index in range(planted.copies):
            vertices = _copy_pattern_into(
                graph, planted.pattern, copy_index, planted.name, spec.vertex_label
            )
            copy_vertex_groups.append(vertices)

    # Background edges join different copies so the result is one connected
    # graph; they carry a label that no planted pattern uses so they cannot
    # create spurious occurrences of a planted pattern.
    added = 0
    attempts = 0
    while added < spec.background_edges and attempts < spec.background_edges * 20:
        attempts += 1
        first_group, second_group = rng.sample(copy_vertex_groups, 2) if len(copy_vertex_groups) > 1 else (
            copy_vertex_groups[0],
            copy_vertex_groups[0],
        )
        source = rng.choice(first_group)
        target = rng.choice(second_group)
        if source == target or graph.has_edge(source, target):
            continue
        graph.add_edge(source, target, spec.background_edge_label)
        added += 1

    return PlantedGraph(graph=graph, ground_truth=list(spec.patterns))
