"""Periodicity of repeated routes (a Section 9 challenge, implemented).

The paper's conclusions single out the temporal dimension as the biggest
gap in existing graph mining: "concepts such as periodicity in routes, or
expectation of changes over time, could be important factors".  The
conventional-mining experiments even had to drop the two date attributes
entirely.  This module implements the measurable core of that challenge
for OD data:

* :func:`lane_activity` — the pickup-date history of every OD lane;
* :func:`detect_period` — the dominant repeat period (in days) of a lane's
  history, found by scoring candidate periods against the observed
  inter-pickup gaps;
* :func:`periodic_lanes` — all lanes that repeat with a stable period
  (e.g. the weekly distribution runs planted by the generator and found by
  the temporal experiments).

The detector is deliberately simple — transportation schedules are noisy,
so it scores how well a candidate period explains the gap distribution
rather than requiring exact spacing.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Sequence

from repro.datasets.schema import Location, TransactionDataset

Lane = tuple[Location, Location]


@dataclass(frozen=True)
class PeriodicLane:
    """A lane that repeats with a (roughly) fixed period."""

    origin: Location
    destination: Location
    period_days: int
    occurrences: int
    regularity: float

    @property
    def lane(self) -> Lane:
        """The (origin, destination) pair."""
        return (self.origin, self.destination)


def lane_activity(dataset: TransactionDataset) -> dict[Lane, list[date]]:
    """Sorted pickup dates per OD lane."""
    activity: dict[Lane, list[date]] = {}
    for transaction in dataset:
        activity.setdefault(transaction.od_pair, []).append(transaction.req_pickup_dt)
    return {lane: sorted(dates) for lane, dates in activity.items()}


def _gaps(dates: Sequence[date]) -> list[int]:
    return [
        (later - earlier).days
        for earlier, later in zip(dates, dates[1:])
        if (later - earlier).days > 0
    ]


def period_score(gaps: Sequence[int], period: int, tolerance: int = 1) -> float:
    """Fraction of gaps explained by *period* (within *tolerance* days).

    A gap explains a period when it is within *tolerance* of a positive
    multiple of the period, so an occasional skipped run does not destroy
    the score.
    """
    if period < 1:
        raise ValueError("period must be at least one day")
    if not gaps:
        return 0.0
    explained = 0
    for gap in gaps:
        nearest_multiple = max(1, round(gap / period)) * period
        if abs(gap - nearest_multiple) <= tolerance:
            explained += 1
    return explained / len(gaps)


def detect_period(
    dates: Sequence[date],
    max_period: int = 35,
    min_occurrences: int = 4,
    min_regularity: float = 0.6,
    tolerance: int = 1,
) -> tuple[int, float] | None:
    """The dominant repeat period of a pickup-date history, if any.

    Returns ``(period_days, regularity)`` where *regularity* is the
    fraction of inter-pickup gaps explained by the period, or ``None`` when
    the history is too short or too irregular.  Smaller periods are
    preferred among ties so a weekly lane is not reported as bi-weekly.
    """
    ordered = sorted(set(dates))
    if len(ordered) < min_occurrences:
        return None
    gaps = _gaps(ordered)
    if not gaps:
        return None
    best: tuple[int, float] | None = None
    best_key: tuple[float, float, int] | None = None
    upper = min(max_period, max(gaps))
    for period in range(1, upper + 1):
        # The tolerance may not swallow the period itself, otherwise a
        # one-day period would trivially "explain" every gap.
        effective_tolerance = min(tolerance, max(0, period - 1))
        # The base period must actually occur: at least half the gaps are
        # one period long (multiples alone would let p and 2p tie).
        base_fraction = sum(
            1 for gap in gaps if abs(gap - period) <= effective_tolerance
        ) / len(gaps)
        if base_fraction < 0.5:
            continue
        score = period_score(gaps, period, tolerance=effective_tolerance)
        if score < min_regularity:
            continue
        mean_deviation = sum(
            abs(gap - max(1, round(gap / period)) * period) for gap in gaps
        ) / len(gaps)
        # Rank by explained fraction, then by how exactly the multiples fit,
        # then by preferring the shorter period.
        key = (score, -mean_deviation, -period)
        if best_key is None or key > best_key:
            best_key = key
            best = (period, score)
    return best


def periodic_lanes(
    dataset: TransactionDataset,
    max_period: int = 35,
    min_occurrences: int = 4,
    min_regularity: float = 0.6,
) -> list[PeriodicLane]:
    """All lanes repeating with a stable period, strongest regularity first."""
    found: list[PeriodicLane] = []
    for (origin, destination), dates in lane_activity(dataset).items():
        detected = detect_period(
            dates,
            max_period=max_period,
            min_occurrences=min_occurrences,
            min_regularity=min_regularity,
        )
        if detected is None:
            continue
        period, regularity = detected
        found.append(
            PeriodicLane(
                origin=origin,
                destination=destination,
                period_days=period,
                occurrences=len(dates),
                regularity=regularity,
            )
        )
    found.sort(key=lambda lane: (lane.regularity, lane.occurrences), reverse=True)
    return found


def period_histogram(lanes: Sequence[PeriodicLane]) -> dict[int, int]:
    """How many periodic lanes repeat at each period (e.g. {7: 120, 2: 4})."""
    histogram: dict[int, int] = {}
    for lane in lanes:
        histogram[lane.period_days] = histogram.get(lane.period_days, 0) + 1
    return histogram
