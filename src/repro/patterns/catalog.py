"""The catalogue of named "good" transportation patterns.

Section 1 and Section 5 of the paper name the shapes transportation
experts already recognise as efficient or actionable: circular routes
(cycles) that bring the truck home, hub-and-spoke distribution around a
warehouse, long delivery chains mixing pickups and deliveries, the
bow-tie shape that suggests a multi-modal (rail) opportunity, and the
deadhead corridor (traffic one way with no return load) that SUBDUE
surfaced in Figure 1.  This module exposes those shapes as a catalogue so
examples, tests, and the planted-pattern experiments can instantiate them
with arbitrary edge labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.motifs import MotifShape, bowtie, chain, cycle, hub_and_spoke


@dataclass(frozen=True)
class CatalogEntry:
    """A named pattern family with a constructor and its expected shape."""

    key: str
    description: str
    shape: MotifShape
    build: Callable[..., LabeledGraph]


def _deadhead(edge_label: object = 0, vertex_label: object = "place", prefix: str = "dh") -> LabeledGraph:
    """A two-hop corridor with no return traffic (the Figure 1 observation)."""
    graph = chain(2, vertex_label=vertex_label, edge_labels=[edge_label, edge_label], prefix=prefix)
    graph.name = f"{prefix}-deadhead"
    return graph


def _default_hub_and_spoke(n_spokes: int = 3, **kwargs) -> LabeledGraph:
    """Hub-and-spoke with a default spoke count (catalogue convenience)."""
    return hub_and_spoke(n_spokes, **kwargs)


def _default_chain(n_edges: int = 3, **kwargs) -> LabeledGraph:
    """Chain with a default length (catalogue convenience)."""
    return chain(n_edges, **kwargs)


def _default_cycle(n_edges: int = 3, **kwargs) -> LabeledGraph:
    """Cycle with a default length (catalogue convenience)."""
    return cycle(n_edges, **kwargs)


PATTERN_CATALOG: dict[str, CatalogEntry] = {
    "hub_and_spoke": CatalogEntry(
        key="hub_and_spoke",
        description="A single origin delivering to many destinations (Figure 2 / Figure 4).",
        shape=MotifShape.HUB_AND_SPOKE,
        build=_default_hub_and_spoke,
    ),
    "chain": CatalogEntry(
        key="chain",
        description="A route making pickups and deliveries at successive stops (Figure 3).",
        shape=MotifShape.CHAIN,
        build=_default_chain,
    ),
    "cycle": CatalogEntry(
        key="cycle",
        description="A circular route that returns the truck to its starting point.",
        shape=MotifShape.CYCLE,
        build=_default_cycle,
    ),
    "bowtie": CatalogEntry(
        key="bowtie",
        description="Small loads converging, one large long-distance leg, then fanning out.",
        shape=MotifShape.BOWTIE,
        build=bowtie,
    ),
    "deadhead": CatalogEntry(
        key="deadhead",
        description="Significant traffic in one direction with little or no return traffic.",
        shape=MotifShape.CHAIN,
        build=_deadhead,
    ),
}


def catalog_pattern(key: str, **kwargs) -> LabeledGraph:
    """Instantiate a catalogue pattern by key, forwarding constructor arguments."""
    if key not in PATTERN_CATALOG:
        raise KeyError(
            f"unknown catalogue pattern {key!r}; available: {sorted(PATTERN_CATALOG)}"
        )
    return PATTERN_CATALOG[key].build(**kwargs)


def catalog_keys() -> Sequence[str]:
    """The available catalogue keys."""
    return tuple(PATTERN_CATALOG)
