"""Transportation network motifs: generators and shape classification.

The paper repeatedly refers to a small catalogue of "good" shapes in
transportation networks — hub-and-spoke distribution, circular (cycle)
routes that let a truck return home, long delivery chains, and bow-ties
(several small loads converging, a large long-distance leg, then fanning
out again).  This module provides:

* constructors that build each motif as a :class:`LabeledGraph` — used to
  plant known patterns in simulated data (footnote 2 of the paper) and as
  fixtures in tests;
* :func:`classify_shape`, which assigns a mined pattern to one of the
  motif shapes (or ``OTHER``) — used to interpret the output of the
  miners, e.g. to confirm that breadth-first partitioning surfaces
  hub-and-spoke patterns (Figure 2) and depth-first partitioning surfaces
  chains (Figure 3).
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.graphs.labeled_graph import LabeledGraph


class MotifShape(str, enum.Enum):
    """Named transportation motif shapes."""

    SINGLE_EDGE = "single_edge"
    HUB_AND_SPOKE = "hub_and_spoke"
    CHAIN = "chain"
    CYCLE = "cycle"
    BOWTIE = "bowtie"
    OTHER = "other"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def _default_labels(count: int, labels: Sequence[object] | None, fill: object) -> list[object]:
    if labels is None:
        return [fill] * count
    if len(labels) != count:
        raise ValueError(f"expected {count} labels, got {len(labels)}")
    return list(labels)


def hub_and_spoke(
    n_spokes: int,
    vertex_label: object = "place",
    edge_labels: Sequence[object] | None = None,
    inbound: bool = False,
    prefix: str = "hs",
) -> LabeledGraph:
    """A hub with *n_spokes* edges to (or from, if *inbound*) distinct spokes.

    The classic distribution pattern: a single source (e.g. a factory)
    delivering to many destinations — the Figure 2 and Figure 4 shape.
    """
    if n_spokes < 1:
        raise ValueError("a hub-and-spoke needs at least one spoke")
    labels = _default_labels(n_spokes, edge_labels, 0)
    graph = LabeledGraph(name=f"{prefix}-hub{n_spokes}")
    hub = f"{prefix}_hub"
    graph.add_vertex(hub, vertex_label)
    for index in range(n_spokes):
        spoke = f"{prefix}_s{index}"
        graph.add_vertex(spoke, vertex_label)
        if inbound:
            graph.add_edge(spoke, hub, labels[index])
        else:
            graph.add_edge(hub, spoke, labels[index])
    return graph


def chain(
    n_edges: int,
    vertex_label: object = "place",
    edge_labels: Sequence[object] | None = None,
    prefix: str = "ch",
) -> LabeledGraph:
    """A directed path with *n_edges* edges (a delivery route, Figure 3)."""
    if n_edges < 1:
        raise ValueError("a chain needs at least one edge")
    labels = _default_labels(n_edges, edge_labels, 0)
    graph = LabeledGraph(name=f"{prefix}-chain{n_edges}")
    previous = f"{prefix}_0"
    graph.add_vertex(previous, vertex_label)
    for index in range(1, n_edges + 1):
        current = f"{prefix}_{index}"
        graph.add_vertex(current, vertex_label)
        graph.add_edge(previous, current, labels[index - 1])
        previous = current
    return graph


def cycle(
    n_edges: int,
    vertex_label: object = "place",
    edge_labels: Sequence[object] | None = None,
    prefix: str = "cy",
) -> LabeledGraph:
    """A directed cycle with *n_edges* edges (a circular route returning home)."""
    if n_edges < 2:
        raise ValueError("a cycle needs at least two edges")
    labels = _default_labels(n_edges, edge_labels, 0)
    graph = LabeledGraph(name=f"{prefix}-cycle{n_edges}")
    names = [f"{prefix}_{index}" for index in range(n_edges)]
    for name in names:
        graph.add_vertex(name, vertex_label)
    for index in range(n_edges):
        graph.add_edge(names[index], names[(index + 1) % n_edges], labels[index])
    return graph


def bowtie(
    n_left: int = 2,
    n_right: int = 2,
    vertex_label: object = "place",
    small_label: object = 0,
    large_label: object = 1,
    prefix: str = "bt",
) -> LabeledGraph:
    """A bow-tie: small loads converge, one large long-distance leg, loads fan out.

    ``n_left`` small edges converge on the left hub, one large edge crosses
    to the right hub, and ``n_right`` small edges fan out — the
    hypothetical multi-modal opportunity described in Section 5.
    """
    if n_left < 1 or n_right < 1:
        raise ValueError("a bow-tie needs at least one edge on each side")
    graph = LabeledGraph(name=f"{prefix}-bowtie{n_left}x{n_right}")
    left_hub = f"{prefix}_L"
    right_hub = f"{prefix}_R"
    graph.add_vertex(left_hub, vertex_label)
    graph.add_vertex(right_hub, vertex_label)
    for index in range(n_left):
        source = f"{prefix}_l{index}"
        graph.add_vertex(source, vertex_label)
        graph.add_edge(source, left_hub, small_label)
    graph.add_edge(left_hub, right_hub, large_label)
    for index in range(n_right):
        target = f"{prefix}_r{index}"
        graph.add_vertex(target, vertex_label)
        graph.add_edge(right_hub, target, small_label)
    return graph


def _is_chain(graph: LabeledGraph) -> bool:
    """A weakly connected path: all degrees <= 2, exactly one source and one sink, no branching."""
    if graph.n_edges != graph.n_vertices - 1:
        return False
    sources = 0
    sinks = 0
    for vertex in graph.vertices():
        out_degree = graph.out_degree(vertex)
        in_degree = graph.in_degree(vertex)
        if out_degree > 1 or in_degree > 1:
            return False
        if in_degree == 0:
            sources += 1
        if out_degree == 0:
            sinks += 1
    return sources == 1 and sinks == 1


def _is_cycle(graph: LabeledGraph) -> bool:
    if graph.n_edges != graph.n_vertices or graph.n_vertices < 2:
        return False
    return all(
        graph.out_degree(vertex) == 1 and graph.in_degree(vertex) == 1
        for vertex in graph.vertices()
    )


def _is_hub_and_spoke(graph: LabeledGraph) -> bool:
    """A single centre with >= 2 spokes, all edges incident on the centre, same direction."""
    if graph.n_vertices < 3 or graph.n_edges != graph.n_vertices - 1:
        return False
    out_hub = [v for v in graph.vertices() if graph.out_degree(v) == graph.n_edges and graph.in_degree(v) == 0]
    in_hub = [v for v in graph.vertices() if graph.in_degree(v) == graph.n_edges and graph.out_degree(v) == 0]
    if len(out_hub) == 1:
        return all(graph.degree(v) == 1 for v in graph.vertices() if v != out_hub[0])
    if len(in_hub) == 1:
        return all(graph.degree(v) == 1 for v in graph.vertices() if v != in_hub[0])
    return False


def _is_bowtie(graph: LabeledGraph) -> bool:
    """Two hubs connected by one bridge edge, leaves converging on one and fanning from the other."""
    bridge_candidates = [
        edge
        for edge in graph.edges()
        if graph.in_degree(edge.source) >= 1
        and graph.out_degree(edge.source) == 1
        and graph.out_degree(edge.target) >= 1
        and graph.in_degree(edge.target) == 1
    ]
    for edge in bridge_candidates:
        left, right = edge.source, edge.target
        leaves = [v for v in graph.vertices() if v not in (left, right)]
        if len(leaves) < 2:
            continue
        converging = all(
            (graph.has_edge(leaf, left) and graph.degree(leaf) == 1)
            or (graph.has_edge(right, leaf) and graph.degree(leaf) == 1)
            for leaf in leaves
        )
        expected_edges = len(leaves) + 1
        has_left_leaf = any(graph.has_edge(leaf, left) for leaf in leaves)
        has_right_leaf = any(graph.has_edge(right, leaf) for leaf in leaves)
        if converging and graph.n_edges == expected_edges and has_left_leaf and has_right_leaf:
            return True
    return False


def classify_shape(graph: LabeledGraph) -> MotifShape:
    """Classify a (small) pattern graph into one of the motif shapes.

    Labels are ignored; only the wiring matters.  Patterns that fit none of
    the named shapes are classified as :attr:`MotifShape.OTHER`.
    """
    if graph.n_edges == 0:
        return MotifShape.OTHER
    if graph.n_edges == 1:
        return MotifShape.SINGLE_EDGE
    if _is_cycle(graph):
        return MotifShape.CYCLE
    if _is_hub_and_spoke(graph):
        return MotifShape.HUB_AND_SPOKE
    if _is_chain(graph):
        return MotifShape.CHAIN
    if _is_bowtie(graph):
        return MotifShape.BOWTIE
    return MotifShape.OTHER
