"""Connected-component utilities for labeled directed graphs.

Several steps in the paper manipulate components:

* the temporal partitioning (Section 6) breaks each per-day graph
  transaction into its weakly connected components;
* the partitioning algorithms remove "orphaned" vertices (vertices left
  with no edges) after pulling a subgraph out of the network;
* the SUBDUE experiments (Section 5.1) run on truncated graphs obtained by
  selecting a number of vertices and keeping every edge incident on them.
"""

from __future__ import annotations

from typing import Iterable

from repro.graphs.labeled_graph import LabeledGraph, VertexId


def connected_components(graph: LabeledGraph) -> list[LabeledGraph]:
    """Split *graph* into weakly connected components (direction ignored).

    Each component is returned as an independent :class:`LabeledGraph`
    containing the component's vertices and every edge between them.
    Components are returned largest-first so callers can conveniently
    inspect or filter the big ones.
    """
    unvisited = set(graph.vertices())
    components: list[LabeledGraph] = []
    while unvisited:
        seed = next(iter(unvisited))
        members: set[VertexId] = {seed}
        frontier = [seed]
        while frontier:
            vertex = frontier.pop()
            for neighbour in graph.neighbours(vertex):
                if neighbour not in members:
                    members.add(neighbour)
                    frontier.append(neighbour)
        unvisited -= members
        components.append(graph.subgraph(members))
    components.sort(key=lambda component: (component.n_edges, component.n_vertices), reverse=True)
    return components


def largest_component(graph: LabeledGraph) -> LabeledGraph:
    """The weakly connected component with the most edges."""
    components = connected_components(graph)
    if not components:
        return LabeledGraph(name=f"{graph.name}-largest")
    return components[0]


def is_connected(graph: LabeledGraph) -> bool:
    """Whether *graph* is weakly connected (empty graphs count as connected)."""
    if graph.n_vertices == 0:
        return True
    return len(connected_components(graph)) == 1


def remove_orphan_vertices(graph: LabeledGraph) -> int:
    """Remove vertices with no incident edges, in place.

    Returns the number of vertices removed.  Both partitioning strategies
    (Algorithm 2) call this after pulling edges out of the working graph.
    """
    orphans = [vertex for vertex in graph.vertices() if graph.degree(vertex) == 0]
    for vertex in orphans:
        graph.remove_vertex(vertex)
    return len(orphans)


def induced_subgraph(graph: LabeledGraph, vertices: Iterable[VertexId]) -> LabeledGraph:
    """The subgraph induced by *vertices* (alias of :meth:`LabeledGraph.subgraph`)."""
    return graph.subgraph(vertices)


def truncate_to_vertices(graph: LabeledGraph, n_vertices: int, order: str = "degree") -> LabeledGraph:
    """A truncated graph over the first *n_vertices* vertices.

    This reproduces how the paper derives small graphs for the SUBDUE
    experiments: "selecting the required number of vertices and then
    including all of the edges incident on vertices present in the graph".
    ``order`` selects which vertices survive: ``"degree"`` keeps the
    highest-degree vertices (giving dense, interesting subgraphs like the
    100-vertex / 561-edge graph in Section 5.1) and ``"insertion"`` keeps
    the first vertices in insertion order.
    """
    if n_vertices <= 0:
        raise ValueError("n_vertices must be positive")
    if order not in ("degree", "insertion"):
        raise ValueError("order must be 'degree' or 'insertion'")
    all_vertices = list(graph.vertices())
    if order == "degree":
        all_vertices.sort(key=graph.degree, reverse=True)
    kept = all_vertices[:n_vertices]
    truncated = graph.subgraph(kept)
    truncated.name = f"{graph.name}-trunc{n_vertices}"
    return truncated
