"""Columnar (structure-of-arrays) views over :class:`CompactGraph`.

The vectorized match kernel (:mod:`repro.graphs.vectorized`) replaces the
per-anchor Python loops of the embedding store with whole-batch numpy
passes, which needs the graph in contiguous array form:

* ``vertex_labels`` — one ``int64`` per vertex;
* CSR adjacency in both directions — ``out_indptr`` / ``out_nbr`` /
  ``out_lbl`` (and the ``in_*`` mirror), flattened in exactly the
  adjacency-tuple order of the compact graph, so a vectorized scan
  enumerates neighbours in the same order the Python kernel does —
  plus both directions fused into ``all_nbr`` / ``all_lbl`` (the
  in-direction offset by ``in_base``) so one gather serves a batch of
  mixed-direction extensions;
* ``edge_keys`` — every edge as the scalar ``source * n_vertices +
  target``, sorted, with ``edge_key_labels`` aligned, so a backward-edge
  probe over a whole anchor batch is one ``searchsorted``;
* per-triple seed-pair arrays (built lazily per queried triple, self-loop
  pairs already removed, bucket order preserved) for single-edge seeding.

Columns are derived data cached on the (immutable) compact graph itself —
see :meth:`CompactGraph.columns` — so their lifetime *is* the invalidation
rule: a mutated :class:`LabeledGraph` transaction gets a fresh compact
form on re-index (the engine's ``_version`` discipline), and a released
transaction drops its compact graph, columns and all.  Nothing here is
ever updated in place.

numpy is optional at import time: importing this module without numpy
works (so ``repro.graphs`` stays importable), but building columns raises
a clear :class:`ImportError` via :func:`require_numpy`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.compact import CompactGraph


def require_numpy() -> None:
    """Raise a clear error when the vectorized kernel lacks its dependency."""
    if np is None:
        raise ImportError(
            "the vectorized match kernel requires numpy, which is not "
            "importable in this environment; install numpy or select the "
            'pure-python kernel (kernel="python" / REPRO_KERNEL=python)'
        )


class GraphColumns:
    """Contiguous-array form of one :class:`CompactGraph` (read-only)."""

    __slots__ = (
        "n_vertices",
        "vertex_labels",
        "out_indptr",
        "out_nbr",
        "out_lbl",
        "in_indptr",
        "in_nbr",
        "in_lbl",
        "out_degree",
        "in_degree",
        "all_nbr",
        "all_lbl",
        "in_base",
        "edge_keys",
        "edge_key_labels",
        "_seed_pairs",
    )

    def __init__(self, compact: "CompactGraph") -> None:
        require_numpy()
        n = compact.n_vertices
        self.n_vertices = n
        self.vertex_labels = np.asarray(compact.vertex_labels, dtype=np.int64)

        self.out_indptr, self.out_nbr, self.out_lbl = _csr_of(compact.out_adj, n)
        self.in_indptr, self.in_nbr, self.in_lbl = _csr_of(compact.in_adj, n)
        self.out_degree = np.diff(self.out_indptr)
        self.in_degree = np.diff(self.in_indptr)

        # Both directions fused into one flat array so a mixed batch of
        # forward extensions (some scanning successors, some
        # predecessors) expands through a single gather: in-direction
        # slots live at ``in_base + in_indptr[v]``.
        self.all_nbr = np.concatenate([self.out_nbr, self.in_nbr])
        self.all_lbl = np.concatenate([self.out_lbl, self.in_lbl])
        self.in_base = self.out_nbr.size

        # Simple directed graphs: one edge per ordered (source, target)
        # pair, so the scalar key source*n + target identifies it.
        sources = np.repeat(np.arange(n, dtype=np.int64), self.out_degree)
        keys = sources * n + self.out_nbr
        order = np.argsort(keys, kind="stable")
        self.edge_keys = keys[order]
        self.edge_key_labels = self.out_lbl[order]
        self._seed_pairs: dict[tuple[int, int, int], "np.ndarray"] = {}

    def candidates(self, label_id: int, min_out: int, min_in: int) -> list[int]:
        """Vectorized :meth:`GraphIndex.candidates`; identical output.

        Label buckets are vertex-ascending, so the masked ``flatnonzero``
        returns exactly the bucket-filter list of the python index.
        """
        mask = self.vertex_labels == label_id
        if min_out > 0:
            mask &= self.out_degree >= min_out
        if min_in > 0:
            mask &= self.in_degree >= min_in
        return np.flatnonzero(mask).tolist()

    def edge_probe(self, sources, targets, labels):
        """Whether each ``(sources[i], targets[i])`` edge exists with ``labels[i]``.

        One batched ``searchsorted`` over the sorted edge keys — the
        vectorized form of the backward-extension dict probe.
        """
        keys = sources * self.n_vertices + targets
        if self.edge_keys.size == 0:
            return np.zeros(keys.shape, dtype=bool)
        slots = np.searchsorted(self.edge_keys, keys)
        slots_clipped = np.minimum(slots, self.edge_keys.size - 1)
        return (self.edge_keys[slots_clipped] == keys) & (
            self.edge_key_labels[slots_clipped] == labels
        )

    def seed_pairs(self, index, triple: tuple[int, int, int]):
        """``(source, target)`` rows realising *triple*, self-loops removed.

        Cached per triple; rows keep the triple-bucket order of
        :meth:`GraphIndex.triple_edges`, which is what makes the capped
        anchor sets of vectorized seeding identical to the python path's.
        """
        cached = self._seed_pairs.get(triple)
        if cached is None:
            pairs = [pair for pair in index.triple_edges(triple) if pair[0] != pair[1]]
            cached = np.asarray(pairs, dtype=np.int64).reshape(len(pairs), 2)
            self._seed_pairs[triple] = cached
        return cached


def _csr_of(adjacency, n_vertices: int):
    """(indptr, neighbours, labels) CSR arrays preserving adjacency order."""
    indptr = np.zeros(n_vertices + 1, dtype=np.int64)
    for vertex, pairs in enumerate(adjacency):
        indptr[vertex + 1] = indptr[vertex] + len(pairs)
    total = int(indptr[-1])
    neighbours = np.empty(total, dtype=np.int64)
    labels = np.empty(total, dtype=np.int64)
    cursor = 0
    for pairs in adjacency:
        for neighbour, label in pairs:
            neighbours[cursor] = neighbour
            labels[cursor] = label
            cursor += 1
    return indptr, neighbours, labels


__all__ = ["GraphColumns", "require_numpy"]
