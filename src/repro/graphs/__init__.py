"""Labeled directed graph substrate.

Everything in the paper operates on labeled directed graphs: the full
transportation network is one large labeled (multi)graph, graph
transactions produced by partitioning are small labeled graphs, and mined
patterns are labeled subgraphs.  This package provides the graph data
structures, label-preserving (sub)graph isomorphism, canonical codes for
pattern deduplication, the OD graph builders of Section 3, connected
component utilities, and the transportation motif catalogue (hub-and-spoke,
chain, cycle, bow-tie) used to interpret mined patterns.
"""

from repro.graphs.labeled_graph import Edge, LabeledGraph, LabeledMultiGraph
from repro.graphs.compact import CompactGraph, LabelTable
from repro.graphs.index import GraphIndex
from repro.graphs.engine import MatchEngine, default_engine
from repro.graphs.isomorphism import (
    are_isomorphic,
    count_embeddings,
    find_embedding,
    find_embeddings,
    has_embedding,
)
from repro.graphs.canonical import canonical_code, graph_invariant
from repro.graphs.builders import (
    EDGE_ATTRIBUTES,
    UNIFORM_VERTEX_LABEL,
    build_od_graph,
    build_od_multigraph,
    build_labeled_variants,
)
from repro.graphs.components import (
    connected_components,
    induced_subgraph,
    largest_component,
    remove_orphan_vertices,
    truncate_to_vertices,
)
from repro.graphs.motifs import (
    MotifShape,
    bowtie,
    chain,
    classify_shape,
    cycle,
    hub_and_spoke,
)

__all__ = [
    "Edge",
    "LabeledGraph",
    "LabeledMultiGraph",
    "CompactGraph",
    "LabelTable",
    "GraphIndex",
    "MatchEngine",
    "default_engine",
    "are_isomorphic",
    "count_embeddings",
    "find_embedding",
    "find_embeddings",
    "has_embedding",
    "canonical_code",
    "graph_invariant",
    "EDGE_ATTRIBUTES",
    "UNIFORM_VERTEX_LABEL",
    "build_od_graph",
    "build_od_multigraph",
    "build_labeled_variants",
    "connected_components",
    "induced_subgraph",
    "largest_component",
    "remove_orphan_vertices",
    "truncate_to_vertices",
    "MotifShape",
    "bowtie",
    "chain",
    "classify_shape",
    "cycle",
    "hub_and_spoke",
]
