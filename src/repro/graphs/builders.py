"""Building labeled OD graphs from a transaction dataset (Section 3).

The paper builds three graphs from the same dataset, all sharing vertices
(locations) and edges (OD pairs) but differing in the edge labelling:

* ``OD_GW`` — edges labeled by binned GROSS_WEIGHT;
* ``OD_TH`` — edges labeled by binned MOVE_TRANSIT_HOURS;
* ``OD_TD`` — edges labeled by binned TOTAL_DISTANCE.

Vertex labelling depends on the experiment: the structural-similarity
study (Section 5) gives every vertex the same label so only the shape
matters, while the temporal study (Section 6) labels each vertex with its
latitude/longitude so patterns are tied to places.
"""

from __future__ import annotations

from repro.datasets.binning import BinningScheme, default_binning_scheme
from repro.datasets.schema import TransactionDataset
from repro.graphs.labeled_graph import LabeledGraph, LabeledMultiGraph

#: Edge attribute keys accepted by the builders, with the paper's graph names.
EDGE_ATTRIBUTES: dict[str, str] = {
    "OD_GW": "GROSS_WEIGHT",
    "OD_TH": "MOVE_TRANSIT_HOURS",
    "OD_TD": "TOTAL_DISTANCE",
}

#: The single label given to every vertex in the structural experiments.
UNIFORM_VERTEX_LABEL = "place"


def _resolve_attribute(edge_attribute: str) -> str:
    """Accept either an attribute name or a paper graph name (``OD_GW`` ...)."""
    if edge_attribute in EDGE_ATTRIBUTES:
        return EDGE_ATTRIBUTES[edge_attribute]
    if edge_attribute in EDGE_ATTRIBUTES.values():
        return edge_attribute
    raise ValueError(
        f"unknown edge attribute {edge_attribute!r}; expected one of "
        f"{sorted(EDGE_ATTRIBUTES)} or {sorted(EDGE_ATTRIBUTES.values())}"
    )


def build_od_multigraph(
    dataset: TransactionDataset,
    edge_attribute: str = "GROSS_WEIGHT",
    binning: BinningScheme | None = None,
    vertex_labeling: str = "uniform",
    use_interval_labels: bool = False,
) -> LabeledMultiGraph:
    """Build the raw OD multigraph: one edge per transaction.

    Parameters
    ----------
    dataset:
        The transaction dataset.
    edge_attribute:
        Which numeric attribute labels the edges — an attribute name or one
        of the paper's graph names (``OD_GW``, ``OD_TH``, ``OD_TD``).
    binning:
        Binning scheme for the edge attribute; the paper's default scheme
        (7 weight bins, 10 hour bins) is used when omitted.
    vertex_labeling:
        ``"uniform"`` gives every vertex the same label (Section 5);
        ``"location"`` labels each vertex with its lat/long (Section 6).
    use_interval_labels:
        When true, edges carry interval strings (``[0, 6500]``) instead of
        integer bin indices — the labelling shown in Figure 4.
    """
    attribute = _resolve_attribute(edge_attribute)
    scheme = binning or default_binning_scheme()
    if vertex_labeling not in ("uniform", "location"):
        raise ValueError("vertex_labeling must be 'uniform' or 'location'")

    graph = LabeledMultiGraph(name=f"OD_{attribute}")
    for transaction in dataset:
        for location in (transaction.origin, transaction.destination):
            label = UNIFORM_VERTEX_LABEL if vertex_labeling == "uniform" else location.label()
            graph.add_vertex(location, label)
        if use_interval_labels:
            edge_label = scheme.edge_interval(transaction, attribute)
        else:
            edge_label = scheme.edge_label(transaction, attribute)
        graph.add_edge(transaction.origin, transaction.destination, edge_label)
    return graph


def build_od_graph(
    dataset: TransactionDataset,
    edge_attribute: str = "GROSS_WEIGHT",
    binning: BinningScheme | None = None,
    vertex_labeling: str = "uniform",
    use_interval_labels: bool = False,
) -> LabeledGraph:
    """Build the simple OD graph: parallel edges collapsed.

    This is the representation the miners consume (FSG operates on graphs,
    not multigraphs, so the paper removes duplicate edges).  Parallel edges
    between the same pair keep the most common label.
    """
    multigraph = build_od_multigraph(
        dataset,
        edge_attribute=edge_attribute,
        binning=binning,
        vertex_labeling=vertex_labeling,
        use_interval_labels=use_interval_labels,
    )
    return multigraph.simplify()


def build_labeled_variants(
    dataset: TransactionDataset,
    binning: BinningScheme | None = None,
    vertex_labeling: str = "uniform",
) -> dict[str, LabeledGraph]:
    """Build all three paper graphs (``OD_GW``, ``OD_TH``, ``OD_TD``) at once."""
    return {
        name: build_od_graph(
            dataset,
            edge_attribute=attribute,
            binning=binning,
            vertex_labeling=vertex_labeling,
        )
        for name, attribute in EDGE_ATTRIBUTES.items()
    }
