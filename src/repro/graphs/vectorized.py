"""The vectorized (numpy) backend of the incremental support kernel.

This module is the ``kernel="vectorized"`` implementation of
:meth:`MatchEngine.support_with_embeddings`: the same level-batch
semantics as the pure-python path — which remains the differential
oracle — with the per-anchor inner loops replaced by whole-level array
passes.

The python kernel walks the level transaction-major: for each tid, each
scheduled task extends its handful of stored anchors through dict
probes.  At that granularity a numpy translation loses — batches of
three anchors cannot amortise array-call overhead — so this kernel
flattens the *entire level* into one (task, tid) item space and runs a
fixed number of passes over it:

* the scheduled transactions' columnar views
  (:class:`~repro.graphs.columns.GraphColumns`) are concatenated into
  one global fused adjacency / edge-key / vertex-label arena, with each
  transaction's vertices rebased by its offset — transactions are
  disjoint, so a single gather or ``searchsorted`` serves every
  transaction at once;
* each parent pattern's stored anchors are viewed as one columnar
  *bundle* (sorted tid array, stacked anchor matrix, completeness and
  version arrays); the bundles behind one pass are themselves
  concatenated into a parent arena keyed by ``(parent ordinal, tid)``,
  so classifying every scheduled item of the pass — fresh anchors vs.
  fallback — is one ``searchsorted``, not a dict probe per (task, tid);
* **backward extensions** (new edge between two anchored vertices)
  become one batched probe of the global edge keys; **forward
  extensions** (new edge to a brand-new vertex) become one ragged
  adjacency expansion per anchor width; both harvest their capped hits
  with the oracle's enumeration order (anchor-major, adjacency order)
  and cap arithmetic;
* **single-edge seeding** reads the columns' cached per-triple seed-pair
  arrays; **fallback** items (stale/missing/incomplete-miss anchors) run
  the engine's full indexed backtracking search, exactly the cases the
  python kernel would also search.

Two deliberate, verdict-neutral scheduling differences from the oracle
(both documented here because the differential tests must not assert on
them):

* **No mid-scan abort.**  The python kernel stops scanning a task once
  ``hits + remaining`` cannot reach ``abort_below``.  A task's final
  verdict is ``hits over the full scan >= threshold`` either way — a
  task that would reach the threshold can never abort, and one that
  aborts can never reach it — so scanning to the end changes only how
  much work infrequent tasks cost and the partial tid lists they
  return (this kernel returns the full lists, a superset).  The upfront
  abort (scan list shorter than ``abort_below``) is kept, as is every
  verdict.
* **Stores are deferred and gated.**  Anchor harvests are buffered and
  written only for tasks that end the level at or above their
  ``abort_below`` — anchors of infrequent patterns are never read
  (children are generated from surviving patterns only), and anchors
  influence speed, never verdicts.

The other difference carried over from the per-transaction design: this
path never touches the verdict LRU (no probes, no writes) — within a
level run no ``(pattern, tid)`` pair repeats, so the cache could only
ever repay its bookkeeping on exotic cross-path call mixes, and skipping
it is verdict-neutral by construction.  Stats reflect the scheduling:
``verdict_hits`` / ``verdict_misses`` stay zero here, and abort/reject
counters tally the full-scan schedule rather than the oracle's truncated
one.
"""

from __future__ import annotations

from typing import Sequence

from repro.graphs.columns import require_numpy

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

# Per-task evaluation strategies, resolved once before the level scan.
# BACKWARD/FORWARD items still fall back to FULL per transaction when the
# parent's anchors for that transaction are missing or stale.
_EMPTY, _BACKWARD, _FORWARD, _SEED, _FULL = range(5)


def _anchor_array(entry):
    """*entry*'s embeddings as an ``(anchors, width)`` int64 array.

    Entries written by this kernel already hold arrays; tuple-form
    entries (e.g. written by the python kernel before a backend switch)
    are converted once and the conversion is cached back onto the entry.
    """
    embeddings = entry.embeddings
    if not isinstance(embeddings, np.ndarray):
        embeddings = np.asarray(embeddings, dtype=np.int64).reshape(
            len(embeddings), -1
        )
        entry.embeddings = embeddings
    return embeddings


def _task_meta(info):
    """The task's scan-invariant strategy descriptor (see ``_EMPTY`` .. ``_FULL``)."""
    pattern = info.index.compact
    task = info.task
    extension = task.extension
    if pattern.n_vertices == 0:
        return (_EMPTY,)
    if extension is not None:
        source_pos, target_pos, has_new = extension
        edge_label = pattern.edge_label_of[(source_pos, target_pos)]
        if not has_new:
            return (_BACKWARD, source_pos, target_pos, edge_label)
        new_pos = pattern.n_vertices - 1
        if target_pos == new_pos:
            anchor_pos, use_out = source_pos, 1
        else:
            anchor_pos, use_out = target_pos, 0
        return (
            _FORWARD,
            anchor_pos,
            edge_label,
            pattern.vertex_labels[new_pos],
            use_out,
        )
    if pattern.n_edges == 1 and pattern.n_vertices == 2:
        ((source_pos, target_pos),) = pattern.edge_label_of
        edge_label = pattern.edge_label_of[(source_pos, target_pos)]
        triple = (
            pattern.vertex_labels[source_pos],
            edge_label,
            pattern.vertex_labels[target_pos],
        )
        return (_SEED, triple, source_pos)
    return (_FULL,)


def _bundle_of(per_tid_entries):
    """One parent uid's anchor store as aligned columnar arrays.

    Returns ``(tids, counts, starts, stack, complete, versions)``:
    ascending stored tids, each tid's anchor-row count and first row in
    the stacked ``(rows, width)`` matrix, and per-tid completeness and
    version flags.  Built once per kernel call per parent and shared by
    all its children.
    """
    tids = sorted(per_tid_entries)
    blocks = []
    counts = np.empty(len(tids), dtype=np.int64)
    complete = np.empty(len(tids), dtype=bool)
    versions = np.empty(len(tids), dtype=np.int64)
    for row, tid in enumerate(tids):
        entry = per_tid_entries[tid]
        block = _anchor_array(entry)
        blocks.append(block)
        counts[row] = block.shape[0]
        complete[row] = entry.complete
        versions[row] = entry.version
    starts = np.empty(len(tids), dtype=np.int64)
    if len(tids):
        starts[0] = 0
        np.cumsum(counts[:-1], out=starts[1:])
    stack = np.concatenate(blocks, axis=0) if blocks else np.zeros((0, 1), np.int64)
    return np.asarray(tids, dtype=np.int64), counts, starts, stack, complete, versions


class _Group:
    """Accumulator for one extension pass (one kind, one anchor width).

    Tasks contribute their whole scan list plus an ordinal pointing at
    their parent's bundle in the group's parent registry; everything
    per-item is derived in one assembly step (:func:`_assemble`).
    """

    __slots__ = (
        "t_tids", "bases", "task_pos", "metas", "pords",
        "p_ord_of", "p_tids", "p_counts", "p_starts", "p_stacks",
        "p_complete", "p_versions",
    )

    def __init__(self):
        self.t_tids = []      # one ascending tid array per task
        self.bases = []       # first global item index per task
        self.task_pos = []    # task position per task
        self.metas = []       # scan-invariant meta tuple per task
        self.pords = []       # parent ordinal per task
        self.p_ord_of = {}    # parent uid -> ordinal
        self.p_tids = []      # bundle columns, one entry per parent
        self.p_counts = []
        self.p_starts = []
        self.p_stacks = []
        self.p_complete = []
        self.p_versions = []

    def add_parent(self, puid, bundle):
        ordinal = self.p_ord_of.get(puid)
        if ordinal is None:
            ordinal = len(self.p_tids)
            self.p_ord_of[puid] = ordinal
            tids, counts, starts, stack, complete, versions = bundle
            self.p_tids.append(tids)
            self.p_counts.append(counts)
            self.p_starts.append(starts)
            self.p_stacks.append(stack)
            self.p_complete.append(complete)
            self.p_versions.append(versions)
        return ordinal


def _assemble(group, tid_arr, versions, fallback_items, infos, stats, meta_width):
    """Flatten one group into per-item arrays and gather its anchors.

    Classifies every (task, tid) item against the group's parent arena
    in one ``searchsorted`` over ``(parent ordinal, tid)`` keys; stale or
    missing items go to *fallback_items*.  Returns ``None`` when nothing
    is fresh, else the per-item arrays the extension pass consumes.
    """
    arange = np.arange
    run_lens = np.array([t.size for t in group.t_tids], dtype=np.int64)
    qtids = np.concatenate(group.t_tids)
    n_q = qtids.size
    off = np.empty(run_lens.size + 1, dtype=np.int64)
    off[0] = 0
    np.cumsum(run_lens, out=off[1:])
    reps = np.repeat(arange(run_lens.size), run_lens)
    gidx = np.asarray(group.bases, dtype=np.int64)[reps] + (
        arange(n_q) - off[:-1][reps]
    )
    task_pos = np.asarray(group.task_pos, dtype=np.int64)[reps]
    slots = np.searchsorted(tid_arr, qtids)

    # The parent arena: all bundles of the group stacked, addressed by
    # (parent ordinal, tid) scalar keys so one search classifies all.
    p_sizes = np.array([t.size for t in group.p_tids], dtype=np.int64)
    arena_ptids = np.concatenate(group.p_tids)
    arena_ord = np.repeat(arange(p_sizes.size), p_sizes)
    modulus = int(tid_arr[-1]) if tid_arr.size else 0
    if arena_ptids.size:
        modulus = max(modulus, int(arena_ptids[-1]), int(arena_ptids.max()))
    modulus += 1
    arena_keys = arena_ord * modulus + arena_ptids
    qkeys = np.asarray(group.pords, dtype=np.int64)[reps] * modulus + qtids
    pos = np.searchsorted(arena_keys, qkeys)
    pos_c = np.minimum(pos, arena_keys.size - 1)
    arena_versions = np.concatenate(group.p_versions)
    fresh = (arena_keys[pos_c] == qkeys) & (
        arena_versions[pos_c] == versions[slots]
    )
    if not fresh.all():
        miss_task = task_pos[~fresh].tolist()
        miss_gidx = gidx[~fresh].tolist()
        miss_slot = slots[~fresh].tolist()
        for index, position in enumerate(miss_task):
            fallback_items.append(
                (miss_gidx[index], infos[position], miss_slot[index])
            )
        keep = np.flatnonzero(fresh)
        if keep.size == 0:
            stats.anchor_extensions += 0
            return None
        gidx = gidx[keep]
        task_pos = task_pos[keep]
        slots = slots[keep]
        qtids = qtids[keep]
        reps = reps[keep]
        entry = pos_c[keep]
    else:
        entry = pos_c
    stats.anchor_extensions += gidx.size

    # Gather every fresh item's anchor rows from the stacked arena.
    p_rows = np.array([s.shape[0] for s in group.p_stacks], dtype=np.int64)
    row_off = np.empty(p_rows.size + 1, dtype=np.int64)
    row_off[0] = 0
    np.cumsum(p_rows, out=row_off[1:])
    arena_starts = np.concatenate(
        [starts + row_off[i] for i, starts in enumerate(group.p_starts)]
    )
    arena_counts = np.concatenate(group.p_counts)
    arena_complete = np.concatenate(group.p_complete)
    arena_stack = np.concatenate(group.p_stacks, axis=0)
    counts = arena_counts[entry]
    starts = arena_starts[entry]
    cum = np.empty(counts.size + 1, dtype=np.int64)
    cum[0] = 0
    np.cumsum(counts, out=cum[1:])
    item_of_row = np.repeat(arange(counts.size), counts)
    rows = starts[item_of_row] + (arange(int(cum[-1])) - cum[:-1][item_of_row])
    anchors = arena_stack[rows]
    metas_arr = np.array(
        [meta[1 : 1 + meta_width] for meta in group.metas], dtype=np.int64
    )[reps]
    complete = arena_complete[entry]
    return gidx, slots, task_pos, counts, cum, item_of_row, anchors, metas_arr, complete


def support_with_embeddings(engine, tasks: Sequence) -> list[list[int]]:
    """Vectorized :meth:`MatchEngine.support_with_embeddings`.

    *engine* is the owning :class:`~repro.graphs.engine.MatchEngine`;
    verdicts, returned-hit semantics, and the anchor-store contract match
    the pure-python path (see the module docstring for the two
    verdict-neutral scheduling differences).
    """
    require_numpy()
    from repro.graphs.engine import _IncrementalPattern

    infos = [_IncrementalPattern(engine._index_of_any(task.pattern), task) for task in tasks]
    stats = engine.stats
    stats.batch_calls += 1
    stats.batch_patterns += len(infos)

    # ---- phase 1: scan lists, triple filter, upfront abort, strategies
    compact_tids = engine._compact_tids
    metas: list[tuple] = []
    task_tids: list[list[int]] = []
    for info in infos:
        metas.append(_task_meta(info))
        tids = list(info.task.tids)
        allowed = engine._triple_filter(info.index)
        if allowed is not None and compact_tids:
            kept = [tid for tid in tids if tid not in compact_tids or tid in allowed]
            stats.early_rejects += len(tids) - len(kept)
            tids = kept
        abort_below = info.task.abort_below
        if abort_below is not None and len(tids) < abort_below:
            info.remaining = len(tids)
            info.dead = True
            stats.support_aborts += 1
            task_tids.append([])
            continue
        info.remaining = 0  # the whole scan is scheduled upfront
        tids.sort()
        if info.task.parent_uid is not None:
            info.parent_entries = engine._anchors.get(info.task.parent_uid)
        task_tids.append(tids)

    # ---- transaction contexts: one fetch per distinct scheduled tid
    tid_list = sorted({tid for tids in task_tids for tid in tids})
    n_tids = len(tid_list)
    versions = np.empty(n_tids, dtype=np.int64)
    t_indexes = []
    col_list = []
    for slot, tid in enumerate(tid_list):
        version, t_index = engine._transaction_index(tid)
        versions[slot] = version
        t_indexes.append(t_index)
        col_list.append(t_index.columns())
    tid_arr = np.asarray(tid_list, dtype=np.int64)

    # ---- the global arena: every scheduled transaction, rebased -------
    empty_i64 = np.zeros(0, dtype=np.int64)
    if n_tids:
        vcounts = np.array([c.n_vertices for c in col_list], dtype=np.int64)
        vbase = np.empty(n_tids + 1, dtype=np.int64)
        vbase[0] = 0
        np.cumsum(vcounts, out=vbase[1:])
        n_global = int(vbase[-1])
        g_vlab = np.concatenate([c.vertex_labels for c in col_list])
        block_sizes = np.array([c.all_nbr.size for c in col_list], dtype=np.int64)
        ebase = np.empty(n_tids + 1, dtype=np.int64)
        ebase[0] = 0
        np.cumsum(block_sizes, out=ebase[1:])
        g_all_nbr = np.concatenate(
            [c.all_nbr + vbase[s] for s, c in enumerate(col_list)]
        )
        g_all_lbl = np.concatenate([c.all_lbl for c in col_list])
        g_out_start = np.concatenate(
            [c.out_indptr[:-1] + ebase[s] for s, c in enumerate(col_list)]
        )
        g_out_deg = np.concatenate([c.out_degree for c in col_list])
        g_in_start = np.concatenate(
            [c.in_indptr[:-1] + (ebase[s] + c.in_base) for s, c in enumerate(col_list)]
        )
        g_in_deg = np.concatenate([c.in_degree for c in col_list])
        # Per-transaction edge keys recoded to global vertex ids: blocks
        # are vertex-disjoint and ascending, so concatenation stays sorted.
        g_ekeys = np.concatenate(
            [
                (c.edge_keys // c.n_vertices + vbase[s]) * n_global
                + (c.edge_keys % c.n_vertices + vbase[s])
                if c.edge_keys.size
                else empty_i64
                for s, c in enumerate(col_list)
            ]
        )
        g_elbl = np.concatenate([c.edge_key_labels for c in col_list])
    else:
        vbase = np.zeros(1, dtype=np.int64)
        n_global = 0
        g_ekeys = g_elbl = empty_i64

    # ---- item layout: task-major, so verdicts are contiguous slices ---
    bounds = np.empty(len(infos) + 1, dtype=np.int64)
    bounds[0] = 0
    cursor = 0
    for position, tids in enumerate(task_tids):
        cursor += len(tids)
        bounds[position + 1] = cursor
    n_items = cursor
    results = np.zeros(n_items, dtype=bool)
    items_tid_parts: list = []

    # ---- route each task to its pass ----------------------------------
    cap = engine.anchor_cap
    arange = np.arange
    backward_groups: dict[int, _Group] = {}
    forward_groups: dict[int, _Group] = {}
    seed_tasks: list[tuple] = []
    fallback_items: list[tuple] = []  # (global item index, info, slot)
    store_records: list[tuple] = []   # (task position, uid, slot, emb, complete)
    bundles: dict[object, tuple] = {}
    for position, info in enumerate(infos):
        tids = task_tids[position]
        if not tids:
            continue
        t_tids = np.asarray(tids, dtype=np.int64)
        items_tid_parts.append(t_tids)
        meta = metas[position]
        kind = meta[0]
        base = int(bounds[position])
        if kind == _EMPTY:
            results[base : base + len(tids)] = True
            continue
        if kind == _SEED:
            seed_tasks.append(
                (position, info, meta, base, np.searchsorted(tid_arr, t_tids))
            )
            continue
        bundle = None
        if kind != _FULL:
            parent_store = info.parent_entries
            if parent_store:
                puid = info.task.parent_uid
                bundle = bundles.get(puid)
                if bundle is None:
                    bundle = _bundle_of(parent_store)
                    bundles[puid] = bundle
        if bundle is None:
            # FULL tasks and extensions whose parent has no stored anchors.
            for j, slot in enumerate(np.searchsorted(tid_arr, t_tids).tolist()):
                fallback_items.append((base + j, info, slot))
            continue
        group_map = backward_groups if kind == _BACKWARD else forward_groups
        width = bundle[3].shape[1]
        group = group_map.get(width)
        if group is None:
            group = group_map[width] = _Group()
        group.t_tids.append(t_tids)
        group.bases.append(base)
        group.task_pos.append(position)
        group.metas.append(meta)
        group.pords.append(group.add_parent(info.task.parent_uid, bundle))

    # ---- backward pass: one probe of the global edge keys -------------
    for group in backward_groups.values():
        assembled = _assemble(
            group, tid_arr, versions, fallback_items, infos, stats, meta_width=3
        )
        if assembled is None:
            continue
        (gidx, slots, task_pos, counts, cum, item_of_row, anchors,
         metas_arr, complete) = assembled
        n_it = gidx.size
        n_rows = anchors.shape[0]
        vb_rows = vbase[slots][item_of_row]
        row_ix = arange(n_rows)
        src = anchors[row_ix, metas_arr[item_of_row, 0]] + vb_rows
        tgt = anchors[row_ix, metas_arr[item_of_row, 1]] + vb_rows
        keys = src * n_global + tgt
        if g_ekeys.size:
            pos = np.searchsorted(g_ekeys, keys)
            pos_c = np.minimum(pos, g_ekeys.size - 1)
            ok = (g_ekeys[pos_c] == keys) & (
                g_elbl[pos_c] == metas_arr[item_of_row, 2]
            )
        else:
            ok = np.zeros(n_rows, dtype=bool)
        hit_flats = np.flatnonzero(ok)
        ok_cum = np.empty(n_rows + 1, dtype=np.int64)
        ok_cum[0] = 0
        np.cumsum(ok, dtype=np.int64, out=ok_cum[1:])
        firsts = ok_cum[cum[:-1]]
        hit_counts = ok_cum[cum[1:]] - firsts
        kept = np.minimum(hit_counts, cap)
        if hit_flats.size:
            item_of_hit = item_of_row[hit_flats]
            selected = hit_flats[
                arange(hit_flats.size) - firsts[item_of_hit] < kept[item_of_hit]
            ]
            selected_anchors = anchors[selected]
        sel_bounds = np.empty(n_it + 1, dtype=np.int64)
        sel_bounds[0] = 0
        np.cumsum(kept, out=sel_bounds[1:])
        _finish_extension_pass(
            stats, results, fallback_items, store_records, infos,
            gidx, slots, complete, task_pos,
            hit_counts, sel_bounds,
            selected_anchors if hit_flats.size else None, cap,
        )

    # ---- forward pass: one ragged adjacency expansion per width -------
    for group in forward_groups.values():
        assembled = _assemble(
            group, tid_arr, versions, fallback_items, infos, stats, meta_width=4
        )
        if assembled is None:
            continue
        (gidx, slots, task_pos, counts, cum, item_of_row, anchors,
         metas_arr, complete) = assembled
        n_it = gidx.size
        n_rows = anchors.shape[0]
        vb_rows = vbase[slots][item_of_row]
        anchored = anchors[arange(n_rows), metas_arr[item_of_row, 0]] + vb_rows
        use_out = metas_arr[item_of_row, 3] == 1
        starts = np.where(use_out, g_out_start[anchored], g_in_start[anchored])
        degrees = np.where(use_out, g_out_deg[anchored], g_in_deg[anchored])
        flat_starts = np.empty(n_rows + 1, dtype=np.int64)
        flat_starts[0] = 0
        np.cumsum(degrees, out=flat_starts[1:])
        total = int(flat_starts[-1])
        item_flat_starts = flat_starts[cum[:-1]]
        item_flat_ends = flat_starts[cum[1:]]
        if total:
            row_of = np.repeat(arange(n_rows), degrees)
            flat = starts[row_of] + (arange(total) - flat_starts[:-1][row_of])
            found = g_all_nbr[flat]
            item_of_flat = item_of_row[row_of]
            ok = (g_all_lbl[flat] == metas_arr[item_of_flat, 1]) & (
                g_vlab[found] == metas_arr[item_of_flat, 2]
            )
            found_local = found - vb_rows[row_of]
            # Injectivity: the new vertex must be outside its anchor
            # (column-wise to avoid materialising the 2-D broadcast).
            for column in range(anchors.shape[1]):
                ok &= found_local != anchors[row_of, column]
            hit_flats = np.flatnonzero(ok)
            ok_cum = np.empty(total + 1, dtype=np.int64)
            ok_cum[0] = 0
            np.cumsum(ok, dtype=np.int64, out=ok_cum[1:])
            firsts = ok_cum[item_flat_starts]
            hit_counts = ok_cum[item_flat_ends] - firsts
        else:
            hit_flats = empty_i64
            firsts = np.zeros(n_it, dtype=np.int64)
            hit_counts = np.zeros(n_it, dtype=np.int64)
        kept = np.minimum(hit_counts, cap)
        if hit_flats.size:
            item_of_hit = item_of_flat[hit_flats]
            selected = hit_flats[
                arange(hit_flats.size) - firsts[item_of_hit] < kept[item_of_hit]
            ]
            rows_selected = row_of[selected]
            selected_anchors = np.concatenate(
                [anchors[rows_selected], found_local[selected][:, None]], axis=1
            )
        sel_bounds = np.empty(n_it + 1, dtype=np.int64)
        sel_bounds[0] = 0
        np.cumsum(kept, out=sel_bounds[1:])
        _finish_extension_pass(
            stats, results, fallback_items, store_records, infos,
            gidx, slots, complete, task_pos,
            hit_counts, sel_bounds,
            selected_anchors if hit_flats.size else None, cap,
        )

    # ---- single-edge seeding from the triple buckets ------------------
    for position, info, meta, base, t_slots in seed_tasks:
        triple = meta[1]
        flip = meta[2] != 0
        uid = info.task.uid
        for j, slot in enumerate(t_slots.tolist()):
            stats.anchor_seeds += 1
            pairs = col_list[slot].seed_pairs(t_indexes[slot], triple)
            n_pairs = pairs.shape[0]
            if n_pairs == 0:
                continue
            taken = pairs if n_pairs <= cap else pairs[:cap]
            # Seed-pair rows are (source, target); flip when the pattern
            # maps its source to position 1.
            embeddings = taken if not flip else taken[:, ::-1]
            store_records.append((position, uid, slot, embeddings, n_pairs <= cap))
            results[base + j] = True

    # ---- full-search fallback (routed + extension misses) -------------
    for gitem, info, slot in fallback_items:
        stats.anchor_fallbacks += 1
        found = engine._compact_embeddings(info.index, t_indexes[slot], max_count=cap)
        if not found:
            continue
        n_vertices = info.index.compact.n_vertices
        embeddings = np.asarray(
            [[mapping[p] for p in range(n_vertices)] for mapping in found],
            dtype=np.int64,
        ).reshape(len(found), n_vertices)
        store_records.append(
            (_position_of(bounds, gitem), info.task.uid, slot, embeddings,
             len(found) < cap)
        )
        results[gitem] = True

    # ---- verdicts: contiguous per-task slices of the hit items --------
    if n_items:
        items_tid = np.concatenate(items_tid_parts)
        hit_positions = np.flatnonzero(results)
        hit_tids = items_tid[hit_positions].tolist()
        cuts = np.searchsorted(hit_positions, bounds).tolist()
        for position, info in enumerate(infos):
            info.hits = hit_tids[cuts[position] : cuts[position + 1]]

    # A task that finishes below its bound would have aborted mid-scan in
    # the python kernel (``hits + remaining`` drops under ``abort_below``
    # on the last scheduled tid at the latest), so tallying one abort per
    # such task keeps the counter kernel-identical.
    for info in infos:
        abort_below = info.task.abort_below
        if abort_below is not None and not info.dead and len(info.hits) < abort_below:
            stats.support_aborts += 1

    # ---- deferred, survival-gated anchor stores ------------------------
    store = engine._store_anchors
    versions_list = versions.tolist()
    for position, uid, slot, embeddings, complete in store_records:
        info = infos[position]
        abort_below = info.task.abort_below
        if abort_below is not None and len(info.hits) < abort_below:
            continue
        store(uid, tid_list[slot], embeddings, complete, versions_list[slot])

    return [info.hits for info in infos]


def _position_of(bounds, gitem):
    """The task position owning global item *gitem* (bisect on bounds)."""
    return int(np.searchsorted(bounds, gitem, side="right")) - 1


def _finish_extension_pass(
    stats, results, fallback_items, store_records, infos,
    gidx, slots, complete, task_pos,
    hit_counts, sel_bounds, selected_anchors, cap,
):
    """Verdicts, rejects, and store records for one extension pass."""
    hit_mask = hit_counts > 0
    results[gidx[hit_mask]] = True
    zero = ~hit_mask
    stats.anchor_complete_rejects += int((zero & complete).sum())
    # Zero hits against an incomplete parent set prove nothing: full search.
    for k in np.flatnonzero(zero & ~complete).tolist():
        fallback_items.append(
            (int(gidx[k]), infos[int(task_pos[k])], int(slots[k]))
        )
    if selected_anchors is None:
        return
    hit_items = np.flatnonzero(hit_mask).tolist()
    sel_bounds_list = sel_bounds.tolist()
    hit_counts_list = hit_counts.tolist()
    task_pos_list = task_pos.tolist()
    slots_list = slots.tolist()
    complete_list = complete.tolist()
    for k in hit_items:
        position = task_pos_list[k]
        info = infos[position]
        store_records.append(
            (
                position,
                info.task.uid,
                slots_list[k],
                selected_anchors[sel_bounds_list[k] : sel_bounds_list[k + 1]],
                complete_list[k] and hit_counts_list[k] < cap,
            )
        )


__all__ = ["support_with_embeddings", "require_numpy"]
