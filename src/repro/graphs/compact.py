"""Compact integer-indexed representation of labeled directed graphs.

The mining layers issue thousands of subgraph-isomorphism queries against
the same graphs, and the dict-of-dicts :class:`~repro.graphs.labeled_graph.
LabeledGraph` makes every one of them pay for hashable-key lookups and
string label comparisons.  :class:`CompactGraph` is the kernel-side
representation: vertices are dense integers ``0..n-1``, every vertex and
edge label is interned to a small integer through a shared
:class:`LabelTable`, and adjacency is stored as per-vertex tuples of
``(neighbour, edge-label-id)`` pairs in both directions, plus a flat
``(source, target) -> label-id`` map for O(1) edge checks.

A :class:`CompactGraph` is immutable once built.  Conversion is lossless:
:func:`CompactGraph.from_labeled` remembers the original vertex
identifiers and :meth:`CompactGraph.to_labeled` reconstructs an equal
:class:`LabeledGraph` (same vertices, labels, and edges).
"""

from __future__ import annotations

from typing import Hashable, Iterator, Sequence

from repro.graphs.labeled_graph import Edge, LabeledGraph, VertexId


class LabelTable:
    """Interns arbitrary hashable labels to dense integer ids.

    One table is shared across a whole corpus (all transactions, patterns,
    and hosts seen by a :class:`~repro.graphs.engine.MatchEngine`) so that
    label equality anywhere in the kernel is an integer comparison.
    """

    __slots__ = ("_ids", "_labels")

    def __init__(self) -> None:
        self._ids: dict[Hashable, int] = {}
        self._labels: list[Hashable] = []

    def intern(self, label: Hashable) -> int:
        """The id of *label*, assigning a fresh one on first sight."""
        existing = self._ids.get(label)
        if existing is not None:
            return existing
        new_id = len(self._labels)
        self._ids[label] = new_id
        self._labels.append(label)
        return new_id

    def snapshot(self, start: int = 0) -> list[Hashable]:
        """The labels interned since position *start*, in id order.

        The table is append-only, so ``snapshot(n)`` is exactly the delta a
        replica that has already seen the first ``n`` entries needs in
        order to catch up (see :meth:`extend`).  Shipping deltas is how the
        parallel runtime keeps worker-side label ids identical to the
        parent's without ever re-interning label objects.
        """
        return self._labels[start:]

    def extend(self, labels: Sequence[Hashable]) -> None:
        """Append *labels* in order, replicating another table's tail.

        Ids are assigned sequentially, so extending a replica with the
        parent's :meth:`snapshot` delta keeps the two tables id-compatible.
        Labels already present raise: that means the replica diverged.
        """
        for label in labels:
            if label in self._ids:
                raise ValueError(
                    f"label {label!r} already interned; replica table diverged"
                )
            self._ids[label] = len(self._labels)
            self._labels.append(label)

    def __getstate__(self) -> tuple[list[Hashable]]:
        # A 1-tuple, never the bare list: an empty state would be falsy and
        # pickle would skip __setstate__, leaving the slots unset.
        return (self._labels,)

    def __setstate__(self, state: tuple[list[Hashable]]) -> None:
        self._labels = list(state[0])
        self._ids = {label: index for index, label in enumerate(self._labels)}

    def lookup(self, label: Hashable) -> int | None:
        """The id of *label*, or ``None`` if it was never interned.

        A pattern label absent from the table cannot occur in any graph
        already interned through it — a free rejection for the matcher.
        """
        return self._ids.get(label)

    def label(self, label_id: int) -> Hashable:
        """The original label object for *label_id*."""
        return self._labels[label_id]

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._ids


class CompactGraph:
    """Immutable integer-indexed labeled directed graph.

    Attributes
    ----------
    n_vertices, n_edges:
        Sizes.
    vertex_labels:
        ``vertex_labels[v]`` is the interned label id of vertex ``v``.
    out_adj / in_adj:
        ``out_adj[v]`` is a tuple of ``(successor, edge_label_id)`` pairs;
        ``in_adj[v]`` the mirrored ``(predecessor, edge_label_id)`` pairs.
    edge_label_of:
        ``(source, target) -> edge_label_id`` for O(1) edge lookups.
    vertex_ids:
        The original :class:`LabeledGraph` vertex identifiers, position
        ``v`` holding the identifier compact vertex ``v`` came from.
    table:
        The shared :class:`LabelTable` the labels were interned through.
    """

    __slots__ = (
        "name",
        "n_vertices",
        "n_edges",
        "vertex_labels",
        "out_adj",
        "in_adj",
        "edge_label_of",
        "vertex_ids",
        "table",
        "_columns",
    )

    def __init__(
        self,
        name: str,
        vertex_labels: Sequence[int],
        edges: Sequence[tuple[int, int, int]],
        vertex_ids: Sequence[VertexId],
        table: LabelTable,
    ) -> None:
        self.name = name
        self.n_vertices = len(vertex_labels)
        self.n_edges = len(edges)
        self.vertex_labels = tuple(vertex_labels)
        self.vertex_ids = tuple(vertex_ids)
        self.table = table
        out_lists: list[list[tuple[int, int]]] = [[] for _ in range(self.n_vertices)]
        in_lists: list[list[tuple[int, int]]] = [[] for _ in range(self.n_vertices)]
        edge_label_of: dict[tuple[int, int], int] = {}
        for source, target, label_id in edges:
            out_lists[source].append((target, label_id))
            in_lists[target].append((source, label_id))
            edge_label_of[(source, target)] = label_id
        self.out_adj = tuple(tuple(pairs) for pairs in out_lists)
        self.in_adj = tuple(tuple(pairs) for pairs in in_lists)
        self.edge_label_of = edge_label_of
        # Lazily built columnar view (see :meth:`columns`); derived data,
        # so it is deliberately absent from the wire/pickle forms.
        self._columns = None

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_labeled(cls, graph: LabeledGraph, table: LabelTable) -> "CompactGraph":
        """Compact *graph*, interning its labels into *table* (lossless)."""
        vertex_ids = list(graph.vertices())
        position = {vertex: index for index, vertex in enumerate(vertex_ids)}
        intern = table.intern
        vertex_labels = [intern(graph.vertex_label(vertex)) for vertex in vertex_ids]
        # Read the adjacency dicts directly: this runs once per indexed
        # graph and is the hottest part of index construction, so avoid
        # materialising an Edge record per edge.
        edges = [
            (position[source], position[target], intern(label))
            for source, targets in graph._succ.items()
            for target, label in targets.items()
        ]
        return cls(
            name=graph.name,
            vertex_labels=vertex_labels,
            edges=edges,
            vertex_ids=vertex_ids,
            table=table,
        )

    def extended(
        self,
        source_pos: int,
        target_pos: int,
        edge_label: Hashable,
        new_vertex_label: Hashable | None,
        child: LabeledGraph,
    ) -> "CompactGraph":
        """The compact form of *child* — this graph plus one edge — derived
        incrementally.

        *child* must be this graph's labeled form extended by exactly one
        edge ``source_pos -> target_pos`` labeled *edge_label*; when
        *new_vertex_label* is not ``None`` the edge's new endpoint is a
        fresh vertex appended after the existing ones (the candidate
        generator's convention).  The result is field-for-field identical
        to ``from_labeled(child, table)`` — including adjacency tuple
        order, which downstream columnar views and anchor enumeration
        inherit — at a fraction of the rebuild cost: candidate generation
        compacts thousands of one-edge extensions per mining level.
        """
        table = self.table
        label_id = table.intern(edge_label)
        if new_vertex_label is not None:
            vertex_labels = self.vertex_labels + (table.intern(new_vertex_label),)
            out_adj = list(self.out_adj) + [()]
            in_adj = list(self.in_adj) + [()]
        else:
            vertex_labels = self.vertex_labels
            out_adj = list(self.out_adj)
            in_adj = list(self.in_adj)
        # from_labeled iterates sources in position order, each source's
        # targets in insertion order: the new edge lands last in its
        # source's out-bucket, and in its target's in-bucket just before
        # the first pair with a larger source position.
        out_adj[source_pos] = out_adj[source_pos] + ((target_pos, label_id),)
        bucket = in_adj[target_pos]
        at = 0
        while at < len(bucket) and bucket[at][0] < source_pos:
            at += 1
        in_adj[target_pos] = bucket[:at] + ((source_pos, label_id),) + bucket[at:]
        clone = object.__new__(CompactGraph)
        clone.name = child.name
        clone.n_vertices = len(vertex_labels)
        clone.n_edges = self.n_edges + 1
        clone.vertex_labels = vertex_labels
        clone.vertex_ids = tuple(child._vertex_labels)
        clone.table = table
        clone.out_adj = tuple(out_adj)
        clone.in_adj = tuple(in_adj)
        clone.edge_label_of = {
            (source, target): pair_label
            for source, pairs in enumerate(clone.out_adj)
            for target, pair_label in pairs
        }
        clone._columns = None
        return clone

    def to_wire(self) -> tuple:
        """The graph's table-free integer form, ready for cheap pickling.

        The wire tuple carries only dense integers (plus the name and the
        original vertex identifiers) — no :class:`LabelTable` reference —
        so shipping a graph to a worker process costs bytes proportional
        to the graph, not to the corpus vocabulary.  The receiver passes a
        table whose ids match the sender's (kept in sync via
        :meth:`LabelTable.snapshot` / :meth:`LabelTable.extend`) to
        :meth:`from_wire`; labels are never re-interned.
        """
        edges = [
            (source, target, label_id)
            for (source, target), label_id in self.edge_label_of.items()
        ]
        return (self.name, self.vertex_labels, edges, self.vertex_ids)

    @classmethod
    def from_wire(cls, wire: tuple, table: LabelTable) -> "CompactGraph":
        """Rebuild a graph from :meth:`to_wire` output against *table*."""
        name, vertex_labels, edges, vertex_ids = wire
        return cls(
            name=name,
            vertex_labels=vertex_labels,
            edges=edges,
            vertex_ids=vertex_ids,
            table=table,
        )

    def to_buffer(self) -> bytes:
        """The graph as one contiguous flat buffer (versioned header,
        varint-packed labels and edge triples) — the zero-copy wire's
        unit of shipment.  See :mod:`repro.runtime.wire` for the layout.

        Raises :class:`~repro.runtime.wire.WireFormatError` for graphs
        whose vertex ids fall outside the codec's type universe; callers
        shipping arbitrary graphs should catch it and fall back to
        :meth:`to_wire` + pickle.
        """
        # Imported lazily: repro.runtime pulls in this module at package
        # init, so a top-level import here would be circular.
        from repro.runtime.wire import encode_graph_wire

        return encode_graph_wire(self.to_wire())

    @classmethod
    def from_buffer(cls, buffer: bytes, table: LabelTable) -> "CompactGraph":
        """Rebuild a graph from :meth:`to_buffer` output against *table*."""
        from repro.runtime.wire import decode_graph_wire

        return cls.from_wire(decode_graph_wire(buffer), table)

    def __reduce__(self):
        # Rebuild via __init__ from the wire tuple; the shared table rides
        # along (pickle deduplicates it when several graphs share one).
        name, vertex_labels, edges, vertex_ids = self.to_wire()
        return (CompactGraph, (name, vertex_labels, edges, vertex_ids, self.table))

    def extend(
        self,
        extension: tuple[int, int, bool],
        edge_label_id: int,
        new_vertex_label_id: int | None = None,
    ) -> "CompactGraph":
        """This graph plus one edge, in candidate-generation layout.

        *extension* is the FSG extension descriptor ``(source_position,
        target_position, has_new_vertex)`` in compact vertex positions.
        The result matches what compacting the extended
        :class:`LabeledGraph` candidate would produce — existing vertices
        keep their positions, a new vertex is appended last with the
        ``p<n>``-style identifier candidate generation would have chosen —
        which is what lets a mining-session shard rebuild a level-(k+1)
        candidate from its stored parent plus a few integers instead of
        receiving the full wire tuple.  (Adjacency *order* may differ from
        the wire form when the new edge's source is not the last-inserted
        vertex; order never affects match verdicts, only which capped
        anchors get stored.)
        """
        source, target, has_new = extension
        vertex_labels = list(self.vertex_labels)
        vertex_ids = list(self.vertex_ids)
        if has_new:
            if new_vertex_label_id is None:
                raise ValueError("a new-vertex extension needs the new vertex's label")
            vertex_labels.append(new_vertex_label_id)
            fresh = self.n_vertices
            while f"p{fresh}" in vertex_ids:  # mirrors _fresh_vertex_name
                fresh += 1
            vertex_ids.append(f"p{fresh}")
        bound = len(vertex_labels)
        if not (0 <= source < bound and 0 <= target < bound):
            raise ValueError(f"extension {extension!r} out of range for {bound} vertices")
        edges = [
            (src, dst, label_id) for (src, dst), label_id in self.edge_label_of.items()
        ]
        edges.append((source, target, edge_label_id))
        return CompactGraph(
            name=self.name,
            vertex_labels=vertex_labels,
            edges=edges,
            vertex_ids=vertex_ids,
            table=self.table,
        )

    def to_labeled(self) -> LabeledGraph:
        """Reconstruct the original :class:`LabeledGraph` (lossless inverse)."""
        graph = LabeledGraph(name=self.name)
        for vertex, label_id in enumerate(self.vertex_labels):
            graph.add_vertex(self.vertex_ids[vertex], self.table.label(label_id))
        for (source, target), label_id in self.edge_label_of.items():
            graph.add_edge(
                self.vertex_ids[source],
                self.vertex_ids[target],
                self.table.label(label_id),
            )
        return graph

    def columns(self):
        """The (cached) columnar view of this graph (numpy required).

        Built lazily on first use by the vectorized match kernel; the
        graph is immutable, so the cache never invalidates — a mutated
        :class:`LabeledGraph` transaction is re-compacted by the engine's
        version discipline and gets fresh columns with its fresh compact
        form.
        """
        columns = self._columns
        if columns is None:
            from repro.graphs.columns import GraphColumns

            columns = GraphColumns(self)
            self._columns = columns
        return columns

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def out_degree(self, vertex: int) -> int:
        """Number of outgoing edges of compact vertex *vertex*."""
        return len(self.out_adj[vertex])

    def in_degree(self, vertex: int) -> int:
        """Number of incoming edges of compact vertex *vertex*."""
        return len(self.in_adj[vertex])

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the edge ``source -> target`` exists."""
        return (source, target) in self.edge_label_of

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges in original-identifier terms."""
        for (source, target), label_id in self.edge_label_of.items():
            yield Edge(
                self.vertex_ids[source],
                self.vertex_ids[target],
                self.table.label(label_id),
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompactGraph(name={self.name!r}, vertices={self.n_vertices}, "
            f"edges={self.n_edges})"
        )
