"""Per-graph matching indexes over :class:`~repro.graphs.compact.CompactGraph`.

Candidate generation is the hot inner step of subgraph isomorphism: for
every pattern vertex the matcher needs the target vertices with the same
label and sufficient in/out degree.  The legacy path rescanned every
target vertex per pattern vertex per query; a :class:`GraphIndex` is built
once per graph and turns candidate generation into a bucket lookup plus a
degree filter.

The index also precomputes the invariants the engine uses for early
rejection — vertex/edge label histograms and the set of
``(source-label, edge-label, target-label)`` triples — and memoizes the
more expensive :func:`~repro.graphs.canonical.graph_invariant` and
:func:`~repro.graphs.canonical.canonical_code` fingerprints so they are
computed at most once per graph no matter how many dedup or cache probes
ask for them.
"""

from __future__ import annotations

from repro.graphs.canonical import canonical_code, graph_invariant, refined_colours
from repro.graphs.compact import CompactGraph
from repro.graphs.labeled_graph import LabeledGraph

#: Sentinel distinguishing "never computed" from a ``None``-ish result.
_UNSET = object()


class GraphIndex:
    """Precomputed matching structures for one :class:`CompactGraph`."""

    __slots__ = (
        "compact",
        "by_label",
        "vertex_label_hist",
        "edge_label_hist",
        "triples",
        "_triple_edges",
        "_labeled_form",
        "_colours",
        "_invariant",
        "_canonical_code",
        "_canonical_error",
    )

    def __init__(self, compact: CompactGraph) -> None:
        self.compact = compact
        by_label: dict[int, list[int]] = {}
        vertex_label_hist: dict[int, int] = {}
        for vertex, label_id in enumerate(compact.vertex_labels):
            by_label.setdefault(label_id, []).append(vertex)
            vertex_label_hist[label_id] = vertex_label_hist.get(label_id, 0) + 1
        edge_label_hist: dict[int, int] = {}
        triples: set[tuple[int, int, int]] = set()
        labels = compact.vertex_labels
        for source, pairs in enumerate(compact.out_adj):
            source_label = labels[source]
            for target, edge_label in pairs:
                edge_label_hist[edge_label] = edge_label_hist.get(edge_label, 0) + 1
                triples.add((source_label, edge_label, labels[target]))
        self.by_label = by_label
        self.vertex_label_hist = vertex_label_hist
        self.edge_label_hist = edge_label_hist
        self.triples = triples
        self._triple_edges: dict[tuple[int, int, int], tuple[tuple[int, int], ...]] | None = None
        self._labeled_form: LabeledGraph | None = None
        self._colours = None
        self._invariant = _UNSET
        self._canonical_code = _UNSET
        self._canonical_error: Exception | None = None

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------
    def candidates(self, label_id: int, min_out: int, min_in: int) -> list[int]:
        """Target vertices with label *label_id* and at least the given degrees."""
        bucket = self.by_label.get(label_id)
        if not bucket:
            return []
        compact = self.compact
        return [
            vertex
            for vertex in bucket
            if len(compact.out_adj[vertex]) >= min_out
            and len(compact.in_adj[vertex]) >= min_in
        ]

    def columns(self):
        """The underlying graph's (cached) columnar view — see
        :meth:`CompactGraph.columns`."""
        return self.compact.columns()

    def triple_edges(self, triple: tuple[int, int, int]) -> tuple[tuple[int, int], ...]:
        """The ``(source, target)`` edges realising *triple* in this graph.

        This is the anchor-seeding lookup of the embedding store: every
        embedding of a single-edge pattern is exactly one of these pairs
        (minus self-loops, which a two-vertex pattern cannot map onto —
        the caller filters those).  The bucket map is built lazily on
        first use and covers every edge, so repeated seeding of different
        level-1 patterns against the same transaction costs one dict
        lookup each.
        """
        buckets = self._triple_edges
        if buckets is None:
            grouped: dict[tuple[int, int, int], list[tuple[int, int]]] = {}
            labels = self.compact.vertex_labels
            for source, pairs in enumerate(self.compact.out_adj):
                source_label = labels[source]
                for target, edge_label in pairs:
                    key = (source_label, edge_label, labels[target])
                    grouped.setdefault(key, []).append((source, target))
            buckets = {key: tuple(pairs) for key, pairs in grouped.items()}
            self._triple_edges = buckets
        return buckets.get(triple, ())

    # ------------------------------------------------------------------
    # Early-rejection invariants
    # ------------------------------------------------------------------
    def could_contain(self, pattern: "GraphIndex") -> bool:
        """Cheap necessary conditions for *pattern* to embed in this graph.

        Checks sizes, label-histogram domination, and that every pattern
        edge triple occurs in this graph.  A ``False`` verdict is
        definitive; ``True`` means the full matcher must decide.
        """
        if pattern.compact.n_vertices > self.compact.n_vertices:
            return False
        if pattern.compact.n_edges > self.compact.n_edges:
            return False
        hist = self.vertex_label_hist
        for label_id, count in pattern.vertex_label_hist.items():
            if hist.get(label_id, 0) < count:
                return False
        edge_hist = self.edge_label_hist
        for label_id, count in pattern.edge_label_hist.items():
            if edge_hist.get(label_id, 0) < count:
                return False
        return pattern.triples <= self.triples

    # ------------------------------------------------------------------
    # Memoized fingerprints
    # ------------------------------------------------------------------
    def invariant(self) -> str:
        """Memoized :func:`graph_invariant` of the underlying graph."""
        if self._invariant is _UNSET:
            self._invariant = graph_invariant(self._labeled(), colours=self._refined())
        return self._invariant

    def canonical(self, max_orderings: int = 50_000) -> str:
        """Memoized :func:`canonical_code`; re-raises the memoized failure.

        :class:`~repro.graphs.canonical.CanonicalizationError` is also
        memoized so a hopelessly symmetric graph pays the failed search at
        most once.
        """
        if self._canonical_error is not None:
            raise self._canonical_error
        if self._canonical_code is _UNSET:
            try:
                self._canonical_code = canonical_code(
                    self._labeled(), max_orderings=max_orderings, colours=self._refined()
                )
            except Exception as error:
                self._canonical_error = error
                raise
        return self._canonical_code

    def _labeled(self) -> LabeledGraph:
        if self._labeled_form is None:
            self._labeled_form = self.compact.to_labeled()
        return self._labeled_form

    def _refined(self):
        # One colour refinement serves both fingerprints (the strings are
        # byte-identical to the unshared computation).
        if self._colours is None:
            self._colours = refined_colours(self._labeled())
        return self._colours

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GraphIndex({self.compact!r})"
