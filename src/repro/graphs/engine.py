"""The shared, indexed subgraph-matching engine.

Every mining layer in this reproduction — FSG support counting, SUBDUE
instance grouping, planted-pattern recall, maximal-pattern filtering —
bottoms out in label-preserving subgraph isomorphism.  A
:class:`MatchEngine` is the one place those queries go through:

* graphs are compacted to integer form (:mod:`repro.graphs.compact`)
  through a corpus-wide :class:`~repro.graphs.compact.LabelTable`, so
  label comparisons are integer comparisons;
* each graph gets a :class:`~repro.graphs.index.GraphIndex` built once
  and reused for every query against it (candidate buckets, label
  histograms, memoized invariants / canonical codes);
* queries start with invariant-based early rejection (sizes, label
  histograms, edge-triple containment) before any search;
* registered transactions get a TID-keyed LRU of
  ``(pattern canonical code, transaction id)`` match verdicts, so a
  pattern re-queried against the same transaction — across FSG levels or
  mining repetitions — is answered from cache;
* level-wise miners get the *embedding store*
  (:meth:`MatchEngine.support_with_embeddings`): bounded per-``(pattern,
  tid)`` anchor embeddings kept alongside the verdict LRU, so a
  level-(k+1) candidate — its parent plus exactly one edge — is answered
  by extending a stored parent embedding instead of searching from
  scratch, with the full search as correctness fallback.

Caching contract
----------------
Indexes are keyed on graph identity plus the graph's mutation counter
(:class:`~repro.graphs.labeled_graph.LabeledGraph` bumps an internal
version on every mutation), so mutating a graph after it was indexed is
safe: the next query rebuilds.  Verdict caching is only applied to
transactions registered via :meth:`MatchEngine.add_transactions` (the
engine holds strong references to those, so ids cannot be recycled), and
only for patterns whose exact canonical code is computable; symmetric
patterns that defeat canonicalisation are still matched, just never
verdict-cached.  As in :mod:`repro.graphs.canonical`, labels are assumed
to have distinct ``str()`` forms.
"""

from __future__ import annotations

import os
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.graphs.canonical import CanonicalizationError
from repro.graphs.compact import CompactGraph, LabelTable
from repro.graphs.index import GraphIndex
from repro.graphs.labeled_graph import LabeledGraph, VertexId
from repro.obs.tracer import get_tracer

#: Sentinel for "canonical code unavailable" pattern keys.
_NO_KEY = object()

#: Environment variable supplying the default match-kernel backend.
KERNEL_ENV = "REPRO_KERNEL"
#: Match-kernel backends understood by :class:`MatchEngine`.
KERNELS = ("python", "vectorized")


def resolve_kernel(kernel: str | None = None) -> str:
    """Validate *kernel*, falling back to ``REPRO_KERNEL`` when ``None``.

    ``"python"`` is the pure-python reference kernel (the differential
    oracle); ``"vectorized"`` routes the incremental support path through
    the numpy columnar kernel (:mod:`repro.graphs.vectorized`).  The
    vectorized choice is validated eagerly so a missing numpy fails here,
    with a clear message, rather than mid-mine.
    """
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV, "").strip() or "python"
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    if kernel == "vectorized":
        from repro.graphs.columns import require_numpy

        require_numpy()
    return kernel


@dataclass
class EngineStats:
    """Observable counters for benchmarking and tests."""

    indexes_built: int = 0
    searches: int = 0
    early_rejects: int = 0
    verdict_hits: int = 0
    verdict_misses: int = 0
    batch_calls: int = 0
    batch_patterns: int = 0
    anchor_seeds: int = 0
    anchor_extensions: int = 0
    anchor_complete_rejects: int = 0
    anchor_fallbacks: int = 0
    anchors_stored: int = 0
    support_aborts: int = 0

    def as_dict(self) -> dict[str, int]:
        """A plain-dict snapshot (stable keys, safe to ship across processes)."""
        return {
            "indexes_built": self.indexes_built,
            "searches": self.searches,
            "early_rejects": self.early_rejects,
            "verdict_hits": self.verdict_hits,
            "verdict_misses": self.verdict_misses,
            "batch_calls": self.batch_calls,
            "batch_patterns": self.batch_patterns,
            "anchor_seeds": self.anchor_seeds,
            "anchor_extensions": self.anchor_extensions,
            "anchor_complete_rejects": self.anchor_complete_rejects,
            "anchor_fallbacks": self.anchor_fallbacks,
            "anchors_stored": self.anchors_stored,
            "support_aborts": self.support_aborts,
        }


class _Entry:
    __slots__ = ("version", "index")

    def __init__(self, version: int, index: GraphIndex) -> None:
        self.version = version
        self.index = index


class _BatchedPattern:
    """Per-pattern state hoisted out of the transaction scan of a batch."""

    __slots__ = ("index", "key", "plans")

    def __init__(self, index: GraphIndex) -> None:
        self.index = index
        self.key: object = _NO_KEY
        self.plans: _Plan | None = None


@dataclass
class EmbeddingTask:
    """One pattern of an incremental support batch.

    ``extension`` describes the single edge the pattern adds over the
    parent identified by ``parent_uid``, in the pattern's *compact vertex
    positions*: ``(source_position, target_position, has_new_vertex)``.
    When ``has_new_vertex`` is true, the brand-new vertex is the one at
    the pattern's last position (candidate generation appends it), and it
    is whichever extension endpoint equals ``n_vertices - 1``.  Level-1
    patterns and patterns with no stored parent leave both ``parent_uid``
    and ``extension`` as ``None`` and are answered by anchor seeding /
    full search.

    ``abort_below`` is the early-abort bound: once even a hit on every
    remaining scheduled tid cannot lift the pattern's support to that
    count, its scan stops (the returned tid list is then a subset of the
    true support, but always of size ``< abort_below``, so a thresholding
    caller discards it either way).
    """

    pattern: "LabeledGraph | CompactGraph | GraphIndex"
    tids: Sequence[int]
    key: object = None
    uid: object = None
    parent_uid: object = None
    extension: tuple[int, int, bool] | None = None
    abort_below: int | None = None


class _AnchorEntry:
    """The stored embeddings of one ``(pattern uid, tid)`` pair.

    ``embeddings`` are position-indexed tuples: entry ``p`` is the
    transaction compact vertex that pattern compact vertex ``p`` maps to.
    ``complete`` records whether the tuple holds *every* embedding of the
    pattern in the transaction — only then can a failed extension be
    turned into a definitive "no embedding" verdict for a child.
    ``version`` pins the transaction's mutation counter at store time:
    like index entries and verdicts, anchors of a since-mutated
    transaction are dead state and must never be extended.
    """

    __slots__ = ("embeddings", "complete", "version")

    def __init__(
        self, embeddings: tuple[tuple[int, ...], ...], complete: bool, version: int
    ) -> None:
        self.embeddings = embeddings
        self.complete = complete
        self.version = version


class _IncrementalPattern:
    """Per-task state hoisted out of the incremental transaction scan."""

    __slots__ = ("index", "task", "key", "hits", "remaining", "dead", "parent_entries")

    def __init__(self, index: GraphIndex, task: EmbeddingTask) -> None:
        self.index = index
        self.task = task
        self.key: object = _NO_KEY
        self.hits: list[int] = []
        self.remaining = 0
        self.dead = False
        self.parent_entries: dict[int, _AnchorEntry] | None = None


class MatchEngine:
    """Indexed subgraph-isomorphism engine shared across mining layers."""

    def __init__(
        self,
        label_table: LabelTable | None = None,
        verdict_cache_size: int = 1 << 17,
        anchor_cap: int = 8,
        anchor_budget: int = 1 << 20,
        kernel: str | None = None,
    ) -> None:
        if anchor_cap < 1:
            raise ValueError(f"anchor_cap must be at least 1, got {anchor_cap}")
        self.table = label_table if label_table is not None else LabelTable()
        #: Match-kernel backend: ``"python"`` (the reference oracle) or
        #: ``"vectorized"`` (numpy columnar passes); ``None`` consults
        #: ``REPRO_KERNEL``.  Both produce identical verdicts and anchor
        #: sets — the knob trades implementation, never output.
        self.kernel = resolve_kernel(kernel)
        self.verdict_cache_size = verdict_cache_size
        #: Max embeddings kept per (pattern uid, tid) anchor entry.
        self.anchor_cap = anchor_cap
        #: Max embeddings kept across the whole store; once reached, new
        #: entries are simply not recorded (queries fall back to full
        #: search — slower, never wrong), so the store cannot grow
        #: unboundedly on adversarial corpora.
        self.anchor_budget = anchor_budget
        self.stats = EngineStats()
        self._entries: "weakref.WeakKeyDictionary[LabeledGraph, _Entry]" = (
            weakref.WeakKeyDictionary()
        )
        self._transactions: list[LabeledGraph | CompactGraph | None] = []
        # Parallel to _transactions: their index entries, bypassing the
        # weak dictionary on the per-tid hot path of support().  A None
        # in either list marks a released tid.
        self._transaction_entries: list[_Entry | None] = []
        self._verdicts: OrderedDict[tuple, bool] = OrderedDict()
        # Inverted edge-triple index over *compact* (immutable) registered
        # transactions: triple -> tids containing it.  Lets batch_support
        # reject whole transactions per pattern with set intersections
        # instead of per-(pattern, tid) could_contain calls.  Mutable
        # LabeledGraph transactions are deliberately excluded — their
        # triple sets can change after registration.
        self._compact_tids: set[int] = set()
        self._triple_tids: dict[tuple[int, int, int], set[int]] = {}
        # The embedding store: pattern uid -> tid -> anchor entry.  Uids
        # are caller-owned opaque tokens (the miner assigns one per
        # surviving candidate); anchors are engine-local and never cross
        # a process boundary.
        self._anchors: dict[object, dict[int, _AnchorEntry]] = {}
        self._anchor_load = 0
        # The session pattern store: uid -> GraphIndex of a candidate
        # pattern registered by a mining session.  Like anchors, uids are
        # caller-owned opaque tokens; unlike anchors the stored value is
        # the pattern itself, which is what lets a level-(k+1) candidate
        # be rebuilt from its stored parent plus one edge instead of
        # arriving as a full wire tuple.
        self._session_patterns: dict[object, GraphIndex] = {}

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def index_of(self, graph: LabeledGraph) -> GraphIndex:
        """The (cached) index of *graph*, rebuilt if the graph mutated."""
        version = getattr(graph, "_version", 0)
        entry = self._entries.get(graph)
        if entry is not None and entry.version == version:
            return entry.index
        index = GraphIndex(CompactGraph.from_labeled(graph, self.table))
        # The compact form round-trips losslessly, so the original graph
        # can serve as the index's labeled view — fingerprints skip the
        # to_labeled reconstruction.  Mutations bump the graph's version
        # and land in a fresh index, so the view cannot go stale here.
        index._labeled_form = graph
        self._entries[graph] = _Entry(version, index)
        self.stats.indexes_built += 1
        return index

    def compact_of(self, graph: LabeledGraph) -> CompactGraph:
        """The (cached) compact form of *graph*."""
        return self.index_of(graph).compact

    def adopt_compact(self, graph: LabeledGraph, compact: CompactGraph) -> GraphIndex:
        """Cache a pre-built compact form as *graph*'s index.

        *compact* must be field-for-field what
        :meth:`CompactGraph.from_labeled` would produce for *graph* (see
        :meth:`CompactGraph.extended`) — candidate generation derives
        child compacts from their parents' instead of rebuilding, and
        files them here so the support pass finds them ready.
        """
        if compact.table is not self.table:
            raise ValueError("compact form was interned through a different label table")
        version = getattr(graph, "_version", 0)
        index = GraphIndex(compact)
        index._labeled_form = graph
        self._entries[graph] = _Entry(version, index)
        self.stats.indexes_built += 1
        return index

    def graph_invariant(self, graph: LabeledGraph) -> str:
        """Memoized cheap isomorphism-invariant fingerprint of *graph*."""
        return self.index_of(graph).invariant()

    def canonical_code(self, graph: LabeledGraph, max_orderings: int = 50_000) -> str:
        """Memoized exact canonical code; raises :class:`CanonicalizationError`."""
        return self.index_of(graph).canonical(max_orderings=max_orderings)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def add_transactions(self, transactions: Iterable[LabeledGraph]) -> list[int]:
        """Register *transactions* for TID-based queries; returns their tids."""
        tids: list[int] = []
        for transaction in transactions:
            tid = len(self._transactions)
            self._transactions.append(transaction)
            self.index_of(transaction)
            self._transaction_entries.append(self._entries[transaction])
            tids.append(tid)
        return tids

    def add_compact_transactions(self, compacts: Iterable[CompactGraph]) -> list[int]:
        """Register already-compacted transactions; returns their tids.

        This is the runtime workers' registration path: the parent ships
        :class:`CompactGraph` wire forms interned through a table replica
        of this engine's table, so no label is ever re-interned and no
        :class:`LabeledGraph` is reconstructed.  Compact graphs are
        immutable, so their entries never go stale.
        """
        tids: list[int] = []
        for compact in compacts:
            if compact.table is not self.table:
                raise ValueError(
                    "compact transaction was interned through a different label table"
                )
            tid = len(self._transactions)
            self._transactions.append(compact)
            index = GraphIndex(compact)
            self._transaction_entries.append(_Entry(0, index))
            self.stats.indexes_built += 1
            self._compact_tids.add(tid)
            for triple in index.triples:
                self._triple_tids.setdefault(triple, set()).add(tid)
            tids.append(tid)
        return tids

    def release_transactions(self, tids: Iterable[int]) -> None:
        """Drop all state held for *tids*: references, verdicts, anchors.

        Tids are never reused (the slots stay occupied), so verdict-cache
        keys remain unambiguous — but entries for released tids can never
        hit again (a released tid raises before the cache is consulted),
        so they are evicted here rather than left to squat in the LRU and
        crowd out live verdicts.  A shared engine that serves many mining
        rounds must release each round's transactions or it retains every
        graph ever mined.  Querying a released tid raises.
        """
        released = set(tids)
        if not released:
            return
        for tid in released:
            if tid in self._compact_tids:
                entry = self._transaction_entries[tid]
                if entry is not None:
                    for triple in entry.index.triples:
                        bucket = self._triple_tids.get(triple)
                        if bucket is not None:
                            bucket.discard(tid)
                self._compact_tids.discard(tid)
            self._transactions[tid] = None
            self._transaction_entries[tid] = None
        stale = [key for key in self._verdicts if key[1] in released]
        for key in stale:
            del self._verdicts[key]
        for per_tid in self._anchors.values():
            for tid in released & per_tid.keys():
                self._anchor_load -= len(per_tid.pop(tid).embeddings)

    @property
    def n_transactions(self) -> int:
        """Number of transaction slots (including released ones)."""
        return len(self._transactions)

    def _transaction_index(self, tid: int) -> tuple[int, GraphIndex]:
        """The ``(version, fresh index)`` of registered transaction *tid*.

        The one per-tid refresh step shared by every support path:
        raises for released tids and rebuilds the index (updating the
        fast entry list) when the transaction mutated since it was last
        indexed.
        """
        target = self._transactions[tid]
        if target is None:
            raise KeyError(f"transaction {tid} has been released from this engine")
        version = getattr(target, "_version", 0)
        entry = self._transaction_entries[tid]
        if entry.version != version:
            self.index_of(target)
            entry = self._entries[target]
            self._transaction_entries[tid] = entry
        return version, entry.index

    def transaction(self, tid: int) -> LabeledGraph | CompactGraph:
        """The registered transaction with id *tid*; raises if released.

        Transactions registered through :meth:`add_compact_transactions`
        come back in compact form.
        """
        transaction = self._transactions[tid]
        if transaction is None:
            raise KeyError(f"transaction {tid} has been released from this engine")
        return transaction

    # ------------------------------------------------------------------
    # Matching API
    # ------------------------------------------------------------------
    def find_embeddings(
        self,
        pattern: LabeledGraph,
        target: LabeledGraph,
        max_count: int | None = None,
    ) -> list[dict[VertexId, VertexId]]:
        """All (or the first *max_count*) embeddings of *pattern* in *target*.

        Embeddings are injective, label-preserving, non-induced mappings
        returned in original vertex-identifier terms, exactly like the
        legacy :func:`repro.graphs.isomorphism.find_embeddings`.
        """
        if pattern.n_vertices == 0:
            return [{}]
        p_index = self.index_of(pattern)
        t_index = self.index_of(target)
        compact_maps = self._compact_embeddings(p_index, t_index, max_count)
        p_ids = p_index.compact.vertex_ids
        t_ids = t_index.compact.vertex_ids
        return [
            {p_ids[p_vertex]: t_ids[t_vertex] for p_vertex, t_vertex in mapping.items()}
            for mapping in compact_maps
        ]

    def find_embedding(
        self, pattern: LabeledGraph, target: LabeledGraph
    ) -> dict[VertexId, VertexId] | None:
        """The first embedding of *pattern* in *target*, or ``None``."""
        embeddings = self.find_embeddings(pattern, target, max_count=1)
        return embeddings[0] if embeddings else None

    def has_embedding(self, pattern: LabeledGraph, target: LabeledGraph) -> bool:
        """Whether *pattern* occurs in *target* (FSG occurrence semantics)."""
        if pattern.n_vertices == 0:
            return True
        p_index = self.index_of(pattern)
        t_index = self.index_of(target)
        return bool(self._compact_embeddings(p_index, t_index, max_count=1))

    def count_embeddings(
        self, pattern: LabeledGraph, target: LabeledGraph, limit: int | None = None
    ) -> int:
        """Number of distinct embeddings of *pattern* in *target* (up to *limit*)."""
        return len(self.find_embeddings(pattern, target, max_count=limit))

    def non_overlapping_embeddings(
        self,
        pattern: LabeledGraph,
        target: LabeledGraph,
        max_count: int | None = None,
    ) -> list[dict[VertexId, VertexId]]:
        """Greedy set of vertex-disjoint embeddings of *pattern* in *target*."""
        taken: set[VertexId] = set()
        selected: list[dict[VertexId, VertexId]] = []
        for mapping in self.find_embeddings(pattern, target):
            image = set(mapping.values())
            if image & taken:
                continue
            selected.append(mapping)
            taken |= image
            if max_count is not None and len(selected) >= max_count:
                break
        return selected

    def are_isomorphic(self, first: LabeledGraph, second: LabeledGraph) -> bool:
        """Exact label-preserving isomorphism between two graphs."""
        if first.n_vertices != second.n_vertices or first.n_edges != second.n_edges:
            return False
        if first.n_vertices == 0:
            return True
        f_index = self.index_of(first)
        s_index = self.index_of(second)
        if f_index.vertex_label_hist != s_index.vertex_label_hist:
            return False
        if f_index.edge_label_hist != s_index.edge_label_hist:
            return False
        # Equal vertex and edge counts make any full embedding a bijection
        # covering all edges, i.e. an isomorphism.
        return bool(self._compact_embeddings(f_index, s_index, max_count=1))

    def support(
        self,
        pattern: LabeledGraph,
        tids: Iterable[int] | None = None,
        min_support: int | None = None,
    ) -> frozenset[int]:
        """Registered transactions (restricted to *tids*) containing *pattern*.

        Verdicts are cached per ``(pattern canonical code, tid)`` so the
        same pattern re-queried against the same transaction — e.g. across
        FSG levels or mining repetitions — skips the search entirely.

        *min_support* arms the early-abort bound: once hits so far plus
        transactions left to scan cannot reach it, scanning stops and the
        partial hit set is returned.  The partial set is always smaller
        than *min_support*, so a caller that drops sub-threshold patterns
        behaves identically with or without the bound — only the wasted
        tail of the scan disappears.
        """
        p_index = self.index_of(pattern)
        pattern_key = self._pattern_key(p_index)
        scan = sorted(tids) if tids is not None else range(len(self._transactions))
        remaining = len(scan)
        supported: list[int] = []
        verdicts = self._verdicts
        stats = self.stats
        cacheable = pattern_key is not _NO_KEY
        for position, tid in enumerate(scan):
            if min_support is not None and len(supported) + (remaining - position) < min_support:
                stats.support_aborts += 1
                break
            version, t_index = self._transaction_index(tid)
            key = None
            if cacheable:
                key = (pattern_key, tid, version)
                cached = verdicts.get(key)
                if cached is not None:
                    verdicts.move_to_end(key)
                    stats.verdict_hits += 1
                    if cached:
                        supported.append(tid)
                    continue
                stats.verdict_misses += 1
            verdict = bool(self._compact_embeddings(p_index, t_index, max_count=1))
            if key is not None:
                verdicts[key] = verdict
                if len(verdicts) > self.verdict_cache_size:
                    verdicts.popitem(last=False)
            if verdict:
                supported.append(tid)
        return frozenset(supported)

    def support_count(
        self, pattern: LabeledGraph, tids: Iterable[int] | None = None
    ) -> int:
        """Number of registered transactions containing *pattern*."""
        return len(self.support(pattern, tids))

    def batch_support(
        self,
        patterns: Sequence[LabeledGraph | CompactGraph],
        tid_lists: Sequence[Iterable[int]] | None = None,
        pattern_keys: Sequence[object] | None = None,
    ) -> list[frozenset[int]]:
        """Supports of a whole pattern batch, one pass over the transactions.

        ``tid_lists[i]`` restricts pattern ``i`` to those registered
        transactions (``None`` scans every live transaction for every
        pattern).  The scan is transaction-major: each transaction's index
        entry is resolved once for the whole batch and its candidate
        buckets are filtered once per distinct ``(label, min-out, min-in)``
        requirement instead of once per pattern, and each pattern's
        matching order and edge-requirement plan is computed once instead
        of once per transaction.  Verdicts use the same
        ``(pattern canonical code, tid, version)`` LRU as :meth:`support`,
        so the two paths are interchangeable and return identical sets.

        Patterns may be given in compact form (the runtime workers' wire
        format); their labels must have been interned through this
        engine's table.  ``pattern_keys[i]``, when given, supplies pattern
        ``i``'s verdict-cache key precomputed elsewhere (a canonical-code
        string, or ``False`` for "canonicalisation fails, don't cache");
        ``None`` entries are computed here.  Canonical codes are the most
        expensive per-pattern setup, so a parent that already memoized
        them (candidate dedup does) should always pass them along rather
        than have every shard recompute them.
        """
        batched = [_BatchedPattern(self._index_of_any(pattern)) for pattern in patterns]
        if pattern_keys is not None and len(pattern_keys) != len(batched):
            raise ValueError("pattern_keys must align with patterns")
        for position, info in enumerate(batched):
            provided = pattern_keys[position] if pattern_keys is not None else None
            if provided is None:
                info.key = self._pattern_key(info.index)
            elif provided is False:
                info.key = _NO_KEY
            else:
                info.key = provided
        self.stats.batch_calls += 1
        self.stats.batch_patterns += len(batched)

        if tid_lists is None:
            live = [
                tid
                for tid, transaction in enumerate(self._transactions)
                if transaction is not None
            ]
            tid_lists = [live] * len(batched)
        elif len(tid_lists) != len(batched):
            raise ValueError("tid_lists must align with patterns")

        per_tid: dict[int, list[int]] = {}
        compact_tids = self._compact_tids
        stats = self.stats
        for position, tids in enumerate(tid_lists):
            tids = list(tids)
            # Whole-transaction rejection via the inverted triple index:
            # one set intersection per pattern replaces a could_contain
            # call per (pattern, compact transaction) pair.
            allowed = self._triple_filter(batched[position].index)
            if allowed is not None and compact_tids:
                kept = [
                    tid for tid in tids if tid not in compact_tids or tid in allowed
                ]
                stats.early_rejects += len(tids) - len(kept)
                tids = kept
            for tid in tids:
                per_tid.setdefault(tid, []).append(position)

        supported: list[list[int]] = [[] for _ in batched]
        verdicts = self._verdicts
        for tid in sorted(per_tid):
            version, t_index = self._transaction_index(tid)
            candidate_cache: dict[tuple[int, int, int], list[int]] = {}
            for position in per_tid[tid]:
                info = batched[position]
                key = None
                if info.key is not _NO_KEY:
                    key = (info.key, tid, version)
                    cached = verdicts.get(key)
                    if cached is not None:
                        verdicts.move_to_end(key)
                        stats.verdict_hits += 1
                        if cached:
                            supported[position].append(tid)
                        continue
                    stats.verdict_misses += 1
                verdict = self._batched_exists(info, t_index, candidate_cache)
                if key is not None:
                    verdicts[key] = verdict
                    if len(verdicts) > self.verdict_cache_size:
                        verdicts.popitem(last=False)
                if verdict:
                    supported[position].append(tid)
        return [frozenset(tids) for tids in supported]

    def _triple_filter(self, p_index: GraphIndex):
        """Compact tids that contain every edge triple of the pattern.

        ``None`` disables the filter (edgeless pattern).  The result only
        speaks for compact-registered transactions; mutable ones must
        still go through per-pair ``could_contain``.
        """
        triples = p_index.triples
        if not triples:
            return None
        allowed = None
        for triple in triples:
            bucket = self._triple_tids.get(triple)
            if not bucket:
                return frozenset()
            allowed = bucket if allowed is None else allowed & bucket
        return allowed

    def _batched_exists(
        self,
        info: "_BatchedPattern",
        t_index: GraphIndex,
        candidate_cache: dict[tuple[int, int, int], list[int]],
    ) -> bool:
        """Existence check for one batched pattern against one transaction."""
        pattern = info.index.compact
        if pattern.n_vertices == 0:
            return True
        if not t_index.could_contain(info.index):
            self.stats.early_rejects += 1
            return False
        candidates: list[list[int]] = []
        for p_vertex in range(pattern.n_vertices):
            requirement = (
                pattern.vertex_labels[p_vertex],
                len(pattern.out_adj[p_vertex]),
                len(pattern.in_adj[p_vertex]),
            )
            feasible = candidate_cache.get(requirement)
            if feasible is None:
                # The columnar mask pass returns the identical ascending
                # vertex list as the index's bucket filter.
                if self.kernel == "vectorized":
                    feasible = t_index.columns().candidates(*requirement)
                else:
                    feasible = t_index.candidates(*requirement)
                candidate_cache[requirement] = feasible
            if not feasible:
                return False
            candidates.append(feasible)
        self.stats.searches += 1
        if info.plans is None:
            info.plans = _plans_for(pattern, _static_matching_order(pattern))
        return bool(_search(pattern, t_index.compact, info.plans, candidates, max_count=1))

    # ------------------------------------------------------------------
    # Incremental support: the embedding store
    # ------------------------------------------------------------------
    def support_with_embeddings(self, tasks: Sequence[EmbeddingTask]) -> list[list[int]]:
        """Supports of a level batch, answered by extending stored embeddings.

        The level-wise mining recurrence is that every level-(k+1)
        candidate is its parent pattern plus exactly one edge; this path
        exploits it.  For each surviving pattern the engine keeps a
        bounded *anchor* set per supporting transaction — up to
        ``anchor_cap`` embeddings, position-indexed tuples of transaction
        vertices — and answers a child's ``(pattern, tid)`` query by
        extending the parent's anchors by the one new edge:

        * **backward extension** (edge between two existing vertices):
          one dict probe per anchor;
        * **forward extension** (edge to a brand-new vertex): a scan of
          the anchored endpoint's adjacency, filtered by edge label,
          vertex label, and injectivity;
        * **extension miss**: if the parent's anchor set is *complete*
          (it holds every parent embedding), the restriction of any child
          embedding to the parent's vertices would be in it — so a miss
          is a definitive "no".  If the set is capped/incomplete, or the
          parent has no entry at all (cap overflow, budget spill, a
          released level), the engine falls back to the full indexed
          backtracking search.  Fallback and extension agree by
          construction, so anchors change wall-clock, never verdicts.

        Successful queries harvest the child's own anchors (from the
        extension hits or the fallback's embeddings) under ``task.uid``
        for the next level.  Single-edge patterns with no parent are
        seeded straight from the transaction's triple-edge buckets —
        every embedding of a one-edge pattern is literally an edge.

        Per-task ``abort_below`` arms the same early-abort bound as
        :meth:`support`; the scan is transaction-major like
        :meth:`batch_support` and verdicts are written to the same LRU.
        Returns one ascending tid list per task.

        Under ``kernel="vectorized"`` the batch is answered by the numpy
        columnar kernel instead (:mod:`repro.graphs.vectorized`) —
        identical tid lists and anchor-store effects, batched array
        passes instead of per-anchor loops, and no verdict-LRU traffic.
        """
        if self.kernel == "vectorized":
            from repro.graphs import vectorized

            return vectorized.support_with_embeddings(self, tasks)
        infos = [_IncrementalPattern(self._index_of_any(task.pattern), task) for task in tasks]
        for info in infos:
            provided = info.task.key
            if provided is None:
                info.key = self._pattern_key(info.index)
            elif provided is False:
                info.key = _NO_KEY
            else:
                info.key = provided
        stats = self.stats
        stats.batch_calls += 1
        stats.batch_patterns += len(infos)

        per_tid: dict[int, list[int]] = {}
        compact_tids = self._compact_tids
        for position, info in enumerate(infos):
            tids = list(info.task.tids)
            # Whole-transaction rejection via the inverted triple index,
            # exactly as in batch_support.  A rejected tid is a definitive
            # "no", so it also shrinks the early-abort remainder.
            allowed = self._triple_filter(info.index)
            if allowed is not None and compact_tids:
                kept = [tid for tid in tids if tid not in compact_tids or tid in allowed]
                stats.early_rejects += len(tids) - len(kept)
                tids = kept
            info.remaining = len(tids)
            abort_below = info.task.abort_below
            if abort_below is not None and info.remaining < abort_below:
                info.dead = True
                stats.support_aborts += 1
                continue
            if info.task.parent_uid is not None:
                info.parent_entries = self._anchors.get(info.task.parent_uid)
            for tid in tids:
                per_tid.setdefault(tid, []).append(position)

        verdicts = self._verdicts
        for tid in sorted(per_tid):
            t_index: GraphIndex | None = None
            version = 0
            for position in per_tid[tid]:
                info = infos[position]
                if info.dead:
                    continue
                info.remaining -= 1
                if t_index is None:
                    version, t_index = self._transaction_index(tid)
                verdict = None
                key = None
                if info.key is not _NO_KEY:
                    key = (info.key, tid, version)
                    cached = verdicts.get(key)
                    # A cached "no" is always usable; a cached "yes" only
                    # when the pattern's own anchors are already stored —
                    # otherwise skipping the evaluation would skip the
                    # anchor harvest its children rely on.
                    if cached is False or (
                        cached and self._anchors_current(info.task.uid, tid, version)
                    ):
                        verdicts.move_to_end(key)
                        stats.verdict_hits += 1
                        verdict = cached
                    else:
                        stats.verdict_misses += 1
                if verdict is None:
                    verdict = self._incremental_exists(info, tid, version, t_index)
                    if key is not None:
                        verdicts[key] = verdict
                        if len(verdicts) > self.verdict_cache_size:
                            verdicts.popitem(last=False)
                if verdict:
                    info.hits.append(tid)
                abort_below = info.task.abort_below
                if abort_below is not None and len(info.hits) + info.remaining < abort_below:
                    info.dead = True
                    stats.support_aborts += 1
        return [info.hits for info in infos]

    def drop_anchors(self, uids: Iterable[object]) -> None:
        """Forget the stored embeddings of *uids* (retired pattern levels)."""
        for uid in uids:
            per_tid = self._anchors.pop(uid, None)
            if per_tid:
                self._anchor_load -= sum(
                    len(entry.embeddings) for entry in per_tid.values()
                )

    @property
    def anchor_load(self) -> int:
        """Total embeddings currently held by the store (budget accounting)."""
        return self._anchor_load

    # ------------------------------------------------------------------
    # The session pattern store: uid-addressed pattern reconstruction
    # ------------------------------------------------------------------
    def register_session_pattern(self, uid: object, pattern: CompactGraph) -> GraphIndex:
        """Store *pattern* under *uid* and return its (fresh) index.

        The index is built once here and reused for every query the
        session issues against the pattern — the same economy
        :meth:`index_of` provides for :class:`LabeledGraph` callers, but
        addressed by the session's opaque uid instead of object identity.
        """
        if pattern.table is not self.table:
            raise ValueError(
                "session pattern was interned through a different label table"
            )
        index = GraphIndex(pattern)
        self.stats.indexes_built += 1
        self._session_patterns[uid] = index
        return index

    def stored_session_pattern(self, uid: object) -> GraphIndex | None:
        """The stored index of *uid*, or ``None`` when absent/evicted."""
        return self._session_patterns.get(uid)

    def extend_session_pattern(
        self,
        uid: object,
        parent_uid: object,
        extension: tuple[int, int, bool],
        edge_label_id: int,
        new_vertex_label_id: int | None = None,
    ) -> GraphIndex:
        """Rebuild *uid*'s pattern from its stored parent plus one edge.

        This is the receiving end of the mining-session delta protocol:
        the level-(k+1) candidate is its parent's pattern extended by the
        one *extension* edge, so a shard that still holds the parent
        reconstructs the child from a handful of integers.  Raises
        ``KeyError`` when the parent is not resident — the caller must
        then be sent the full wire form instead.
        """
        parent = self._session_patterns.get(parent_uid)
        if parent is None:
            raise KeyError(
                f"no stored session pattern {parent_uid!r} to extend into {uid!r}"
            )
        compact = parent.compact.extend(extension, edge_label_id, new_vertex_label_id)
        return self.register_session_pattern(uid, compact)

    def drop_session_patterns(self, uids: Iterable[object]) -> None:
        """Forget the stored patterns of *uids* (absent uids are no-ops)."""
        for uid in uids:
            self._session_patterns.pop(uid, None)

    @property
    def session_pattern_count(self) -> int:
        """Number of patterns currently resident in the session store."""
        return len(self._session_patterns)

    def _anchors_current(self, uid: object, tid: int, version: int) -> bool:
        """Whether ``(uid, tid)`` already holds anchors valid at *version*."""
        if uid is None:
            return True
        per_tid = self._anchors.get(uid)
        entry = per_tid.get(tid) if per_tid else None
        return entry is not None and entry.version == version

    def _incremental_exists(
        self, info: _IncrementalPattern, tid: int, version: int, t_index: GraphIndex
    ) -> bool:
        """One (task, tid) verdict: extend anchors, seed, or fall back."""
        task = info.task
        pattern = info.index.compact
        if pattern.n_vertices == 0:
            return True
        if task.extension is not None and info.parent_entries is not None:
            parent_entry = info.parent_entries.get(tid)
            # Anchors of a since-mutated transaction are stale state, not
            # evidence — same version discipline as the verdict LRU.
            if parent_entry is not None and parent_entry.version == version:
                self.stats.anchor_extensions += 1
                found, embeddings, complete = self._extend_anchors(
                    pattern, task.extension, parent_entry, t_index.compact
                )
                if found:
                    self._store_anchors(task.uid, tid, embeddings, complete, version)
                    return True
                if parent_entry.complete:
                    self.stats.anchor_complete_rejects += 1
                    return False
        if pattern.n_edges == 1 and pattern.n_vertices == 2 and task.extension is None:
            return self._seed_single_edge(info, tid, version, t_index)
        self.stats.anchor_fallbacks += 1
        results = self._compact_embeddings(info.index, t_index, max_count=self.anchor_cap)
        if not results:
            return False
        embeddings = tuple(
            tuple(mapping[p_vertex] for p_vertex in range(pattern.n_vertices))
            for mapping in results
        )
        self._store_anchors(
            task.uid, tid, embeddings, len(results) < self.anchor_cap, version
        )
        return True

    def _extend_anchors(
        self,
        pattern: CompactGraph,
        extension: tuple[int, int, bool],
        parent_entry: _AnchorEntry,
        target: CompactGraph,
    ) -> tuple[bool, tuple[tuple[int, ...], ...], bool]:
        """All (capped) one-edge extensions of the parent's anchors.

        Returns ``(found, embeddings, complete)``.  Distinct anchors
        yield distinct children (they differ on the parent positions), so
        no deduplication is needed; ``complete`` holds only when the
        parent set was complete and the cap never truncated enumeration.
        """
        src_pos, dst_pos, has_new = extension
        edge_label = pattern.edge_label_of[(src_pos, dst_pos)]
        cap = self.anchor_cap
        out: list[tuple[int, ...]] = []
        capped = False
        if not has_new:
            edge_label_of = target.edge_label_of
            for anchor in parent_entry.embeddings:
                if edge_label_of.get((anchor[src_pos], anchor[dst_pos])) == edge_label:
                    out.append(anchor)
                    if len(out) >= cap:
                        capped = True
                        break
        else:
            new_pos = pattern.n_vertices - 1
            new_label = pattern.vertex_labels[new_pos]
            t_labels = target.vertex_labels
            if dst_pos == new_pos:
                adjacency, anchor_pos = target.out_adj, src_pos
            else:
                adjacency, anchor_pos = target.in_adj, dst_pos
            for anchor in parent_entry.embeddings:
                for neighbour, label in adjacency[anchor[anchor_pos]]:
                    if (
                        label == edge_label
                        and t_labels[neighbour] == new_label
                        and neighbour not in anchor
                    ):
                        out.append(anchor + (neighbour,))
                        if len(out) >= cap:
                            capped = True
                            break
                if capped:
                    break
        return bool(out), tuple(out), parent_entry.complete and not capped

    def _seed_single_edge(
        self, info: _IncrementalPattern, tid: int, version: int, t_index: GraphIndex
    ) -> bool:
        """Anchor a one-edge pattern from the transaction's triple buckets."""
        self.stats.anchor_seeds += 1
        pattern = info.index.compact
        ((src_pos, dst_pos),) = pattern.edge_label_of
        edge_label = pattern.edge_label_of[(src_pos, dst_pos)]
        triple = (
            pattern.vertex_labels[src_pos],
            edge_label,
            pattern.vertex_labels[dst_pos],
        )
        pairs = [
            pair for pair in t_index.triple_edges(triple) if pair[0] != pair[1]
        ]
        if not pairs:
            return False
        cap = self.anchor_cap
        embedding_at = [0, 0]
        embeddings = []
        for t_src, t_dst in pairs[:cap]:
            embedding_at[src_pos] = t_src
            embedding_at[dst_pos] = t_dst
            embeddings.append(tuple(embedding_at))
        self._store_anchors(
            info.task.uid, tid, tuple(embeddings), len(pairs) <= cap, version
        )
        return True

    def _store_anchors(
        self,
        uid: object,
        tid: int,
        embeddings: tuple[tuple[int, ...], ...],
        complete: bool,
        version: int,
    ) -> None:
        """Record *embeddings* under ``(uid, tid)`` if the budget allows.

        Skipping (anonymous task, or budget exhausted) is always safe:
        absent entries just push the pattern's children onto the fallback
        search.  Anchors influence speed, never verdicts.  *embeddings*
        may be a tuple of tuples (python kernel) or an ``(anchors,
        width)`` ndarray (vectorized kernel) — only its length matters
        here.
        """
        if uid is None or len(embeddings) == 0:
            return
        if self._anchor_load + len(embeddings) > self.anchor_budget:
            return
        per_tid = self._anchors.setdefault(uid, {})
        previous = per_tid.get(tid)
        if previous is not None:
            self._anchor_load -= len(previous.embeddings)
        per_tid[tid] = _AnchorEntry(embeddings, complete, version)
        self._anchor_load += len(embeddings)
        self.stats.anchors_stored += len(embeddings)

    def _index_of_any(self, pattern: LabeledGraph | CompactGraph | GraphIndex) -> GraphIndex:
        """An index for *pattern* whatever form it arrives in."""
        if isinstance(pattern, GraphIndex):
            return pattern
        if isinstance(pattern, CompactGraph):
            if pattern.table is not self.table:
                raise ValueError(
                    "compact pattern was interned through a different label table"
                )
            self.stats.indexes_built += 1
            return GraphIndex(pattern)
        return self.index_of(pattern)

    def stats_snapshot(self) -> dict[str, int]:
        """A plain-dict snapshot of the engine's cache/search counters."""
        return self.stats.as_dict()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _pattern_key(self, p_index: GraphIndex):
        try:
            return p_index.canonical()
        except CanonicalizationError:
            get_tracer().metrics.counter("canonical_fallbacks", site="engine")
            return _NO_KEY

    def _compact_embeddings(
        self,
        p_index: GraphIndex,
        t_index: GraphIndex,
        max_count: int | None,
    ) -> list[dict[int, int]]:
        """Embeddings as compact-vertex mappings (the core VF2-style search)."""
        pattern = p_index.compact
        target = t_index.compact
        if pattern.n_vertices == 0:
            return [{}]
        if not t_index.could_contain(p_index):
            self.stats.early_rejects += 1
            return []
        self.stats.searches += 1

        # Per pattern vertex: label/degree-bucket candidates from the index
        # (or the identical columnar mask pass under the vectorized kernel).
        vectorized = self.kernel == "vectorized"
        columns = t_index.columns() if vectorized else None
        candidates: list[list[int]] = []
        for p_vertex in range(pattern.n_vertices):
            requirement = (
                pattern.vertex_labels[p_vertex],
                len(pattern.out_adj[p_vertex]),
                len(pattern.in_adj[p_vertex]),
            )
            feasible = (
                columns.candidates(*requirement)
                if vectorized
                else t_index.candidates(*requirement)
            )
            if not feasible:
                return []
            candidates.append(feasible)

        plans = _plans_for(pattern, _matching_order(pattern, candidates))
        return _search(pattern, target, plans, candidates, max_count)


#: A per-position step of a matching plan: the pattern vertex to place and
#: its required edges into already-placed pattern vertices.
_Plan = list[tuple[int, list[tuple[int, int]], list[tuple[int, int]]]]


def _plans_for(pattern: CompactGraph, order: Sequence[int]) -> _Plan:
    """Per-position edge requirements for placing pattern vertices in *order*."""
    position_of = {p_vertex: position for position, p_vertex in enumerate(order)}
    plans: _Plan = []
    for position, p_vertex in enumerate(order):
        out_req = [
            (dst, lbl)
            for dst, lbl in pattern.out_adj[p_vertex]
            if position_of[dst] < position
        ]
        in_req = [
            (src, lbl)
            for src, lbl in pattern.in_adj[p_vertex]
            if position_of[src] < position
        ]
        plans.append((p_vertex, out_req, in_req))
    return plans


def _search(
    pattern: CompactGraph,
    target: CompactGraph,
    plans: _Plan,
    candidates: Sequence[Sequence[int]],
    max_count: int | None,
) -> list[dict[int, int]]:
    """The core VF2-style backtracking over compact graphs.

    *plans* fixes the placement order and per-position edge requirements;
    *candidates* holds, per pattern vertex, the feasible target vertices
    used at unanchored positions.  Shared by the per-query path (dynamic,
    target-informed order) and the batched path (static per-pattern order
    reused across a whole transaction scan).
    """
    t_labels = target.vertex_labels
    t_out = target.out_adj
    t_in = target.in_adj
    t_edge_label = target.edge_label_of
    mapping: dict[int, int] = {}
    used = bytearray(target.n_vertices)
    results: list[dict[int, int]] = []

    def pool_at(position: int) -> Iterable[int]:
        """Candidate targets, driven by an already-placed neighbour when possible."""
        p_vertex, out_req, in_req = plans[position]
        if out_req:
            dst, lbl = out_req[0]
            anchor = mapping[dst]
            pool = [src for src, edge_lbl in t_in[anchor] if edge_lbl == lbl]
        elif in_req:
            src, lbl = in_req[0]
            anchor = mapping[src]
            pool = [dst for dst, edge_lbl in t_out[anchor] if edge_lbl == lbl]
        else:
            return candidates[p_vertex]
        p_label = pattern.vertex_labels[p_vertex]
        min_out = len(pattern.out_adj[p_vertex])
        min_in = len(pattern.in_adj[p_vertex])
        return [
            vertex
            for vertex in pool
            if t_labels[vertex] == p_label
            and len(t_out[vertex]) >= min_out
            and len(t_in[vertex]) >= min_in
        ]

    def backtrack(position: int) -> bool:
        """Depth-first search; returns True when *max_count* is reached."""
        if position == len(plans):
            results.append(dict(mapping))
            return max_count is not None and len(results) >= max_count
        p_vertex, out_req, in_req = plans[position]
        for t_vertex in pool_at(position):
            if used[t_vertex]:
                continue
            ok = True
            for dst, lbl in out_req:
                if t_edge_label.get((t_vertex, mapping[dst])) != lbl:
                    ok = False
                    break
            if ok:
                for src, lbl in in_req:
                    if t_edge_label.get((mapping[src], t_vertex)) != lbl:
                        ok = False
                        break
            if not ok:
                continue
            mapping[p_vertex] = t_vertex
            used[t_vertex] = 1
            done = backtrack(position + 1)
            del mapping[p_vertex]
            used[t_vertex] = 0
            if done:
                return True
        return False

    backtrack(0)
    return results


def _static_matching_order(pattern: CompactGraph) -> list[int]:
    """Target-independent frontier-extending order (highest degree first).

    The batched path reuses one order for a whole transaction scan, so it
    cannot rank by per-target candidate counts the way
    :func:`_matching_order` does; degree is the best target-free proxy.
    """
    n = pattern.n_vertices
    neighbours = [
        {dst for dst, _ in pattern.out_adj[v]} | {src for src, _ in pattern.in_adj[v]}
        for v in range(n)
    ]
    degree = [len(pattern.out_adj[v]) + len(pattern.in_adj[v]) for v in range(n)]
    remaining = set(range(n))
    in_order = [False] * n
    order: list[int] = []

    def rank(v: int) -> tuple[int, int]:
        return (-degree[v], v)

    start = min(remaining, key=rank)
    order.append(start)
    in_order[start] = True
    remaining.remove(start)
    while remaining:
        frontier = [v for v in remaining if any(in_order[n_] for n_ in neighbours[v])]
        pool = frontier or sorted(remaining)
        nxt = min(pool, key=rank)
        order.append(nxt)
        in_order[nxt] = True
        remaining.remove(nxt)
    return order


def _matching_order(pattern: CompactGraph, candidates: list[list[int]]) -> list[int]:
    """Rarest-candidates-first, frontier-extending order over pattern vertices."""
    n = pattern.n_vertices
    neighbours = [
        {dst for dst, _ in pattern.out_adj[v]} | {src for src, _ in pattern.in_adj[v]}
        for v in range(n)
    ]
    degree = [len(pattern.out_adj[v]) + len(pattern.in_adj[v]) for v in range(n)]
    remaining = set(range(n))
    in_order = [False] * n
    order: list[int] = []

    def rank(v: int) -> tuple[int, int, int]:
        return (len(candidates[v]), -degree[v], v)

    start = min(remaining, key=rank)
    order.append(start)
    in_order[start] = True
    remaining.remove(start)
    while remaining:
        frontier = [v for v in remaining if any(in_order[n_] for n_ in neighbours[v])]
        pool = frontier or sorted(remaining)
        nxt = min(pool, key=rank)
        order.append(nxt)
        in_order[nxt] = True
        remaining.remove(nxt)
    return order


_default_engine: MatchEngine | None = None


def default_engine() -> MatchEngine:
    """The process-wide engine behind the module-level isomorphism helpers."""
    global _default_engine
    if _default_engine is None:
        _default_engine = MatchEngine()
    return _default_engine


def reset_default_engine() -> None:
    """Drop the process-wide engine (used by tests to isolate caches)."""
    global _default_engine
    _default_engine = None
