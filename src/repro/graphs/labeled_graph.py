"""Labeled directed graph data structures.

Two classes are provided:

* :class:`LabeledGraph` — a simple directed graph with at most one edge per
  ordered vertex pair, each vertex and edge carrying a hashable label.
  This is the representation consumed by the miners (FSG requires simple
  graphs; the paper removes duplicate edges before mining).
* :class:`LabeledMultiGraph` — a directed multigraph allowing several
  parallel edges per ordered pair, used for the raw transportation network
  where each transaction is its own edge.

Both are deliberately small, dependency-free adjacency structures: the
mining algorithms need cheap copying, edge removal, and neighbourhood
iteration rather than the full generality of :mod:`networkx`, though
conversion helpers to and from networkx are provided for interoperability
and visual inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

try:  # networkx is an optional convenience for conversion helpers.
    import networkx as _nx
except ImportError:  # pragma: no cover - networkx is installed in this environment
    _nx = None

Label = Hashable
VertexId = Hashable


@dataclass(frozen=True, order=True)
class Edge:
    """A directed labeled edge ``source -> target`` with label ``label``."""

    source: VertexId
    target: VertexId
    label: Label

    def reversed(self) -> "Edge":
        """The same edge pointing the other way (used by undirected views)."""
        return Edge(self.target, self.source, self.label)


class LabeledGraph:
    """A simple directed graph with labeled vertices and edges."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._vertex_labels: dict[VertexId, Label] = {}
        self._succ: dict[VertexId, dict[VertexId, Label]] = {}
        self._pred: dict[VertexId, dict[VertexId, Label]] = {}
        # Mutation counter: bumped by every structural or label change so
        # external caches (e.g. the match engine's per-graph indexes) can
        # detect staleness without hashing the whole graph.
        self._version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: VertexId, label: Label = "") -> None:
        """Add a vertex (idempotent; re-adding updates the label)."""
        self._vertex_labels[vertex] = label
        self._succ.setdefault(vertex, {})
        self._pred.setdefault(vertex, {})
        self._version += 1

    def add_edge(self, source: VertexId, target: VertexId, label: Label = "") -> None:
        """Add a directed edge, creating missing endpoints with empty labels.

        Adding an edge that already exists overwrites its label; a simple
        graph holds at most one edge per ordered pair.
        """
        if source not in self._vertex_labels:
            self.add_vertex(source)
        if target not in self._vertex_labels:
            self.add_vertex(target)
        self._succ[source][target] = label
        self._pred[target][source] = label
        self._version += 1

    def remove_edge(self, source: VertexId, target: VertexId) -> None:
        """Remove the edge ``source -> target``; raises ``KeyError`` if absent."""
        del self._succ[source][target]
        del self._pred[target][source]
        self._version += 1

    def remove_vertex(self, vertex: VertexId) -> None:
        """Remove a vertex and every incident edge."""
        for target in list(self._succ.get(vertex, {})):
            self.remove_edge(vertex, target)
        for source in list(self._pred.get(vertex, {})):
            self.remove_edge(source, vertex)
        self._succ.pop(vertex, None)
        self._pred.pop(vertex, None)
        self._vertex_labels.pop(vertex, None)
        self._version += 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return len(self._vertex_labels)

    @property
    def n_edges(self) -> int:
        """Number of directed edges."""
        return sum(len(targets) for targets in self._succ.values())

    def vertices(self) -> Iterator[VertexId]:
        """Iterate over vertex identifiers."""
        return iter(self._vertex_labels)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges as :class:`Edge` records."""
        for source, targets in self._succ.items():
            for target, label in targets.items():
                yield Edge(source, target, label)

    def has_vertex(self, vertex: VertexId) -> bool:
        """Whether *vertex* is present."""
        return vertex in self._vertex_labels

    def has_edge(self, source: VertexId, target: VertexId) -> bool:
        """Whether the directed edge ``source -> target`` is present."""
        return target in self._succ.get(source, {})

    def vertex_label(self, vertex: VertexId) -> Label:
        """Label of *vertex*; raises ``KeyError`` if absent."""
        return self._vertex_labels[vertex]

    def edge_label(self, source: VertexId, target: VertexId) -> Label:
        """Label of the edge ``source -> target``; raises ``KeyError`` if absent."""
        return self._succ[source][target]

    def successors(self, vertex: VertexId) -> Iterator[VertexId]:
        """Vertices reachable from *vertex* by one outgoing edge."""
        return iter(self._succ.get(vertex, {}))

    def predecessors(self, vertex: VertexId) -> Iterator[VertexId]:
        """Vertices with an edge into *vertex*."""
        return iter(self._pred.get(vertex, {}))

    def neighbours(self, vertex: VertexId) -> set[VertexId]:
        """Successors and predecessors of *vertex* combined."""
        return set(self._succ.get(vertex, {})) | set(self._pred.get(vertex, {}))

    def out_degree(self, vertex: VertexId) -> int:
        """Number of outgoing edges of *vertex*."""
        return len(self._succ.get(vertex, {}))

    def in_degree(self, vertex: VertexId) -> int:
        """Number of incoming edges of *vertex*."""
        return len(self._pred.get(vertex, {}))

    def degree(self, vertex: VertexId) -> int:
        """Total degree (in + out)."""
        return self.out_degree(vertex) + self.in_degree(vertex)

    def incident_edges(self, vertex: VertexId) -> list[Edge]:
        """All edges touching *vertex*, outgoing first."""
        outgoing = [Edge(vertex, target, label) for target, label in self._succ.get(vertex, {}).items()]
        incoming = [Edge(source, vertex, label) for source, label in self._pred.get(vertex, {}).items()]
        return outgoing + incoming

    def vertex_label_counts(self) -> dict[Label, int]:
        """Histogram of vertex labels."""
        counts: dict[Label, int] = {}
        for label in self._vertex_labels.values():
            counts[label] = counts.get(label, 0) + 1
        return counts

    def edge_label_counts(self) -> dict[Label, int]:
        """Histogram of edge labels."""
        counts: dict[Label, int] = {}
        for edge in self.edges():
            counts[edge.label] = counts.get(edge.label, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "LabeledGraph":
        """A deep copy of the graph structure and labels."""
        # Clones the adjacency dicts directly (preserving insertion
        # order) instead of replaying add_vertex/add_edge: candidate
        # generation copies every pattern once per extension, making
        # this one of the miner's hottest allocation sites.
        # Clones the adjacency dicts directly instead of replaying
        # add_vertex/add_edge: candidate generation copies every pattern
        # once per extension, making this one of the miner's hottest
        # allocation sites.  The `_pred` buckets are rebuilt source-major
        # (the order an add_edge replay over `edges()` would produce, and
        # the order the original replay-based copy produced) rather than
        # dict-cloned: predecessor iteration order feeds candidate
        # enumeration, so preserving it keeps mining output — and the
        # golden scenario digests — identical to the historical copy.
        clone = LabeledGraph(name=self.name if name is None else name)
        clone._vertex_labels = dict(self._vertex_labels)
        clone._succ = {vertex: dict(targets) for vertex, targets in self._succ.items()}
        pred: dict[VertexId, dict[VertexId, Label]] = {
            vertex: {} for vertex in self._vertex_labels
        }
        for source, targets in self._succ.items():
            for target, label in targets.items():
                pred[target][source] = label
        clone._pred = pred
        return clone

    def subgraph(self, vertices: Iterable[VertexId]) -> "LabeledGraph":
        """The subgraph induced by *vertices* (keeps edges between them)."""
        keep = set(vertices)
        result = LabeledGraph(name=f"{self.name}-induced")
        for vertex in keep:
            if vertex in self._vertex_labels:
                result.add_vertex(vertex, self._vertex_labels[vertex])
        for edge in self.edges():
            if edge.source in keep and edge.target in keep:
                result.add_edge(edge.source, edge.target, edge.label)
        return result

    def edge_subgraph(self, edges: Iterable[Edge]) -> "LabeledGraph":
        """The subgraph containing exactly *edges* and their endpoints."""
        result = LabeledGraph(name=f"{self.name}-edges")
        for edge in edges:
            if not result.has_vertex(edge.source):
                result.add_vertex(edge.source, self._vertex_labels.get(edge.source, ""))
            if not result.has_vertex(edge.target):
                result.add_vertex(edge.target, self._vertex_labels.get(edge.target, ""))
            result.add_edge(edge.source, edge.target, edge.label)
        return result

    def relabel_vertices(self, mapping: Mapping[VertexId, Label]) -> "LabeledGraph":
        """A copy whose vertex labels are replaced according to *mapping*.

        Vertices missing from *mapping* keep their current label.  Used to
        switch between uniform labelling (Section 5) and location
        labelling (Section 6).
        """
        clone = self.copy()
        for vertex in clone.vertices():
            if vertex in mapping:
                clone._vertex_labels[vertex] = mapping[vertex]
        clone._version += 1
        return clone

    def with_uniform_vertex_labels(self, label: Label = "place") -> "LabeledGraph":
        """A copy where every vertex carries the same label."""
        clone = self.copy()
        for vertex in list(clone.vertices()):
            clone._vertex_labels[vertex] = label
        clone._version += 1
        return clone

    # ------------------------------------------------------------------
    # Interoperability
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` (labels stored as attributes)."""
        if _nx is None:  # pragma: no cover - networkx is installed in this environment
            raise ImportError("networkx is required for to_networkx()")
        graph = _nx.DiGraph(name=self.name)
        for vertex, label in self._vertex_labels.items():
            graph.add_node(vertex, label=label)
        for edge in self.edges():
            graph.add_edge(edge.source, edge.target, label=edge.label)
        return graph

    @classmethod
    def from_networkx(cls, graph) -> "LabeledGraph":
        """Build from a :class:`networkx.DiGraph` with ``label`` attributes."""
        result = cls(name=str(graph.name) if graph.name else "")
        for node, data in graph.nodes(data=True):
            result.add_vertex(node, data.get("label", ""))
        for source, target, data in graph.edges(data=True):
            result.add_edge(source, target, data.get("label", ""))
        return result

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_vertices

    def __contains__(self, vertex: VertexId) -> bool:
        return vertex in self._vertex_labels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LabeledGraph(name={self.name!r}, vertices={self.n_vertices}, "
            f"edges={self.n_edges})"
        )


class LabeledMultiGraph:
    """A directed multigraph: several parallel labeled edges per vertex pair.

    The raw transportation network is a multigraph because every
    transaction between the same origin and destination is its own edge.
    The miners consume simple graphs, so :meth:`simplify` collapses
    parallel edges (keeping one representative label per parallel group,
    as the paper does when it removes duplicate edges).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._vertex_labels: dict[VertexId, Label] = {}
        self._edges: dict[tuple[VertexId, VertexId], list[Label]] = {}
        # Per-vertex adjacency maintained alongside _edges so degree queries
        # are O(1) lookups instead of O(E) scans over all edge pairs.
        self._out_neighbours: dict[VertexId, set[VertexId]] = {}
        self._in_neighbours: dict[VertexId, set[VertexId]] = {}

    def add_vertex(self, vertex: VertexId, label: Label = "") -> None:
        """Add a vertex (idempotent; re-adding updates the label)."""
        self._vertex_labels[vertex] = label

    def add_edge(self, source: VertexId, target: VertexId, label: Label = "") -> None:
        """Add a parallel edge ``source -> target``."""
        if source not in self._vertex_labels:
            self.add_vertex(source)
        if target not in self._vertex_labels:
            self.add_vertex(target)
        self._edges.setdefault((source, target), []).append(label)
        self._out_neighbours.setdefault(source, set()).add(target)
        self._in_neighbours.setdefault(target, set()).add(source)

    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return len(self._vertex_labels)

    @property
    def n_edges(self) -> int:
        """Number of parallel edges (each transaction counts once)."""
        return sum(len(labels) for labels in self._edges.values())

    @property
    def n_simple_edges(self) -> int:
        """Number of distinct ordered vertex pairs with at least one edge."""
        return len(self._edges)

    def vertices(self) -> Iterator[VertexId]:
        """Iterate over vertex identifiers."""
        return iter(self._vertex_labels)

    def vertex_label(self, vertex: VertexId) -> Label:
        """Label of *vertex*."""
        return self._vertex_labels[vertex]

    def edges(self) -> Iterator[Edge]:
        """Iterate over every parallel edge."""
        for (source, target), labels in self._edges.items():
            for label in labels:
                yield Edge(source, target, label)

    def parallel_labels(self, source: VertexId, target: VertexId) -> list[Label]:
        """All labels on edges ``source -> target`` (empty list if none)."""
        return list(self._edges.get((source, target), []))

    def out_degree(self, vertex: VertexId) -> int:
        """Number of distinct destinations reachable from *vertex*."""
        return len(self._out_neighbours.get(vertex, ()))

    def in_degree(self, vertex: VertexId) -> int:
        """Number of distinct origins shipping into *vertex*."""
        return len(self._in_neighbours.get(vertex, ()))

    def simplify(self, label_choice: str = "most_common") -> LabeledGraph:
        """Collapse parallel edges into a simple :class:`LabeledGraph`.

        ``label_choice`` selects the surviving label per parallel group:
        ``"most_common"`` (the default, matching the duplicate-edge removal
        in Section 6) or ``"first"``.
        """
        if label_choice not in ("most_common", "first"):
            raise ValueError("label_choice must be 'most_common' or 'first'")
        simple = LabeledGraph(name=self.name)
        for vertex, label in self._vertex_labels.items():
            simple.add_vertex(vertex, label)
        for (source, target), labels in self._edges.items():
            if label_choice == "first":
                chosen = labels[0]
            else:
                counts: dict[Label, int] = {}
                for label in labels:
                    counts[label] = counts.get(label, 0) + 1
                chosen = max(counts, key=lambda key: (counts[key], str(key)))
            simple.add_edge(source, target, chosen)
        return simple

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LabeledMultiGraph(name={self.name!r}, vertices={self.n_vertices}, "
            f"edges={self.n_edges})"
        )
