"""Label-preserving (sub)graph isomorphism for directed labeled graphs.

Section 4 of the paper defines two subgraphs as identical when an
isomorphism exists between them that also matches vertex and edge labels.
FSG-style support counting additionally needs *subgraph* isomorphism: a
pattern ``g`` occurs in a graph transaction ``t`` when ``g`` is isomorphic
to some subgraph of ``t`` (labels included).

The module-level functions are thin wrappers delegating to the shared
:class:`~repro.graphs.engine.MatchEngine` (see
:func:`repro.graphs.engine.default_engine`), which matches on compact
integer graphs with per-graph candidate indexes.  Existing call sites
keep working unchanged and transparently benefit from the engine's
caching.  The original dict-of-dicts backtracking search is retained as
the ``legacy_*`` functions: they are the differential-testing oracle for
the engine and the baseline for the kernel benchmarks.

The matching is *non-induced*: every pattern edge must map to a target
edge with the same label, but the target may have extra edges among the
mapped vertices.  This mirrors the occurrence semantics FSG uses.
"""

from __future__ import annotations

from typing import Iterator

from repro.graphs.engine import default_engine
from repro.graphs.labeled_graph import LabeledGraph, VertexId


def _vertex_candidates(pattern: LabeledGraph, target: LabeledGraph) -> dict[VertexId, list[VertexId]]:
    """Per pattern vertex, the target vertices that could possibly match.

    A target vertex is a candidate when its label matches and its in/out
    degrees are at least those of the pattern vertex.
    """
    candidates: dict[VertexId, list[VertexId]] = {}
    for p_vertex in pattern.vertices():
        p_label = pattern.vertex_label(p_vertex)
        p_out = pattern.out_degree(p_vertex)
        p_in = pattern.in_degree(p_vertex)
        feasible = [
            t_vertex
            for t_vertex in target.vertices()
            if target.vertex_label(t_vertex) == p_label
            and target.out_degree(t_vertex) >= p_out
            and target.in_degree(t_vertex) >= p_in
        ]
        candidates[p_vertex] = feasible
    return candidates


def _matching_order(pattern: LabeledGraph, candidates: dict[VertexId, list[VertexId]]) -> list[VertexId]:
    """Order pattern vertices: rarest candidates first, then by connectivity.

    Starting from the most constrained vertex and always extending into the
    neighbourhood of already-matched vertices keeps the search tree small.
    """
    remaining = set(pattern.vertices())
    if not remaining:
        return []
    order: list[VertexId] = []
    start = min(remaining, key=lambda v: (len(candidates[v]), -pattern.degree(v)))
    order.append(start)
    remaining.remove(start)
    while remaining:
        frontier = [v for v in remaining if any(n in order for n in pattern.neighbours(v))]
        pool = frontier or list(remaining)
        nxt = min(pool, key=lambda v: (len(candidates[v]), -pattern.degree(v)))
        order.append(nxt)
        remaining.remove(nxt)
    return order


def _consistent(
    pattern: LabeledGraph,
    target: LabeledGraph,
    mapping: dict[VertexId, VertexId],
    p_vertex: VertexId,
    t_vertex: VertexId,
) -> bool:
    """Whether extending *mapping* with ``p_vertex -> t_vertex`` keeps all matched edges valid."""
    for p_succ in pattern.successors(p_vertex):
        if p_succ in mapping:
            t_succ = mapping[p_succ]
            if not target.has_edge(t_vertex, t_succ):
                return False
            if target.edge_label(t_vertex, t_succ) != pattern.edge_label(p_vertex, p_succ):
                return False
    for p_pred in pattern.predecessors(p_vertex):
        if p_pred in mapping:
            t_pred = mapping[p_pred]
            if not target.has_edge(t_pred, t_vertex):
                return False
            if target.edge_label(t_pred, t_vertex) != pattern.edge_label(p_pred, p_vertex):
                return False
    return True


def _search(
    pattern: LabeledGraph,
    target: LabeledGraph,
    order: list[VertexId],
    candidates: dict[VertexId, list[VertexId]],
) -> Iterator[dict[VertexId, VertexId]]:
    """Yield every injective, label-preserving embedding of *pattern* in *target*."""
    mapping: dict[VertexId, VertexId] = {}
    used: set[VertexId] = set()

    def backtrack(position: int) -> Iterator[dict[VertexId, VertexId]]:
        if position == len(order):
            yield dict(mapping)
            return
        p_vertex = order[position]
        for t_vertex in candidates[p_vertex]:
            if t_vertex in used:
                continue
            if not _consistent(pattern, target, mapping, p_vertex, t_vertex):
                continue
            mapping[p_vertex] = t_vertex
            used.add(t_vertex)
            yield from backtrack(position + 1)
            del mapping[p_vertex]
            used.remove(t_vertex)

    yield from backtrack(0)


def legacy_find_embeddings(
    pattern: LabeledGraph,
    target: LabeledGraph,
    max_count: int | None = None,
) -> list[dict[VertexId, VertexId]]:
    """The original dict-of-dicts backtracking search (differential oracle).

    An embedding is an injective mapping from pattern vertices to target
    vertices preserving vertex labels and mapping every pattern edge onto a
    target edge with the same label.
    """
    if pattern.n_vertices == 0:
        return [{}]
    if pattern.n_vertices > target.n_vertices or pattern.n_edges > target.n_edges:
        return []
    candidates = _vertex_candidates(pattern, target)
    if any(not feasible for feasible in candidates.values()):
        return []
    order = _matching_order(pattern, candidates)
    found: list[dict[VertexId, VertexId]] = []
    for mapping in _search(pattern, target, order, candidates):
        found.append(mapping)
        if max_count is not None and len(found) >= max_count:
            break
    return found


def legacy_has_embedding(pattern: LabeledGraph, target: LabeledGraph) -> bool:
    """Legacy occurrence check (differential oracle for the engine)."""
    return bool(legacy_find_embeddings(pattern, target, max_count=1))


def legacy_count_embeddings(
    pattern: LabeledGraph, target: LabeledGraph, limit: int | None = None
) -> int:
    """Legacy embedding count (differential oracle for the engine)."""
    return len(legacy_find_embeddings(pattern, target, max_count=limit))


def legacy_are_isomorphic(first: LabeledGraph, second: LabeledGraph) -> bool:
    """Legacy exact isomorphism check (differential oracle for the engine)."""
    if first.n_vertices != second.n_vertices or first.n_edges != second.n_edges:
        return False
    if first.vertex_label_counts() != second.vertex_label_counts():
        return False
    if first.edge_label_counts() != second.edge_label_counts():
        return False
    # Because the vertex counts and edge counts match, any full embedding of
    # ``first`` into ``second`` is necessarily a bijection covering all
    # edges, i.e. an isomorphism.
    return legacy_has_embedding(first, second)


def legacy_non_overlapping_embeddings(
    pattern: LabeledGraph,
    target: LabeledGraph,
    max_count: int | None = None,
) -> list[dict[VertexId, VertexId]]:
    """Legacy greedy vertex-disjoint embedding selection."""
    taken: set[VertexId] = set()
    selected: list[dict[VertexId, VertexId]] = []
    for mapping in legacy_find_embeddings(pattern, target):
        image = set(mapping.values())
        if image & taken:
            continue
        selected.append(mapping)
        taken |= image
        if max_count is not None and len(selected) >= max_count:
            break
    return selected


def find_embeddings(
    pattern: LabeledGraph,
    target: LabeledGraph,
    max_count: int | None = None,
) -> list[dict[VertexId, VertexId]]:
    """All (or the first *max_count*) embeddings of *pattern* in *target*.

    An embedding is an injective mapping from pattern vertices to target
    vertices preserving vertex labels and mapping every pattern edge onto a
    target edge with the same label.
    """
    return default_engine().find_embeddings(pattern, target, max_count=max_count)


def find_embedding(pattern: LabeledGraph, target: LabeledGraph) -> dict[VertexId, VertexId] | None:
    """The first embedding of *pattern* in *target*, or ``None``."""
    return default_engine().find_embedding(pattern, target)


def has_embedding(pattern: LabeledGraph, target: LabeledGraph) -> bool:
    """Whether *pattern* occurs in *target* (FSG occurrence semantics)."""
    return default_engine().has_embedding(pattern, target)


def count_embeddings(pattern: LabeledGraph, target: LabeledGraph, limit: int | None = None) -> int:
    """Number of distinct embeddings of *pattern* in *target* (up to *limit*)."""
    return default_engine().count_embeddings(pattern, target, limit=limit)


def are_isomorphic(first: LabeledGraph, second: LabeledGraph) -> bool:
    """Exact label-preserving isomorphism between two graphs (Section 4).

    Two graphs are isomorphic when a bijection between their vertices
    preserves vertex labels and induces a bijection between their edges
    that preserves edge labels.
    """
    return default_engine().are_isomorphic(first, second)


def non_overlapping_embeddings(
    pattern: LabeledGraph,
    target: LabeledGraph,
    max_count: int | None = None,
) -> list[dict[VertexId, VertexId]]:
    """Greedy set of vertex-disjoint embeddings of *pattern* in *target*.

    SUBDUE counts substructure instances without overlap (the paper notes
    all its experiments disallowed overlapping patterns); this helper
    selects embeddings greedily so no target vertex is reused.
    """
    return default_engine().non_overlapping_embeddings(pattern, target, max_count=max_count)
