"""Canonical codes and invariants for labeled directed graphs.

The frequent-subgraph miner must recognise when two candidate patterns are
the same graph up to isomorphism so duplicates are counted once.  Exact
canonical labelling of general graphs is as hard as graph isomorphism, but
the patterns handled here are tiny (a handful of vertices), so a
straightforward scheme works:

* :func:`graph_invariant` — a cheap, isomorphism-invariant string built
  from label and degree histograms and Weisfeiler-Lehman style colour
  refinement.  Equal graphs always produce equal invariants; unequal
  graphs may rarely collide, so callers that need exactness group by
  invariant and confirm with
  :func:`repro.graphs.isomorphism.are_isomorphic`.
* :func:`canonical_code` — an exact canonical string for small graphs,
  computed by minimising the adjacency encoding over vertex orderings
  compatible with the refined colouring.  Raises :class:`CanonicalizationError`
  when the graph is too large/symmetric to canonicalise exhaustively.
"""

from __future__ import annotations

from itertools import permutations

from repro.graphs.labeled_graph import LabeledGraph, VertexId


class CanonicalizationError(RuntimeError):
    """Raised when exact canonicalisation would require too much search."""


def _initial_colours(graph: LabeledGraph) -> dict[VertexId, str]:
    # Reads the adjacency dicts directly (same strings as the public
    # accessors): this and _refine_colours run once per candidate per
    # mining level, the hottest canonicalisation path.
    succ = graph._succ
    pred = graph._pred
    return {
        vertex: f"{label}|{len(pred[vertex])}|{len(succ[vertex])}"
        for vertex, label in graph._vertex_labels.items()
    }


def _refine_colours(graph: LabeledGraph, colours: dict[VertexId, str], rounds: int = 3) -> dict[VertexId, str]:
    """Weisfeiler-Lehman colour refinement respecting edge labels and direction."""
    succ = graph._succ
    pred = graph._pred
    vertices = list(graph._vertex_labels)
    n_vertices = len(vertices)
    current = dict(colours)
    n_classes = len(set(current.values()))
    for _ in range(rounds):
        if n_classes == n_vertices:
            # Discrete partition: another round cannot split further.
            break
        updated: dict[VertexId, str] = {}
        for vertex in vertices:
            out_signature = sorted(
                [f"+{label}>{current[target]}" for target, label in succ[vertex].items()]
            )
            in_signature = sorted(
                [f"-{label}<{current[source]}" for source, label in pred[vertex].items()]
            )
            updated[vertex] = f"{current[vertex]}({';'.join(out_signature)})({';'.join(in_signature)})"
        n_updated = len(set(updated.values()))
        if n_updated == n_classes:
            # No further splitting; compress strings to keep them short.
            break
        current = updated
        n_classes = n_updated
    # Compress colour strings to small integers for stability and brevity.
    palette = {colour: index for index, colour in enumerate(sorted(set(current.values())))}
    return {vertex: f"c{palette[current[vertex]]}" for vertex in current}


def refined_colours(graph: LabeledGraph) -> dict[VertexId, str]:
    """The refined colouring both fingerprints below are built from.

    Exposed so callers that need *both* the invariant and the canonical
    code of one graph (the dedup path does) can refine once and pass the
    result to each — the strings produced are byte-identical either way.
    """
    return _refine_colours(graph, _initial_colours(graph))


def graph_invariant(graph: LabeledGraph, colours: dict[VertexId, str] | None = None) -> str:
    """A cheap isomorphism-invariant fingerprint of *graph*.

    Isomorphic graphs always produce the same invariant.  Distinct graphs
    collide only when colour refinement cannot tell them apart, which for
    the small labeled patterns mined here is rare; exactness-sensitive
    callers should verify collisions with an isomorphism test.
    """
    if colours is None:
        colours = refined_colours(graph)
    vertex_part = ",".join(
        sorted(f"{label}~{colours[v]}" for v, label in graph._vertex_labels.items())
    )
    edge_part = ",".join(
        sorted(
            f"{colours[source]}-{label}->{colours[target]}"
            for source, targets in graph._succ.items()
            for target, label in targets.items()
        )
    )
    return f"V[{vertex_part}]E[{edge_part}]"


def _encode_with_order(graph: LabeledGraph, order: list[VertexId]) -> str:
    index = {vertex: position for position, vertex in enumerate(order)}
    labels = graph._vertex_labels
    vertex_part = ",".join([str(labels[vertex]) for vertex in order])
    edge_entries = sorted(
        [
            (index[source], index[target], str(label))
            for source, targets in graph._succ.items()
            for target, label in targets.items()
        ]
    )
    edge_part = ",".join([f"{s}-{t}:{label}" for s, t, label in edge_entries])
    return f"{vertex_part}|{edge_part}"


def canonical_code(
    graph: LabeledGraph,
    max_orderings: int = 50_000,
    colours: dict[VertexId, str] | None = None,
) -> str:
    """An exact canonical string: equal iff two graphs are isomorphic.

    Vertices are first partitioned by refined colour; the code is the
    lexicographically smallest adjacency encoding over all vertex orderings
    that respect the colour partition (vertices of a smaller colour class
    key come first).  The number of orderings explored is the product of
    the colour-class factorials; if that exceeds *max_orderings* a
    :class:`CanonicalizationError` is raised — callers should fall back to
    invariant-plus-isomorphism deduplication for such graphs.
    """
    vertices = list(graph.vertices())
    if not vertices:
        return "empty"
    if colours is None:
        colours = refined_colours(graph)
    groups: dict[str, list[VertexId]] = {}
    for vertex in vertices:
        groups.setdefault(colours[vertex], []).append(vertex)
    group_keys = sorted(groups)

    total_orderings = 1
    for key in group_keys:
        size = len(groups[key])
        for factor in range(2, size + 1):
            total_orderings *= factor
        if total_orderings > max_orderings:
            raise CanonicalizationError(
                f"graph with {graph.n_vertices} vertices is too symmetric to "
                f"canonicalise exhaustively (> {max_orderings} orderings)"
            )

    if total_orderings == 1:
        # Discrete partition (the overwhelmingly common case for the tiny
        # patterns mined here): the one compatible ordering IS the code.
        return _encode_with_order(graph, [groups[key][0] for key in group_keys])

    best: str | None = None

    def extend(prefix: list[VertexId], remaining_groups: list[str]) -> None:
        nonlocal best
        if not remaining_groups:
            code = _encode_with_order(graph, prefix)
            if best is None or code < best:
                best = code
            return
        key = remaining_groups[0]
        for perm in permutations(groups[key]):
            extend(prefix + list(perm), remaining_groups[1:])

    extend([], group_keys)
    assert best is not None
    return best
