"""Transaction schema for the transportation network dataset.

Table 1 of the paper describes each OD (origin-destination) transaction
with eleven attributes: a unique identifier, requested pickup and delivery
dates, origin and destination coordinates (to the nearest 0.1 degree),
total road distance, gross weight, transit hours, and transport mode
(Truckload or Less-than-Truckload).

This module defines :class:`Transaction` (one row of the dataset),
:class:`Location` (a latitude/longitude pair used as a graph vertex), and
:class:`TransactionDataset` (an ordered collection with convenience
accessors used throughout the library).

It also owns the messy-ingest path: real mobility feeds arrive with
zone-name synonyms, missing values, and sensor outliers, and
:func:`clean_mobility_records` is the deterministic cleaner that turns
such raw records into Table-1 :class:`Transaction` rows —
:class:`ZoneDirectory` resolves zone naming, a two-pass median imputation
fills numeric gaps, and coordinate/timestamp outliers are clipped to the
zone centroid / observation window.  Every repair is counted in a
:class:`CleaningReport` so a pipeline can assert how dirty its input was.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from datetime import date, timedelta
from typing import Iterable, Iterator, Mapping, Sequence


class TransMode(str, enum.Enum):
    """Transport mode of a load.

    ``TL`` (Truckload) means the load fills a truck; ``LTL`` (Less than
    Truckload) means it shares a truck with other loads.  The paper's
    conventional-mining experiments (Section 7) find the mode is almost
    fully determined by gross weight.
    """

    TRUCKLOAD = "TL"
    LESS_THAN_TRUCKLOAD = "LTL"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Attribute names in the order used by Table 1 of the paper.
ATTRIBUTE_NAMES: tuple[str, ...] = (
    "ID",
    "REQ_PICKUP_DT",
    "REQ_DELIVERY_DT",
    "ORIGIN_LATITUDE",
    "ORIGIN_LONGITUDE",
    "DEST_LATITUDE",
    "DEST_LONGITUDE",
    "TOTAL_DISTANCE",
    "GROSS_WEIGHT",
    "MOVE_TRANSIT_HOURS",
    "TRANS_MODE",
)

#: Human-readable descriptions, mirroring Table 1.
ATTRIBUTE_DESCRIPTIONS: dict[str, str] = {
    "ID": "Unique transaction identifier.",
    "REQ_PICKUP_DT": "Requested date to pick up the load.",
    "REQ_DELIVERY_DT": "Requested delivery date.",
    "ORIGIN_LATITUDE": "Latitude of source (to nearest 0.1 degree).",
    "ORIGIN_LONGITUDE": "Longitude of source (to nearest 0.1 degree).",
    "DEST_LATITUDE": "Latitude of destination (to nearest 0.1 degree).",
    "DEST_LONGITUDE": "Longitude of destination (to nearest 0.1 degree).",
    "TOTAL_DISTANCE": "Road miles between origin and destination.",
    "GROSS_WEIGHT": "Weight of load.",
    "MOVE_TRANSIT_HOURS": "Hours needed to get from origin to destination.",
    "TRANS_MODE": "Truckload or Less than Truckload.",
}


def _round_coordinate(value: float) -> float:
    """Round a coordinate to the nearest 0.1 degree, as in the dataset."""
    return round(value, 1)


@dataclass(frozen=True, order=True)
class Location:
    """A latitude/longitude pair identifying a place in the network.

    Coordinates are stored to the nearest 0.1 degree, matching the
    resolution of the paper's dataset; two loads whose endpoints round to
    the same pair are treated as sharing a vertex.
    """

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "latitude", _round_coordinate(self.latitude))
        object.__setattr__(self, "longitude", _round_coordinate(self.longitude))

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(latitude, longitude)``."""
        return (self.latitude, self.longitude)

    def label(self) -> str:
        """A compact string label, used for vertex labeling in Section 6."""
        return f"{self.latitude:.1f},{self.longitude:.1f}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label()


@dataclass(frozen=True)
class Transaction:
    """One origin-destination freight transaction (one row of Table 1)."""

    id: int
    req_pickup_dt: date
    req_delivery_dt: date
    origin: Location
    destination: Location
    total_distance: float
    gross_weight: float
    move_transit_hours: float
    trans_mode: TransMode

    def __post_init__(self) -> None:
        if self.req_delivery_dt < self.req_pickup_dt:
            raise ValueError(
                "delivery date precedes pickup date for transaction "
                f"{self.id}: {self.req_delivery_dt} < {self.req_pickup_dt}"
            )
        if self.total_distance < 0:
            raise ValueError(f"negative distance for transaction {self.id}")
        if self.gross_weight < 0:
            raise ValueError(f"negative gross weight for transaction {self.id}")
        if self.move_transit_hours < 0:
            raise ValueError(f"negative transit hours for transaction {self.id}")

    @property
    def od_pair(self) -> tuple[Location, Location]:
        """The (origin, destination) pair identifying the network edge."""
        return (self.origin, self.destination)

    @property
    def transit_days(self) -> int:
        """Number of calendar days between pickup and delivery, inclusive."""
        return (self.req_delivery_dt - self.req_pickup_dt).days + 1

    def active_dates(self) -> Iterator[date]:
        """Yield every date on which the load may be in transit.

        Section 6 of the paper treats an OD pair as an *active edge* on
        every date between the requested pickup and delivery dates; this
        iterator drives the temporal partitioning.
        """
        current = self.req_pickup_dt
        while current <= self.req_delivery_dt:
            yield current
            current += timedelta(days=1)

    def with_id(self, new_id: int) -> "Transaction":
        """Return a copy with a different identifier."""
        return replace(self, id=new_id)

    def as_record(self) -> dict[str, object]:
        """Return a flat dict keyed by the Table 1 attribute names."""
        return {
            "ID": self.id,
            "REQ_PICKUP_DT": self.req_pickup_dt.isoformat(),
            "REQ_DELIVERY_DT": self.req_delivery_dt.isoformat(),
            "ORIGIN_LATITUDE": self.origin.latitude,
            "ORIGIN_LONGITUDE": self.origin.longitude,
            "DEST_LATITUDE": self.destination.latitude,
            "DEST_LONGITUDE": self.destination.longitude,
            "TOTAL_DISTANCE": self.total_distance,
            "GROSS_WEIGHT": self.gross_weight,
            "MOVE_TRANSIT_HOURS": self.move_transit_hours,
            "TRANS_MODE": self.trans_mode.value,
        }

    @classmethod
    def from_record(cls, record: dict[str, object]) -> "Transaction":
        """Build a transaction from a flat record produced by :meth:`as_record`."""
        return cls(
            id=int(record["ID"]),
            req_pickup_dt=date.fromisoformat(str(record["REQ_PICKUP_DT"])),
            req_delivery_dt=date.fromisoformat(str(record["REQ_DELIVERY_DT"])),
            origin=Location(
                float(record["ORIGIN_LATITUDE"]), float(record["ORIGIN_LONGITUDE"])
            ),
            destination=Location(
                float(record["DEST_LATITUDE"]), float(record["DEST_LONGITUDE"])
            ),
            total_distance=float(record["TOTAL_DISTANCE"]),
            gross_weight=float(record["GROSS_WEIGHT"]),
            move_transit_hours=float(record["MOVE_TRANSIT_HOURS"]),
            trans_mode=TransMode(str(record["TRANS_MODE"])),
        )


@dataclass
class TransactionDataset:
    """An ordered collection of :class:`Transaction` records.

    The dataset is the single entry point for every experiment: graph
    builders, temporal partitioning, and the conventional-mining feature
    extraction all consume it.
    """

    transactions: list[Transaction] = field(default_factory=list)
    name: str = "transportation-od"

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)

    def __getitem__(self, index: int) -> Transaction:
        return self.transactions[index]

    def add(self, transaction: Transaction) -> None:
        """Append a transaction to the dataset."""
        self.transactions.append(transaction)

    def extend(self, transactions: Iterable[Transaction]) -> None:
        """Append many transactions to the dataset."""
        self.transactions.extend(transactions)

    @property
    def locations(self) -> set[Location]:
        """All distinct locations appearing as an origin or destination."""
        found: set[Location] = set()
        for txn in self.transactions:
            found.add(txn.origin)
            found.add(txn.destination)
        return found

    @property
    def origins(self) -> set[Location]:
        """All distinct origin locations."""
        return {txn.origin for txn in self.transactions}

    @property
    def destinations(self) -> set[Location]:
        """All distinct destination locations."""
        return {txn.destination for txn in self.transactions}

    @property
    def od_pairs(self) -> set[tuple[Location, Location]]:
        """All distinct (origin, destination) pairs."""
        return {txn.od_pair for txn in self.transactions}

    def date_range(self) -> tuple[date, date]:
        """Earliest pickup date and latest delivery date in the dataset."""
        if not self.transactions:
            raise ValueError("cannot compute the date range of an empty dataset")
        earliest = min(txn.req_pickup_dt for txn in self.transactions)
        latest = max(txn.req_delivery_dt for txn in self.transactions)
        return (earliest, latest)

    def filter(self, predicate) -> "TransactionDataset":
        """Return a new dataset containing transactions matching *predicate*."""
        kept = [txn for txn in self.transactions if predicate(txn)]
        return TransactionDataset(transactions=kept, name=self.name)

    def sample(self, count: int, rng) -> "TransactionDataset":
        """Return a new dataset with *count* transactions sampled without replacement.

        ``rng`` is a :class:`random.Random` instance so sampling is
        reproducible; sampling more rows than exist returns a copy.
        """
        if count >= len(self.transactions):
            picked = list(self.transactions)
        else:
            picked = rng.sample(self.transactions, count)
        return TransactionDataset(transactions=picked, name=f"{self.name}-sample")

    def to_records(self) -> list[dict[str, object]]:
        """Return all transactions as flat records (Table 1 column names)."""
        return [txn.as_record() for txn in self.transactions]

    @classmethod
    def from_records(
        cls, records: Sequence[dict[str, object]], name: str = "transportation-od"
    ) -> "TransactionDataset":
        """Build a dataset from flat records."""
        return cls(
            transactions=[Transaction.from_record(record) for record in records],
            name=name,
        )


# ----------------------------------------------------------------------
# Messy-ingest cleaning: zone resolution, imputation, outlier clipping
# ----------------------------------------------------------------------
def _normalise_zone_name(raw: str) -> str:
    """Case/punctuation-insensitive key for zone-name lookups."""
    cleaned = raw.strip().lower()
    for punctuation in "-_./,":
        cleaned = cleaned.replace(punctuation, " ")
    return " ".join(cleaned.split())


@dataclass(frozen=True)
class Zone:
    """A named urban zone with the centroid its trips snap to."""

    name: str
    centroid: Location


class ZoneDirectory:
    """Canonical zone names plus the synonyms raw feeds use for them.

    Multi-source mobility data rarely agrees on naming — one feed says
    ``"Riverside"``, another ``"riverside dist."``, a third ``"RVS"``.
    The directory maps every registered spelling (canonical name and
    explicit synonyms, compared case- and punctuation-insensitively) to
    one :class:`Zone`; unknown names resolve to ``None`` and it is the
    cleaner's job to drop those rows.
    """

    def __init__(self) -> None:
        self._zones: list[Zone] = []
        self._lookup: dict[str, Zone] = {}

    def add(self, name: str, centroid: Location, synonyms: Sequence[str] = ()) -> Zone:
        """Register a zone under its canonical *name* and *synonyms*."""
        zone = Zone(name=name, centroid=centroid)
        for spelling in (name, *synonyms):
            key = _normalise_zone_name(spelling)
            existing = self._lookup.get(key)
            if existing is not None and existing.name != name:
                raise ValueError(
                    f"zone spelling {spelling!r} already maps to {existing.name!r}"
                )
            self._lookup[key] = zone
        self._zones.append(zone)
        return zone

    def resolve(self, raw: object) -> Zone | None:
        """The zone *raw* names, or ``None`` when unknown/blank."""
        if not isinstance(raw, str) or not raw.strip():
            return None
        return self._lookup.get(_normalise_zone_name(raw))

    def zones(self) -> list[Zone]:
        """Registered zones, in registration order."""
        return list(self._zones)

    def __len__(self) -> int:
        return len(self._zones)


@dataclass
class CleaningReport:
    """What :func:`clean_mobility_records` did to one raw feed.

    Counts, not samples: the report is meant for assertions ("this
    corpus had ~3% missing values and they were all imputed") and for
    logging, never for reconstructing the dropped rows.
    """

    rows_in: int = 0
    rows_kept: int = 0
    dropped_unresolvable_zone: int = 0
    dropped_missing_critical: int = 0
    synonyms_resolved: int = 0
    imputed_values: int = 0
    clipped_coordinates: int = 0
    clamped_timestamps: int = 0

    @property
    def rows_dropped(self) -> int:
        return self.dropped_unresolvable_zone + self.dropped_missing_critical


#: Numeric record fields the cleaner imputes, with the Transaction
#: attribute each feeds.
_NUMERIC_FIELDS = ("distance_miles", "weight_lb", "transit_hours")

#: How far (in degrees, either axis) a reported coordinate may sit from
#: its zone's centroid before it is treated as a sensor outlier.
_COORDINATE_TOLERANCE_DEGREES = 1.5

#: Longest plausible pickup-to-delivery span for a road move; anything
#: beyond this is treated as a corrupted timestamp and rebuilt.
_MAX_TRANSIT_DAYS = 31


def _finite_or_none(value: object) -> float | None:
    """*value* as a non-negative finite float, else ``None``."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    number = float(value)
    if not math.isfinite(number) or number < 0:
        return None
    return number


def _lower_median(values: Sequence[float]) -> float:
    """The lower median — deterministic, no float averaging."""
    ordered = sorted(values)
    return ordered[(len(ordered) - 1) // 2]


def _parse_date(value: object) -> date | None:
    if isinstance(value, date):
        return value
    if isinstance(value, str):
        try:
            return date.fromisoformat(value.strip())
        except ValueError:
            return None
    return None


def _parse_mode(value: object) -> TransMode | None:
    if isinstance(value, TransMode):
        return value
    if not isinstance(value, str):
        return None
    text = value.strip().upper()
    if text in ("TL", "TRUCKLOAD", "FULL"):
        return TransMode.TRUCKLOAD
    if text in ("LTL", "LESS-THAN-TRUCKLOAD", "LESS THAN TRUCKLOAD", "PARTIAL"):
        return TransMode.LESS_THAN_TRUCKLOAD
    return None


def _clean_coordinate(
    raw_lat: object, raw_lon: object, centroid: Location
) -> tuple[Location, bool]:
    """A location near *centroid*, clipping outliers; returns (loc, clipped)."""
    lat = raw_lat if isinstance(raw_lat, (int, float)) and not isinstance(raw_lat, bool) else None
    lon = raw_lon if isinstance(raw_lon, (int, float)) and not isinstance(raw_lon, bool) else None
    if (
        lat is None
        or lon is None
        or not math.isfinite(float(lat))
        or not math.isfinite(float(lon))
        or abs(float(lat) - centroid.latitude) > _COORDINATE_TOLERANCE_DEGREES
        or abs(float(lon) - centroid.longitude) > _COORDINATE_TOLERANCE_DEGREES
    ):
        return centroid, True
    return Location(float(lat), float(lon)), False


def clean_mobility_records(
    records: Sequence[Mapping[str, object]],
    zones: ZoneDirectory,
    observation_window: tuple[date, date] | None = None,
    name: str = "mobility",
) -> tuple[TransactionDataset, CleaningReport]:
    """Deterministically clean raw mobility *records* into a dataset.

    Each record is a flat mapping with (possibly missing or garbage)
    keys ``trip_id``, ``origin_zone`` / ``dest_zone``, ``origin_lat`` /
    ``origin_lon`` / ``dest_lat`` / ``dest_lon``, ``pickup_date`` /
    ``delivery_date``, ``distance_miles`` / ``weight_lb`` /
    ``transit_hours``, and ``mode``.  The cleaning rules, in order:

    * rows whose zones the directory cannot resolve are dropped (zone
      identity is what graph vertices are built from — there is nothing
      sound to impute);
    * rows with no parseable pickup date are dropped (temporal
      partitioning cannot place them);
    * missing / non-finite / negative numerics are imputed with the
      **lower median** of the feed's valid values for that field (two
      passes over the input, so the result is independent of row order
      and of hash seeds);
    * coordinates missing or further than ±1.5° from the resolved zone's
      centroid are clipped to the centroid, so a GPS glitch can never
      mint a phantom graph vertex;
    * pickup dates outside *observation_window* (when given) are clamped
      into it, and a missing or pickup-preceding delivery date is
      rebuilt from the (possibly imputed) transit hours.

    Every repair increments the returned :class:`CleaningReport`.
    Records that name a zone through a synonym (any registered spelling
    other than the canonical name) count toward ``synonyms_resolved``.
    """
    report = CleaningReport(rows_in=len(records))

    # Pass 1: per-field medians over the valid values of rows that will
    # be kept, so imputation never learns from dropped garbage.
    valid_values: dict[str, list[float]] = {fieldname: [] for fieldname in _NUMERIC_FIELDS}
    keepable: list[tuple[Mapping[str, object], Zone, Zone, date]] = []
    for record in records:
        origin_zone = zones.resolve(record.get("origin_zone"))
        dest_zone = zones.resolve(record.get("dest_zone"))
        if origin_zone is None or dest_zone is None:
            report.dropped_unresolvable_zone += 1
            continue
        pickup = _parse_date(record.get("pickup_date"))
        if pickup is None or record.get("trip_id") is None:
            report.dropped_missing_critical += 1
            continue
        keepable.append((record, origin_zone, dest_zone, pickup))
        for fieldname in _NUMERIC_FIELDS:
            value = _finite_or_none(record.get(fieldname))
            if value is not None:
                valid_values[fieldname].append(value)
    medians = {
        fieldname: (_lower_median(values) if values else 0.0)
        for fieldname, values in valid_values.items()
    }

    # Pass 2: materialise cleaned transactions.
    transactions: list[Transaction] = []
    for record, origin_zone, dest_zone, pickup in keepable:
        for zone_key, zone in (("origin_zone", origin_zone), ("dest_zone", dest_zone)):
            if _normalise_zone_name(str(record[zone_key])) != _normalise_zone_name(zone.name):
                report.synonyms_resolved += 1

        numerics: dict[str, float] = {}
        for fieldname in _NUMERIC_FIELDS:
            value = _finite_or_none(record.get(fieldname))
            if value is None:
                value = medians[fieldname]
                report.imputed_values += 1
            numerics[fieldname] = value

        origin, clipped_origin = _clean_coordinate(
            record.get("origin_lat"), record.get("origin_lon"), origin_zone.centroid
        )
        destination, clipped_dest = _clean_coordinate(
            record.get("dest_lat"), record.get("dest_lon"), dest_zone.centroid
        )
        report.clipped_coordinates += int(clipped_origin) + int(clipped_dest)

        if observation_window is not None:
            window_start, window_end = observation_window
            clamped_pickup = min(max(pickup, window_start), window_end)
            if clamped_pickup != pickup:
                report.clamped_timestamps += 1
                pickup = clamped_pickup
        delivery = _parse_date(record.get("delivery_date"))
        # A delivery more than a month after pickup is as corrupt as one
        # before it: road transit is measured in days, and a teleported
        # pickup that was clamped above would otherwise drag its original
        # far-future delivery along.  Rebuild from transit hours instead.
        implausible = (
            delivery is not None
            and (delivery < pickup or (delivery - pickup).days > _MAX_TRANSIT_DAYS)
        )
        if delivery is None or implausible:
            transit_days = max(0, int(math.ceil(numerics["transit_hours"] / 24.0)))
            delivery = pickup + timedelta(days=transit_days)
            report.clamped_timestamps += 1

        mode = _parse_mode(record.get("mode"))
        if mode is None:
            # The paper's own observation: mode is almost fully determined
            # by gross weight, so it is the one field safely derivable.
            mode = (
                TransMode.LESS_THAN_TRUCKLOAD
                if numerics["weight_lb"] < 10_000.0
                else TransMode.TRUCKLOAD
            )
            report.imputed_values += 1

        transactions.append(
            Transaction(
                id=int(record["trip_id"]),  # type: ignore[arg-type]
                req_pickup_dt=pickup,
                req_delivery_dt=delivery,
                origin=origin,
                destination=destination,
                total_distance=numerics["distance_miles"],
                gross_weight=numerics["weight_lb"],
                move_transit_hours=numerics["transit_hours"],
                trans_mode=mode,
            )
        )
    report.rows_kept = len(transactions)
    return TransactionDataset(transactions=transactions, name=name), report
