"""Transaction schema for the transportation network dataset.

Table 1 of the paper describes each OD (origin-destination) transaction
with eleven attributes: a unique identifier, requested pickup and delivery
dates, origin and destination coordinates (to the nearest 0.1 degree),
total road distance, gross weight, transit hours, and transport mode
(Truckload or Less-than-Truckload).

This module defines :class:`Transaction` (one row of the dataset),
:class:`Location` (a latitude/longitude pair used as a graph vertex), and
:class:`TransactionDataset` (an ordered collection with convenience
accessors used throughout the library).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from datetime import date, timedelta
from typing import Iterable, Iterator, Sequence


class TransMode(str, enum.Enum):
    """Transport mode of a load.

    ``TL`` (Truckload) means the load fills a truck; ``LTL`` (Less than
    Truckload) means it shares a truck with other loads.  The paper's
    conventional-mining experiments (Section 7) find the mode is almost
    fully determined by gross weight.
    """

    TRUCKLOAD = "TL"
    LESS_THAN_TRUCKLOAD = "LTL"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Attribute names in the order used by Table 1 of the paper.
ATTRIBUTE_NAMES: tuple[str, ...] = (
    "ID",
    "REQ_PICKUP_DT",
    "REQ_DELIVERY_DT",
    "ORIGIN_LATITUDE",
    "ORIGIN_LONGITUDE",
    "DEST_LATITUDE",
    "DEST_LONGITUDE",
    "TOTAL_DISTANCE",
    "GROSS_WEIGHT",
    "MOVE_TRANSIT_HOURS",
    "TRANS_MODE",
)

#: Human-readable descriptions, mirroring Table 1.
ATTRIBUTE_DESCRIPTIONS: dict[str, str] = {
    "ID": "Unique transaction identifier.",
    "REQ_PICKUP_DT": "Requested date to pick up the load.",
    "REQ_DELIVERY_DT": "Requested delivery date.",
    "ORIGIN_LATITUDE": "Latitude of source (to nearest 0.1 degree).",
    "ORIGIN_LONGITUDE": "Longitude of source (to nearest 0.1 degree).",
    "DEST_LATITUDE": "Latitude of destination (to nearest 0.1 degree).",
    "DEST_LONGITUDE": "Longitude of destination (to nearest 0.1 degree).",
    "TOTAL_DISTANCE": "Road miles between origin and destination.",
    "GROSS_WEIGHT": "Weight of load.",
    "MOVE_TRANSIT_HOURS": "Hours needed to get from origin to destination.",
    "TRANS_MODE": "Truckload or Less than Truckload.",
}


def _round_coordinate(value: float) -> float:
    """Round a coordinate to the nearest 0.1 degree, as in the dataset."""
    return round(value, 1)


@dataclass(frozen=True, order=True)
class Location:
    """A latitude/longitude pair identifying a place in the network.

    Coordinates are stored to the nearest 0.1 degree, matching the
    resolution of the paper's dataset; two loads whose endpoints round to
    the same pair are treated as sharing a vertex.
    """

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "latitude", _round_coordinate(self.latitude))
        object.__setattr__(self, "longitude", _round_coordinate(self.longitude))

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(latitude, longitude)``."""
        return (self.latitude, self.longitude)

    def label(self) -> str:
        """A compact string label, used for vertex labeling in Section 6."""
        return f"{self.latitude:.1f},{self.longitude:.1f}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label()


@dataclass(frozen=True)
class Transaction:
    """One origin-destination freight transaction (one row of Table 1)."""

    id: int
    req_pickup_dt: date
    req_delivery_dt: date
    origin: Location
    destination: Location
    total_distance: float
    gross_weight: float
    move_transit_hours: float
    trans_mode: TransMode

    def __post_init__(self) -> None:
        if self.req_delivery_dt < self.req_pickup_dt:
            raise ValueError(
                "delivery date precedes pickup date for transaction "
                f"{self.id}: {self.req_delivery_dt} < {self.req_pickup_dt}"
            )
        if self.total_distance < 0:
            raise ValueError(f"negative distance for transaction {self.id}")
        if self.gross_weight < 0:
            raise ValueError(f"negative gross weight for transaction {self.id}")
        if self.move_transit_hours < 0:
            raise ValueError(f"negative transit hours for transaction {self.id}")

    @property
    def od_pair(self) -> tuple[Location, Location]:
        """The (origin, destination) pair identifying the network edge."""
        return (self.origin, self.destination)

    @property
    def transit_days(self) -> int:
        """Number of calendar days between pickup and delivery, inclusive."""
        return (self.req_delivery_dt - self.req_pickup_dt).days + 1

    def active_dates(self) -> Iterator[date]:
        """Yield every date on which the load may be in transit.

        Section 6 of the paper treats an OD pair as an *active edge* on
        every date between the requested pickup and delivery dates; this
        iterator drives the temporal partitioning.
        """
        current = self.req_pickup_dt
        while current <= self.req_delivery_dt:
            yield current
            current += timedelta(days=1)

    def with_id(self, new_id: int) -> "Transaction":
        """Return a copy with a different identifier."""
        return replace(self, id=new_id)

    def as_record(self) -> dict[str, object]:
        """Return a flat dict keyed by the Table 1 attribute names."""
        return {
            "ID": self.id,
            "REQ_PICKUP_DT": self.req_pickup_dt.isoformat(),
            "REQ_DELIVERY_DT": self.req_delivery_dt.isoformat(),
            "ORIGIN_LATITUDE": self.origin.latitude,
            "ORIGIN_LONGITUDE": self.origin.longitude,
            "DEST_LATITUDE": self.destination.latitude,
            "DEST_LONGITUDE": self.destination.longitude,
            "TOTAL_DISTANCE": self.total_distance,
            "GROSS_WEIGHT": self.gross_weight,
            "MOVE_TRANSIT_HOURS": self.move_transit_hours,
            "TRANS_MODE": self.trans_mode.value,
        }

    @classmethod
    def from_record(cls, record: dict[str, object]) -> "Transaction":
        """Build a transaction from a flat record produced by :meth:`as_record`."""
        return cls(
            id=int(record["ID"]),
            req_pickup_dt=date.fromisoformat(str(record["REQ_PICKUP_DT"])),
            req_delivery_dt=date.fromisoformat(str(record["REQ_DELIVERY_DT"])),
            origin=Location(
                float(record["ORIGIN_LATITUDE"]), float(record["ORIGIN_LONGITUDE"])
            ),
            destination=Location(
                float(record["DEST_LATITUDE"]), float(record["DEST_LONGITUDE"])
            ),
            total_distance=float(record["TOTAL_DISTANCE"]),
            gross_weight=float(record["GROSS_WEIGHT"]),
            move_transit_hours=float(record["MOVE_TRANSIT_HOURS"]),
            trans_mode=TransMode(str(record["TRANS_MODE"])),
        )


@dataclass
class TransactionDataset:
    """An ordered collection of :class:`Transaction` records.

    The dataset is the single entry point for every experiment: graph
    builders, temporal partitioning, and the conventional-mining feature
    extraction all consume it.
    """

    transactions: list[Transaction] = field(default_factory=list)
    name: str = "transportation-od"

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)

    def __getitem__(self, index: int) -> Transaction:
        return self.transactions[index]

    def add(self, transaction: Transaction) -> None:
        """Append a transaction to the dataset."""
        self.transactions.append(transaction)

    def extend(self, transactions: Iterable[Transaction]) -> None:
        """Append many transactions to the dataset."""
        self.transactions.extend(transactions)

    @property
    def locations(self) -> set[Location]:
        """All distinct locations appearing as an origin or destination."""
        found: set[Location] = set()
        for txn in self.transactions:
            found.add(txn.origin)
            found.add(txn.destination)
        return found

    @property
    def origins(self) -> set[Location]:
        """All distinct origin locations."""
        return {txn.origin for txn in self.transactions}

    @property
    def destinations(self) -> set[Location]:
        """All distinct destination locations."""
        return {txn.destination for txn in self.transactions}

    @property
    def od_pairs(self) -> set[tuple[Location, Location]]:
        """All distinct (origin, destination) pairs."""
        return {txn.od_pair for txn in self.transactions}

    def date_range(self) -> tuple[date, date]:
        """Earliest pickup date and latest delivery date in the dataset."""
        if not self.transactions:
            raise ValueError("cannot compute the date range of an empty dataset")
        earliest = min(txn.req_pickup_dt for txn in self.transactions)
        latest = max(txn.req_delivery_dt for txn in self.transactions)
        return (earliest, latest)

    def filter(self, predicate) -> "TransactionDataset":
        """Return a new dataset containing transactions matching *predicate*."""
        kept = [txn for txn in self.transactions if predicate(txn)]
        return TransactionDataset(transactions=kept, name=self.name)

    def sample(self, count: int, rng) -> "TransactionDataset":
        """Return a new dataset with *count* transactions sampled without replacement.

        ``rng`` is a :class:`random.Random` instance so sampling is
        reproducible; sampling more rows than exist returns a copy.
        """
        if count >= len(self.transactions):
            picked = list(self.transactions)
        else:
            picked = rng.sample(self.transactions, count)
        return TransactionDataset(transactions=picked, name=f"{self.name}-sample")

    def to_records(self) -> list[dict[str, object]]:
        """Return all transactions as flat records (Table 1 column names)."""
        return [txn.as_record() for txn in self.transactions]

    @classmethod
    def from_records(
        cls, records: Sequence[dict[str, object]], name: str = "transportation-od"
    ) -> "TransactionDataset":
        """Build a dataset from flat records."""
        return cls(
            transactions=[Transaction.from_record(record) for record in records],
            name=name,
        )
