"""Synthetic transportation-network dataset generator.

The paper evaluates on six months of proprietary origin-destination (OD)
data from a third-party logistics company.  That data is not available, so
this module generates a synthetic equivalent calibrated to every statistic
Section 3 reports and seeded with the structural motifs the paper's
experiments discover:

* 98,292 transactions over roughly six months (scalable via ``scale``);
* about 4,038 distinct locations, 1,797 origins, 3,770 destinations and
  20,900 distinct OD pairs (several deliveries per pair);
* heavily skewed out-degree (a handful of distribution-centre hubs with
  thousands of outgoing lanes, most locations with one or two);
* hub-and-spoke motifs, short delivery chains that mix pickups and
  deliveries, deadhead corridors with strongly asymmetric flow, and a few
  air-freight outliers (trans-Pacific loads covering >3,000 miles in under
  a day);
* a geographic concentration of origins in the Midwest/Northeast corridor,
  which yields the longitude->latitude association rule of Section 7.1;
* gross weight that almost fully determines the transport mode, which
  yields the 96%-accurate weight-rooted decision tree of Section 7.2;
* a short-haul / long-haul split in distance and transit hours, which
  yields the EM clustering structure of Figures 5 and 6.

Because the paper's conclusions depend only on these shapes, experiments
run on this synthetic data exercise the same code paths and reproduce the
same qualitative results.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from datetime import date, timedelta
from typing import Iterable, Sequence

from repro.datasets.geo import road_miles, transit_hours_for_distance
from repro.datasets.schema import (
    Location,
    TransMode,
    Transaction,
    TransactionDataset,
    ZoneDirectory,
)

#: Continental-US bounding box used to place locations.
_CONUS_LAT_RANGE = (25.0, 49.0)
_CONUS_LON_RANGE = (-124.0, -67.0)

#: The Midwest/Northeast corridor referenced by the Section 7.1 rule
#: ORIGIN_LONGITUDE in (-84.76, -75.43] -> ORIGIN_LATITUDE in (39.8, 44.08].
#: The synthetic corridor is slightly narrower so it nests inside one
#: equal-width discretisation bin, keeping the rule's confidence high the
#: way it is in the paper's data.
_CORRIDOR_LON_RANGE = (-83.0, -75.5)
_CORRIDOR_LAT_RANGE = (39.8, 42.3)

#: Southern band used for long-haul (corridor) destinations, giving the
#: destination latitude a visible relationship with total distance.
_SOUTHERN_LAT_RANGE = (25.5, 34.5)

#: Pacific-Northwest origin and Hawaii destination for air-freight outliers.
_PNW_ORIGIN = Location(47.6, -122.3)
_HAWAII_DESTINATION = Location(21.3, -157.9)

#: Requested-service windows (hours) used when the drive time is shorter;
#: real OD data quotes transit windows, so hours are only loosely tied to
#: distance (the Section 7.2 observation).
_SERVICE_WINDOWS_HOURS = (24.0, 48.0, 72.0, 96.0)


@dataclass(frozen=True)
class GeneratorConfig:
    """Configuration of the synthetic dataset generator.

    The defaults reproduce the full-size dataset described in Section 3 of
    the paper.  ``scale`` shrinks every count proportionally (with sane
    minimums) so tests and quick benchmarks can run on small instances
    while preserving the data's shape.
    """

    seed: int = 20050405
    scale: float = 1.0

    # Headline counts from Section 3.
    n_transactions: int = 98_292
    n_locations: int = 4_038
    n_origins: int = 1_797
    n_destinations: int = 3_770
    n_od_pairs: int = 20_900

    # Motif structure.
    n_hubs: int = 24
    hub_max_out_degree: int = 2_373
    n_chains: int = 160
    chain_length_range: tuple[int, int] = (3, 7)
    n_deadhead_corridors: int = 60
    n_air_freight_outliers: int = 3

    # Temporal extent: six months starting in January.
    start_date: date = date(2004, 1, 1)
    n_days: int = 182

    # Attribute model.
    ltl_weight_threshold: float = 10_000.0
    max_gross_weight: float = 110_000.0
    mode_noise: float = 0.04
    corridor_origin_fraction: float = 0.45
    corridor_latitude_confidence: float = 0.87

    def scaled(self) -> "GeneratorConfig":
        """Return a copy with all counts multiplied by ``scale``.

        Scaling keeps ratios (transactions per OD pair, origins per
        location, hubs per origin) roughly constant, so small instances
        remain structurally faithful.
        """
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.scale == 1.0:
            return self

        def shrink(value: int, minimum: int) -> int:
            return max(minimum, int(round(value * self.scale)))

        return replace(
            self,
            scale=1.0,
            n_transactions=shrink(self.n_transactions, 200),
            n_locations=shrink(self.n_locations, 60),
            n_origins=shrink(self.n_origins, 30),
            n_destinations=shrink(self.n_destinations, 50),
            n_od_pairs=shrink(self.n_od_pairs, 120),
            n_hubs=shrink(self.n_hubs, 3),
            hub_max_out_degree=shrink(self.hub_max_out_degree, 20),
            n_chains=shrink(self.n_chains, 6),
            n_deadhead_corridors=shrink(self.n_deadhead_corridors, 4),
            n_air_freight_outliers=max(1, min(self.n_air_freight_outliers, 3)),
        )


@dataclass
class _LanePlan:
    """Internal plan for one OD lane before transactions are materialised."""

    origin: Location
    destination: Location
    trips: int
    motif: str
    weekly: bool = False
    weekly_offset: int | None = None
    cadence_days: int = 7
    base_weight: float | None = None


class TransportationDataGenerator:
    """Generates a synthetic OD transaction dataset with planted motifs.

    Usage::

        generator = TransportationDataGenerator(GeneratorConfig(scale=0.05))
        dataset = generator.generate()
    """

    def __init__(self, config: GeneratorConfig | None = None) -> None:
        self.config = (config or GeneratorConfig()).scaled()
        self._rng = random.Random(self.config.seed)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self) -> TransactionDataset:
        """Generate the full synthetic dataset."""
        locations = self._generate_locations()
        lanes = self._plan_lanes(locations)
        transactions = self._materialise_transactions(lanes)
        return TransactionDataset(transactions=transactions, name="synthetic-od")

    # ------------------------------------------------------------------
    # Location placement
    # ------------------------------------------------------------------
    def _random_location(self, lat_range: tuple[float, float], lon_range: tuple[float, float]) -> Location:
        lat = self._rng.uniform(*lat_range)
        lon = self._rng.uniform(*lon_range)
        return Location(lat, lon)

    def _corridor_location(self) -> Location:
        """A location inside the Midwest/Northeast corridor longitude band.

        With probability ``corridor_latitude_confidence`` the latitude also
        lies in the corridor latitude band, producing the Section 7.1
        association rule at roughly the reported confidence.
        """
        lon = self._rng.uniform(*_CORRIDOR_LON_RANGE)
        if self._rng.random() < self.config.corridor_latitude_confidence:
            lat = self._rng.uniform(*_CORRIDOR_LAT_RANGE)
        else:
            lat = self._rng.uniform(_CONUS_LAT_RANGE[0], _CORRIDOR_LAT_RANGE[0])
        return Location(lat, lon)

    def _generate_locations(self) -> dict[str, list[Location]]:
        """Place hubs, corridor origins, and general locations.

        Returns a dict with keys ``hubs``, ``origins``, and ``destinations``
        (hubs are also origins).  Location counts follow the configuration;
        the origin and destination pools overlap, as in the real data where
        several places are both.
        """
        config = self.config
        seen: set[Location] = set()

        def place(factory) -> Location:
            for _ in range(200):
                candidate = factory()
                if candidate not in seen:
                    seen.add(candidate)
                    return candidate
            # Coordinates are rounded to 0.1 degree, so collisions are
            # possible at high densities; accept a duplicate rather than
            # loop forever.
            candidate = factory()
            seen.add(candidate)
            return candidate

        def hub_factory() -> Location:
            # Hubs follow the same geographic concentration as other origins
            # so the corridor rule also holds for hub-originated traffic.
            if self._rng.random() < config.corridor_origin_fraction:
                return self._corridor_location()
            return self._random_location(_CONUS_LAT_RANGE, _CONUS_LON_RANGE)

        hubs = [place(hub_factory) for _ in range(config.n_hubs)]

        n_corridor = int(config.n_origins * config.corridor_origin_fraction)
        corridor_origins = [place(self._corridor_location) for _ in range(n_corridor)]
        other_origins = [
            place(lambda: self._random_location(_CONUS_LAT_RANGE, _CONUS_LON_RANGE))
            for _ in range(max(0, config.n_origins - n_corridor - len(hubs)))
        ]
        origins = hubs + corridor_origins + other_origins

        n_new_destinations = max(0, config.n_destinations - len(origins) // 2)
        destinations = [
            place(lambda: self._random_location(_CONUS_LAT_RANGE, _CONUS_LON_RANGE))
            for _ in range(n_new_destinations)
        ]
        # Several locations are both origins and destinations, as in the
        # paper (1797 + 3770 > 4038 distinct locations).
        destinations.extend(self._rng.sample(origins, len(origins) // 2))

        return {"hubs": hubs, "origins": origins, "destinations": destinations}

    # ------------------------------------------------------------------
    # Lane planning (OD pair structure)
    # ------------------------------------------------------------------
    def _plan_lanes(self, locations: dict[str, list[Location]]) -> list[_LanePlan]:
        """Decide the set of OD lanes and how many trips each carries."""
        config = self.config
        hubs = locations["hubs"]
        origins = locations["origins"]
        destinations = locations["destinations"]
        lanes: dict[tuple[Location, Location], _LanePlan] = {}

        def add_lane(
            origin: Location,
            destination: Location,
            trips: int,
            motif: str,
            weekly: bool = False,
            weekly_offset: int | None = None,
            cadence_days: int = 7,
            base_weight: float | None = None,
        ) -> None:
            if origin == destination:
                return
            key = (origin, destination)
            if key in lanes:
                lanes[key].trips += trips
            else:
                lanes[key] = _LanePlan(
                    origin,
                    destination,
                    trips,
                    motif,
                    weekly,
                    weekly_offset,
                    cadence_days,
                    base_weight,
                )

        # Hub-and-spoke: each hub ships to many destinations; the first hub
        # gets the maximum out-degree reported in the paper.  A small core
        # of spokes per hub is served on a weekly cadence so the temporal
        # experiments can find repeated hub-and-spoke patterns (Figure 4).
        degrees = self._hub_out_degrees(len(hubs), len(destinations))
        for hub_rank, (hub, degree) in enumerate(zip(hubs, degrees)):
            spokes = self._rng.sample(destinations, min(degree, len(destinations)))
            core = spokes[: min(4, len(spokes))]
            # All core spokes of a hub share the same distribution day, so the
            # same hub-and-spoke shape recurs on many dates — the temporally
            # repeated route the Figure 4 experiment finds.  The largest hub
            # runs its core distribution every other day (a dedicated daily
            # run), the rest weekly; core lanes carry a consistent product
            # weight so the recurring edges fall in the same weight bin.
            hub_offset = self._rng.randint(0, 6)
            cadence = 2 if hub_rank == 0 else 7
            trips_per_core_lane = (
                self._rng.randint(70, 85) if hub_rank == 0 else self._rng.randint(12, 26)
            )
            for spoke in core:
                add_lane(
                    hub,
                    spoke,
                    trips=trips_per_core_lane,
                    motif="hub_spoke_core",
                    weekly=True,
                    weekly_offset=hub_offset,
                    cadence_days=cadence,
                    base_weight=self._rng.uniform(15_000.0, 42_000.0),
                )
            for spoke in spokes[len(core):]:
                add_lane(hub, spoke, trips=1 + self._poisson(0.8), motif="hub_spoke")

        # Delivery chains: short routes visiting several nearby locations,
        # mixing pickups and deliveries (the Figure 3 pattern).
        for _ in range(config.n_chains):
            length = self._rng.randint(*config.chain_length_range)
            anchor = self._rng.choice(origins)
            stops = [anchor] + [self._nearby_location(anchor) for _ in range(length)]
            chain_offset = self._rng.randint(0, 6)
            chain_weight = self._rng.uniform(2_000.0, 9_000.0)
            for a, b in zip(stops, stops[1:]):
                add_lane(
                    a,
                    b,
                    trips=self._rng.randint(4, 12),
                    motif="chain",
                    weekly=True,
                    weekly_offset=chain_offset,
                    base_weight=chain_weight,
                )

        # Deadhead corridors: heavy flow one way, little or none back
        # (the Figure 1 observation).  Corridor destinations sit in the
        # southern band, so long hauls end at low latitudes and destination
        # latitude carries information about distance (Section 7.2).
        southern_destinations = [
            destination
            for destination in destinations
            if _SOUTHERN_LAT_RANGE[0] <= destination.latitude <= _SOUTHERN_LAT_RANGE[1]
        ]
        for _ in range(config.n_deadhead_corridors):
            a = self._rng.choice(origins)
            pool = southern_destinations or destinations
            b = self._rng.choice(pool)
            if a == b:
                continue
            add_lane(a, b, trips=self._rng.randint(20, 60), motif="deadhead_out")
            if self._rng.random() < 0.25:
                add_lane(b, a, trips=self._rng.randint(1, 3), motif="deadhead_back")

        # Air-freight outliers: trans-Pacific loads, >3,000 miles in <24 h.
        for _ in range(config.n_air_freight_outliers):
            add_lane(_PNW_ORIGIN, _HAWAII_DESTINATION, trips=1, motif="air_freight")

        # Background lanes: fill up to the target number of distinct OD
        # pairs with low-volume traffic between random locations.
        attempts = 0
        while len(lanes) < config.n_od_pairs and attempts < config.n_od_pairs * 20:
            attempts += 1
            origin = self._rng.choice(origins)
            destination = self._rng.choice(destinations)
            if origin == destination or (origin, destination) in lanes:
                continue
            add_lane(origin, destination, trips=1 + self._poisson(0.6), motif="background")

        planned = list(lanes.values())
        self._rescale_trip_counts(planned)
        return planned

    def _hub_out_degrees(self, n_hubs: int, n_destinations: int) -> list[int]:
        """Skewed out-degree targets for the hubs (max matches the paper)."""
        if n_hubs == 0:
            return []
        max_degree = min(self.config.hub_max_out_degree, max(1, n_destinations - 1))
        degrees = [max_degree]
        for rank in range(1, n_hubs):
            # Zipf-like decay so a few hubs dominate.
            degree = max(5, int(max_degree / (rank + 1) ** 1.2))
            degrees.append(min(degree, n_destinations))
        return degrees

    def _nearby_location(self, anchor: Location) -> Location:
        """A location within a few degrees of *anchor* (regional stop)."""
        lat = min(_CONUS_LAT_RANGE[1], max(_CONUS_LAT_RANGE[0], anchor.latitude + self._rng.uniform(-2.0, 2.0)))
        lon = min(_CONUS_LON_RANGE[1], max(_CONUS_LON_RANGE[0], anchor.longitude + self._rng.uniform(-2.5, 2.5)))
        return Location(lat, lon)

    def _poisson(self, lam: float) -> int:
        """Sample a small Poisson variate (Knuth's method)."""
        threshold = math.exp(-lam)
        count = 0
        product = self._rng.random()
        while product > threshold:
            count += 1
            product *= self._rng.random()
        return count

    def _rescale_trip_counts(self, lanes: list[_LanePlan]) -> None:
        """Scale planned trip counts so the total matches ``n_transactions``."""
        total_planned = sum(lane.trips for lane in lanes)
        target = self.config.n_transactions
        if total_planned <= 0:
            return
        factor = target / total_planned
        for lane in lanes:
            lane.trips = max(1, int(round(lane.trips * factor)))
        # Fine-tune the total by adjusting background lanes.
        difference = target - sum(lane.trips for lane in lanes)
        adjustable = [lane for lane in lanes if lane.motif in ("background", "hub_spoke")]
        if not adjustable:
            adjustable = lanes
        index = 0
        while difference != 0 and adjustable:
            lane = adjustable[index % len(adjustable)]
            if difference > 0:
                lane.trips += 1
                difference -= 1
            elif lane.trips > 1:
                lane.trips -= 1
                difference += 1
            index += 1
            if index > 10 * len(adjustable) and difference < 0:
                break

    # ------------------------------------------------------------------
    # Transaction materialisation
    # ------------------------------------------------------------------
    def _materialise_transactions(self, lanes: Sequence[_LanePlan]) -> list[Transaction]:
        transactions: list[Transaction] = []
        next_id = 1
        for lane in lanes:
            dates = self._trip_dates(lane)
            for pickup in dates:
                transactions.append(self._build_transaction(next_id, lane, pickup))
                next_id += 1
        self._rng.shuffle(transactions)
        # Re-number after shuffling so IDs are not correlated with motifs.
        transactions = [txn.with_id(i + 1) for i, txn in enumerate(transactions)]
        return transactions

    def _trip_dates(self, lane: _LanePlan) -> list[date]:
        """Pickup dates for a lane's trips.

        Weekly lanes repeat on a fixed weekday (plus occasional jitter) so
        routes recur over time; other lanes pick dates uniformly over the
        six-month window.
        """
        config = self.config
        if lane.weekly:
            offset = lane.weekly_offset if lane.weekly_offset is not None else self._rng.randint(0, 6)
            dates = []
            day = offset
            while len(dates) < lane.trips and day < config.n_days:
                jitter = self._rng.choice([0, 0, 0, 1, -1])
                chosen = min(config.n_days - 1, max(0, day + jitter))
                dates.append(config.start_date + timedelta(days=chosen))
                day += max(1, lane.cadence_days)
            # If the lane has more trips than weeks, wrap around with
            # uniform dates for the remainder.
            while len(dates) < lane.trips:
                dates.append(config.start_date + timedelta(days=self._rng.randrange(config.n_days)))
            return dates
        return [
            config.start_date + timedelta(days=self._rng.randrange(config.n_days))
            for _ in range(lane.trips)
        ]

    def _build_transaction(self, txn_id: int, lane: _LanePlan, pickup: date) -> Transaction:
        config = self.config
        if lane.motif == "air_freight":
            # Air routing is measured along the flight path; the factor keeps
            # the trans-Pacific legs above the 3,000-mile mark the paper
            # mentions while the transit stays under a day.
            distance = road_miles(lane.origin, lane.destination, circuity_factor=1.15)
            hours = self._rng.uniform(10.0, 22.0)
            weight = self._rng.uniform(2_000.0, 8_000.0)
        else:
            distance = road_miles(lane.origin, lane.destination)
            drive_hours = transit_hours_for_distance(distance) * self._rng.uniform(0.9, 1.15)
            # Quoted transit hours are the larger of the drive time and a
            # requested service window, so hours correlate with distance only
            # loosely (the Section 7.2 observation about J4.8 on distance).
            window = self._rng.choice(_SERVICE_WINDOWS_HOURS)
            hours = max(1.0, drive_hours, window)
            weight = self._sample_weight(lane)
        mode = self._mode_for_weight(weight)
        transit_days = max(0, int(math.ceil(hours / 24.0)))
        slack_days = self._rng.choice([0, 0, 1, 1, 2])
        delivery = pickup + timedelta(days=transit_days + slack_days)
        return Transaction(
            id=txn_id,
            req_pickup_dt=pickup,
            req_delivery_dt=delivery,
            origin=lane.origin,
            destination=lane.destination,
            total_distance=round(distance, 1),
            gross_weight=round(weight, 1),
            move_transit_hours=round(hours, 1),
            trans_mode=mode,
        )

    def _sample_weight(self, lane: _LanePlan) -> float:
        """Gross weight sample.

        Lanes with a planned base weight (recurring distribution runs and
        delivery chains) ship a consistent product, so their weight varies
        only slightly trip to trip and the recurring edge keeps the same
        weight bin.  Other lanes mix light (LTL) loads with heavier
        truckloads, plus a thin oversize tail.
        """
        config = self.config
        if lane.base_weight is not None:
            return lane.base_weight * self._rng.uniform(0.93, 1.07)
        roll = self._rng.random()
        if lane.motif in ("chain", "background", "hub_spoke"):
            ltl_probability = 0.55
        else:
            ltl_probability = 0.25
        if roll < ltl_probability:
            return self._rng.uniform(150.0, config.ltl_weight_threshold * 0.95)
        if roll < 0.995:
            return self._rng.uniform(config.ltl_weight_threshold * 1.05, 46_000.0)
        # Rare oversize / permit loads form a thin heavy tail above the normal
        # truckload range, capped by ``max_gross_weight``.
        heavy = 46_000.0 * (1.0 + self._rng.expovariate(1.5))
        return min(config.max_gross_weight, heavy)

    def _mode_for_weight(self, weight: float) -> TransMode:
        """Transport mode, almost fully determined by weight (Section 7.2)."""
        is_ltl = weight < self.config.ltl_weight_threshold
        if self._rng.random() < self.config.mode_noise:
            is_ltl = not is_ltl
        return TransMode.LESS_THAN_TRUCKLOAD if is_ltl else TransMode.TRUCKLOAD


# ----------------------------------------------------------------------
# Messy multi-source urban-mobility feed
# ----------------------------------------------------------------------
#: Base names of the synthetic city's zones; positions on a 0.1-degree
#: grid guarantee every zone centroid rounds to a distinct vertex label.
_ZONE_NAMES: tuple[str, ...] = (
    "riverside", "harborview", "midtown", "oldtown", "lakeside", "brookfield",
    "eastgate", "westend", "northpoint", "southbank", "hillcrest", "parkway",
    "ferndale", "stonebridge", "maplewood", "cedarview", "elmhurst", "bayfront",
)


@dataclass(frozen=True)
class MobilityConfig:
    """Configuration of the messy urban-mobility feed generator.

    The defaults produce roughly twelve weeks of trips across eighteen
    zones with the dirt levels of a typical multi-source feed: ~3%
    missing numeric values, a few percent coordinate/timestamp outliers,
    and zone names spelled through whatever synonym each source uses.
    """

    seed: int = 20050405
    n_zones: int = 18
    n_weeks: int = 12
    n_recurring_routes: int = 10
    background_per_week: int = 16
    missing_rate: float = 0.03
    outlier_rate: float = 0.03
    unknown_zone_rate: float = 0.03
    start_date: date = date(2004, 3, 1)

    def __post_init__(self) -> None:
        if not 1 <= self.n_zones <= len(_ZONE_NAMES):
            raise ValueError(f"n_zones must be in [1, {len(_ZONE_NAMES)}]")
        if self.n_weeks < 1:
            raise ValueError("n_weeks must be at least 1")

    @property
    def window(self) -> tuple[date, date]:
        """The feed's observation window (outliers are clamped into it)."""
        return (self.start_date, self.start_date + timedelta(days=self.n_weeks * 7 - 1))


def _zone_spellings(name: str) -> list[str]:
    """The synonym spellings sources use for the zone called *name*.

    The first entry is the canonical name itself; the rest are the
    variants registered as directory synonyms (an all-caps form is
    omitted — case folds to the canonical spelling anyway).
    """
    return [name, f"{name} district", name[:3].upper()]


def mobility_zone_directory(config: MobilityConfig) -> ZoneDirectory:
    """The city's zone directory: canonical names, synonyms, centroids."""
    directory = ZoneDirectory()
    for index, name in enumerate(_ZONE_NAMES[: config.n_zones]):
        centroid = Location(45.0 + 0.1 * (index // 6), -122.9 + 0.1 * (index % 6))
        spellings = _zone_spellings(name)
        directory.add(name, centroid, synonyms=spellings[1:])
    return directory


def generate_messy_mobility_records(
    config: MobilityConfig, zones: ZoneDirectory | None = None
) -> list[dict[str, object]]:
    """Raw mobility trip records, deliberately dirty.

    A pure function of ``config.seed``.  Each record is a flat dict in
    the shape :func:`repro.datasets.schema.clean_mobility_records`
    consumes.  Structure first: a set of recurring weekly routes (same
    zone pair, consistent weight, one trip per week) that survives
    cleaning as the frequent patterns downstream miners should find,
    plus uniform background trips.  Dirt second, injected on top:

    * zone names spelled through a random registered synonym, and a few
      percent replaced with names no directory resolves;
    * numeric fields (distance, weight, transit hours) dropped at
      ``missing_rate``, some replaced with NaN or negatives;
    * coordinates shifted tens of degrees, pickup dates teleported
      outside the observation window, and deliveries placed before
      pickups, each at ``outlier_rate``.
    """
    directory = zones if zones is not None else mobility_zone_directory(config)
    zone_list = directory.zones()
    rng = random.Random(config.seed)

    def spell(zone_index: int) -> str:
        roll = rng.random()
        if roll < config.unknown_zone_rate:
            return f"uncharted-{rng.randrange(100)}"
        spellings = _zone_spellings(zone_list[zone_index].name)
        if roll < config.unknown_zone_rate + 0.55:
            return spellings[0]
        return spellings[1 + rng.randrange(len(spellings) - 1)]

    routes = []
    for _ in range(config.n_recurring_routes):
        a, b = rng.sample(range(len(zone_list)), 2)
        routes.append((a, b, rng.uniform(3_000.0, 38_000.0)))

    def coordinate(zone_index: int, axis: str) -> float:
        centroid = zone_list[zone_index].centroid
        base = centroid.latitude if axis == "lat" else centroid.longitude
        value = base + rng.uniform(-0.03, 0.03)
        if rng.random() < config.outlier_rate:
            value += rng.choice((-40.0, 25.0, 60.0))
        return value

    def numeric(value: float) -> object:
        roll = rng.random()
        if roll < config.missing_rate:
            return rng.choice((None, float("nan")))
        if roll < config.missing_rate + config.outlier_rate / 2:
            return -abs(value)
        return round(value, 1)

    def trip(trip_id: int, origin: int, dest: int, pickup: date, weight: float) -> dict[str, object]:
        distance = 40.0 + 55.0 * (abs(origin - dest) + rng.uniform(0.0, 1.5))
        hours = max(2.0, distance / rng.uniform(35.0, 50.0))
        if rng.random() < config.outlier_rate:
            pickup = pickup + timedelta(days=rng.choice((-5000, 9000)))
        delivery = pickup + timedelta(days=max(1, int(hours // 24) + rng.randint(0, 2)))
        if rng.random() < config.outlier_rate:
            delivery = pickup - timedelta(days=rng.randint(1, 30))
        mode = "TL" if weight >= 10_000.0 else "LTL"
        return {
            "trip_id": trip_id,
            "origin_zone": spell(origin),
            "dest_zone": spell(dest),
            "origin_lat": coordinate(origin, "lat"),
            "origin_lon": coordinate(origin, "lon"),
            "dest_lat": coordinate(dest, "lat"),
            "dest_lon": coordinate(dest, "lon"),
            "pickup_date": pickup.isoformat(),
            "delivery_date": delivery.isoformat() if rng.random() >= config.missing_rate else None,
            "distance_miles": numeric(distance),
            "weight_lb": numeric(weight),
            "transit_hours": numeric(hours),
            "mode": rng.choice((mode, mode.lower(), "Truckload" if mode == "TL" else "Partial", None)),
        }

    records: list[dict[str, object]] = []
    trip_id = 1
    for week in range(config.n_weeks):
        week_start = config.start_date + timedelta(days=7 * week)
        for origin, dest, weight in routes:
            pickup = week_start + timedelta(days=rng.randint(0, 2))
            records.append(trip(trip_id, origin, dest, pickup, weight * rng.uniform(0.96, 1.04)))
            trip_id += 1
        for _ in range(config.background_per_week):
            origin, dest = rng.sample(range(len(zone_list)), 2)
            pickup = week_start + timedelta(days=rng.randint(0, 6))
            records.append(trip(trip_id, origin, dest, pickup, rng.uniform(500.0, 44_000.0)))
            trip_id += 1
    return records


def generate_dataset(
    scale: float = 1.0,
    seed: int = 20050405,
    config: GeneratorConfig | None = None,
) -> TransactionDataset:
    """Convenience wrapper: generate a dataset at the given scale.

    ``scale=1.0`` reproduces the full ~98k-transaction dataset; tests and
    quick benchmarks typically use ``scale`` between 0.01 and 0.1.
    """
    if config is None:
        config = GeneratorConfig(scale=scale, seed=seed)
    return TransportationDataGenerator(config).generate()
