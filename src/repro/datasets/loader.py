"""CSV persistence for transaction datasets.

The paper's pipeline starts from a flat file of OD transactions.  This
module provides a simple, dependency-free round-trip between
:class:`~repro.datasets.schema.TransactionDataset` and CSV files using the
Table 1 column names, so generated datasets can be cached on disk and
reloaded by examples and benchmarks.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from repro.datasets.schema import ATTRIBUTE_NAMES, Transaction, TransactionDataset


def save_csv(dataset: TransactionDataset, path: str | Path) -> Path:
    """Write *dataset* to *path* as CSV with the Table 1 column names.

    Returns the path written.  Parent directories are created if needed.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(ATTRIBUTE_NAMES))
        writer.writeheader()
        for transaction in dataset:
            writer.writerow(transaction.as_record())
    return target


def load_csv(path: str | Path, name: str | None = None) -> TransactionDataset:
    """Load a dataset previously written by :func:`save_csv`.

    Raises ``FileNotFoundError`` if the file does not exist and
    ``ValueError`` if required columns are missing.
    """
    source = Path(path)
    if not source.exists():
        raise FileNotFoundError(f"dataset file not found: {source}")
    with source.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        missing = set(ATTRIBUTE_NAMES) - set(reader.fieldnames or [])
        if missing:
            raise ValueError(f"dataset file {source} is missing columns: {sorted(missing)}")
        transactions = [Transaction.from_record(row) for row in reader]
    return TransactionDataset(transactions=transactions, name=name or source.stem)


def iter_records(path: str | Path) -> Iterable[dict[str, str]]:
    """Stream raw CSV records without building Transaction objects.

    Useful for the conventional-mining feature extraction, which works on
    flat records rather than typed transactions.
    """
    source = Path(path)
    with source.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            yield row
