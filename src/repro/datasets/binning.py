"""Edge-label binning strategy (Section 3 of the paper).

Labeling graph edges with the exact numeric values of weight, distance, or
transit hours would make almost every label unique, so no pattern would
ever be frequent.  The paper instead divides each attribute's range into a
small number of bins (seven for gross weight and ten for transit hours in
the reported experiments) and labels the edge with the bin.  Two loads of
49 and 52 tons then carry the same label and can support the same pattern.

:class:`BinningScheme` captures that mapping for the three numeric edge
attributes and produces both integer bin indices (compact labels used by
the miners) and interval strings (used when rendering figures such as the
weight-range labels of Figure 4).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.datasets.schema import Transaction

#: Attribute keys the binning scheme knows about.
BINNABLE_ATTRIBUTES: tuple[str, ...] = (
    "GROSS_WEIGHT",
    "MOVE_TRANSIT_HOURS",
    "TOTAL_DISTANCE",
)


@dataclass(frozen=True)
class Bin:
    """A half-open value interval ``[lower, upper)`` with an integer index."""

    index: int
    lower: float
    upper: float

    def contains(self, value: float) -> bool:
        """Whether *value* falls in this bin (upper bound exclusive)."""
        return self.lower <= value < self.upper

    def interval_label(self) -> str:
        """An interval string such as ``[0, 6500]``, as used in Figure 4."""
        return f"[{_format_number(self.lower)}, {_format_number(self.upper)}]"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.interval_label()


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "inf"
    if value == float("-inf"):
        return "-inf"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:g}"


def _build_bins(edges: Sequence[float]) -> list[Bin]:
    if len(edges) < 2:
        raise ValueError("at least two bin edges are required")
    ordered = list(edges)
    if ordered != sorted(ordered):
        raise ValueError("bin edges must be sorted in increasing order")
    if len(set(ordered)) != len(ordered):
        raise ValueError("bin edges must be strictly increasing")
    return [
        Bin(index=i, lower=ordered[i], upper=ordered[i + 1])
        for i in range(len(ordered) - 1)
    ]


@dataclass
class AttributeBinning:
    """Binning of a single numeric attribute into equal-width or custom bins."""

    attribute: str
    bins: list[Bin]

    @classmethod
    def equal_width(
        cls, attribute: str, lower: float, upper: float, count: int
    ) -> "AttributeBinning":
        """Create *count* equal-width bins covering ``[lower, upper]``.

        The final bin's upper edge is extended to positive infinity so any
        value at or above the nominal maximum still gets a label; the first
        bin similarly absorbs values below the nominal minimum.
        """
        if count < 1:
            raise ValueError("bin count must be at least 1")
        if upper <= lower:
            raise ValueError("upper bound must exceed lower bound")
        width = (upper - lower) / count
        edges = [lower + i * width for i in range(count)]
        edges.append(float("inf"))
        bins = _build_bins(edges)
        return cls(attribute=attribute, bins=bins)

    @classmethod
    def from_edges(cls, attribute: str, edges: Sequence[float]) -> "AttributeBinning":
        """Create bins from an explicit, sorted edge list."""
        return cls(attribute=attribute, bins=_build_bins(edges))

    @property
    def count(self) -> int:
        """Number of bins."""
        return len(self.bins)

    def bin_for(self, value: float) -> Bin:
        """Return the bin containing *value* (values below the range clamp to bin 0).

        Non-finite values (NaN / ±inf) are rejected rather than silently
        landing in an arbitrary bin — a NaN compares false against every
        edge, so accepting it would make the label depend on the bisect
        implementation instead of the data.  Cleaning (see
        :func:`repro.datasets.schema.clean_mobility_records`) is expected
        to have removed or imputed such values first.
        """
        if not math.isfinite(value):
            raise ValueError(
                f"cannot bin non-finite {self.attribute} value {value!r}; "
                "clean or impute the record first"
            )
        lowers = [b.lower for b in self.bins]
        position = bisect_right(lowers, value) - 1
        if position < 0:
            position = 0
        return self.bins[position]

    def index_for(self, value: float) -> int:
        """Return the integer bin index for *value*."""
        return self.bin_for(value).index

    def label_for(self, value: float) -> str:
        """Return the interval-string label for *value*."""
        return self.bin_for(value).interval_label()


@dataclass
class BinningScheme:
    """Binning of all numeric edge attributes used by the graph builders."""

    attribute_binnings: dict[str, AttributeBinning] = field(default_factory=dict)

    def add(self, binning: AttributeBinning) -> None:
        """Register the binning of one attribute."""
        self.attribute_binnings[binning.attribute] = binning

    def binning_for(self, attribute: str) -> AttributeBinning:
        """Return the binning of *attribute*, raising ``KeyError`` if unknown."""
        if attribute not in self.attribute_binnings:
            raise KeyError(
                f"no binning registered for attribute {attribute!r}; "
                f"known attributes: {sorted(self.attribute_binnings)}"
            )
        return self.attribute_binnings[attribute]

    def bin_index(self, attribute: str, value: float) -> int:
        """Integer bin index of *value* under *attribute*'s binning."""
        return self.binning_for(attribute).index_for(value)

    def bin_label(self, attribute: str, value: float) -> str:
        """Interval-string label of *value* under *attribute*'s binning."""
        return self.binning_for(attribute).label_for(value)

    def label_counts(self) -> dict[str, int]:
        """Number of distinct labels (bins) per attribute."""
        return {name: binning.count for name, binning in self.attribute_binnings.items()}

    def transaction_value(self, transaction: Transaction, attribute: str) -> float:
        """Extract the raw numeric value of *attribute* from a transaction."""
        if attribute == "GROSS_WEIGHT":
            return transaction.gross_weight
        if attribute == "MOVE_TRANSIT_HOURS":
            return transaction.move_transit_hours
        if attribute == "TOTAL_DISTANCE":
            return transaction.total_distance
        raise KeyError(f"attribute {attribute!r} is not a binnable edge attribute")

    def edge_label(self, transaction: Transaction, attribute: str) -> int:
        """Bin index used as the edge label for *transaction* under *attribute*."""
        value = self.transaction_value(transaction, attribute)
        return self.bin_index(attribute, value)

    def edge_interval(self, transaction: Transaction, attribute: str) -> str:
        """Interval string used when rendering figures (e.g. Figure 4)."""
        value = self.transaction_value(transaction, attribute)
        return self.bin_label(attribute, value)


def default_binning_scheme(
    weight_bins: int = 7,
    hour_bins: int = 10,
    distance_bins: int = 10,
    max_weight: float = 70_000.0,
    max_hours: float = 200.0,
    max_distance: float = 3_500.0,
) -> BinningScheme:
    """Build the binning scheme used in the paper's experiments.

    The paper reports seven bins for gross weight and ten for transit
    hours; it does not state the distance bin count, so ten equal-width
    bins are used by default.  ``max_weight`` defaults to 70,000 pounds —
    the practical gross-weight range of truckload freight — so the seven
    weight bins separate light LTL loads from progressively heavier
    truckloads; the rare oversize loads (the paper notes a range of about
    500 tons) all land in the open-ended top bin.
    """
    scheme = BinningScheme()
    scheme.add(AttributeBinning.equal_width("GROSS_WEIGHT", 0.0, max_weight, weight_bins))
    scheme.add(AttributeBinning.equal_width("MOVE_TRANSIT_HOURS", 0.0, max_hours, hour_bins))
    scheme.add(AttributeBinning.equal_width("TOTAL_DISTANCE", 0.0, max_distance, distance_bins))
    return scheme


def bin_values(values: Iterable[float], binning: AttributeBinning) -> list[int]:
    """Convenience helper mapping an iterable of values to bin indices."""
    return [binning.index_for(value) for value in values]
