"""Transportation network dataset substrate.

This package provides the data layer of the reproduction: the transaction
schema from Table 1 of the paper, a synthetic origin-destination (OD)
dataset generator calibrated to the statistics reported in Section 3, the
edge-label binning strategy, CSV persistence, and dataset summary
statistics.

The real dataset (six months of OD data from a third-party logistics
company) is proprietary; :class:`~repro.datasets.generator.TransportationDataGenerator`
produces a synthetic equivalent whose headline statistics, motif content,
and attribute correlations match what the paper reports, so every
downstream experiment exercises the same code paths on data with the same
shape.
"""

from repro.datasets.schema import (
    ATTRIBUTE_DESCRIPTIONS,
    ATTRIBUTE_NAMES,
    Location,
    TransMode,
    Transaction,
    TransactionDataset,
)
from repro.datasets.binning import Bin, BinningScheme, default_binning_scheme
from repro.datasets.generator import (
    GeneratorConfig,
    TransportationDataGenerator,
    generate_dataset,
)
from repro.datasets.loader import load_csv, save_csv
from repro.datasets.statistics import DatasetStatistics, compute_statistics

__all__ = [
    "ATTRIBUTE_DESCRIPTIONS",
    "ATTRIBUTE_NAMES",
    "Location",
    "TransMode",
    "Transaction",
    "TransactionDataset",
    "Bin",
    "BinningScheme",
    "default_binning_scheme",
    "GeneratorConfig",
    "TransportationDataGenerator",
    "generate_dataset",
    "load_csv",
    "save_csv",
    "DatasetStatistics",
    "compute_statistics",
]
