"""Dataset summary statistics (the numbers reported in Section 3 / Table 1).

The paper characterises its dataset with a handful of headline statistics:
transaction count, distinct latitude-longitude pairs, distinct origins and
destinations, distinct OD pairs, and the minimum / maximum / average in-
and out-degrees of the induced directed graph.  This module computes those
statistics from any :class:`~repro.datasets.schema.TransactionDataset` so
the Table 1 benchmark can print a paper-versus-measured comparison.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping

from repro.datasets.schema import TransactionDataset

#: The values the paper reports for its proprietary dataset (Section 3).
PAPER_REPORTED_STATISTICS: dict[str, float] = {
    "n_transactions": 98_292,
    "n_locations": 4_038,
    "n_origins": 1_797,
    "n_destinations": 3_770,
    "n_od_pairs": 20_900,
    "out_degree_min": 1,
    "out_degree_max": 2_373,
    "out_degree_avg": 12,
    "in_degree_min": 1,
    "in_degree_max": 832,
    "in_degree_avg": 6,
}


@dataclass(frozen=True)
class DegreeSummary:
    """Minimum, maximum, and average of a degree distribution."""

    minimum: int
    maximum: int
    average: float

    @classmethod
    def from_counts(cls, counts: Mapping[object, int]) -> "DegreeSummary":
        """Summarise a mapping from node to degree."""
        if not counts:
            return cls(minimum=0, maximum=0, average=0.0)
        values = list(counts.values())
        return cls(
            minimum=min(values),
            maximum=max(values),
            average=sum(values) / len(values),
        )


@dataclass(frozen=True)
class DatasetStatistics:
    """Headline statistics of an OD transaction dataset."""

    n_transactions: int
    n_locations: int
    n_origins: int
    n_destinations: int
    n_od_pairs: int
    out_degree: DegreeSummary
    in_degree: DegreeSummary
    transactions_per_od_pair: float
    date_span_days: int
    mode_counts: dict[str, int]

    def as_dict(self) -> dict[str, float]:
        """Flatten to a dict keyed like :data:`PAPER_REPORTED_STATISTICS`."""
        return {
            "n_transactions": self.n_transactions,
            "n_locations": self.n_locations,
            "n_origins": self.n_origins,
            "n_destinations": self.n_destinations,
            "n_od_pairs": self.n_od_pairs,
            "out_degree_min": self.out_degree.minimum,
            "out_degree_max": self.out_degree.maximum,
            "out_degree_avg": self.out_degree.average,
            "in_degree_min": self.in_degree.minimum,
            "in_degree_max": self.in_degree.maximum,
            "in_degree_avg": self.in_degree.average,
        }


def compute_statistics(dataset: TransactionDataset) -> DatasetStatistics:
    """Compute the Section 3 statistics for *dataset*.

    Degrees follow the paper's convention: the out-degree of a location is
    the number of *distinct* destinations it ships to, and the in-degree is
    the number of distinct origins shipping to it (multiple trips on the
    same lane do not increase the degree).
    """
    if len(dataset) == 0:
        raise ValueError("cannot compute statistics of an empty dataset")

    od_pairs = dataset.od_pairs
    out_neighbours: dict[object, set] = {}
    in_neighbours: dict[object, set] = {}
    for origin, destination in od_pairs:
        out_neighbours.setdefault(origin, set()).add(destination)
        in_neighbours.setdefault(destination, set()).add(origin)

    out_counts = {node: len(neigh) for node, neigh in out_neighbours.items()}
    in_counts = {node: len(neigh) for node, neigh in in_neighbours.items()}

    mode_counter: Counter[str] = Counter(txn.trans_mode.value for txn in dataset)
    start, end = dataset.date_range()

    return DatasetStatistics(
        n_transactions=len(dataset),
        n_locations=len(dataset.locations),
        n_origins=len(dataset.origins),
        n_destinations=len(dataset.destinations),
        n_od_pairs=len(od_pairs),
        out_degree=DegreeSummary.from_counts(out_counts),
        in_degree=DegreeSummary.from_counts(in_counts),
        transactions_per_od_pair=len(dataset) / len(od_pairs),
        date_span_days=(end - start).days + 1,
        mode_counts=dict(mode_counter),
    )
