"""Geographic helpers used by the synthetic data generator.

The paper's dataset stores origins and destinations as latitude/longitude
pairs to the nearest 0.1 degree and records road miles between them.  The
generator needs a plausible distance model, so this module provides a
haversine great-circle distance and a road-distance estimate (great-circle
distance inflated by a circuity factor, the standard approximation in
transportation modelling).
"""

from __future__ import annotations

import math

from repro.datasets.schema import Location

#: Mean Earth radius in statute miles.
EARTH_RADIUS_MILES = 3958.8

#: Typical ratio of road distance to great-circle distance in the US.
DEFAULT_CIRCUITY_FACTOR = 1.2


def haversine_miles(origin: Location, destination: Location) -> float:
    """Great-circle distance in miles between two locations."""
    lat1 = math.radians(origin.latitude)
    lon1 = math.radians(origin.longitude)
    lat2 = math.radians(destination.latitude)
    lon2 = math.radians(destination.longitude)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    a = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    c = 2.0 * math.asin(min(1.0, math.sqrt(a)))
    return EARTH_RADIUS_MILES * c


def road_miles(
    origin: Location,
    destination: Location,
    circuity_factor: float = DEFAULT_CIRCUITY_FACTOR,
) -> float:
    """Estimated road miles between two locations.

    Road networks are not straight lines; the conventional approximation
    multiplies the great-circle distance by a circuity factor (about 1.2
    for the continental US).
    """
    if circuity_factor < 1.0:
        raise ValueError("circuity factor must be at least 1.0")
    return haversine_miles(origin, destination) * circuity_factor


def transit_hours_for_distance(
    distance_miles: float,
    average_speed_mph: float = 45.0,
    handling_hours: float = 2.0,
) -> float:
    """Expected door-to-door transit hours for a road distance.

    A simple linear model: driving time at an average speed plus fixed
    handling time at each end.  The generator adds noise on top of this so
    distance and transit hours are strongly but not perfectly correlated,
    matching the classification findings in Section 7.2.
    """
    if distance_miles < 0:
        raise ValueError("distance must be non-negative")
    if average_speed_mph <= 0:
        raise ValueError("average speed must be positive")
    return distance_miles / average_speed_mph + handling_hours
