"""Command-line interface for running the reproduction experiments.

The library's experiment drivers (one per paper table / figure) can be run
from the command line without writing any code::

    python -m repro.cli list
    python -m repro.cli run T1 --scale 0.03
    python -m repro.cli run S7.2 F5/F6 --scale 0.05
    python -m repro.cli all --scale 0.01 --output results.txt

``list`` shows the available experiment ids with their descriptions;
``run`` executes one or more experiments and prints the paper-versus-
measured comparison; ``all`` runs every experiment.  ``--output`` appends
the rendered comparisons to a file in addition to printing them.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.core.config import ExperimentConfig
from repro.core.experiments import ALL_EXPERIMENTS
from repro.core.results import ExperimentReport
from repro.reporting.comparison import agreement_summary, render_comparison

#: One-line descriptions shown by ``list`` (kept in sync with DESIGN.md).
_EXPERIMENT_SUMMARIES: dict[str, str] = {
    "T1": "Table 1 / Section 3 — dataset description statistics",
    "F1": "Figure 1 — SUBDUE with the MDL principle on OD_GW",
    "S5.1": "Section 5.1 — SUBDUE runtime scaling, MDL vs Size",
    "F2/F3": "Figures 2 & 3 — FSG over breadth-first / depth-first partitions",
    "FN2": "Footnote 2 — recall of planted patterns after partitioning",
    "T2": "Table 2 — temporally partitioned graph data",
    "T3/F4": "Table 3 + Figure 4 — FSG on filtered temporal transactions",
    "S6.1": "Section 6.1 — FSG memory failure on large temporal transactions",
    "S7.1": "Section 7.1 — association rules",
    "S7.2": "Section 7.2 — decision-tree classification",
    "F5/F6": "Figures 5 & 6 — EM clustering",
    "ABL": "Ablation — partitioning strategy (BFS / DFS / METIS-like)",
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro.cli``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'Knowledge Discovery from Transportation Network Data' (ICDE 2005).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiment ids")

    run_parser = subparsers.add_parser("run", help="run one or more experiments by id")
    run_parser.add_argument("experiments", nargs="+", help="experiment ids (see 'list')")
    _add_common_options(run_parser)

    all_parser = subparsers.add_parser("all", help="run every experiment")
    _add_common_options(all_parser)

    return parser


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.03,
                        help="synthetic dataset scale (1.0 = the paper's full size; default 0.03)")
    parser.add_argument("--seed", type=int, default=20050405, help="generator seed")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker shards for the parallel mining runtime "
                             "(0/1 = serial; >= 2 shards support counting across "
                             "that many processes; default: $REPRO_WORKERS or serial)")
    parser.add_argument("--backend", choices=["process", "serial"], default=None,
                        help="sharded-runtime backend when --workers >= 2 "
                             "(default: $REPRO_BACKEND or 'process')")
    parser.add_argument("--output", type=Path, default=None,
                        help="also append the rendered comparisons to this file")


def _render(report: ExperimentReport) -> str:
    lines = [render_comparison(report)]
    agreements = agreement_summary(report)
    if agreements:
        matched = sum(1 for ok in agreements.values() if ok)
        lines.append(f"qualitative claims matched: {matched}/{len(agreements)}")
    return "\n".join(lines)


def _run_experiments(experiment_ids: Sequence[str], args, stream) -> int:
    unknown = [eid for eid in experiment_ids if eid not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    try:
        config = ExperimentConfig(
            scale=args.scale, seed=args.seed, workers=args.workers, backend=args.backend
        )
    except ValueError as error:
        print(f"invalid configuration: {error}", file=sys.stderr)
        return 2
    chunks: list[str] = []
    for experiment_id in experiment_ids:
        driver = ALL_EXPERIMENTS[experiment_id]
        report = driver(config)
        rendered = _render(report)
        print(rendered, file=stream)
        print("", file=stream)
        chunks.append(rendered)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        with args.output.open("a", encoding="utf-8") as handle:
            handle.write("\n\n".join(chunks) + "\n")
    return 0


def main(argv: Sequence[str] | None = None, stream=None) -> int:
    """CLI entry point; returns the process exit code.

    ``stream`` defaults to the *current* ``sys.stdout`` so output capture
    (pytest's capsys, redirected stdout) works as expected.
    """
    if stream is None:
        stream = sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in ALL_EXPERIMENTS:
            summary = _EXPERIMENT_SUMMARIES.get(experiment_id, "")
            print(f"{experiment_id:8s} {summary}", file=stream)
        return 0
    if args.command == "run":
        return _run_experiments(args.experiments, args, stream)
    if args.command == "all":
        return _run_experiments(list(ALL_EXPERIMENTS), args, stream)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover - argparse handles this
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    raise SystemExit(main())
