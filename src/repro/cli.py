"""Command-line interface for running the reproduction experiments.

The library's experiment drivers (one per paper table / figure) can be run
from the command line without writing any code::

    python -m repro.cli list
    python -m repro.cli run T1 --scale 0.03
    python -m repro.cli run S7.2 F5/F6 --scale 0.05
    python -m repro.cli all --scale 0.01 --output results.txt

``list`` shows the available experiment ids with their descriptions;
``run`` executes one or more experiments and prints the paper-versus-
measured comparison; ``all`` runs every experiment.  ``--output`` appends
the rendered comparisons to a file in addition to printing them.

The scenario/verification subsystem rides along as ``scenarios``::

    python -m repro.cli scenarios list
    python -m repro.cli scenarios run dense-uniform --workers 2
    python -m repro.cli scenarios run --only stress-powerlaw,stress-windows
    python -m repro.cli scenarios verify --update-golden
    python -m repro.cli scenarios verify --shards 2,3 --backends serial,process
    python -m repro.cli scenarios verify --only messy-mobility
    python -m repro.cli scenarios stream --transactions 100000 --out stream.json

``run`` and ``verify`` take scenario names positionally and/or through
``--only name,name``; an unknown name (either way) exits non-zero and
prints the registered list.  ``stream`` drives the lazy 100k-transaction
streaming corpus through its sampled-digest verification under a peak
memory probe and optionally writes the report as JSON (the CI
scenario-stress artifact).

Every run/verify command takes ``--kernel {python,vectorized}`` (or the
``REPRO_KERNEL`` environment variable) to pick the support-kernel
backend; the vectorized kernel changes wall-clock only, never output.
Likewise ``--wire {buffer,pickle}`` (or ``REPRO_WIRE``) picks the
sharded runtime's message encoding — flat zero-copy buffers by default,
pickle as the differential oracle — without changing mining output.

``scenarios verify`` runs every workload through the differential harness
(serial vs sharded runtimes vs the legacy matcher) and compares the
outcome digests against the golden file; it exits non-zero on any
divergence, which is what the CI scenario-matrix job checks.

Every mining-adjacent command also takes ``--trace PATH`` (or the
``REPRO_TRACE`` environment variable): the run executes under an active
:mod:`repro.obs` tracer and writes the merged trace — main-timeline
spans, per-shard worker spans, and the metrics registry — as JSONL when
it finishes.  Tracing is observational only; mining output and scenario
digests are byte-identical with it on or off.  The ``trace`` command
group works with the files afterwards::

    python -m repro.cli trace summarize trace.jsonl
    python -m repro.cli trace export trace.jsonl --out trace_chrome.json
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Sequence

from repro.core.config import ExperimentConfig
from repro.core.experiments import ALL_EXPERIMENTS
from repro.core.results import ExperimentReport
from repro.graphs.engine import KERNEL_ENV, KERNELS, resolve_kernel
from repro.obs.tracer import TRACE_ENV
from repro.runtime.faults import FAULTS_ENV, FaultPlan
from repro.runtime.wire import WIRE_ENV, WIRES
from repro.reporting.comparison import agreement_summary, render_comparison
from repro.runtime.base import BACKENDS

#: One-line descriptions shown by ``list`` (kept in sync with DESIGN.md).
_EXPERIMENT_SUMMARIES: dict[str, str] = {
    "T1": "Table 1 / Section 3 — dataset description statistics",
    "F1": "Figure 1 — SUBDUE with the MDL principle on OD_GW",
    "S5.1": "Section 5.1 — SUBDUE runtime scaling, MDL vs Size",
    "F2/F3": "Figures 2 & 3 — FSG over breadth-first / depth-first partitions",
    "FN2": "Footnote 2 — recall of planted patterns after partitioning",
    "T2": "Table 2 — temporally partitioned graph data",
    "T3/F4": "Table 3 + Figure 4 — FSG on filtered temporal transactions",
    "S6.1": "Section 6.1 — FSG memory failure on large temporal transactions",
    "S7.1": "Section 7.1 — association rules",
    "S7.2": "Section 7.2 — decision-tree classification",
    "F5/F6": "Figures 5 & 6 — EM clustering",
    "ABL": "Ablation — partitioning strategy (BFS / DFS / METIS-like)",
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro.cli``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'Knowledge Discovery from Transportation Network Data' (ICDE 2005).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiment ids")

    run_parser = subparsers.add_parser("run", help="run one or more experiments by id")
    run_parser.add_argument("experiments", nargs="+", help="experiment ids (see 'list')")
    _add_common_options(run_parser)

    all_parser = subparsers.add_parser("all", help="run every experiment")
    _add_common_options(all_parser)

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="scenario workloads and the differential verification harness"
    )
    scenario_commands = scenarios_parser.add_subparsers(dest="scenario_command", required=True)

    scenario_commands.add_parser("list", help="list the registered scenarios")

    scenario_run = scenario_commands.add_parser(
        "run", help="run scenarios and print their outcome digests"
    )
    scenario_run.add_argument("names", nargs="*",
                              help="scenario names (default: every registered scenario)")
    scenario_run.add_argument("--only", default=None, metavar="NAME,NAME",
                              help="comma-separated filter applied to the selection; "
                                   "unknown names exit non-zero")
    scenario_run.add_argument("--workers", type=int, default=None,
                              help="worker shards for support counting (default: serial)")
    scenario_run.add_argument("--backend", choices=list(BACKENDS), default=None,
                              help="sharded-runtime backend when --workers >= 2")
    scenario_run.add_argument("--kernel", choices=list(KERNELS), default=None,
                              help="match-kernel backend (default: $REPRO_KERNEL or 'python')")

    scenario_verify = scenario_commands.add_parser(
        "verify",
        help="differential-check scenarios and compare against golden digests",
    )
    scenario_verify.add_argument("names", nargs="*",
                                 help="scenario names (default: every registered scenario)")
    scenario_verify.add_argument("--only", default=None, metavar="NAME,NAME",
                                 help="comma-separated filter applied to the selection; "
                                      "unknown names exit non-zero")
    scenario_verify.add_argument("--update-golden", action="store_true",
                                 help="rewrite the golden digests instead of comparing")
    scenario_verify.add_argument("--golden", type=Path, default=None,
                                 help="golden file (default: tests/golden/scenarios.json)")
    scenario_verify.add_argument("--shards", default="2,3",
                                 help="comma-separated shard counts to differentiate (default 2,3)")
    scenario_verify.add_argument("--backends", default="serial",
                                 help="comma-separated pool backends (default 'serial')")
    scenario_verify.add_argument("--kernel", choices=list(KERNELS), default=None,
                                 help="match-kernel backend for every runtime under test "
                                      "(default: $REPRO_KERNEL or 'python')")
    scenario_verify.add_argument("--no-oracle", action="store_true",
                                 help="skip the legacy-matcher support oracle")
    scenario_verify.add_argument("--report", type=Path, default=None,
                                 help="also write the per-scenario digests to this JSON file")
    scenario_stream = scenario_commands.add_parser(
        "stream",
        help="sampled-digest + peak-memory check of the lazy streaming corpus",
    )
    scenario_stream.add_argument("--transactions", type=int, default=100_000,
                                 help="corpus length (default 100000)")
    scenario_stream.add_argument("--batch-size", type=int, default=512,
                                 help="transactions materialised per batch (default 512)")
    scenario_stream.add_argument("--seed", type=int, default=20050405,
                                 help="corpus seed (default 20050405)")
    scenario_stream.add_argument("--out", type=Path, default=None,
                                 help="also write the stream report to this JSON file")
    scenario_stream.add_argument("--kernel", choices=list(KERNELS), default=None,
                                 help="match-kernel backend for the reservoir canonicalisation "
                                      "(default: $REPRO_KERNEL or 'python')")

    for scenario_parser in (scenario_run, scenario_verify, scenario_stream):
        _add_trace_option(scenario_parser)
    for scenario_parser in (scenario_run, scenario_verify):
        _add_faults_option(scenario_parser)
        _add_wire_option(scenario_parser)

    trace_parser = subparsers.add_parser(
        "trace", help="inspect and convert recorded trace files"
    )
    trace_commands = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_summarize = trace_commands.add_parser(
        "summarize",
        help="print the run report (level x shard skew, top spans, metrics) of a JSONL trace",
    )
    trace_summarize.add_argument("path", type=Path, help="JSONL trace written by --trace")
    trace_summarize.add_argument("--top", type=int, default=10,
                                 help="how many spans the duration ranking shows (default 10)")
    trace_export = trace_commands.add_parser(
        "export",
        help="convert a JSONL trace to Chrome Trace Event Format (chrome://tracing, Perfetto)",
    )
    trace_export.add_argument("path", type=Path, help="JSONL trace written by --trace")
    trace_export.add_argument("--out", type=Path, required=True,
                              help="output path for the Chrome-format JSON")

    return parser


def _add_trace_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", type=Path, default=None,
                        help="record an observability trace of the run and write it "
                             "to this path as JSONL (default: $REPRO_TRACE or off); "
                             "never changes mining output")


def _add_faults_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--faults", default=None, metavar="PLAN",
                        help="deterministic fault-injection plan for sharded runtimes, "
                             "e.g. 'kill:shard=1,level=3; hang:shard=0,op=slevel' "
                             "(default: $REPRO_FAULTS or off); recovery keeps mining "
                             "output byte-identical, so this is a chaos gate, not a "
                             "chaos monkey")


def _add_wire_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--wire", choices=list(WIRES), default=None,
                        help="sharded-runtime message encoding: 'buffer' (flat zero-copy "
                             "buffers, shared-memory shipping on the process backend) or "
                             "'pickle' (the differential oracle); same mining output either "
                             "way (default: $REPRO_WIRE or 'buffer')")


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.03,
                        help="synthetic dataset scale (1.0 = the paper's full size; default 0.03)")
    parser.add_argument("--seed", type=int, default=20050405, help="generator seed")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker shards for the parallel mining runtime "
                             "(0/1 = serial; >= 2 shards support counting across "
                             "that many processes; default: $REPRO_WORKERS or serial)")
    parser.add_argument("--backend", choices=list(BACKENDS), default=None,
                        help="sharded-runtime backend when --workers >= 2 "
                             "(default: $REPRO_BACKEND or 'process')")
    parser.add_argument("--kernel", choices=list(KERNELS), default=None,
                        help="support-kernel backend: 'python' (pure-python oracle) or "
                             "'vectorized' (numpy columnar passes; same output, faster) "
                             "(default: $REPRO_KERNEL or 'python')")
    parser.add_argument("--output", type=Path, default=None,
                        help="also append the rendered comparisons to this file")
    _add_trace_option(parser)
    _add_faults_option(parser)
    _add_wire_option(parser)


def _render(report: ExperimentReport) -> str:
    lines = [render_comparison(report)]
    agreements = agreement_summary(report)
    if agreements:
        matched = sum(1 for ok in agreements.values() if ok)
        lines.append(f"qualitative claims matched: {matched}/{len(agreements)}")
    return "\n".join(lines)


def _run_experiments(experiment_ids: Sequence[str], args, stream) -> int:
    unknown = [eid for eid in experiment_ids if eid not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    try:
        config = ExperimentConfig(
            scale=args.scale,
            seed=args.seed,
            workers=args.workers,
            backend=args.backend,
            kernel=args.kernel,
            wire=getattr(args, "wire", None),
        )
    except ValueError as error:
        print(f"invalid configuration: {error}", file=sys.stderr)
        return 2
    chunks: list[str] = []
    for experiment_id in experiment_ids:
        driver = ALL_EXPERIMENTS[experiment_id]
        report = driver(config)
        rendered = _render(report)
        print(rendered, file=stream)
        print("", file=stream)
        chunks.append(rendered)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        with args.output.open("a", encoding="utf-8") as handle:
            handle.write("\n\n".join(chunks) + "\n")
    return 0


def _scenarios_list(stream) -> int:
    from repro.scenarios import iter_scenarios

    for scenario in iter_scenarios():
        tags = ",".join(scenario.tags)
        print(f"{scenario.name:24s} [{tags}] {scenario.description}", file=stream)
    return 0


def _select_scenarios(positional, only) -> list[str] | None:
    """Resolve positional names and the ``--only`` filter to a name list.

    Returns ``None`` (after printing the registered list) when any name —
    positional or filter — is unknown, or when the filter empties the
    selection; callers exit non-zero on ``None``.
    """
    from repro.scenarios import scenario_names

    registered = scenario_names()
    only_names = None
    if only is not None:
        only_names = [part.strip() for part in only.split(",") if part.strip()]
    unknown = [name for name in list(positional or []) + (only_names or []) if name not in registered]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(registered)}", file=sys.stderr)
        return None
    selected = list(positional) if positional else list(registered)
    if only_names is not None:
        keep = set(only_names)
        selected = [name for name in selected if name in keep]
    if not selected:
        print("no scenarios selected", file=sys.stderr)
        print(f"available: {', '.join(registered)}", file=sys.stderr)
        return None
    return selected


def _scenarios_run(args, stream) -> int:
    from repro.runtime import create_runtime, resolve_workers
    from repro.scenarios import get_scenario, run_scenario

    names = _select_scenarios(args.names, args.only)
    if names is None:
        return 2
    runtime = None
    if resolve_workers(args.workers) > 1:
        runtime = create_runtime(workers=args.workers, backend=args.backend, kernel=args.kernel)
    try:
        for name in names:
            outcome = run_scenario(get_scenario(name), runtime=runtime)
            payload = outcome.payload
            recall = payload.get("recall")
            recall_note = f"  recall={recall['recall']:.2f}" if recall else ""
            print(
                f"{name:24s} txns={payload['n_transactions']:<4d} "
                f"fsg={len(payload['fsg']):<4d} subdue={len(payload['subdue'])} "
                f"structural={len(payload['structural']):<4d}"
                f"{recall_note}  digest={outcome.digest}",
                file=stream,
            )
    finally:
        if runtime is not None:
            runtime.close()
    return 0


def _scenarios_verify(args, stream) -> int:
    import json

    from repro.scenarios import verify_scenarios

    if args.names or args.only is not None:
        names = _select_scenarios(args.names, args.only)
        if names is None:
            return 2
    else:
        # No positional names and no filter: verify (and, with
        # --update-golden, fully rewrite) the complete registry.
        names = None
    try:
        shard_counts = tuple(int(part) for part in args.shards.split(",") if part.strip())
    except ValueError:
        print(f"invalid --shards value {args.shards!r}", file=sys.stderr)
        return 2
    if any(count < 1 for count in shard_counts):
        print(f"invalid --shards value {args.shards!r}: shard counts must be >= 1", file=sys.stderr)
        return 2
    backends = tuple(part.strip() for part in args.backends.split(",") if part.strip())
    unknown_backends = [backend for backend in backends if backend not in BACKENDS]
    if unknown_backends:
        print(
            f"invalid --backends value(s) {', '.join(unknown_backends)}; "
            f"expected one of {', '.join(BACKENDS)}",
            file=sys.stderr,
        )
        return 2
    result = verify_scenarios(
        names=names,
        shard_counts=shard_counts,
        backends=backends,
        update=args.update_golden,
        golden_path=args.golden,
        check_oracle=not args.no_oracle,
    )
    for report in result.reports:
        status = "ok" if report.ok else "FAIL"
        print(
            f"{report.scenario:24s} {status:4s} digest={report.digest[:16]} "
            f"runs={len(report.runs)}",
            file=stream,
        )
    if args.report is not None:
        # The report rides on the golden entries but adds each sharded
        # run's aggregated runtime counters (wire bytes shipped, full- vs
        # delta-shipped patterns, store evictions, cache hit rates...);
        # those are observational and deliberately never written to the
        # golden file itself.
        report_entries = {
            report.scenario: {
                **result.entries[report.scenario],
                "runtime_stats": report.runtime_stats,
            }
            for report in result.reports
        }
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(
            json.dumps(report_entries, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.report}", file=stream)
        from repro.obs import TraceData, get_tracer, render_report

        tracer = get_tracer()
        if tracer.enabled:
            # A traced verify also prints the live run report (level x
            # shard skew across every differential run, top spans,
            # metric highlights) alongside the digest table.
            print("", file=stream)
            print(render_report(TraceData.from_tracer(tracer)), file=stream)
    for failure in result.failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if result.failures:
        if args.update_golden:
            print("golden digests NOT updated: fix the failures first", file=sys.stderr)
        return 1
    if result.updated_path is not None:
        print(f"updated golden digests in {result.updated_path}", file=stream)
        return 0
    print(f"all {len(result.reports)} scenario(s) verified", file=stream)
    return 0


def _scenarios_stream(args, stream) -> int:
    import json

    from repro.scenarios import StreamingMobilityCorpus, stream_report

    if args.transactions < 1:
        print("--transactions must be at least 1", file=sys.stderr)
        return 2
    if args.batch_size < 1:
        print("--batch-size must be at least 1", file=sys.stderr)
        return 2
    corpus = StreamingMobilityCorpus(n_transactions=args.transactions, seed=args.seed)
    report = stream_report(corpus, batch_size=args.batch_size)
    print(
        f"streaming-mobility txns={report['n_transactions']} "
        f"batch={report['batch_size']} "
        f"peak={report['peak_traced_bytes'] / 1e6:.1f}MB "
        f"digest={report['sampled_digest']}",
        file=stream,
    )
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.out}", file=stream)
    return 0


def _run_scenarios_command(args, stream) -> int:
    if args.scenario_command == "list":
        return _scenarios_list(stream)
    if args.scenario_command == "run":
        return _scenarios_run(args, stream)
    if args.scenario_command == "stream":
        return _scenarios_stream(args, stream)
    return _scenarios_verify(args, stream)


def _run_trace_command(args, stream) -> int:
    from repro.obs import read_jsonl, render_report, write_chrome_trace

    if not args.path.exists():
        print(f"no such trace file: {args.path}", file=sys.stderr)
        return 2
    data = read_jsonl(args.path)
    if args.trace_command == "summarize":
        print(render_report(data, top=args.top), file=stream)
        return 0
    written = write_chrome_trace(args.out, data)
    print(
        f"wrote {written} ({len(data.spans)} spans; open in chrome://tracing or Perfetto)",
        file=stream,
    )
    return 0


def main(argv: Sequence[str] | None = None, stream=None) -> int:
    """CLI entry point; returns the process exit code.

    ``stream`` defaults to the *current* ``sys.stdout`` so output capture
    (pytest's capsys, redirected stdout) works as expected.
    """
    if stream is None:
        stream = sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "trace":
        return _run_trace_command(args, stream)

    kernel = getattr(args, "kernel", None)
    saved_kernel = os.environ.get(KERNEL_ENV)
    if kernel:
        # The scenario harness (and any worker process) builds engines
        # directly, so the environment variable is the carrier: one flag
        # switches every MatchEngine the run creates.
        os.environ[KERNEL_ENV] = kernel

    # --wire / $REPRO_WIRE: same carrier pattern as --kernel — every
    # ShardedEngine the run constructs (the scenario harness builds its
    # own) resolves the wire format from the environment.
    wire = getattr(args, "wire", None)
    saved_wire = os.environ.get(WIRE_ENV)
    if wire:
        os.environ[WIRE_ENV] = wire

    # --faults / $REPRO_FAULTS: same carrier pattern as --kernel — every
    # ShardedEngine the run constructs picks the plan up from the
    # environment and arms its workers.  Parse eagerly so a typo fails
    # the command, not the first mining run minutes in.
    faults = getattr(args, "faults", None)
    saved_faults = os.environ.get(FAULTS_ENV)
    if faults:
        try:
            FaultPlan.parse(faults)
        except ValueError as error:
            print(f"invalid --faults plan: {error}", file=sys.stderr)
            return 2
        os.environ[FAULTS_ENV] = faults

    # --trace / $REPRO_TRACE: run under an active tracer and write the
    # merged trace (main + shard-worker spans + metrics) when done.  The
    # wall clock is the tracer clock so every worker timeline — aligned
    # to the parent's wall anchor — lands on one time axis.
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        raw_trace = os.environ.get(TRACE_ENV, "").strip()
        if raw_trace:
            trace_path = Path(raw_trace)
    tracer = None
    previous_tracer = None
    if trace_path is not None and args.command in ("run", "all", "scenarios"):
        import time

        from repro.obs import Tracer, set_tracer

        tracer = Tracer(worker="main", clock=time.time)
        previous_tracer = set_tracer(tracer)
    try:
        if args.command == "list":
            for experiment_id in ALL_EXPERIMENTS:
                summary = _EXPERIMENT_SUMMARIES.get(experiment_id, "")
                print(f"{experiment_id:8s} {summary}", file=stream)
            return 0
        if args.command == "run":
            return _run_experiments(args.experiments, args, stream)
        if args.command == "all":
            return _run_experiments(list(ALL_EXPERIMENTS), args, stream)
        if args.command == "scenarios":
            return _run_scenarios_command(args, stream)
    finally:
        if kernel:
            if saved_kernel is None:
                os.environ.pop(KERNEL_ENV, None)
            else:
                os.environ[KERNEL_ENV] = saved_kernel
        if wire:
            if saved_wire is None:
                os.environ.pop(WIRE_ENV, None)
            else:
                os.environ[WIRE_ENV] = saved_wire
        if faults:
            if saved_faults is None:
                os.environ.pop(FAULTS_ENV, None)
            else:
                os.environ[FAULTS_ENV] = saved_faults
        if tracer is not None:
            from repro.obs import set_tracer, write_jsonl
            from repro.runtime import resolve_backend, resolve_wire, resolve_workers

            set_tracer(previous_tracer)
            meta = {
                "command": args.command,
                "cpu_count": os.cpu_count(),
                "workers": resolve_workers(getattr(args, "workers", None)),
                "backend": resolve_backend(getattr(args, "backend", None)),
                "kernel": resolve_kernel(None),
                "wire": resolve_wire(None),
            }
            write_jsonl(trace_path, tracer, meta=meta)
            # stderr on purpose: traced and untraced runs must produce
            # byte-identical stdout (the CI digest gate diffs them).
            print(f"wrote trace to {trace_path}", file=sys.stderr)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover - argparse handles this
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    raise SystemExit(main())
